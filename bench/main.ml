(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6), plus the performance and ablation experiments indexed
   in DESIGN.md. Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
module Profile = Wr_sitegen.Profile
module Eval = Wr_sitegen.Eval
module Gen = Wr_sitegen.Gen
module Graph = Wr_hb.Graph
module Op = Wr_hb.Op
module Table = Wr_support.Table

(* --quick: a CI-sized pass — truncated corpus and a smaller bechamel
   quota, but the same BENCH_results.json schema, so scripts/bench_trend
   can compare quick runs against each other. *)
let quick = Array.exists (( = ) "--quick") Sys.argv
let corpus_limit = if quick then Some 12 else None

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n\n"

(* ------------------------------------------------------------------ *)
(* Machine-readable results (BENCH_results.json)                       *)
(*                                                                     *)
(* Every section also records its numbers here; the file is written    *)
(* next to the stdout tables so the perf trajectory is trackable       *)
(* across PRs. Format (documented in README "Benchmarks"):             *)
(*   { "<section>": { "<benchmark>": <number>, ... }, ... }            *)
(* Bechamel sections are ns/run; *_s entries are wall-clock seconds;   *)
(* *_ratio and *_speedup entries are dimensionless.                    *)
(* ------------------------------------------------------------------ *)

let bench_results : (string * (string * Wr_support.Json.t) list ref) list ref = ref []

let record_result sec name v =
  let entries =
    match List.assoc_opt sec !bench_results with
    | Some r -> r
    | None ->
        let r = ref [] in
        bench_results := !bench_results @ [ (sec, r) ];
        r
  in
  entries := !entries @ [ (name, v) ]

let record_float sec name v = record_result sec name (Wr_support.Json.Float v)

let write_bench_results path =
  let obj =
    Wr_support.Json.Obj
      (List.map (fun (s, entries) -> (s, Wr_support.Json.Obj !entries)) !bench_results)
  in
  let oc = open_out_bin path in
  output_string oc (Wr_support.Json.to_string obj);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let run_bench_group ~name tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg
      ~limit:(if quick then 50 else 200)
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun test_name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (test_name, est) :: acc
        | Some [] | None -> acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (test_name, ns) -> record_float name test_name ns) estimates;
  estimates

let pp_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let print_bench_results results =
  Table.print ~header:[ "benchmark"; "time/run" ]
    (List.map (fun (name, ns) -> [ name; pp_ns ns ]) results)

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2 (§6.2, §6.3)                                         *)
(* ------------------------------------------------------------------ *)

let paper_table1 =
  (* race type -> (mean, median, max) from the paper *)
  [
    ("HTML", (2.2, 0.0, 112));
    ("Function", (0.4, 0.0, 6));
    ("Variable", (22.4, 5.5, 269));
    ("Event Dispatch", (22.3, 7.0, 198));
    ("All", (47.3, 27.0, 278));
  ]

let table1 outcomes =
  section "Table 1 — raw races per type across 100 sites (paper vs measured)";
  let stat f =
    let xs = List.map f outcomes in
    (Wr_support.Stats.mean xs, Wr_support.Stats.median xs, Wr_support.Stats.max xs)
  in
  let selectors =
    [
      ("HTML", fun (o : Eval.outcome) -> o.Eval.raw.Profile.html);
      ("Function", fun o -> o.Eval.raw.Profile.func);
      ("Variable", fun o -> o.Eval.raw.Profile.var);
      ("Event Dispatch", fun o -> o.Eval.raw.Profile.disp);
      ("All", fun o -> Profile.total o.Eval.raw);
    ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        let mean, median, mx = stat f in
        let pm, pmed, pmax = List.assoc name paper_table1 in
        [
          name;
          Printf.sprintf "%.1f" pm;
          Printf.sprintf "%.1f" mean;
          Printf.sprintf "%.1f" pmed;
          Printf.sprintf "%.1f" median;
          string_of_int pmax;
          string_of_int mx;
        ])
      selectors
  in
  Table.print
    ~header:
      [ "Race type"; "mean(paper)"; "mean(ours)"; "med(paper)"; "med(ours)";
        "max(paper)"; "max(ours)" ]
    rows

let table2 outcomes =
  section "Table 2 — filtered races per site, harmful in parentheses (§6.3)";
  print_string (Eval.render_table2 outcomes);
  let infidels = List.filter (fun o -> not (Eval.fidelity o)) outcomes in
  Printf.printf
    "\nGround-truth fidelity: %d/%d sites match planted races exactly%s\n"
    (List.length outcomes - List.length infidels)
    (List.length outcomes)
    (if infidels = [] then "" else " (! marks mismatches)")

(* ------------------------------------------------------------------ *)
(* Figures 1-5: the motivating examples as detector runs               *)
(* ------------------------------------------------------------------ *)

let figures () =
  section "Figures 1-5 — the paper's motivating races, re-detected";
  let run name page resources expect =
    let r = Webracer.analyze (Webracer.config ~page ~resources ~seed:1 ~explore:true ()) in
    let h, f, v, d = Webracer.count_by_type r.Webracer.races in
    [ name; expect; Printf.sprintf "html %d, function %d, variable %d, dispatch %d" h f v d ]
  in
  let rows =
    [
      run "Fig 1 (iframe variable race)"
        {|<script>x = 1;</script><iframe src="a.html"></iframe><iframe src="b.html"></iframe>|}
        [ ("a.html", "<script>x = 2;</script>"); ("b.html", "<script>alert(x);</script>") ]
        "1 variable";
      run "Fig 2 (Southwest form race)"
        {|<input type="text" id="depart" /><script>document.getElementById("depart").value = "City of Departure";</script>|}
        [] "1 variable (form)";
      run "Fig 3 (Valero HTML race)"
        {|<script>function show() { var v = document.getElementById("dw"); v.style.display = "block"; }</script><a href="javascript:show()">Send Email</a><div id="dw" style="display:none">form</div>|}
        [] "1 html";
      run "Fig 4 (Mozilla function race)"
        {|<iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe><script>function doNextStep() { return 1; }</script>|}
        [ ("sub.html", "<p>sub</p>") ]
        "1 function";
      run "Fig 5 (event dispatch race)"
        {|<iframe id="i" src="a.html"></iframe><script>document.getElementById("i").onload = function() { return 1; };</script>|}
        [ ("a.html", "<p>nested</p>") ]
        "1 dispatch";
    ]
  in
  Table.print ~header:[ "figure"; "expected"; "detected" ] rows

(* ------------------------------------------------------------------ *)
(* Perf-1: page analysis throughput (§6.3 "tens of thousands of        *)
(* operations in less than a minute")                                  *)
(* ------------------------------------------------------------------ *)

let stress_page n =
  (* n div elements, each parsed as its own operation, plus nav handlers
     and a polling script: a page whose op count is dominated by n. *)
  let buf = Buffer.create (n * 32) in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "<div id=\"el%d\" class=\"c\">item</div>" i)
  done;
  Buffer.add_string buf
    "<script>var count = 0; var t = setInterval(function () { count++; if (count > 20) { \
     clearInterval(t); } }, 5);</script>";
  Buffer.contents buf

let perf_pages () =
  section "Perf-1 — per-page analysis throughput (paper: 10k+ ops < 1 min)";
  let rows =
    List.map
      (fun n ->
        let page = stress_page n in
        let started = Wr_support.Clock.now () in
        let r = Webracer.analyze (Webracer.config ~page ~seed:1 ~explore:true ()) in
        let dt = Wr_support.Clock.now () -. started in
        record_float "perf1" (Printf.sprintf "%d-elements_s" n) dt;
        [
          Printf.sprintf "%d elements" n;
          string_of_int r.Webracer.ops;
          string_of_int r.Webracer.accesses;
          Printf.sprintf "%.3f s" dt;
          Printf.sprintf "%.0f ops/s" (float_of_int r.Webracer.ops /. dt);
        ])
      [ 1_000; 5_000; 20_000 ]
  in
  Table.print ~header:[ "page"; "operations"; "accesses"; "wall clock"; "throughput" ] rows;
  print_newline ();
  let biggest =
    List.filter
      (fun (p : Profile.t) -> Profile.total (Profile.expected_raw p) > 100)
      (Profile.corpus ())
  in
  let rows =
    List.map
      (fun p ->
        let o = Eval.run_site ~seed:7 p in
        [
          p.Profile.name;
          string_of_int o.Eval.ops;
          string_of_int o.Eval.accesses;
          Printf.sprintf "%.3f s" o.Eval.wall_clock_s;
        ])
      biggest
  in
  Table.print ~header:[ "largest corpus sites"; "operations"; "accesses"; "wall clock" ] rows

(* ------------------------------------------------------------------ *)
(* Perf-2: instrumentation overhead on compute kernels (§6.3: ~500x    *)
(* vs JIT; here: detector on vs off in the same interpreter)           *)
(* ------------------------------------------------------------------ *)

let kernels =
  [
    ( "fib",
      "function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
       var r = fib(16);" );
    ( "string-ops",
      "var s = \"\"; var i = 0;\n\
       for (i = 0; i < 300; i++) { s = s + \"x\"; }\n\
       var n = 0;\n\
       for (i = 0; i < 100; i++) { n = n + s.indexOf(\"xx\", i) + s.length; }" );
    ( "array-sum",
      "var a = []; var i = 0;\n\
       for (i = 0; i < 500; i++) { a.push(i * 3 % 17); }\n\
       var sum = 0;\n\
       for (i = 0; i < a.length; i++) { sum = sum + a[i]; }" );
    ( "object-churn",
      "var o = {}; var i = 0;\n\
       for (i = 0; i < 400; i++) { o[\"k\" + (i % 40)] = i; }\n\
       var total = 0;\n\
       var k;\n\
       for (k in o) { total = total + o[k]; }" );
  ]

let run_kernel ~detector source =
  let graph = Graph.create () in
  let det : Wr_detect.Detector.t =
    match detector with
    | `Uninstrumented | `Null_sink -> Wr_detect.Detector.null
    | `Last_access -> Wr_detect.Last_access.create graph
    | `Full_track -> Wr_detect.Full_track.create graph
  in
  let vm = Wr_js.Interp.create ~sink:det.Wr_detect.Detector.record () in
  if detector = `Uninstrumented then vm.Wr_js.Value.instrument <- false;
  vm.Wr_js.Value.current_op <- Graph.fresh graph Op.Script ~label:"kernel";
  Wr_js.Interp.run_in_global vm (Wr_js.Parser.parse source)

let perf_overhead () =
  section "Perf-2 — detector overhead on compute kernels (paper: ~500x vs JIT)";
  let tests =
    List.concat_map
      (fun (name, src) ->
        [
          Test.make ~name:(name ^ "/uninstrumented")
            (Staged.stage (fun () -> run_kernel ~detector:`Uninstrumented src));
          Test.make ~name:(name ^ "/null-sink")
            (Staged.stage (fun () -> run_kernel ~detector:`Null_sink src));
          Test.make ~name:(name ^ "/last-access")
            (Staged.stage (fun () -> run_kernel ~detector:`Last_access src));
          Test.make ~name:(name ^ "/full-track")
            (Staged.stage (fun () -> run_kernel ~detector:`Full_track src));
        ])
      kernels
  in
  let results = run_bench_group ~name:"perf2" tests in
  print_bench_results results;
  print_newline ();
  (* Slowdown ratios per kernel. *)
  let find name = List.assoc_opt ("perf2/" ^ name) results in
  let rows =
    List.filter_map
      (fun (name, _) ->
        match
          ( find (name ^ "/uninstrumented"),
            find (name ^ "/null-sink"),
            find (name ^ "/last-access"),
            find (name ^ "/full-track") )
        with
        | Some base, Some sink, Some la, Some ft ->
            Some
              [
                name;
                Printf.sprintf "%.2fx" (sink /. base);
                Printf.sprintf "%.2fx" (la /. base);
                Printf.sprintf "%.2fx" (ft /. base);
              ]
        | _ -> None)
      kernels
  in
  Table.print
    ~header:
      [ "kernel (vs uninstrumented)"; "emission only"; "last-access"; "full-track" ]
    rows;
  print_endline
    "\n(The paper's 500x compares an instrumented interpreter against an\n\
     uninstrumented JIT engine; our baseline is the same interpreter with\n\
     emission disabled, isolating instrumentation and detection costs.)"

(* ------------------------------------------------------------------ *)
(* Perf-3: telemetry overhead — the disabled recorder must be a        *)
(* near-no-op, and the enabled one cheap enough to leave on            *)
(* ------------------------------------------------------------------ *)

let perf_telemetry () =
  section "Perf-3 — telemetry overhead (disabled must be a near-no-op)";
  let ford =
    List.find (fun (p : Profile.t) -> p.Profile.name = "Ford") (Profile.corpus ())
  in
  let site = Gen.generate ford in
  let analyze ~telemetry () =
    ignore
      (Webracer.analyze
         (Webracer.config ~page:site.Gen.page ~resources:site.Gen.resources ~seed:3
            ?telemetry ()))
  in
  let tests =
    [
      Test.make ~name:"analyze-ford/telemetry-off"
        (Staged.stage (analyze ~telemetry:None));
      Test.make ~name:"analyze-ford/telemetry-on"
        (Staged.stage (fun () ->
             analyze ~telemetry:(Some (Wr_telemetry.Telemetry.create ())) ()));
    ]
  in
  let results = run_bench_group ~name:"perf3" tests in
  print_bench_results results;
  (match
     ( List.assoc_opt "perf3/analyze-ford/telemetry-off" results,
       List.assoc_opt "perf3/analyze-ford/telemetry-on" results )
   with
  | Some off, Some on_ ->
      Printf.printf "\ntelemetry-on / telemetry-off: %.3fx\n" (on_ /. off)
  | _ -> ());
  (* One instrumented run's headline numbers go into BENCH_results.json
     (which superseded the old free-standing bench_metrics.json dump). *)
  let tm = Wr_telemetry.Telemetry.create () in
  ignore
    (Webracer.analyze
       (Webracer.config ~page:site.Gen.page ~resources:site.Gen.resources ~seed:3
          ~telemetry:tm ()));
  record_result "perf3" "instrumented_ford_spans"
    (Wr_support.Json.Int (Wr_telemetry.Telemetry.n_spans tm));
  record_float "perf3" "instrumented_ford_wall_s" (Wr_telemetry.Telemetry.total_wall tm)

(* ------------------------------------------------------------------ *)
(* Perf-4: access dedup ratio + domain-parallel corpus analysis        *)
(* ------------------------------------------------------------------ *)

(* The §6.3 motivating pattern for dedup: loops that re-touch the *same*
   cells every iteration (polling a flag, re-reading a[0]/a.length, an
   accumulator read-modify-write). Perf-2's kernels mostly touch fresh
   cells; these are the op-granular worst case the front-end targets. *)
let loop_kernels =
  [
    ( "poll-flag",
      "var ready = 0; var ticks = 0; var i = 0;\n\
       for (i = 0; i < 500; i++) { if (ready === 0) { ticks = ticks + 1; } }" );
    ( "hot-read",
      "var a = []; var i = 0;\n\
       for (i = 0; i < 8; i++) { a.push(i); }\n\
       var first = 0; var j = 0;\n\
       for (j = 0; j < 500; j++) { first = first + a[0] + a.length; }" );
  ]

(* Feed a kernel's access stream through last-access twice — raw, and
   behind the dedup front-end — and compare how many records the detector
   processed and what it found. *)
let kernel_dedup (_, source) =
  let run ~dedup =
    let graph = Graph.create () in
    let inner = Wr_detect.Last_access.create graph in
    let det, stats =
      if dedup then Wr_detect.Dedup.wrap inner
      else (inner, fun () -> { Wr_detect.Dedup.seen = 0; forwarded = 0 })
    in
    let vm = Wr_js.Interp.create ~sink:det.Wr_detect.Detector.record () in
    vm.Wr_js.Value.current_op <- Graph.fresh graph Op.Script ~label:"kernel";
    Wr_js.Interp.run_in_global vm (Wr_js.Parser.parse source);
    (inner.Wr_detect.Detector.accesses_seen (), List.length (inner.Wr_detect.Detector.races ()),
     stats ())
  in
  let raw_records, raw_races, _ = run ~dedup:false in
  let fwd_records, dedup_races, stats = run ~dedup:true in
  (raw_records, fwd_records, raw_races, dedup_races, stats)

let perf_dedup () =
  section "Perf-4a — per-operation access dedup on the detector hot path";
  let rows =
    List.map
      (fun (name, src) ->
        let raw, fwd, raw_races, dedup_races, stats = kernel_dedup (name, src) in
        record_float "perf4" (name ^ "_dedup_ratio") (Wr_detect.Dedup.ratio stats);
        [
          name;
          string_of_int raw;
          string_of_int fwd;
          Printf.sprintf "%.1fx" (Wr_detect.Dedup.ratio stats);
          (if raw_races = dedup_races then "identical" else "DIFFERS");
        ])
      (kernels @ loop_kernels)
  in
  Table.print
    ~header:[ "kernel"; "record calls (raw)"; "record calls (dedup)"; "ratio"; "races" ]
    rows;
  print_newline ();
  (* Wall-clock effect on the loop-heavy kernels. *)
  let tests =
    List.concat_map
      (fun (name, src) ->
        let run ~dedup () =
          let graph = Graph.create () in
          let inner = Wr_detect.Last_access.create graph in
          let det = if dedup then fst (Wr_detect.Dedup.wrap inner) else inner in
          let vm = Wr_js.Interp.create ~sink:det.Wr_detect.Detector.record () in
          vm.Wr_js.Value.current_op <- Graph.fresh graph Op.Script ~label:"kernel";
          Wr_js.Interp.run_in_global vm (Wr_js.Parser.parse src)
        in
        [
          Test.make ~name:(name ^ "/raw") (Staged.stage (run ~dedup:false));
          Test.make ~name:(name ^ "/dedup") (Staged.stage (run ~dedup:true));
        ])
      loop_kernels
  in
  print_bench_results (run_bench_group ~name:"perf4-kernels" tests)

(* Outcomes projected onto their deterministic components: everything but
   the wall clock must be invariant under both [jobs] and [dedup]. *)
let outcome_signature (o : Eval.outcome) =
  (o.Eval.profile.Profile.name, o.Eval.raw, o.Eval.filtered, o.Eval.ops, o.Eval.accesses,
   o.Eval.crashes)

let perf_parallel () =
  section "Perf-4b — domain-parallel corpus analysis (work-stealing fleet)";
  let hw = Wr_support.Pool.hardware_domains () in
  Printf.printf "hardware parallelism (Domain.recommended_domain_count): %d\n\n" hw;
  (* The speedup gate in scripts/bench_trend.ml reads this to know
     whether the runner can physically show parallel speedup (the pool
     caps its fleet at the hardware, so jobs:4 on one core is just the
     sequential baseline). *)
  record_result "perf4" "hardware_domains" (Wr_support.Json.Int hw);
  (* Corpus-wide dedup effect and race-count identity, dedup on vs off. *)
  let on = Eval.run_corpus ~seed:42 ?limit:corpus_limit ~dedup:true () in
  let off = Eval.run_corpus ~seed:42 ?limit:corpus_limit ~dedup:false () in
  let sum f xs = List.fold_left (fun acc o -> acc + f o) 0 xs in
  let records xs = sum (fun o -> o.Eval.detector_records) xs in
  let identical =
    List.for_all2 (fun a b -> outcome_signature a = outcome_signature b) on off
  in
  let corpus_ratio = float_of_int (records off) /. float_of_int (max 1 (records on)) in
  Printf.printf
    "corpus detector records: %d raw -> %d after dedup (%.2fx); race counts %s\n\n"
    (records off) (records on) corpus_ratio
    (if identical then "identical across all sites" else "DIFFER (fidelity regression!)");
  record_float "perf4" "corpus_dedup_ratio" corpus_ratio;
  record_result "perf4" "corpus_races_identical" (Wr_support.Json.Bool identical);
  (* Speedup curve: same corpus, growing worker fleets. *)
  let reference = List.map outcome_signature on in
  let timings =
    List.map
      (fun jobs ->
        let started = Wr_support.Clock.now () in
        let outcomes, fleet =
          Eval.run_corpus_stats ~seed:42 ?limit:corpus_limit ~jobs ()
        in
        let dt = Wr_support.Clock.now () -. started in
        let same = List.map outcome_signature outcomes = reference in
        record_float "perf4" (Printf.sprintf "corpus_jobs%d_s" jobs) dt;
        (* Fleet health behind the speedup number, so the trend gate
           sees queue contention or idle-domain regressions directly. *)
        let fsum f =
          List.fold_left (fun acc d -> acc +. f d) 0. fleet.Wr_support.Pool.per_domain
        in
        record_float "perf4"
          (Printf.sprintf "corpus_jobs%d_queue_wait_s" jobs)
          (fsum (fun d -> d.Wr_support.Pool.queue_wait_s));
        record_float "perf4"
          (Printf.sprintf "corpus_jobs%d_idle_s" jobs)
          (fsum (fun d -> d.Wr_support.Pool.idle_s));
        record_float "perf4"
          (Printf.sprintf "corpus_jobs%d_gc_minor" jobs)
          (fsum (fun d -> float_of_int d.Wr_support.Pool.gc_minor));
        record_result "perf4"
          (Printf.sprintf "corpus_jobs%d_steals" jobs)
          (Wr_support.Json.Int fleet.Wr_support.Pool.stolen);
        (jobs, dt, same))
      [ 1; 2; 4; 8 ]
  in
  let base = match timings with (_, dt, _) :: _ -> dt | [] -> 1. in
  Table.print
    ~header:[ "jobs"; "wall clock"; "speedup"; "outcomes vs sequential" ]
    (List.map
       (fun (jobs, dt, same) ->
         record_float "perf4" (Printf.sprintf "corpus_jobs%d_speedup" jobs) (base /. dt);
         [
           string_of_int jobs;
           Printf.sprintf "%.3f s" dt;
           Printf.sprintf "%.2fx" (base /. dt);
           (if same then "identical" else "DIFFER (determinism regression!)");
         ])
       timings);
  print_endline
    "\n(Per-worker graphs, detectors and VMs are domain-local; the fleet\n\
     shares only per-lane deques, so outcomes are input-ordered and\n\
     identical whatever the job count or steal pattern. Speedup tracks\n\
     the hardware's core count — the pool spawns no more domains than\n\
     cores, so oversubscribed job counts degrade to the hardware's best.)"

(* ------------------------------------------------------------------ *)
(* Perf-5: the serve API hot path — wire decode, dispatch, cache hit    *)
(* ------------------------------------------------------------------ *)

(* The daemon's per-request cost splits into (a) decoding the wire line
   into a Request.t, (b) hashing the params into a cache key, and (c) on
   a hit, replaying the stored document. All three must stay far below a
   page analysis for the service to amortize; this group pins them. *)
let perf_serve () =
  section "Perf-5 — serve API: request decode / cache key / cache-hit service";
  let module Request = Wr_serve.Request in
  let module Api = Wr_serve.Api in
  let module Cache = Wr_serve.Cache in
  let site = Gen.generate (List.nth (Profile.corpus ()) 20) in
  let params =
    Request.analyze_params ~page:site.Gen.page ~resources:site.Gen.resources ()
  in
  let line =
    Request.to_line
      (Request.make ~id:(Wr_support.Json.Int 1) (Request.analyze params))
  in
  Printf.printf "wire request: %d bytes (page %d bytes, %d resources)\n\n"
    (String.length line) (String.length site.Gen.page)
    (List.length site.Gen.resources);
  let report = Wr_support.Json.Obj [ ("races", Wr_support.Json.Int 3) ] in
  let warm = Cache.create ~cap:8 () in
  Cache.store warm (Cache.key params) report;
  let tests =
    [
      Test.make ~name:"decode-analyze-line"
        (Staged.stage (fun () ->
             match Request.of_line line with Ok r -> r | Error _ -> assert false));
      Test.make ~name:"cache-key"
        (Staged.stage (fun () -> Cache.key params));
      Test.make ~name:"cache-hit-service"
        (Staged.stage (fun () ->
             (* what the daemon does per hit: key, find, wrap in an envelope *)
             match Cache.find warm (Cache.key params) with
             | Some doc ->
                 Wr_serve.Response.to_line
                   (Wr_serve.Response.ok ~id:(Wr_support.Json.Int 1) doc)
             | None -> assert false));
      Test.make ~name:"dispatch-ping"
        (Staged.stage (fun () ->
             Api.dispatch (Request.make ~id:(Wr_support.Json.Int 1) Request.Ping)));
    ]
  in
  let results = run_bench_group ~name:"perf5" tests in
  print_bench_results results;
  (match
     ( List.assoc_opt "perf5/cache-hit-service" results,
       List.assoc_opt "perf5/decode-analyze-line" results )
   with
  | Some hit, Some decode ->
      Printf.printf
        "\n(A cache hit costs decode + %s of service — vs a full re-analysis; the\n\
         daemon answers it on the accept loop without waking a worker.)\n"
        (pp_ns hit);
      record_float "perf5" "hit_over_decode_ratio" (hit /. decode)
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* Perf-6: static predictor throughput (DESIGN.md §8)                  *)
(* ------------------------------------------------------------------ *)

(* The ahead-of-time predictor must be cheap enough to run on every
   page save: this group pins effect extraction + MHP construction
   (Model.build) and the full predict pipeline, and reports how many
   dynamic analyses one static pass costs. *)
let perf_static () =
  section "Perf-6 — static predictor: effect extraction + MHP construction";
  let module SModel = Wr_static.Model in
  let module SPredict = Wr_static.Predict in
  let site = Gen.generate (List.nth (Profile.corpus ()) 20) in
  let page = site.Gen.page and resources = site.Gen.resources in
  let m = SModel.build ~page ~resources () in
  Printf.printf "page: %d bytes, %d units, %d docs, %d MHP pairs\n\n"
    (String.length page) (Array.length m.SModel.units) m.SModel.docs
    (SModel.mhp_pairs m);
  let tests =
    [
      Test.make ~name:"model-build"
        (Staged.stage (fun () -> SModel.build ~page ~resources ()));
      Test.make ~name:"predict"
        (Staged.stage (fun () -> SPredict.predict ~page ~resources ()));
    ]
  in
  let results = run_bench_group ~name:"perf6" tests in
  print_bench_results results;
  let t0 = Wr_support.Clock.now () in
  let r =
    Webracer.analyze (Webracer.config ~page ~resources ~seed:42 ~explore:true ())
  in
  let dyn_s = Wr_support.Clock.now () -. t0 in
  record_float "perf6" "dynamic_analyze_s" dyn_s;
  (match List.assoc_opt "perf6/predict" results with
  | Some predict_ns ->
      let ratio = dyn_s *. 1e9 /. predict_ns in
      record_float "perf6" "dynamic_over_predict_ratio" ratio;
      Printf.printf
        "\n(One dynamic analysis (%d ops, %.1f ms) buys ~%.0f static predictions.)\n"
        r.Webracer.ops (dyn_s *. 1e3) ratio
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Perf-7: sharded serve loops under concurrent load                   *)
(* ------------------------------------------------------------------ *)

(* Boot an in-process daemon (TCP, kernel-chosen port), blast it with
   the barrier-synchronized load generator, and compare 1 event-loop
   shard against N. With one shard every response serializes through a
   single domain; per-shard accept paths and connection tables let
   cache hits scale until the hardware runs out. Absolute numbers are
   machine-bound: the trend gate reads the recorded shard4_speedup and
   p999 tails, and hardware_domains to know whether this runner can
   physically show a speedup at all (below 4 hardware threads the
   shard loops just time-slice one core). *)
let perf_shards () =
  section "Perf-7 — sharded serve: cache-hit throughput and overload tails";
  let module Daemon = Wr_serve.Daemon in
  let module Request = Wr_serve.Request in
  let module L = Wr_serve.Loadgen in
  let module H = Wr_support.Stats.Histo in
  let hw = Wr_support.Pool.hardware_domains () in
  record_result "perf7" "hardware_domains" (Wr_support.Json.Int hw);
  let tiny_page =
    "<html><body><script>var x = 1; x = x + 1;</script></body></html>"
  in
  let analyze_verb = Request.analyze (Request.analyze_params ~page:tiny_page ()) in
  let with_daemon ~shards ~queue_cap ~cache_cap f =
    let stop = Atomic.make false in
    let addr = Atomic.make None in
    let cfg =
      {
        (Daemon.default_config (Daemon.Tcp 0)) with
        Daemon.jobs = 2;
        shards;
        queue_cap;
        cache_cap;
        wall_limit = 30.;
      }
    in
    let d =
      Domain.spawn (fun () ->
          Daemon.run
            ~stop:(fun () -> Atomic.get stop)
            ~on_ready:(fun a -> Atomic.set addr (Some a))
            cfg)
    in
    let rec wait n =
      match Atomic.get addr with
      | Some a -> a
      | None ->
          if n > 2_000 then failwith "perf7: daemon never came up"
          else begin
            Unix.sleepf 0.005;
            wait (n + 1)
          end
    in
    let bound = wait 0 in
    let r = f bound in
    Atomic.set stop true;
    ignore (Domain.join d);
    r
  in
  let blast addr ~pipeline ~duration =
    L.run
      {
        L.address = addr;
        conns = 4;
        pipeline;
        duration;
        verb = analyze_verb;
        surface = L.Raw;
        schema = 1;
      }
  in
  let p999_ms r = 1000. *. H.percentile r.L.latency 99.9 in
  let rows =
    List.map
      (fun shards ->
        (* Cache-hit phase: warm once, then every request replays the
           cached document — pure event-loop work, the thing sharding
           is supposed to scale. *)
        let hit =
          with_daemon ~shards ~queue_cap:64 ~cache_cap:8 (fun addr ->
              let c = Wr_serve.Client.connect ~retry_for:5. addr in
              (match
                 Wr_serve.Client.request c
                   (Request.make ~id:(Wr_support.Json.Int 0) analyze_verb)
               with
              | Ok _ -> ()
              | Error msg -> failwith ("perf7 warmup: " ^ msg));
              Wr_serve.Client.close c;
              blast addr ~pipeline:8 ~duration:1.0)
        in
        record_float "perf7"
          (Printf.sprintf "cachehit_shards%d_rps" shards)
          hit.L.throughput_rps;
        record_float "perf7"
          (Printf.sprintf "cachehit_shards%d_p999" shards)
          (p999_ms hit);
        (* Overload phase: no cache, a tiny queue — most requests shed
           with an inline overload error. The tail measures how
           responsive the loops stay while deliberately saturated. *)
        let ovl =
          with_daemon ~shards ~queue_cap:2 ~cache_cap:0 (fun addr ->
              blast addr ~pipeline:16 ~duration:1.0)
        in
        let shed =
          Option.value ~default:0 (List.assoc_opt "overload" ovl.L.classes)
        in
        record_float "perf7"
          (Printf.sprintf "overload_shards%d_p999" shards)
          (p999_ms ovl);
        record_result "perf7"
          (Printf.sprintf "overload_shards%d_shed" shards)
          (Wr_support.Json.Int shed);
        (shards, hit, ovl, shed))
      [ 1; 4 ]
  in
  (match rows with
  | [ (_, hit1, _, _); (_, hit4, _, _) ] when hit1.L.throughput_rps > 0. ->
      record_float "perf7" "shard4_speedup"
        (hit4.L.throughput_rps /. hit1.L.throughput_rps)
  | _ -> ());
  Table.print
    ~header:
      [ "shards"; "cache-hit rps"; "hit p999"; "overload p999"; "shed" ]
    (List.map
       (fun (shards, hit, ovl, shed) ->
         [
           string_of_int shards;
           Printf.sprintf "%.0f" hit.L.throughput_rps;
           Printf.sprintf "%.2f ms" (p999_ms hit);
           Printf.sprintf "%.2f ms" (p999_ms ovl);
           string_of_int shed;
         ])
       rows);
  print_endline
    "\n(Cache hits never touch a worker: with one shard they serialize\n\
     through a single event loop, with N shards the kernel spreads\n\
     connections over N loops (SO_REUSEPORT). The overload phase sheds\n\
     most requests inline; its p999 is the responsiveness of a\n\
     saturated daemon, which sharding must not regress.)"

(* ------------------------------------------------------------------ *)
(* Perf-8: prediction-guided triage vs blind schedule enumeration      *)
(* ------------------------------------------------------------------ *)

(* The tentpole claim of the triage pipeline: confirming every
   dynamically-realizable prediction with directed schedules must cost
   strictly fewer schedules than blind seed enumeration at the same
   coverage. The metric is schedules-to-confirmation (the index of the
   schedule that produced the last new confirmation); the schedules a
   guided run spends *refuting* false positives buy certificates blind
   enumeration cannot produce at any cost, so they are reported
   alongside but not gated. The trend gate reads
   blind_over_guided_confirmation_ratio (higher is better) and the two
   raw schedule counts (lower is better); config_budget / config_sites
   are experiment configuration, excluded from trend comparison. *)
let perf_triage () =
  section "Perf-8 — guided triage vs blind schedule enumeration";
  let module T = Wr_static.Triage in
  let module Adv = Wr_sitegen.Adversarial in
  (* A few standard sites (these confirm at baseline — guidance must not
     cost anything there) plus the adversarial pack (predictions the
     baseline schedule cannot see — where guidance pays). *)
  let sites =
    List.mapi
      (fun i (p : Profile.t) ->
        let site = Gen.generate p in
        (p.Profile.name, 42 + i, site.Gen.page, site.Gen.resources))
      (List.filteri (fun i _ -> i < 3) (Profile.corpus ()))
    @ List.mapi
        (fun i (s : Adv.scenario) ->
          (s.Adv.name, 142 + i, s.Adv.page, s.Adv.resources))
        (Adv.pack ())
  in
  let rows =
    List.map
      (fun (name, seed, page, resources) ->
        let t = T.run ~seed ~page ~resources () in
        let b = T.blind_equivalent ~seed ~page ~resources t in
        (name, t, b))
      sites
  in
  Table.print
    ~header:
      [ "site"; "pred"; "conf"; "ref"; "guided-to-confirm"; "blind"; "matched" ]
    (List.map
       (fun (name, t, b) ->
         [
           name;
           string_of_int (List.length t.T.items);
           string_of_int (T.count `Confirmed t);
           string_of_int (T.count `Refuted t);
           string_of_int t.T.schedules_to_confirm;
           string_of_int b.T.blind_schedules;
           (if b.T.blind_matched then "yes" else "CAP");
         ])
       rows);
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let guided = sum (fun (_, t, _) -> t.T.schedules_to_confirm) in
  let blind = sum (fun (_, _, b) -> b.T.blind_schedules) in
  let all_matched = List.for_all (fun (_, _, b) -> b.T.blind_matched) rows in
  record_float "perf8" "guided_confirm_schedules" (float_of_int guided);
  record_float "perf8" "blind_schedules" (float_of_int blind);
  record_float "perf8" "blind_over_guided_confirmation_ratio"
    (float_of_int blind /. float_of_int (max 1 guided));
  record_result "perf8" "blind_matched_all" (Wr_support.Json.Bool all_matched);
  record_result "perf8" "triage_refuted"
    (Wr_support.Json.Int (sum (fun (_, t, _) -> T.count `Refuted t)));
  record_result "perf8" "triage_unconfirmed"
    (Wr_support.Json.Int (sum (fun (_, t, _) -> T.count `Unconfirmed t)));
  record_result "perf8" "config_budget" (Wr_support.Json.Int T.default_budget);
  record_result "perf8" "config_sites"
    (Wr_support.Json.Int (List.length sites));
  Printf.printf
    "\n(guided confirmation: %d schedules; blind equivalent: %d%s — \
     %.1fx.\n\
     The guided runs also refuted %d false predictions with certificates,\n\
     which blind enumeration cannot do at any schedule count.)\n"
    guided blind
    (if all_matched then "" else " (cap hit)")
    (float_of_int blind /. float_of_int (max 1 guided))
    (sum (fun (_, t, _) -> T.count `Refuted t))

(* ------------------------------------------------------------------ *)
(* Abl-1: happens-before query strategy (§5.2.1)                       *)
(* ------------------------------------------------------------------ *)

let build_layered_graph ~strategy ~n =
  (* A layered DAG approximating a page's op structure: each op has edges
     from up to two earlier ops. *)
  let g = Graph.create ~strategy () in
  let rng = Wr_support.Rng.of_int 99 in
  for i = 0 to n - 1 do
    let id = Graph.fresh g Op.Script ~label:(string_of_int i) in
    if i > 0 then begin
      Graph.add_edge g (Wr_support.Rng.int rng i) id;
      if i > 4 && Wr_support.Rng.bool rng then Graph.add_edge g (Wr_support.Rng.int rng i) id
    end
  done;
  g

let ablation_hb () =
  section "Abl-1 — CHC query cost: DFS graph traversal vs transitive closure";
  let sizes = [ 500; 2_000; 8_000 ] in
  let tests =
    List.concat_map
      (fun n ->
        let dfs = build_layered_graph ~strategy:Graph.Dfs ~n in
        let closure = build_layered_graph ~strategy:Graph.Closure ~n in
        let chain_vc = build_layered_graph ~strategy:Graph.Chain_vc ~n in
        let rng = Wr_support.Rng.of_int 5 in
        let queries =
          Array.init 64 (fun _ -> (Wr_support.Rng.int rng n, Wr_support.Rng.int rng n))
        in
        let query g () = Array.iter (fun (a, b) -> ignore (Graph.chc g a b)) queries in
        [
          Test.make ~name:(Printf.sprintf "chc/dfs/%d-ops" n) (Staged.stage (query dfs));
          Test.make
            ~name:(Printf.sprintf "chc/closure/%d-ops" n)
            (Staged.stage (query closure));
          Test.make
            ~name:(Printf.sprintf "chc/chain-vc/%d-ops" n)
            (Staged.stage (query chain_vc));
        ])
      sizes
  in
  print_bench_results (run_bench_group ~name:"abl1" tests);
  print_newline ();
  (* End-to-end: analyzing a heavyweight corpus site under both. *)
  let ford =
    List.find (fun (p : Profile.t) -> p.Profile.name = "Ford") (Profile.corpus ())
  in
  let site = Gen.generate ford in
  let run strategy () =
    ignore
      (Webracer.analyze
         (Webracer.config ~page:site.Gen.page ~resources:site.Gen.resources ~seed:3
            ~hb_strategy:strategy ()))
  in
  let tests =
    [
      Test.make ~name:"analyze-ford/dfs" (Staged.stage (run Graph.Dfs));
      Test.make ~name:"analyze-ford/closure" (Staged.stage (run Graph.Closure));
      Test.make ~name:"analyze-ford/chain-vc" (Staged.stage (run Graph.Chain_vc));
    ]
  in
  print_bench_results (run_bench_group ~name:"abl1-e2e" tests);
  (* How compact are the chain-VC clocks on a real page? *)
  let b = Wr_browser.Browser.create { (Webracer.config ~page:site.Gen.page ~resources:site.Gen.resources ~seed:3 ~hb_strategy:Graph.Chain_vc ()) with Wr_browser.Config.explore = false } in
  Wr_browser.Browser.start b;
  ignore (Wr_browser.Browser.run b);
  let g = Wr_browser.Browser.graph b in
  Printf.printf "\n(chain-vc decomposes the Ford page's %d operations into %d chains;\n\
                \ each clock is at most %d entries vs %d bits per closure bitset)\n"
    (Graph.n_ops g) (Graph.n_chains g) (Graph.n_chains g) (Graph.n_ops g)

(* ------------------------------------------------------------------ *)
(* Abl-2: single-slot vs full-history detector (§5.1 limitation)       *)
(* ------------------------------------------------------------------ *)

let ablation_detector () =
  section "Abl-2 — single-slot (paper) vs full-history detector";
  (* Recall on the paper's own miss example (schedule 3·1·2 with 1 -> 2). *)
  let recall create =
    let g = Graph.create () in
    let o1 = Graph.fresh g Op.Script ~label:"1" in
    let o2 = Graph.fresh g Op.Script ~label:"2" in
    let o3 = Graph.fresh g Op.Script ~label:"3" in
    Graph.add_edge g o1 o2;
    let d : Wr_detect.Detector.t = create g in
    let loc = Wr_mem.Location.Js_var { cell = 1; name = "e" } in
    d.Wr_detect.Detector.record (Wr_mem.Access.make loc `Read o3);
    d.Wr_detect.Detector.record (Wr_mem.Access.make loc `Read o1);
    d.Wr_detect.Detector.record (Wr_mem.Access.make loc `Write o2);
    List.length (d.Wr_detect.Detector.races ())
  in
  Table.print ~header:[ "detector"; "races found on the 3.1.2 schedule" ]
    [
      [ "last-access (paper §5.1)"; string_of_int (recall Wr_detect.Last_access.create) ];
      [ "full-track (extension)"; string_of_int (recall Wr_detect.Full_track.create) ];
    ];
  print_newline ();
  (* Throughput: N accesses over K locations, all concurrent ops. *)
  let mk_access_storm create () =
    let g = Graph.create () in
    let ops = Array.init 64 (fun _ -> Graph.fresh g Op.Script ~label:"op") in
    let d : Wr_detect.Detector.t = create g in
    for i = 0 to 4_999 do
      let loc = Wr_mem.Location.Js_var { cell = i mod 97; name = "v" } in
      let kind = if i mod 3 = 0 then `Write else `Read in
      d.Wr_detect.Detector.record (Wr_mem.Access.make loc kind ops.(i mod 64))
    done
  in
  let tests =
    [
      Test.make ~name:"5k-accesses/last-access"
        (Staged.stage (mk_access_storm Wr_detect.Last_access.create));
      Test.make ~name:"5k-accesses/full-track"
        (Staged.stage (mk_access_storm Wr_detect.Full_track.create));
    ]
  in
  print_bench_results (run_bench_group ~name:"abl2" tests)

(* ------------------------------------------------------------------ *)
(* Stability across runs (paper footnote 14)                           *)
(* ------------------------------------------------------------------ *)

let stability () =
  section "Stability — race counts across 5 schedules (paper footnote 14)";
  let sites = [ "Allstate"; "Ford"; "MetLife"; "ValeroEnergy"; "Company01" ] in
  let rows =
    List.filter_map
      (fun name ->
        match List.find_opt (fun (p : Profile.t) -> p.Profile.name = name) (Profile.corpus ()) with
        | None -> None
        | Some p ->
            let site = Gen.generate p in
            let cfg =
              Webracer.config ~page:site.Gen.page ~resources:site.Gen.resources ~explore:true ()
            in
            let m = Webracer.analyze_many cfg ~seeds:[ 11; 22; 33; 44; 55 ] in
            Some
              [
                name;
                String.concat " " (List.map string_of_int m.Webracer.per_run_counts);
                (if m.Webracer.stable then "stable" else "VARIES");
              ])
      sites
  in
  Table.print ~header:[ "site"; "raw races per seed"; "verdict" ] rows;
  print_endline
    "\n(The paper: \"races reported across different runs for the same site\n\
     had little variance; our numbers are taken from a typical run.\")"

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  let t0 = Wr_support.Clock.now () in
  print_endline "WebRacer-OCaml benchmark harness (paper: PLDI 2012, WebRacer)";
  let corpus_t0 = Wr_support.Clock.now () in
  let outcomes = Eval.run_corpus ~seed:42 ?limit:corpus_limit () in
  record_float "corpus" "run_corpus_s" (Wr_support.Clock.now () -. corpus_t0);
  record_result "corpus" "fidelity_sites"
    (Wr_support.Json.Int (List.length (List.filter Eval.fidelity outcomes)));
  table1 outcomes;
  table2 outcomes;
  figures ();
  perf_pages ();
  perf_overhead ();
  perf_telemetry ();
  perf_dedup ();
  perf_parallel ();
  perf_serve ();
  perf_static ();
  perf_shards ();
  perf_triage ();
  ablation_hb ();
  ablation_detector ();
  stability ();
  Printf.printf "\nTotal bench time: %.1f s\n" (Wr_support.Clock.now () -. t0);
  record_float "total" "bench_s" (Wr_support.Clock.now () -. t0);
  write_bench_results "BENCH_results.json"
