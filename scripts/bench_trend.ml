(* Track the benchmark trajectory across runs.

   Reads a BENCH_results.json (written by `dune exec bench/main.exe`),
   appends it as one JSONL entry to a history file, and compares it
   against the most recent prior entry with the same tag, flagging
   regressions direction-aware:

   - names ending in [_speedup] or [_ratio], and [fidelity_sites], are
     higher-is-better;
   - everything else (bechamel ns/run estimates, [*_s] wall-clock
     seconds) is lower-is-better.

   Usage:
     bench_trend [--results FILE] [--history FILE] [--threshold PCT]
                 [--tag STR] [--check] [--speedup-gate [MIN]]

   [--check] exits 1 when any metric regressed past the threshold
   (default 20%). [--min-history N] softens that gate while the history
   is still thin: regressions only fail the run once the history holds
   at least N same-tag entries (counting the one this run appends), so
   a fresh cache or a wiped history re-seeds without breaking CI, and
   the gate hardens by itself from the second run on. Quick
   (`bench --quick`) and full runs use different tags so they are never
   compared against each other.

   [--speedup-gate [MIN]] is an *absolute* gate, independent of any
   history: it fails the run when [perf4/corpus_jobs4_speedup] in the
   current results is below MIN (default {!default_speedup_gate}). It is
   skipped — with a visible message — when [perf4/hardware_domains] is
   below 4, because the pool caps its fleet at the hardware and a small
   runner physically cannot show a 4-job speedup. This is the hard
   "the fleet must actually scale" contract: trend thresholds compare
   run-over-run, the gate pins the floor. *)

module Json = Wr_support.Json

let results_path = ref "BENCH_results.json"
let history_path = ref "BENCH_history.jsonl"
let threshold = ref 20.
let tag = ref "full"
let check = ref false
let min_history = ref 0

(* THE parallel-speedup floor: jobs:4 must beat sequential by at least
   this factor on hardware with >= 4 domains. Referenced by README.md
   and .github/workflows/ci.yml — change it here, nowhere else. *)
let default_speedup_gate = 1.5

(* [None] = gate off; [Some m] = fail when corpus_jobs4_speedup < m. *)
let speedup_gate : float option ref = ref None

let usage () =
  prerr_endline
    "usage: bench_trend [--results FILE] [--history FILE] [--threshold PCT] \
     [--tag STR] [--check] [--min-history N] [--speedup-gate [MIN]]";
  exit 2

let rec parse_args = function
  | [] -> ()
  | "--results" :: v :: rest ->
      results_path := v;
      parse_args rest
  | "--history" :: v :: rest ->
      history_path := v;
      parse_args rest
  | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t > 0. -> threshold := t
      | _ -> usage ());
      parse_args rest
  | "--tag" :: v :: rest ->
      tag := v;
      parse_args rest
  | "--check" :: rest ->
      check := true;
      parse_args rest
  | "--min-history" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 0 -> min_history := n
      | _ -> usage ());
      parse_args rest
  | "--speedup-gate" :: rest -> (
      (* MIN is optional: bare [--speedup-gate] takes the default floor. *)
      match rest with
      | v :: rest' when float_of_string_opt v <> None ->
          (match float_of_string_opt v with
          | Some m when m > 0. -> speedup_gate := Some m
          | _ -> usage ());
          parse_args rest'
      | _ ->
          speedup_gate := Some default_speedup_gate;
          parse_args rest)
  | _ -> usage ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* "section/name" -> numeric value, for every number in the document. *)
let flatten json =
  match json with
  | Json.Obj sections ->
      List.concat_map
        (fun (sec, v) ->
          match v with
          | Json.Obj entries ->
              List.filter_map
                (fun (name, v) ->
                  match v with
                  | Json.Float f -> Some (sec ^ "/" ^ name, f)
                  | Json.Int i -> Some (sec ^ "/" ^ name, float_of_int i)
                  | _ -> None)
                entries
          | _ -> [])
        sections
  | _ -> []

let ends_with ~suffix s =
  let sl = String.length suffix and l = String.length s in
  l >= sl && String.sub s (l - sl) sl = suffix

let contains ~sub s =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let higher_is_better name =
  ends_with ~suffix:"_speedup" name
  || ends_with ~suffix:"_ratio" name
  || ends_with ~suffix:"_rps" name
  || ends_with ~suffix:"fidelity_sites" name

(* Tail percentiles (perf7's p999 latencies) keep the default
   lower-is-better direction but are an order of magnitude noisier than
   means on a shared runner: compare them against a widened threshold so
   one p999 wobble never fails the gate by itself. *)
let tail_metric name = contains ~sub:"_p999" name

(* Recorded for context, never trend-compared: hardware_domains is
   environment metadata (a runner change is not a regression), steal
   counts are scheduling noise by nature — load balance varies run to
   run without the result or the wall clock moving — and perf7's shed
   counts scale with how many requests a runner managed to push in the
   measured window, not with how well the daemon behaved. [config_*]
   entries (perf8's schedule budget and site count) are experiment
   configuration, not measurements: a deliberate budget bump must not
   read as a regression. The perf8 schedule counts themselves
   (guided_confirm_schedules, blind_schedules) keep the default
   lower-is-better direction, and blind_over_guided_confirmation_ratio
   picks up higher-is-better from its [_ratio] suffix. *)
let informational name =
  ends_with ~suffix:"hardware_domains" name
  || ends_with ~suffix:"_steals" name
  || ends_with ~suffix:"_shed" name
  || contains ~sub:"config_" name

(* The previous history entry with our tag (if any), and how many
   same-tag entries the history already holds. *)
let last_baseline () =
  if not (Sys.file_exists !history_path) then (0, None)
  else
    let ic = open_in !history_path in
    let best = ref None in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Json.of_string line with
           | Json.Obj fields -> (
               match List.assoc_opt "tag" fields with
               | Some (Json.String t) when t = !tag -> (
                   incr n;
                   match List.assoc_opt "results" fields with
                   | Some r -> best := Some (List.assoc_opt "ts" fields, r)
                   | None -> ())
               | _ -> ())
           | _ | (exception Json.Parse_error _) -> ()
       done
     with End_of_file -> ());
    close_in_noerr ic;
    (!n, !best)

let append_history results =
  let entry =
    Json.Obj
      [
        ("ts", Json.Float (Unix.gettimeofday ()));
        ("tag", Json.String !tag);
        ("results", results);
      ]
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 !history_path
  in
  output_string oc (Json.to_string entry ^ "\n");
  close_out oc

type delta = { name : string; before : float; after : float; change_pct : float }

(* Absolute speedup floor; [current] is the flattened results. Returns
   [true] when the gate (if armed) passes or is skipped. *)
let speedup_gate_ok current =
  match !speedup_gate with
  | None -> true
  | Some floor -> (
      let metric = "perf4/corpus_jobs4_speedup" in
      match List.assoc_opt "perf4/hardware_domains" current with
      | Some hw when hw < 4. ->
          Printf.printf
            "bench_trend: speedup gate skipped — runner has %.0f hardware \
             domain%s (< 4), parallel speedup is physically out of reach\n"
            hw
            (if hw = 1. then "" else "s");
          true
      | None ->
          Printf.printf
            "bench_trend: speedup gate skipped — results carry no \
             perf4/hardware_domains (bench ran without perf4?)\n";
          true
      | Some _ -> (
          match List.assoc_opt metric current with
          | None ->
              Printf.printf
                "bench_trend: speedup gate FAILED — %s missing from results\n"
                metric;
              false
          | Some s when s < floor ->
              Printf.printf
                "bench_trend: speedup gate FAILED — %s = %.2fx, floor is %.2fx\n"
                metric s floor;
              false
          | Some s ->
              Printf.printf "bench_trend: speedup gate ok — %s = %.2fx (floor %.2fx)\n"
                metric s floor;
              true))

let () =
  parse_args (List.tl (Array.to_list Sys.argv));
  let results =
    match Json.of_string (read_file !results_path) with
    | j -> j
    | exception Sys_error msg ->
        Printf.eprintf "bench_trend: cannot read %s: %s\n" !results_path msg;
        exit 2
    | exception Json.Parse_error msg ->
        Printf.eprintf "bench_trend: %s is not JSON: %s\n" !results_path msg;
        exit 2
  in
  let current = flatten results in
  let prior_entries, baseline = last_baseline () in
  append_history results;
  (* Entries with our tag now in the history, this run's included. *)
  let history_depth = prior_entries + 1 in
  let trend_failed = ref false in
  (match baseline with
  | None ->
      Printf.printf
        "bench_trend: recorded baseline (%d metrics, tag %S) in %s — nothing \
         to compare yet\n"
        (List.length current) !tag !history_path
  | Some (_, prev_json) ->
      let prev = flatten prev_json in
      let regressions = ref [] and improvements = ref [] in
      List.iter
        (fun (name, after) ->
          match List.assoc_opt name prev with
          | _ when informational name -> ()
          | None -> ()
          | Some before when Float.abs before < 1e-12 -> ()
          | Some before ->
              let change_pct = (after -. before) /. Float.abs before *. 100. in
              (* Positive [worse] means the metric moved the wrong way. *)
              let worse =
                if higher_is_better name then -.change_pct else change_pct
              in
              let thr =
                if tail_metric name then 3. *. !threshold else !threshold
              in
              let d = { name; before; after; change_pct } in
              if worse > thr then regressions := d :: !regressions
              else if worse < -.thr then improvements := d :: !improvements)
        current;
      let print_delta label d =
        Printf.printf "  %-10s %-45s %12.4g -> %-12.4g (%+.1f%%)\n" label d.name
          d.before d.after d.change_pct
      in
      Printf.printf "bench_trend: %d metrics vs previous %S run (threshold %.0f%%)\n"
        (List.length current) !tag !threshold;
      List.iter (print_delta "REGRESSED") (List.rev !regressions);
      List.iter (print_delta "improved") (List.rev !improvements);
      if !regressions = [] && !improvements = [] then
        print_endline "  all metrics within threshold";
      if !check && !regressions <> [] then
        if history_depth >= !min_history then trend_failed := true
        else
          Printf.printf
            "bench_trend: not failing — history holds %d %S entr%s, gate \
             hardens at %d\n"
            history_depth !tag
            (if history_depth = 1 then "y" else "ies")
            !min_history);
  (* The absolute speedup floor applies from the very first run: it
     needs no baseline, so [--min-history] does not soften it. *)
  let gate_failed = not (speedup_gate_ok current) in
  if !trend_failed || gate_failed then exit 1
