#!/bin/sh
# A complete `webracer serve` session, driven three ways: with the
# bundled `webracer call` client on the raw line protocol, over the
# HTTP/JSON surface the same daemon serves on the same socket, and
# under sustained load from `webracer bench-serve`.
#
# Usage: scripts/serve_demo.sh
set -eu

W="dune exec --no-build bin/webracer_cli.exe --"
dune build bin/webracer_cli.exe

SOCK=$(mktemp -u)
DIR=$(mktemp -d)
trap 'rm -rf "$DIR" "$SOCK"' EXIT

cat > "$DIR/page.html" <<'HTML'
<script src="init.js"></script>
<script>var x = 1; x = x + 1;</script>
HTML
cat > "$DIR/init.js" <<'JS'
var x = 0;
JS

echo "== starting the daemon (4 workers, unix socket) =="
$W serve --socket "$SOCK" -j 4 &
PID=$!

echo
echo "== ping (answered inline by the accept loop) =="
$W call --socket "$SOCK" ping

echo
echo "== analyze (dispatched to a worker; same document as 'run --json') =="
$W call --socket "$SOCK" analyze "$DIR/page.html"

echo
echo "== the identical request again: an LRU cache hit, replayed verbatim =="
$W call --socket "$SOCK" analyze "$DIR/page.html"

echo
echo "== stats (queue depth, per-verb totals, cache hit/miss counters) =="
$W call --socket "$SOCK" stats

echo
echo "== schema v2 is per-request opt-in: the envelope names its shard =="
$W call --socket "$SOCK" ping --schema 2

echo
echo "== the same daemon speaks HTTP/1.1 on the same socket (v2-native) =="
# curl would do just as well against a TCP daemon:
#   curl -s http://127.0.0.1:7788/v1/ping
#   curl -s http://127.0.0.1:7788/v1/analyze --data @params.json
$W call --socket "$SOCK" ping --http
$W call --socket "$SOCK" analyze "$DIR/page.html" --http

echo
echo "== a malformed line gets a structured bad_request, not a hangup =="
echo 'not json' | $W call --socket "$SOCK" raw || true

echo
echo "== bench-serve: barrier-released load, tail latency, shed classes =="
$W bench-serve --socket "$SOCK" --conns 4 --pipeline 8 --duration 1

echo
echo "== SIGTERM drains in-flight work and exits 0 =="
kill -TERM $PID
wait $PID
echo "daemon exited cleanly"
