#!/bin/sh
# A complete `webracer serve` session, driven two ways: with the bundled
# `webracer call` client, and with nothing but a raw socket (showing the
# protocol is plain newline-delimited JSON any language can speak).
#
# Usage: scripts/serve_demo.sh
set -eu

W="dune exec --no-build bin/webracer_cli.exe --"
dune build bin/webracer_cli.exe

SOCK=$(mktemp -u)
DIR=$(mktemp -d)
trap 'rm -rf "$DIR" "$SOCK"' EXIT

cat > "$DIR/page.html" <<'HTML'
<script src="init.js"></script>
<script>var x = 1; x = x + 1;</script>
HTML
cat > "$DIR/init.js" <<'JS'
var x = 0;
JS

echo "== starting the daemon (4 workers, unix socket) =="
$W serve --socket "$SOCK" -j 4 &
PID=$!

echo
echo "== ping (answered inline by the accept loop) =="
$W call --socket "$SOCK" ping

echo
echo "== analyze (dispatched to a worker; same document as 'run --json') =="
$W call --socket "$SOCK" analyze "$DIR/page.html"

echo
echo "== the identical request again: an LRU cache hit, replayed verbatim =="
$W call --socket "$SOCK" analyze "$DIR/page.html"

echo
echo "== stats (queue depth, per-verb totals, cache hit/miss counters) =="
$W call --socket "$SOCK" stats

echo
echo "== the raw protocol: one JSON object per line, no client needed =="
# socat/nc would do; webracer call's raw mode just forwards stdin lines.
printf '%s\n' '{"schema_version":1,"id":"raw-1","verb":"ping"}' \
  | $W call --socket "$SOCK" raw

echo
echo "== a malformed line gets a structured bad_request, not a hangup =="
echo 'not json' | $W call --socket "$SOCK" raw || true

echo
echo "== SIGTERM drains in-flight work and exits 0 =="
kill -TERM $PID
wait $PID
echo "daemon exited cleanly"
