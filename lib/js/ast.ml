type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq
  | Strict_eq | Strict_neq
  | Lt | Le | Gt | Ge
  | And | Or
  | Bit_and | Bit_or | Bit_xor | Shl | Shr | Ushr
  | Instanceof | In

type unop = Neg | Plus | Not | Bit_not | Typeof | Void | Delete

type update_op = Incr | Decr

type update_pos = Prefix | Postfix

type expr =
  | Number of float
  | String of string
  | Regex_lit of string * string
  | Bool of bool
  | Null
  | Ident of string
  | This
  | Func of func
  | Object_lit of (string * expr) list
  | Array_lit of expr list
  | Member of expr * string
  | Index of expr * expr
  | Call of expr * expr list
  | New of expr * expr list
  | Assign of lvalue * expr
  | Op_assign of lvalue * binop * expr
  | Update of lvalue * update_op * update_pos
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cond of expr * expr * expr
  | Comma of expr * expr

and lvalue = L_var of string | L_member of expr * string | L_index of expr * expr

and func = { fname : string option; params : string list; body : stmt list }

and stmt =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | Func_decl of func
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of for_init option * expr option * expr option * stmt list
  | For_in of string * expr * stmt list
  | Return of expr option
  | Break
  | Continue
  | Throw of expr
  | Try of stmt list * (string * stmt list) option * stmt list option
  | Switch of expr * (expr option * stmt list) list
  | Block of stmt list
  | Empty

and for_init = Init_expr of expr | Init_decl of (string * expr option) list

type program = stmt list

(* ------------------------------------------------------------------ *)
(* Shared structural traversal                                         *)
(*                                                                     *)
(* One-level folds over the immediate children of a node: the visitor  *)
(* decides where to recurse, so the same helpers serve both shallow    *)
(* walks (collecting hoisted declarations without entering nested      *)
(* functions) and deep ones (the static effect analyzer, iter_exprs).  *)
(* ------------------------------------------------------------------ *)

let expr_of_lvalue = function
  | L_var name -> Ident name
  | L_member (e, name) -> Member (e, name)
  | L_index (e, k) -> Index (e, k)

let fold_lvalue_children fe acc = function
  | L_var _ -> acc
  | L_member (e, _) -> fe acc e
  | L_index (e, k) -> fe (fe acc e) k

let fold_decls fe acc decls =
  List.fold_left
    (fun acc (_, init) -> match init with Some e -> fe acc e | None -> acc)
    acc decls

let fold_expr_children fe fs acc e =
  match e with
  | Number _ | String _ | Regex_lit _ | Bool _ | Null | Ident _ | This -> acc
  | Func { body; _ } -> List.fold_left fs acc body
  | Object_lit props -> List.fold_left (fun acc (_, v) -> fe acc v) acc props
  | Array_lit elems -> List.fold_left fe acc elems
  | Member (e, _) -> fe acc e
  | Index (e, k) -> fe (fe acc e) k
  | Call (f, args) | New (f, args) -> List.fold_left fe (fe acc f) args
  | Assign (lv, e) | Op_assign (lv, _, e) -> fe (fold_lvalue_children fe acc lv) e
  | Update (lv, _, _) -> fold_lvalue_children fe acc lv
  | Binop (_, a, b) | Comma (a, b) -> fe (fe acc a) b
  | Unop (_, a) -> fe acc a
  | Cond (c, t, f) -> fe (fe (fe acc c) t) f

let fold_stmt_children fe fs acc s =
  match s with
  | Expr_stmt e | Throw e | Return (Some e) -> fe acc e
  | Var_decl decls -> fold_decls fe acc decls
  | Func_decl { body; _ } -> List.fold_left fs acc body
  | If (c, t, e) -> List.fold_left fs (List.fold_left fs (fe acc c) t) e
  | While (c, b) -> List.fold_left fs (fe acc c) b
  | Do_while (b, c) -> fe (List.fold_left fs acc b) c
  | For (init, cond, step, b) ->
      let acc =
        match init with
        | Some (Init_expr e) -> fe acc e
        | Some (Init_decl decls) -> fold_decls fe acc decls
        | None -> acc
      in
      let acc = match cond with Some e -> fe acc e | None -> acc in
      let acc = match step with Some e -> fe acc e | None -> acc in
      List.fold_left fs acc b
  | For_in (_, obj, b) -> List.fold_left fs (fe acc obj) b
  | Try (b, catch, fin) ->
      let acc = List.fold_left fs acc b in
      let acc =
        match catch with Some (_, cb) -> List.fold_left fs acc cb | None -> acc
      in
      (match fin with Some fb -> List.fold_left fs acc fb | None -> acc)
  | Switch (scrut, cases) ->
      List.fold_left
        (fun acc (guard, body) ->
          let acc = match guard with Some g -> fe acc g | None -> acc in
          List.fold_left fs acc body)
        (fe acc scrut) cases
  | Block b -> List.fold_left fs acc b
  | Return None | Break | Continue | Empty -> acc

let iter_exprs f prog =
  let rec fe () e =
    f e;
    fold_expr_children fe fs () e
  and fs () s = fold_stmt_children fe fs () s in
  List.iter (fs ()) prog

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Neq -> "!="
  | Strict_eq -> "===" | Strict_neq -> "!=="
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Bit_and -> "&" | Bit_or -> "|" | Bit_xor -> "^"
  | Shl -> "<<" | Shr -> ">>" | Ushr -> ">>>"
  | Instanceof -> "instanceof" | In -> "in"

let unop_name = function
  | Neg -> "-" | Plus -> "+" | Not -> "!" | Bit_not -> "~"
  | Typeof -> "typeof " | Void -> "void " | Delete -> "delete "
