open Value

let arg n args = match List.nth_opt args n with Some v -> v | None -> Undefined

let number_arg n args = to_number (arg n args)

let string_arg vm n args = to_string vm (arg n args)

let int_arg n args =
  let f = number_arg n args in
  if Float.is_nan f then 0 else int_of_float f

let define_global vm name v = Hashtbl.replace vm.global.vars name (ref v)

let builtin vm name fn = Object (new_builtin vm name fn)

let method_ vm obj name fn = set_prop_raw obj name (Object (new_builtin vm name fn))

(* ------------------------------------------------------------------ *)
(* Math                                                                *)
(* ------------------------------------------------------------------ *)

let install_math vm =
  let math = new_object vm ~class_name:"Math" () in
  set_prop_raw math "PI" (Number Float.pi);
  set_prop_raw math "E" (Number (Float.exp 1.));
  let unary name f = method_ vm math name (fun _ ~this:_ args -> Number (f (number_arg 0 args))) in
  unary "floor" Float.floor;
  unary "ceil" Float.ceil;
  unary "abs" Float.abs;
  unary "sqrt" Float.sqrt;
  unary "sin" sin;
  unary "cos" cos;
  unary "log" log;
  unary "exp" exp;
  unary "round" (fun f -> Float.floor (f +. 0.5));
  method_ vm math "pow" (fun _ ~this:_ args ->
      Number (Float.pow (number_arg 0 args) (number_arg 1 args)));
  method_ vm math "min" (fun _ ~this:_ args ->
      match args with
      | [] -> Number Float.infinity
      | _ -> Number (List.fold_left (fun acc v -> Float.min acc (to_number v)) Float.infinity args));
  method_ vm math "max" (fun _ ~this:_ args ->
      match args with
      | [] -> Number Float.neg_infinity
      | _ ->
          Number
            (List.fold_left (fun acc v -> Float.max acc (to_number v)) Float.neg_infinity args));
  method_ vm math "random" (fun vm ~this:_ _ -> Number (Wr_support.Rng.float vm.rng 1.0));
  define_global vm "Math" (Object math)

(* ------------------------------------------------------------------ *)
(* RegExp                                                              *)
(* ------------------------------------------------------------------ *)

(* Compiled patterns are memoized by (pattern, flags): RegExp objects only
   carry strings, so they serialize and compare like plain data. The
   cache used to be one process-global Hashtbl behind a mutex — the only
   shared lock on the parallel analysis path. It is now [Domain.DLS]
   state: each domain memoizes independently, so lookups are plain
   un-locked Hashtbl operations. Corpus sites repeat the same handful of
   patterns, so the per-domain duplication costs a few recompilations per
   domain lifetime in exchange for a lock-free hot path. *)
let regex_cache : (string * string, Regex.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

(* Lifetime tallies for the fleet profile, still process-wide (summed
   over domains). [regex_contended] counted mutex acquisitions that had
   to block; with DLS caches there is no lock left, so it stays at 0 —
   kept so [--profile] output proves the contention is gone rather than
   silently dropping the column. *)
let regex_hits = Atomic.make 0
let regex_misses = Atomic.make 0
let regex_contended = Atomic.make 0

let regex_cache_stats () =
  ( Atomic.get regex_hits,
    Atomic.get regex_misses,
    Atomic.get regex_contended )

let compile_regex vm ~pattern ~flags =
  let key = (pattern, flags) in
  let cache = Domain.DLS.get regex_cache in
  match Hashtbl.find_opt cache key with
  | Some t ->
      Atomic.incr regex_hits;
      t
  | None -> (
      Atomic.incr regex_misses;
      match Regex.compile ~pattern ~flags with
      | Ok t ->
          Hashtbl.add cache key t;
          t
      | Error msg -> throw_error vm "SyntaxError" ("Invalid regular expression: " ^ msg))

let regex_of_value vm v =
  match v with
  | Object o when o.class_name = "RegExp" ->
      let str name = match get_prop_raw o name with Some (String s) -> s | _ -> "" in
      Some (compile_regex vm ~pattern:(str "source") ~flags:(str "flags"))
  | _ -> None

let match_array vm s (r : Regex.match_result) =
  let t_groups = Array.to_list r.Regex.groups in
  let items =
    List.map
      (function
        | Some (a, b) -> String (String.sub s a (b - a))
        | None -> Undefined)
      t_groups
  in
  let arr = new_array vm items in
  set_prop_raw arr "index" (Number (float_of_int r.Regex.start));
  set_prop_raw arr "input" (String s);
  arr

let make_regexp vm ~pattern ~flags =
  let compiled = compile_regex vm ~pattern ~flags in
  let obj = new_object vm ~class_name:"RegExp" () in
  set_prop_raw obj "source" (String pattern);
  set_prop_raw obj "flags" (String flags);
  set_prop_raw obj "global" (Bool (Regex.global compiled));
  set_prop_raw obj "lastIndex" (Number 0.);
  method_ vm obj "test" (fun vm ~this:_ args -> Bool (Regex.test compiled (string_arg vm 0 args)));
  method_ vm obj "exec" (fun vm ~this:_ args ->
      let s = string_arg vm 0 args in
      let start =
        if Regex.global compiled then
          match get_prop_raw obj "lastIndex" with
          | Some (Number n) -> int_of_float n
          | _ -> 0
        else 0
      in
      match Regex.exec compiled s ~start with
      | Some r ->
          if Regex.global compiled then begin
            let next = if r.Regex.stop = r.Regex.start then r.Regex.stop + 1 else r.Regex.stop in
            set_prop_raw obj "lastIndex" (Number (float_of_int next))
          end;
          Object (match_array vm s r)
      | None ->
          if Regex.global compiled then set_prop_raw obj "lastIndex" (Number 0.);
          Null);
  method_ vm obj "toString" (fun _vm ~this:_ _ ->
      String (Printf.sprintf "/%s/%s" pattern flags));
  Object obj

(* Replace with a function replacer: called per match with the matched
   text, the captures, and the match offset. *)
let regex_replace_with_function vm compiled s f =
  let matches =
    if Regex.global compiled then Regex.match_all compiled s
    else match Regex.exec compiled s ~start:0 with Some r -> [ r ] | None -> []
  in
  let buf = Buffer.create (String.length s) in
  let cursor = ref 0 in
  List.iter
    (fun (r : Regex.match_result) ->
      if r.Regex.start >= !cursor then begin
        Buffer.add_string buf (String.sub s !cursor (r.Regex.start - !cursor));
        let args =
          Array.to_list r.Regex.groups
          |> List.map (function
               | Some (a, b) -> String (String.sub s a (b - a))
               | None -> Undefined)
        in
        let args = args @ [ Number (float_of_int r.Regex.start); String s ] in
        Buffer.add_string buf (to_string vm (vm.call_value f ~this:Undefined args));
        cursor := r.Regex.stop
      end)
    matches;
  Buffer.add_string buf (String.sub s !cursor (String.length s - !cursor));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* String methods on primitives                                        *)
(* ------------------------------------------------------------------ *)

let substring s a b =
  let n = String.length s in
  let clamp x = max 0 (min n x) in
  let a = clamp a and b = clamp b in
  let a, b = if a <= b then a, b else b, a in
  String.sub s a (b - a)

let js_slice_bounds len a b =
  let resolve x = if x < 0 then max 0 (len + x) else min x len in
  let a = resolve a and b = resolve b in
  if a >= b then None else Some (a, b - a)

let string_index_of ~from hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec search i =
    if i + nn > hn then -1
    else if String.sub hay i nn = needle then i
    else search (i + 1)
  in
  search (max 0 from)

let string_last_index_of hay needle =
  let hn = String.length hay and nn = String.length needle in
  let rec search i = if i < 0 then -1 else if String.sub hay i nn = needle then i else search (i - 1) in
  search (hn - nn)

let string_split vm s sep =
  if sep = "" then
    new_array vm (List.init (String.length s) (fun i -> String (String.make 1 s.[i])))
  else begin
    let parts = ref [] in
    let rec loop start =
      match string_index_of ~from:start s sep with
      | -1 -> parts := String.sub s start (String.length s - start) :: !parts
      | i ->
          parts := String.sub s start (i - start) :: !parts;
          loop (i + String.length sep)
    in
    loop 0;
    new_array vm (List.rev_map (fun p -> String p) !parts)
  end

let string_replace_first s pat repl =
  if pat = "" then repl ^ s
  else
    match string_index_of ~from:0 s pat with
    | -1 -> s
    | i ->
        String.sub s 0 i ^ repl ^ String.sub s (i + String.length pat)
          (String.length s - i - String.length pat)

let string_member vm s name =
  let m fn = Some (builtin vm name (fun vm ~this:_ args -> fn vm args)) in
  match name with
  | "length" -> Some (Number (float_of_int (String.length s)))
  | "charAt" ->
      m (fun _vm args ->
          let i = int_arg 0 args in
          if i >= 0 && i < String.length s then String (String.make 1 s.[i]) else String "")
  | "charCodeAt" ->
      m (fun _vm args ->
          let i = int_arg 0 args in
          if i >= 0 && i < String.length s then Number (float_of_int (Char.code s.[i]))
          else Number Float.nan)
  | "indexOf" ->
      m (fun vm args -> Number (float_of_int (string_index_of ~from:(int_arg 1 args) s (string_arg vm 0 args))))
  | "lastIndexOf" ->
      m (fun vm args -> Number (float_of_int (string_last_index_of s (string_arg vm 0 args))))
  | "substring" ->
      m (fun _vm args ->
          let b = match arg 1 args with Undefined -> String.length s | v -> int_of_float (to_number v) in
          String (substring s (int_arg 0 args) b))
  | "substr" ->
      m (fun _vm args ->
          let start = int_arg 0 args in
          let start = if start < 0 then max 0 (String.length s + start) else min start (String.length s) in
          let len =
            match arg 1 args with
            | Undefined -> String.length s - start
            | v -> max 0 (min (int_of_float (to_number v)) (String.length s - start))
          in
          String (String.sub s start len))
  | "slice" ->
      m (fun _vm args ->
          let b = match arg 1 args with Undefined -> String.length s | v -> int_of_float (to_number v) in
          match js_slice_bounds (String.length s) (int_arg 0 args) b with
          | None -> String ""
          | Some (off, len) -> String (String.sub s off len))
  | "split" ->
      m (fun vm args ->
          match regex_of_value vm (arg 0 args) with
          | Some compiled ->
              Object (new_array vm (List.map (fun p -> String p) (Regex.split compiled s)))
          | None -> Object (string_split vm s (string_arg vm 0 args)))
  | "toUpperCase" -> m (fun _vm _ -> String (String.uppercase_ascii s))
  | "toLowerCase" -> m (fun _vm _ -> String (String.lowercase_ascii s))
  | "replace" ->
      m (fun vm args ->
          match regex_of_value vm (arg 0 args) with
          | Some compiled ->
              let by = arg 1 args in
              if is_callable by then String (regex_replace_with_function vm compiled s by)
              else String (Regex.replace compiled s ~by:(to_string vm by))
          | None ->
              String (string_replace_first s (string_arg vm 0 args) (string_arg vm 1 args)))
  | "concat" ->
      m (fun vm args -> String (List.fold_left (fun acc v -> acc ^ to_string vm v) s args))
  | "match" ->
      m (fun vm args ->
          match regex_of_value vm (arg 0 args) with
          | None -> Null
          | Some compiled ->
              if Regex.global compiled then begin
                match Regex.match_all compiled s with
                | [] -> Null
                | matches ->
                    Object
                      (new_array vm
                         (List.map
                            (fun (r : Regex.match_result) ->
                              String (String.sub s r.Regex.start (r.Regex.stop - r.Regex.start)))
                            matches))
              end
              else
                (match Regex.exec compiled s ~start:0 with
                | Some r -> Object (match_array vm s r)
                | None -> Null))
  | "search" ->
      m (fun vm args ->
          match regex_of_value vm (arg 0 args) with
          | None -> Number (-1.)
          | Some compiled -> (
              match Regex.exec compiled s ~start:0 with
              | Some r -> Number (float_of_int r.Regex.start)
              | None -> Number (-1.)))
  | "trim" -> m (fun _vm _ -> String (String.trim s))
  | "toString" -> m (fun _vm _ -> String s)
  | _ -> None

let number_member vm n name =
  let m fn = Some (builtin vm name (fun vm ~this:_ args -> fn vm args)) in
  match name with
  | "toFixed" ->
      m (fun _vm args ->
          let digits = int_arg 0 args in
          String (Printf.sprintf "%.*f" (max 0 (min 20 digits)) n))
  | "toString" -> m (fun _vm _ -> String (Pretty.number_to_string n))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Array.prototype                                                     *)
(* ------------------------------------------------------------------ *)

let this_obj vm this =
  match this with
  | Object o -> o
  | _ -> throw_error vm "TypeError" "method called on non-object"

let array_set_length obj n = set_prop_raw obj "length" (Number (float_of_int n))

let array_get obj i =
  match Hashtbl.find_opt obj.props (string_of_int i) with Some c -> !c | None -> Undefined

let install_array_proto vm =
  let proto = vm.array_proto in
  method_ vm proto "push" (fun vm ~this args ->
      let o = this_obj vm this in
      let len = ref (List.length (array_elements o)) in
      (* Use the stored length, not the dense scan, to respect sparse arrays. *)
      (match get_prop_raw o "length" with Some (Number n) -> len := int_of_float n | _ -> ());
      List.iter
        (fun v ->
          set_prop_raw o (string_of_int !len) v;
          incr len)
        args;
      array_set_length o !len;
      Number (float_of_int !len));
  method_ vm proto "pop" (fun vm ~this _ ->
      let o = this_obj vm this in
      let len = match get_prop_raw o "length" with Some (Number n) -> int_of_float n | _ -> 0 in
      if len = 0 then Undefined
      else begin
        let v = array_get o (len - 1) in
        Hashtbl.remove o.props (string_of_int (len - 1));
        array_set_length o (len - 1);
        v
      end);
  method_ vm proto "shift" (fun vm ~this _ ->
      let o = this_obj vm this in
      let len = match get_prop_raw o "length" with Some (Number n) -> int_of_float n | _ -> 0 in
      if len = 0 then Undefined
      else begin
        let v = array_get o 0 in
        for i = 1 to len - 1 do
          set_prop_raw o (string_of_int (i - 1)) (array_get o i)
        done;
        Hashtbl.remove o.props (string_of_int (len - 1));
        array_set_length o (len - 1);
        v
      end);
  method_ vm proto "join" (fun vm ~this args ->
      let o = this_obj vm this in
      let sep = match arg 0 args with Undefined -> "," | v -> to_string vm v in
      String (String.concat sep (List.map (to_string vm) (array_elements o))));
  method_ vm proto "indexOf" (fun vm ~this args ->
      let o = this_obj vm this in
      let target = arg 0 args in
      let elems = array_elements o in
      let rec find i = function
        | [] -> -1
        | v :: rest -> if strict_equals v target then i else find (i + 1) rest
      in
      Number (float_of_int (find 0 elems)));
  method_ vm proto "slice" (fun vm ~this args ->
      let o = this_obj vm this in
      let elems = array_elements o in
      let len = List.length elems in
      let b = match arg 1 args with Undefined -> len | v -> int_of_float (to_number v) in
      (match js_slice_bounds len (int_arg 0 args) b with
      | None -> Object (new_array vm [])
      | Some (off, n) -> Object (new_array vm (List.filteri (fun i _ -> i >= off && i < off + n) elems))));
  method_ vm proto "concat" (fun vm ~this args ->
      let o = this_obj vm this in
      let extra =
        List.concat_map
          (fun v ->
            match v with
            | Object a when a.class_name = "Array" -> array_elements a
            | v -> [ v ])
          args
      in
      Object (new_array vm (array_elements o @ extra)));
  method_ vm proto "forEach" (fun vm ~this args ->
      let o = this_obj vm this in
      let f = arg 0 args in
      List.iteri
        (fun i v -> ignore (vm.call_value f ~this:Undefined [ v; Number (float_of_int i); this ]))
        (array_elements o);
      Undefined);
  method_ vm proto "map" (fun vm ~this args ->
      let o = this_obj vm this in
      let f = arg 0 args in
      let results =
        List.mapi
          (fun i v -> vm.call_value f ~this:Undefined [ v; Number (float_of_int i); this ])
          (array_elements o)
      in
      Object (new_array vm results));
  method_ vm proto "filter" (fun vm ~this args ->
      let o = this_obj vm this in
      let f = arg 0 args in
      let results =
        List.filteri
          (fun i v ->
            ignore i;
            to_boolean (vm.call_value f ~this:Undefined [ v; Number (float_of_int i); this ]))
          (array_elements o)
      in
      Object (new_array vm results));
  method_ vm proto "sort" (fun vm ~this args ->
      let o = this_obj vm this in
      let elems = array_elements o in
      let compare_js a b =
        match arg 0 args with
        | Undefined ->
            (* Default sort compares string representations. *)
            compare (to_string vm a) (to_string vm b)
        | f ->
            let r = to_number (vm.call_value f ~this:Undefined [ a; b ]) in
            if r < 0. then -1 else if r > 0. then 1 else 0
      in
      let sorted = List.stable_sort compare_js elems in
      List.iteri (fun i v -> set_prop_raw o (string_of_int i) v) sorted;
      this);
  method_ vm proto "reverse" (fun vm ~this _ ->
      let o = this_obj vm this in
      let elems = List.rev (array_elements o) in
      List.iteri (fun i v -> set_prop_raw o (string_of_int i) v) elems;
      this);
  method_ vm proto "toString" (fun vm ~this _ ->
      let o = this_obj vm this in
      String (String.concat "," (List.map (to_string vm) (array_elements o))))

(* ------------------------------------------------------------------ *)
(* Function.prototype, Object, constructors                            *)
(* ------------------------------------------------------------------ *)

let install_function_proto vm =
  method_ vm vm.function_proto "call" (fun vm ~this args ->
      match args with
      | [] -> vm.call_value this ~this:Undefined []
      | this' :: rest -> vm.call_value this ~this:this' rest);
  method_ vm vm.function_proto "apply" (fun vm ~this args ->
      let this' = arg 0 args in
      let rest = match arg 1 args with Object a when a.class_name = "Array" -> array_elements a | _ -> [] in
      vm.call_value this ~this:this' rest)

let install_constructors vm =
  (* Object *)
  let object_ctor =
    new_builtin vm "Object" (fun vm ~this:_ args ->
        match arg 0 args with
        | Object _ as v -> v
        | _ -> Object (new_object vm ()))
  in
  set_prop_raw object_ctor "prototype" (Object vm.object_proto);
  method_ vm object_ctor "keys" (fun vm ~this:_ args ->
      match arg 0 args with
      | Object o ->
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) o.props [] in
          let keys = List.filter (fun k -> not (o.class_name = "Array" && k = "length")) keys in
          Object (new_array vm (List.map (fun k -> String k) (List.sort compare keys)))
      | _ -> Object (new_array vm []));
  define_global vm "Object" (Object object_ctor);
  method_ vm vm.object_proto "hasOwnProperty" (fun vm ~this args ->
      let o = this_obj vm this in
      Bool (Hashtbl.mem o.props (string_arg vm 0 args)));
  method_ vm vm.object_proto "toString" (fun vm ~this _ ->
      match this with
      | Object o -> String (Printf.sprintf "[object %s]" o.class_name)
      | v -> String (to_string vm v));

  (* Array *)
  let array_ctor =
    new_builtin vm "Array" (fun vm ~this:_ args ->
        match args with
        | [ Number n ] when Float.is_integer n && n >= 0. ->
            let a = new_array vm [] in
            array_set_length a (int_of_float n);
            Object a
        | args -> Object (new_array vm args))
  in
  set_prop_raw array_ctor "prototype" (Object vm.array_proto);
  method_ vm array_ctor "isArray" (fun _vm ~this:_ args ->
      match arg 0 args with
      | Object o -> Bool (o.class_name = "Array")
      | _ -> Bool false);
  define_global vm "Array" (Object array_ctor);

  (* Errors *)
  let error_ctor kind =
    let ctor =
      new_builtin vm kind (fun vm ~this args ->
          let msg = match arg 0 args with Undefined -> "" | v -> to_string vm v in
          let obj =
            match this with
            | Object o when o.class_name = "Error" -> o
            | _ -> (
                match make_error vm kind msg with
                | Object o -> o
                | _ -> assert false)
          in
          set_prop_raw obj "name" (String kind);
          set_prop_raw obj "message" (String msg);
          Object obj)
    in
    set_prop_raw ctor "prototype" (Object vm.error_proto);
    define_global vm kind (Object ctor)
  in
  List.iter error_ctor [ "Error"; "TypeError"; "ReferenceError"; "RangeError" ];
  method_ vm vm.error_proto "toString" (fun vm ~this _ ->
      match this with
      | Object o ->
          let name = match get_prop_raw o "name" with Some v -> to_string vm v | None -> "Error" in
          let msg = match get_prop_raw o "message" with Some v -> to_string vm v | None -> "" in
          String (if msg = "" then name else name ^ ": " ^ msg)
      | v -> String (to_string vm v));

  (* String / Number / Boolean as conversion functions *)
  let string_ctor =
    new_builtin vm "String" (fun vm ~this:_ args ->
        match args with [] -> String "" | v :: _ -> String (to_string vm v))
  in
  method_ vm string_ctor "fromCharCode" (fun _vm ~this:_ args ->
      let chars =
        List.map
          (fun v ->
            let c = int_of_float (to_number v) land 0xff in
            String.make 1 (Char.chr c))
          args
      in
      String (String.concat "" chars));
  define_global vm "String" (Object string_ctor);
  define_global vm "Number"
    (builtin vm "Number" (fun _vm ~this:_ args ->
         match args with [] -> Number 0. | v :: _ -> Number (to_number v)));
  define_global vm "Boolean"
    (builtin vm "Boolean" (fun _vm ~this:_ args -> Bool (to_boolean (arg 0 args))));

  (* RegExp constructor: new RegExp(pattern, flags). *)
  define_global vm "RegExp"
    (builtin vm "RegExp" (fun vm ~this:_ args ->
         let pattern =
           match arg 0 args with
           | Object o when o.class_name = "RegExp" -> (
               match get_prop_raw o "source" with Some (String s) -> s | _ -> "")
           | Undefined -> ""
           | v -> to_string vm v
         in
         let flags = match arg 1 args with Undefined -> "" | v -> to_string vm v in
         make_regexp vm ~pattern ~flags));

  (* Date: backed by the virtual clock so [new Date().getTime()] is
     deterministic simulated time. *)
  let date_ctor =
    new_builtin vm "Date" (fun vm ~this args ->
        ignore args;
        let obj =
          match this with
          | Object o -> o
          | _ -> new_object vm ~class_name:"Date" ()
        in
        let t = vm.now () in
        set_prop_raw obj "_time" (Number t);
        method_ vm obj "getTime" (fun _vm ~this:_ _ -> Number t);
        method_ vm obj "valueOf" (fun _vm ~this:_ _ -> Number t);
        Object obj)
  in
  method_ vm date_ctor "now" (fun vm ~this:_ _ -> Number (vm.now ()));
  define_global vm "Date" (Object date_ctor)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let rec json_stringify vm ~seen v =
  match v with
  | Null -> Some "null"
  | Bool b -> Some (if b then "true" else "false")
  | Number n ->
      if Float.is_nan n || n = Float.infinity || n = Float.neg_infinity then Some "null"
      else Some (Pretty.number_to_string n)
  | String s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\r' -> Buffer.add_string buf "\\r"
          | '\t' -> Buffer.add_string buf "\\t"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"';
      Some (Buffer.contents buf)
  | Undefined -> None
  | Object obj when obj.call <> None -> None
  | Object obj ->
      if List.memq obj seen then throw_error vm "TypeError" "Converting circular structure to JSON";
      let seen = obj :: seen in
      if obj.class_name = "Array" then
        Some
          (Printf.sprintf "[%s]"
             (String.concat ","
                (List.map
                   (fun e ->
                     match json_stringify vm ~seen e with Some s -> s | None -> "null")
                   (array_elements obj))))
      else begin
        let fields =
          Hashtbl.fold
            (fun k cell acc ->
              match json_stringify vm ~seen !cell with
              | Some s -> (k, s) :: acc
              | None -> acc)
            obj.props []
          |> List.sort compare
        in
        let field (k, s) =
          match json_stringify vm ~seen (String k) with
          | Some key -> key ^ ":" ^ s
          | None -> assert false
        in
        Some (Printf.sprintf "{%s}" (String.concat "," (List.map field fields)))
      end

(* A small strict JSON parser producing JS values. *)
let json_parse vm text =
  let n = String.length text in
  let pos = ref 0 in
  let error () = throw_error vm "SyntaxError" "Unexpected token in JSON" in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c = if peek () = Some c then advance () else error () in
  let literal word v =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error ()
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then error ();
              let hex = String.sub text !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> error ());
              pos := !pos + 4;
              loop ()
          | _ -> error ())
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some c when c >= '0' && c <= '9' ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> error ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        let obj = new_object vm () in
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec fields () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            set_prop_raw obj key v;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ()
            | Some '}' -> advance ()
            | _ -> error ()
          in
          fields ()
        end;
        Object obj
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Object (new_array vm [])
        end
        else begin
          let elems = ref [] in
          let rec items () =
            let v = parse_value () in
            elems := v :: !elems;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items ()
            | Some ']' -> advance ()
            | _ -> error ()
          in
          items ();
          Object (new_array vm (List.rev !elems))
        end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> Number (parse_number ())
    | _ -> error ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error ();
  v

let install_json vm =
  let json = new_object vm ~class_name:"JSON" () in
  method_ vm json "stringify" (fun vm ~this:_ args ->
      match json_stringify vm ~seen:[] (arg 0 args) with
      | Some s -> String s
      | None -> Undefined);
  method_ vm json "parse" (fun vm ~this:_ args -> json_parse vm (string_arg vm 0 args));
  define_global vm "JSON" (Object json)

let install_misc vm =
  define_global vm "parseInt"
    (builtin vm "parseInt" (fun vm ~this:_ args ->
         let s = String.trim (string_arg vm 0 args) in
         let radix = match int_arg 1 args with 0 -> 10 | r -> r in
         (* Parse the longest valid prefix, JS-style. *)
         let digit c =
           if c >= '0' && c <= '9' then Char.code c - Char.code '0'
           else if c >= 'a' && c <= 'z' then Char.code c - Char.code 'a' + 10
           else if c >= 'A' && c <= 'Z' then Char.code c - Char.code 'A' + 10
           else 99
         in
         let sign, start =
           if s = "" then 1., 0
           else if s.[0] = '-' then -1., 1
           else if s.[0] = '+' then 1., 1
           else 1., 0
         in
         let s, start, radix =
           if radix = 16 && String.length s >= start + 2 && s.[start] = '0'
              && (s.[start + 1] = 'x' || s.[start + 1] = 'X')
           then s, start + 2, 16
           else s, start, radix
         in
         let rec loop i acc seen =
           if i >= String.length s then (acc, seen)
           else
             let d = digit s.[i] in
             if d >= radix then (acc, seen) else loop (i + 1) ((acc *. float_of_int radix) +. float_of_int d) true
         in
         let value, seen = loop start 0. false in
         if seen then Number (sign *. value) else Number Float.nan));
  define_global vm "parseFloat"
    (builtin vm "parseFloat" (fun vm ~this:_ args ->
         let s = String.trim (string_arg vm 0 args) in
         (* Longest numeric prefix. *)
         let n = String.length s in
         let rec best i =
           if i > n then None
           else
             match float_of_string_opt (String.sub s 0 i) with
             | Some f -> ( match best (i + 1) with Some f' -> Some f' | None -> Some f)
             | None -> best (i + 1)
         in
         match best 1 with Some f -> Number f | None -> Number Float.nan));
  define_global vm "isNaN"
    (builtin vm "isNaN" (fun _vm ~this:_ args -> Bool (Float.is_nan (number_arg 0 args))));
  define_global vm "isFinite"
    (builtin vm "isFinite" (fun _vm ~this:_ args ->
         let n = number_arg 0 args in
         Bool (not (Float.is_nan n) && n <> Float.infinity && n <> Float.neg_infinity)));
  let uri_unreserved c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || String.contains "-_.!~*'()" c
  in
  define_global vm "encodeURIComponent"
    (builtin vm "encodeURIComponent" (fun vm ~this:_ args ->
         let s = string_arg vm 0 args in
         let buf = Buffer.create (String.length s) in
         String.iter
           (fun c ->
             if uri_unreserved c then Buffer.add_char buf c
             else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
           s;
         String (Buffer.contents buf)));
  define_global vm "decodeURIComponent"
    (builtin vm "decodeURIComponent" (fun vm ~this:_ args ->
         let s = string_arg vm 0 args in
         let buf = Buffer.create (String.length s) in
         let n = String.length s in
         let rec go i =
           if i < n then
             if s.[i] = '%' && i + 2 < n then begin
               match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
               | Some code ->
                   Buffer.add_char buf (Char.chr (code land 0xff));
                   go (i + 3)
               | None ->
                   Buffer.add_char buf s.[i];
                   go (i + 1)
             end
             else begin
               Buffer.add_char buf s.[i];
               go (i + 1)
             end
         in
         go 0;
         String (Buffer.contents buf)));
  let console = new_object vm ~class_name:"Console" () in
  method_ vm console "log" (fun vm ~this:_ args ->
      let line = String.concat " " (List.map (to_string vm) args) in
      vm.console := line :: !(vm.console);
      Undefined);
  method_ vm console "error" (fun vm ~this:_ args ->
      let line = String.concat " " (List.map (to_string vm) args) in
      vm.console := ("[error] " ^ line) :: !(vm.console);
      Undefined);
  define_global vm "console" (Object console);
  define_global vm "undefined" Undefined;
  define_global vm "NaN" (Number Float.nan);
  define_global vm "Infinity" (Number Float.infinity)

let install vm =
  install_math vm;
  install_array_proto vm;
  install_function_proto vm;
  install_constructors vm;
  install_json vm;
  install_misc vm
