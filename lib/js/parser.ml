open Ast

exception Parse_error of string * int * int

type state = { toks : Lexer.lexed array; mutable idx : int }

let current st = st.toks.(st.idx)

let error st msg =
  let { Lexer.line; col; _ } = current st in
  raise (Parse_error (msg, line, col))

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let peek_tok st = (current st).Lexer.tok

let is_punct st p = match peek_tok st with Lexer.T_punct q -> q = p | _ -> false

let is_keyword st k = match peek_tok st with Lexer.T_keyword q -> q = k | _ -> false

let eat_punct st p =
  if is_punct st p then advance st
  else error st (Printf.sprintf "expected %S" p)

let eat_keyword st k =
  if is_keyword st k then advance st
  else error st (Printf.sprintf "expected keyword %S" k)

let accept_punct st p =
  if is_punct st p then begin advance st; true end else false

let ident st =
  match peek_tok st with
  | Lexer.T_ident name ->
      advance st;
      name
  | _ -> error st "expected identifier"

(* Automatic semicolon insertion, pragmatic subset: a statement terminator
   is an explicit ';', or implicitly '}' / EOF / a preceding line break. *)
let eat_semi st =
  if accept_punct st ";" then ()
  else
    match peek_tok st with
    | Lexer.T_eof -> ()
    | Lexer.T_punct "}" -> ()
    | _ when (current st).Lexer.preceded_by_newline -> ()
    | _ -> error st "expected ';'"

(* Binary operator precedence; higher binds tighter. Assignment and the
   conditional operator are handled separately (right-associative). *)
let binop_of_punct = function
  | "||" -> Some (Or, 1)
  | "&&" -> Some (And, 2)
  | "|" -> Some (Bit_or, 3)
  | "^" -> Some (Bit_xor, 4)
  | "&" -> Some (Bit_and, 5)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Neq, 6)
  | "===" -> Some (Strict_eq, 6)
  | "!==" -> Some (Strict_neq, 6)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | ">>>" -> Some (Ushr, 8)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Mod, 10)
  | _ -> None

let binop_of_keyword = function
  | "instanceof" -> Some (Instanceof, 7)
  | "in" -> Some (In, 7)
  | _ -> None

let op_assign_of_punct = function
  | "+=" -> Some Add
  | "-=" -> Some Sub
  | "*=" -> Some Mul
  | "/=" -> Some Div
  | "%=" -> Some Mod
  | "&=" -> Some Bit_and
  | "|=" -> Some Bit_or
  | "^=" -> Some Bit_xor
  | "<<=" -> Some Shl
  | ">>=" -> Some Shr
  | ">>>=" -> Some Ushr
  | _ -> None

let lvalue_of_expr st = function
  | Ident name -> L_var name
  | Member (e, name) -> L_member (e, name)
  | Index (e, k) -> L_index (e, k)
  | _ -> error st "invalid assignment target"

let rec parse_primary st =
  match peek_tok st with
  | Lexer.T_number n ->
      advance st;
      Number n
  | Lexer.T_string s ->
      advance st;
      String s
  | Lexer.T_regex (body, flags) ->
      advance st;
      Regex_lit (body, flags)
  | Lexer.T_keyword "true" ->
      advance st;
      Bool true
  | Lexer.T_keyword "false" ->
      advance st;
      Bool false
  | Lexer.T_keyword "null" ->
      advance st;
      Null
  | Lexer.T_keyword "this" ->
      advance st;
      This
  | Lexer.T_keyword "function" ->
      advance st;
      let fname =
        match peek_tok st with
        | Lexer.T_ident name ->
            advance st;
            Some name
        | _ -> None
      in
      let params = parse_params st in
      let body = parse_block st in
      Func { fname; params; body }
  | Lexer.T_ident name ->
      advance st;
      Ident name
  | Lexer.T_punct "(" ->
      advance st;
      let e = parse_expr st in
      eat_punct st ")";
      e
  | Lexer.T_punct "[" ->
      advance st;
      let rec elems acc =
        if is_punct st "]" then List.rev acc
        else
          let e = parse_assign st in
          if accept_punct st "," then elems (e :: acc) else List.rev (e :: acc)
      in
      let es = elems [] in
      eat_punct st "]";
      Array_lit es
  | Lexer.T_punct "{" ->
      advance st;
      let prop_name () =
        match peek_tok st with
        | Lexer.T_ident name | Lexer.T_keyword name ->
            advance st;
            name
        | Lexer.T_string s ->
            advance st;
            s
        | Lexer.T_number n ->
            advance st;
            Pretty.number_to_string n
        | _ -> error st "expected property name"
      in
      let rec props acc =
        if is_punct st "}" then List.rev acc
        else begin
          let name = prop_name () in
          eat_punct st ":";
          let v = parse_assign st in
          let acc = (name, v) :: acc in
          if accept_punct st "," then props acc else List.rev acc
        end
      in
      let ps = props [] in
      eat_punct st "}";
      Object_lit ps
  | Lexer.T_keyword "new" ->
      advance st;
      let callee = parse_member_chain st (parse_primary st) ~allow_call:false in
      let args = if is_punct st "(" then parse_args st else [] in
      parse_member_chain st (New (callee, args)) ~allow_call:true
  | Lexer.T_keyword k -> error st (Printf.sprintf "unexpected keyword %S" k)
  | Lexer.T_punct p -> error st (Printf.sprintf "unexpected token %S" p)
  | Lexer.T_eof -> error st "unexpected end of input"

and parse_params st =
  eat_punct st "(";
  let rec loop acc =
    if is_punct st ")" then List.rev acc
    else
      let p = ident st in
      if accept_punct st "," then loop (p :: acc) else List.rev (p :: acc)
  in
  let params = loop [] in
  eat_punct st ")";
  params

and parse_args st =
  eat_punct st "(";
  let rec loop acc =
    if is_punct st ")" then List.rev acc
    else
      let a = parse_assign st in
      if accept_punct st "," then loop (a :: acc) else List.rev (a :: acc)
  in
  let args = loop [] in
  eat_punct st ")";
  args

and parse_member_chain st base ~allow_call =
  if accept_punct st "." then begin
    let name =
      match peek_tok st with
      | Lexer.T_ident n | Lexer.T_keyword n ->
          advance st;
          n
      | _ -> error st "expected property name after '.'"
    in
    parse_member_chain st (Member (base, name)) ~allow_call
  end
  else if is_punct st "[" then begin
    advance st;
    let k = parse_expr st in
    eat_punct st "]";
    parse_member_chain st (Index (base, k)) ~allow_call
  end
  else if allow_call && is_punct st "(" then
    let args = parse_args st in
    parse_member_chain st (Call (base, args)) ~allow_call
  else base

and parse_postfix st =
  let e = parse_member_chain st (parse_primary st) ~allow_call:true in
  (* Postfix ++/-- must be on the same line as its operand. *)
  if is_punct st "++" && not (current st).Lexer.preceded_by_newline then begin
    advance st;
    Update (lvalue_of_expr st e, Incr, Postfix)
  end
  else if is_punct st "--" && not (current st).Lexer.preceded_by_newline then begin
    advance st;
    Update (lvalue_of_expr st e, Decr, Postfix)
  end
  else e

and parse_unary st =
  match peek_tok st with
  | Lexer.T_punct "-" ->
      advance st;
      Unop (Neg, parse_unary st)
  | Lexer.T_punct "+" ->
      advance st;
      Unop (Plus, parse_unary st)
  | Lexer.T_punct "!" ->
      advance st;
      Unop (Not, parse_unary st)
  | Lexer.T_punct "~" ->
      advance st;
      Unop (Bit_not, parse_unary st)
  | Lexer.T_punct "++" ->
      advance st;
      let e = parse_unary st in
      Update (lvalue_of_expr st e, Incr, Prefix)
  | Lexer.T_punct "--" ->
      advance st;
      let e = parse_unary st in
      Update (lvalue_of_expr st e, Decr, Prefix)
  | Lexer.T_keyword "typeof" ->
      advance st;
      Unop (Typeof, parse_unary st)
  | Lexer.T_keyword "void" ->
      advance st;
      Unop (Void, parse_unary st)
  | Lexer.T_keyword "delete" ->
      advance st;
      Unop (Delete, parse_unary st)
  | _ -> parse_postfix st

and parse_binary_rhs st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    let op =
      match peek_tok st with
      | Lexer.T_punct p -> binop_of_punct p
      | Lexer.T_keyword k -> binop_of_keyword k
      | _ -> None
    in
    match op with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary_rhs st (prec + 1) in
        loop (Binop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_conditional st =
  let cond = parse_binary_rhs st 1 in
  if accept_punct st "?" then begin
    let t = parse_assign st in
    eat_punct st ":";
    let f = parse_assign st in
    Cond (cond, t, f)
  end
  else cond

and parse_assign st =
  let lhs = parse_conditional st in
  if accept_punct st "=" then
    let rhs = parse_assign st in
    Assign (lvalue_of_expr st lhs, rhs)
  else
    match peek_tok st with
    | Lexer.T_punct p -> (
        match op_assign_of_punct p with
        | Some op ->
            advance st;
            let rhs = parse_assign st in
            Op_assign (lvalue_of_expr st lhs, op, rhs)
        | None -> lhs)
    | _ -> lhs

and parse_expr st =
  let e = parse_assign st in
  if accept_punct st "," then Comma (e, parse_expr st) else e

and parse_block st =
  eat_punct st "{";
  let rec loop acc =
    if is_punct st "}" then begin
      advance st;
      List.rev acc
    end
    else if peek_tok st = Lexer.T_eof then error st "unexpected end of input in block"
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_var_decls st =
  let rec loop acc =
    let name = ident st in
    let init = if accept_punct st "=" then Some (parse_assign st) else None in
    let acc = (name, init) :: acc in
    if accept_punct st "," then loop acc else List.rev acc
  in
  loop []

and parse_stmt_or_block st =
  (* Bodies of if/while/for: either a block or a single statement. *)
  if is_punct st "{" then parse_block st else [ parse_stmt st ]

and parse_stmt st =
  match peek_tok st with
  | Lexer.T_punct ";" ->
      advance st;
      Empty
  | Lexer.T_punct "{" -> Block (parse_block st)
  | Lexer.T_keyword ("var" | "let" | "const") ->
      advance st;
      let decls = parse_var_decls st in
      eat_semi st;
      Var_decl decls
  | Lexer.T_keyword "function" ->
      advance st;
      let name = ident st in
      let params = parse_params st in
      let body = parse_block st in
      Func_decl { fname = Some name; params; body }
  | Lexer.T_keyword "if" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr st in
      eat_punct st ")";
      let then_ = parse_stmt_or_block st in
      let else_ =
        if is_keyword st "else" then begin
          advance st;
          parse_stmt_or_block st
        end
        else []
      in
      If (cond, then_, else_)
  | Lexer.T_keyword "while" ->
      advance st;
      eat_punct st "(";
      let cond = parse_expr st in
      eat_punct st ")";
      While (cond, parse_stmt_or_block st)
  | Lexer.T_keyword "do" ->
      advance st;
      let body = parse_stmt_or_block st in
      eat_keyword st "while";
      eat_punct st "(";
      let cond = parse_expr st in
      eat_punct st ")";
      eat_semi st;
      Do_while (body, cond)
  | Lexer.T_keyword "for" ->
      advance st;
      eat_punct st "(";
      (* Distinguish for-in from the three-clause form. *)
      let is_decl = is_keyword st "var" || is_keyword st "let" || is_keyword st "const" in
      if is_decl then begin
        advance st;
        let name = ident st in
        if is_keyword st "in" then begin
          advance st;
          let obj = parse_expr st in
          eat_punct st ")";
          For_in (name, obj, parse_stmt_or_block st)
        end
        else begin
          let init = if accept_punct st "=" then Some (parse_assign st) else None in
          let decls =
            if accept_punct st "," then (name, init) :: parse_var_decls st
            else [ (name, init) ]
          in
          eat_punct st ";";
          parse_for_tail st (Some (Init_decl decls))
        end
      end
      else if accept_punct st ";" then parse_for_tail st None
      else begin
        let e = parse_expr st in
        match e with
        | Binop (In, Ident name, obj) ->
            eat_punct st ")";
            For_in (name, obj, parse_stmt_or_block st)
        | _ ->
            eat_punct st ";";
            parse_for_tail st (Some (Init_expr e))
      end
  | Lexer.T_keyword "return" ->
      advance st;
      let value =
        match peek_tok st with
        | Lexer.T_punct (";" | "}") | Lexer.T_eof -> None
        | _ when (current st).Lexer.preceded_by_newline -> None
        | _ -> Some (parse_expr st)
      in
      eat_semi st;
      Return value
  | Lexer.T_keyword "break" ->
      advance st;
      eat_semi st;
      Break
  | Lexer.T_keyword "continue" ->
      advance st;
      eat_semi st;
      Continue
  | Lexer.T_keyword "throw" ->
      advance st;
      let e = parse_expr st in
      eat_semi st;
      Throw e
  | Lexer.T_keyword "try" ->
      advance st;
      let body = parse_block st in
      let catch =
        if is_keyword st "catch" then begin
          advance st;
          eat_punct st "(";
          let name = ident st in
          eat_punct st ")";
          Some (name, parse_block st)
        end
        else None
      in
      let finally =
        if is_keyword st "finally" then begin
          advance st;
          Some (parse_block st)
        end
        else None
      in
      if catch = None && finally = None then error st "try without catch or finally";
      Try (body, catch, finally)
  | Lexer.T_keyword "switch" ->
      advance st;
      eat_punct st "(";
      let scrutinee = parse_expr st in
      eat_punct st ")";
      eat_punct st "{";
      let rec cases acc =
        if is_punct st "}" then begin
          advance st;
          List.rev acc
        end
        else if is_keyword st "case" then begin
          advance st;
          let guard = parse_expr st in
          eat_punct st ":";
          cases ((Some guard, parse_case_body st) :: acc)
        end
        else if is_keyword st "default" then begin
          advance st;
          eat_punct st ":";
          cases ((None, parse_case_body st) :: acc)
        end
        else error st "expected 'case', 'default' or '}'"
      in
      Switch (scrutinee, cases [])
  | _ ->
      let e = parse_expr st in
      eat_semi st;
      Expr_stmt e

and parse_case_body st =
  let rec loop acc =
    if is_punct st "}" || is_keyword st "case" || is_keyword st "default" then List.rev acc
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_for_tail st init =
  let cond = if is_punct st ";" then None else Some (parse_expr st) in
  eat_punct st ";";
  let step = if is_punct st ")" then None else Some (parse_expr st) in
  eat_punct st ")";
  For (init, cond, step, parse_stmt_or_block st)

let parse ?(tm = Wr_telemetry.Telemetry.disabled) src =
  Wr_telemetry.Telemetry.with_span tm ~cat:"js" ~name:"js-parse" (fun () ->
      let st = { toks = Lexer.tokenize src; idx = 0 } in
      let rec loop acc =
        match peek_tok st with
        | Lexer.T_eof -> List.rev acc
        | _ -> loop (parse_stmt st :: acc)
      in
      loop [])

let parse_expression src =
  let st = { toks = Lexer.tokenize src; idx = 0 } in
  let e = parse_expr st in
  (match peek_tok st with
  | Lexer.T_eof -> ()
  | _ -> error st "trailing tokens after expression");
  e
