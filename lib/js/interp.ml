open Value
module Access = Wr_mem.Access
module Location = Wr_mem.Location

type completion = C_normal | C_break | C_continue | C_return of Value.t

let emit vm ?(flags = []) loc kind =
  if vm.instrument then
    vm.sink (Access.make ~flags ~context:vm.context loc kind vm.current_op)

let var_loc vm ~owner name = Location.Js_var { cell = cell_id vm ~owner name; name }

let tick vm =
  vm.fuel <- vm.fuel - 1;
  if vm.fuel <= 0 then raise Fuel_exhausted

let refuel vm = vm.fuel <- vm.fuel_limit

(* ------------------------------------------------------------------ *)
(* Scope access                                                        *)
(* ------------------------------------------------------------------ *)

let rec lookup_env env name =
  match Hashtbl.find_opt env.vars name with
  | Some cell -> Some (env, cell)
  | None -> ( match env.parent with Some p -> lookup_env p name | None -> None)

let read_var vm env ?(flags = []) name =
  match lookup_env env name with
  | Some (owner, cell) ->
      emit vm ~flags (var_loc vm ~owner:owner.env_id name) `Read;
      !cell
  | None ->
      emit vm
        ~flags:(Access.Observed_miss :: flags)
        (var_loc vm ~owner:vm.global.env_id name)
        `Read;
      throw_error vm "ReferenceError" (name ^ " is not defined")

let write_var vm env ?(flags = []) name v =
  match lookup_env env name with
  | Some (owner, cell) ->
      emit vm ~flags (var_loc vm ~owner:owner.env_id name) `Write;
      cell := v
  | None ->
      (* Sloppy-mode implicit global. *)
      emit vm ~flags (var_loc vm ~owner:vm.global.env_id name) `Write;
      Hashtbl.replace vm.global.vars name (ref v)

let declare_var env name =
  if not (Hashtbl.mem env.vars name) then Hashtbl.add env.vars name (ref Undefined)

(* ------------------------------------------------------------------ *)
(* Property access                                                     *)
(* ------------------------------------------------------------------ *)

let rec find_prop_owner obj name =
  match Hashtbl.find_opt obj.props name with
  | Some cell -> Some (obj, cell)
  | None -> ( match obj.proto with Some p -> find_prop_owner p name | None -> None)

let get_prop_plain vm ?(flags = []) obj name =
  match find_prop_owner obj name with
  | Some (owner, cell) ->
      emit vm ~flags (var_loc vm ~owner:owner.oid name) `Read;
      !cell
  | None ->
      emit vm ~flags:(Access.Observed_miss :: flags) (var_loc vm ~owner:obj.oid name) `Read;
      Undefined

let get_prop vm ?(flags = []) obj name =
  match obj.host with
  | Some h -> (
      match h.host_get vm obj name with
      | Some v -> v
      | None -> get_prop_plain vm ~flags obj name)
  | None -> get_prop_plain vm ~flags obj name

let is_array_index name =
  name <> "" && String.for_all (fun c -> c >= '0' && c <= '9') name

let set_prop_plain vm ?(flags = []) obj name v =
  emit vm ~flags (var_loc vm ~owner:obj.oid name) `Write;
  (* Array length bookkeeping: implicit engine writes stay raw. *)
  if obj.class_name = "Array" then begin
    if is_array_index name then begin
      let idx = int_of_string name in
      let len =
        match get_prop_raw obj "length" with Some (Number n) -> int_of_float n | _ -> 0
      in
      if idx >= len then set_prop_raw obj "length" (Number (float_of_int (idx + 1)))
    end
    else if name = "length" then begin
      let new_len = int_of_float (to_number v) in
      let old_len =
        match get_prop_raw obj "length" with Some (Number n) -> int_of_float n | _ -> 0
      in
      for i = new_len to old_len - 1 do
        Hashtbl.remove obj.props (string_of_int i)
      done
    end
  end;
  set_prop_raw obj name v

let set_prop vm ?(flags = []) obj name v =
  match obj.host with
  | Some h when h.host_set vm obj name v -> ()
  | Some _ | None -> set_prop_plain vm ~flags obj name v

let member vm ?(flags = []) base name =
  match base with
  | Object obj -> get_prop vm ~flags obj name
  | String s -> (
      match Builtins.string_member vm s name with
      | Some v -> v
      | None -> Undefined)
  | Number n -> (
      match Builtins.number_member vm n name with
      | Some v -> v
      | None -> Undefined)
  | Bool _ -> Undefined
  | Undefined | Null ->
      throw_error vm "TypeError"
        (Printf.sprintf "Cannot read property '%s' of %s" name (describe base))

(* ------------------------------------------------------------------ *)
(* Hoisting (paper §4.1 "Functions")                                   *)
(* ------------------------------------------------------------------ *)

(* Collect var-declared names and function declarations in the current
   function body, not descending into nested function bodies. *)
let rec hoist_stmts acc stmts = List.fold_left hoist_stmt acc stmts

and hoist_stmt (vars, funcs) stmt =
  match stmt with
  | Ast.Var_decl decls -> (List.rev_append (List.map fst decls) vars, funcs)
  | Ast.Func_decl f -> (vars, f :: funcs)
  | Ast.If (_, a, b) -> hoist_stmts (hoist_stmts (vars, funcs) a) b
  | Ast.While (_, body) | Ast.Do_while (body, _) -> hoist_stmts (vars, funcs) body
  | Ast.For (init, _, _, body) ->
      let vars =
        match init with
        | Some (Ast.Init_decl decls) -> List.rev_append (List.map fst decls) vars
        | Some (Ast.Init_expr _) | None -> vars
      in
      hoist_stmts (vars, funcs) body
  | Ast.For_in (name, _, body) -> hoist_stmts (name :: vars, funcs) body
  | Ast.Try (body, catch, finally) ->
      let acc = hoist_stmts (vars, funcs) body in
      let acc = match catch with Some (_, c) -> hoist_stmts acc c | None -> acc in
      ( match finally with Some f -> hoist_stmts acc f | None -> acc)
  | Ast.Switch (_, cases) ->
      List.fold_left (fun acc (_, body) -> hoist_stmts acc body) (vars, funcs) cases
  | Ast.Block body -> hoist_stmts (vars, funcs) body
  | Ast.Expr_stmt _ | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Throw _ | Ast.Empty ->
      (vars, funcs)

let hoist vm env stmts =
  let vars, funcs = hoist_stmts ([], []) stmts in
  List.iter (declare_var env) (List.rev vars);
  List.iter (fun (f : Ast.func) -> declare_var env (Option.get f.fname)) (List.rev funcs);
  (* Function declarations are writes at the beginning of the scope,
     flagged so races on them classify as function races. *)
  List.iter
    (fun (f : Ast.func) ->
      let name = Option.get f.fname in
      let closure = { params = f.params; body = f.body; env; func_name = name } in
      write_var vm env ~flags:[ Access.Function_decl ] name (Object (new_closure vm closure)))
    (List.rev funcs)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let rec eval vm env ~this (e : Ast.expr) : Value.t =
  tick vm;
  match e with
  | Ast.Number n -> Number n
  | Ast.String s -> String s
  | Ast.Regex_lit (pattern, flags) -> Builtins.make_regexp vm ~pattern ~flags
  | Ast.Bool b -> Bool b
  | Ast.Null -> Null
  | Ast.This -> this
  | Ast.Ident "undefined" -> Undefined
  | Ast.Ident "NaN" -> Number Float.nan
  | Ast.Ident "Infinity" -> Number Float.infinity
  | Ast.Ident name -> read_var vm env name
  | Ast.Func f ->
      let closure =
        { params = f.params; body = f.body; env; func_name = Option.value f.fname ~default:"" }
      in
      Object (new_closure vm closure)
  | Ast.Object_lit props ->
      let obj = new_object vm () in
      List.iter (fun (k, ve) -> set_prop vm obj k (eval vm env ~this ve)) props;
      Object obj
  | Ast.Array_lit elems ->
      Object (new_array vm (List.map (eval vm env ~this) elems))
  | Ast.Member (be, name) -> member vm (eval vm env ~this be) name
  | Ast.Index (be, ke) ->
      let base = eval vm env ~this be in
      let key = to_string vm (eval vm env ~this ke) in
      member vm base key
  | Ast.Call (callee, args) -> eval_call vm env ~this callee args
  | Ast.New (fe, args) ->
      let f = eval vm env ~this fe in
      let argv = List.map (eval vm env ~this) args in
      construct vm f argv
  | Ast.Assign (lv, re) ->
      let v = eval_assign vm env ~this lv (fun () -> eval vm env ~this re) in
      v
  | Ast.Op_assign (lv, op, re) ->
      eval_assign vm env ~this lv (fun () ->
          let cur = read_lvalue vm env ~this lv in
          binop vm op cur (eval vm env ~this re))
  | Ast.Update (lv, op, pos) ->
      let cur = to_number (read_lvalue vm env ~this lv) in
      let next = match op with Ast.Incr -> cur +. 1. | Ast.Decr -> cur -. 1. in
      ignore (eval_assign vm env ~this lv (fun () -> Number next));
      (match pos with Ast.Prefix -> Number next | Ast.Postfix -> Number cur)
  | Ast.Binop (Ast.And, a, b) ->
      let va = eval vm env ~this a in
      if to_boolean va then eval vm env ~this b else va
  | Ast.Binop (Ast.Or, a, b) ->
      let va = eval vm env ~this a in
      if to_boolean va then va else eval vm env ~this b
  | Ast.Binop (op, a, b) ->
      (* Force JS's left-to-right evaluation (OCaml's application order is
         unspecified and in practice right-to-left). *)
      let va = eval vm env ~this a in
      let vb = eval vm env ~this b in
      binop vm op va vb
  | Ast.Unop (Ast.Typeof, Ast.Ident name) -> (
      (* typeof never throws on undeclared names. *)
      match lookup_env env name with
      | Some (owner, cell) ->
          emit vm (var_loc vm ~owner:owner.env_id name) `Read;
          String (type_of !cell)
      | None ->
          emit vm ~flags:[ Access.Observed_miss ]
            (var_loc vm ~owner:vm.global.env_id name)
            `Read;
          String "undefined")
  | Ast.Unop (Ast.Delete, e) -> eval_delete vm env ~this e
  | Ast.Unop (op, e) -> unop vm op (eval vm env ~this e)
  | Ast.Cond (c, t, f) ->
      if to_boolean (eval vm env ~this c) then eval vm env ~this t else eval vm env ~this f
  | Ast.Comma (a, b) ->
      ignore (eval vm env ~this a);
      eval vm env ~this b

and read_lvalue vm env ~this = function
  | Ast.L_var name -> (
      match lookup_env env name with
      | Some _ -> read_var vm env name
      | None ->
          (* Compound assignment to an unbound name: JS throws on the read,
             but implicit creation is kinder to generated pages; the read
             miss is still recorded. *)
          emit vm ~flags:[ Access.Observed_miss ]
            (var_loc vm ~owner:vm.global.env_id name)
            `Read;
          Undefined)
  | Ast.L_member (be, name) -> member vm (eval vm env ~this be) name
  | Ast.L_index (be, ke) ->
      let base = eval vm env ~this be in
      let key = to_string vm (eval vm env ~this ke) in
      member vm base key

and eval_assign vm env ~this lv rhs =
  match lv with
  | Ast.L_var name ->
      let v = rhs () in
      write_var vm env name v;
      v
  | Ast.L_member (be, name) -> (
      let base = eval vm env ~this be in
      let v = rhs () in
      match base with
      | Object obj ->
          set_prop vm obj name v;
          v
      | Undefined | Null ->
          throw_error vm "TypeError"
            (Printf.sprintf "Cannot set property '%s' of %s" name (describe base))
      | Bool _ | Number _ | String _ -> v)
  | Ast.L_index (be, ke) -> (
      let base = eval vm env ~this be in
      let key = to_string vm (eval vm env ~this ke) in
      let v = rhs () in
      match base with
      | Object obj ->
          set_prop vm obj key v;
          v
      | Undefined | Null ->
          throw_error vm "TypeError"
            (Printf.sprintf "Cannot set property '%s' of %s" key (describe base))
      | Bool _ | Number _ | String _ -> v)

and eval_delete vm env ~this = function
  | Ast.Member (be, name) -> (
      match eval vm env ~this be with
      | Object obj ->
          emit vm (var_loc vm ~owner:obj.oid name) `Write;
          Hashtbl.remove obj.props name;
          Bool true
      | _ -> Bool true)
  | Ast.Index (be, ke) -> (
      let base = eval vm env ~this be in
      let key = to_string vm (eval vm env ~this ke) in
      match base with
      | Object obj ->
          emit vm (var_loc vm ~owner:obj.oid key) `Write;
          Hashtbl.remove obj.props key;
          Bool true
      | _ -> Bool true)
  | _ -> Bool true

and eval_call vm env ~this callee args =
  let eval_args () = List.map (eval vm env ~this) args in
  match callee with
  | Ast.Member (be, name) ->
      let base = eval vm env ~this be in
      let f = member vm ~flags:[ Access.Call_position ] base name in
      let argv = eval_args () in
      call_function vm f ~this:base argv ~what:name
  | Ast.Index (be, ke) ->
      let base = eval vm env ~this be in
      let key = to_string vm (eval vm env ~this ke) in
      let f = member vm ~flags:[ Access.Call_position ] base key in
      let argv = eval_args () in
      call_function vm f ~this:base argv ~what:key
  | Ast.Ident name ->
      let f = read_var vm env ~flags:[ Access.Call_position ] name in
      let argv = eval_args () in
      call_function vm f ~this:vm.global_this argv ~what:name
  | _ ->
      let f = eval vm env ~this callee in
      let argv = eval_args () in
      call_function vm f ~this:vm.global_this argv ~what:"(expression)"

and call_function vm f ~this argv ~what =
  match f with
  | Object ({ call = Some c; _ } as fobj) -> (
      match c with
      | Builtin (_, fn) -> fn vm ~this argv
      | Closure cl -> call_closure vm fobj cl ~this argv)
  | _ -> throw_error vm "TypeError" (Printf.sprintf "%s is not a function" what)

and call_closure vm _fobj cl ~this argv =
  tick vm;
  let env = { env_id = fresh_id vm; vars = Hashtbl.create 8; parent = Some cl.env } in
  List.iteri
    (fun i p ->
      let v = match List.nth_opt argv i with Some v -> v | None -> Undefined in
      Hashtbl.replace env.vars p (ref v))
    cl.params;
  Hashtbl.replace env.vars "arguments" (ref (Object (new_array vm argv)));
  hoist vm env cl.body;
  match exec_stmts vm env ~this cl.body with
  | C_return v -> v
  | C_normal | C_break | C_continue -> Undefined

and construct vm f argv =
  match f with
  | Object fobj when fobj.call <> None ->
      let proto =
        match get_prop_raw fobj "prototype" with
        | Some (Object p) -> p
        | Some _ | None -> vm.object_proto
      in
      let class_name =
        match fobj.call with
        | Some (Builtin (("Array" | "Date" | "Error" | "TypeError" | "ReferenceError" | "RangeError") as n, _)) ->
            if n = "Array" then "Array" else if n = "Date" then "Date" else "Error"
        | _ -> "Object"
      in
      let obj = new_object vm ~proto ~class_name () in
      let result = call_function vm f ~this:(Object obj) argv ~what:"constructor" in
      (match result with Object _ -> result | _ -> Object obj)
  | _ -> throw_error vm "TypeError" (describe f ^ " is not a constructor")

and binop vm op a b =
  match op with
  | Ast.Add -> (
      let pa = to_primitive vm a and pb = to_primitive vm b in
      match pa, pb with
      | String _, _ | _, String _ -> String (to_string vm pa ^ to_string vm pb)
      | _ -> Number (to_number pa +. to_number pb))
  | Ast.Sub -> Number (to_number a -. to_number b)
  | Ast.Mul -> Number (to_number a *. to_number b)
  | Ast.Div -> Number (to_number a /. to_number b)
  | Ast.Mod -> Number (Float.rem (to_number a) (to_number b))
  | Ast.Eq -> Bool (loose_equals vm a b)
  | Ast.Neq -> Bool (not (loose_equals vm a b))
  | Ast.Strict_eq -> Bool (strict_equals a b)
  | Ast.Strict_neq -> Bool (not (strict_equals a b))
  | Ast.Lt -> compare_op vm a b (fun c -> c < 0) (fun x y -> x < y)
  | Ast.Le -> compare_op vm a b (fun c -> c <= 0) (fun x y -> x <= y)
  | Ast.Gt -> compare_op vm a b (fun c -> c > 0) (fun x y -> x > y)
  | Ast.Ge -> compare_op vm a b (fun c -> c >= 0) (fun x y -> x >= y)
  | Ast.And | Ast.Or -> assert false (* short-circuited in [eval] *)
  | Ast.Bit_and -> Number (Int32.to_float (Int32.logand (to_int32 a) (to_int32 b)))
  | Ast.Bit_or -> Number (Int32.to_float (Int32.logor (to_int32 a) (to_int32 b)))
  | Ast.Bit_xor -> Number (Int32.to_float (Int32.logxor (to_int32 a) (to_int32 b)))
  | Ast.Shl ->
      Number (Int32.to_float (Int32.shift_left (to_int32 a) (Int32.to_int (to_int32 b) land 31)))
  | Ast.Shr ->
      Number (Int32.to_float (Int32.shift_right (to_int32 a) (Int32.to_int (to_int32 b) land 31)))
  | Ast.Ushr ->
      Number
        (Int32.to_float (Int32.shift_right_logical (to_int32 a) (Int32.to_int (to_int32 b) land 31)))
  | Ast.Instanceof -> (
      match b with
      | Object fobj when fobj.call <> None -> (
          match get_prop_raw fobj "prototype" with
          | Some (Object proto) ->
              let rec walk = function
                | Some p -> if p == proto then true else walk p.proto
                | None -> false
              in
              (match a with Object o -> Bool (walk o.proto) | _ -> Bool false)
          | Some _ | None -> Bool false)
      | _ -> throw_error vm "TypeError" "right-hand side of instanceof is not callable")
  | Ast.In -> (
      let key = to_string vm a in
      match b with
      | Object obj -> (
          match find_prop_owner obj key with
          | Some (owner, _) ->
              emit vm (var_loc vm ~owner:owner.oid key) `Read;
              Bool true
          | None ->
              emit vm ~flags:[ Access.Observed_miss ] (var_loc vm ~owner:obj.oid key) `Read;
              Bool false)
      | _ -> throw_error vm "TypeError" "right-hand side of 'in' is not an object")

and compare_op vm a b string_cmp num_cmp =
  let pa = to_primitive vm a and pb = to_primitive vm b in
  match pa, pb with
  | String x, String y -> Bool (string_cmp (compare x y))
  | _ ->
      let x = to_number pa and y = to_number pb in
      if Float.is_nan x || Float.is_nan y then Bool false else Bool (num_cmp x y)

and unop _vm op v =
  match op with
  | Ast.Neg -> Number (-.to_number v)
  | Ast.Plus -> Number (to_number v)
  | Ast.Not -> Bool (not (to_boolean v))
  | Ast.Bit_not -> Number (Int32.to_float (Int32.lognot (to_int32 v)))
  | Ast.Typeof -> String (type_of v)
  | Ast.Void -> Undefined
  | Ast.Delete -> Bool true

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and exec_stmts vm env ~this stmts =
  match stmts with
  | [] -> C_normal
  | s :: rest -> (
      match exec_stmt vm env ~this s with
      | C_normal -> exec_stmts vm env ~this rest
      | (C_break | C_continue | C_return _) as c -> c)

and exec_stmt vm env ~this (s : Ast.stmt) : completion =
  tick vm;
  match s with
  | Ast.Expr_stmt e ->
      ignore (eval vm env ~this e);
      C_normal
  | Ast.Var_decl decls ->
      (* Bindings were created by hoisting (function scope, not block or
         catch scope); only the initializers execute here. *)
      List.iter
        (fun (name, init) ->
          match init with
          | Some e -> write_var vm env name (eval vm env ~this e)
          | None -> ())
        decls;
      C_normal
  | Ast.Func_decl _ -> C_normal (* installed during hoisting *)
  | Ast.If (cond, then_, else_) ->
      if to_boolean (eval vm env ~this cond) then exec_stmts vm env ~this then_
      else exec_stmts vm env ~this else_
  | Ast.While (cond, body) ->
      let rec loop () =
        if to_boolean (eval vm env ~this cond) then
          match exec_stmts vm env ~this body with
          | C_normal | C_continue -> loop ()
          | C_break -> C_normal
          | C_return _ as r -> r
        else C_normal
      in
      loop ()
  | Ast.Do_while (body, cond) ->
      let rec loop () =
        match exec_stmts vm env ~this body with
        | C_normal | C_continue ->
            if to_boolean (eval vm env ~this cond) then loop () else C_normal
        | C_break -> C_normal
        | C_return _ as r -> r
      in
      loop ()
  | Ast.For (init, cond, step, body) ->
      (match init with
      | Some (Ast.Init_decl decls) ->
          List.iter
            (fun (name, init) ->
              match init with
              | Some e -> write_var vm env name (eval vm env ~this e)
              | None -> ())
            decls
      | Some (Ast.Init_expr e) -> ignore (eval vm env ~this e)
      | None -> ());
      let check () = match cond with Some e -> to_boolean (eval vm env ~this e) | None -> true in
      let advance () = match step with Some e -> ignore (eval vm env ~this e) | None -> () in
      let rec loop () =
        if check () then
          match exec_stmts vm env ~this body with
          | C_normal | C_continue ->
              advance ();
              loop ()
          | C_break -> C_normal
          | C_return _ as r -> r
        else C_normal
      in
      loop ()
  | Ast.For_in (name, obj_e, body) -> (
      match eval vm env ~this obj_e with
      | Object obj ->
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) obj.props [] in
          let keys =
            if obj.class_name = "Array" then List.filter (fun k -> k <> "length") keys else keys
          in
          let keys = List.sort compare keys in
          let rec loop = function
            | [] -> C_normal
            | k :: rest -> (
                if not (Hashtbl.mem obj.props k) then loop rest
                else begin
                  write_var vm env name (String k);
                  match exec_stmts vm env ~this body with
                  | C_normal | C_continue -> loop rest
                  | C_break -> C_normal
                  | C_return _ as r -> r
                end)
          in
          loop keys
      | _ -> C_normal)
  | Ast.Return e ->
      let v = match e with Some e -> eval vm env ~this e | None -> Undefined in
      C_return v
  | Ast.Break -> C_break
  | Ast.Continue -> C_continue
  | Ast.Throw e -> throw (eval vm env ~this e)
  | Ast.Try (body, catch, finally) -> (
      let run_finally completion =
        match finally with
        | None -> completion
        | Some f -> (
            match exec_stmts vm env ~this f with
            | C_normal -> completion
            | (C_break | C_continue | C_return _) as c -> c)
      in
      let result =
        try `Done (exec_stmts vm env ~this body) with
        | Js_throw v -> `Thrown v
      in
      match result with
      | `Done c -> run_finally c
      | `Thrown v -> (
          match catch with
          | Some (name, cbody) ->
              let cenv =
                { env_id = fresh_id vm; vars = Hashtbl.create 4; parent = Some env }
              in
              Hashtbl.replace cenv.vars name (ref v);
              let c =
                try `Done (exec_stmts vm cenv ~this cbody) with Js_throw v' -> `Thrown v'
              in
              (match c with
              | `Done c -> run_finally c
              | `Thrown v' ->
                  let fc = run_finally C_normal in
                  (match fc with C_normal -> throw v' | c -> c))
          | None ->
              let fc = run_finally C_normal in
              (match fc with C_normal -> throw v | c -> c)))
  | Ast.Switch (scrut_e, cases) ->
      let scrutinee = eval vm env ~this scrut_e in
      let matches guard =
        match guard with
        | Some g -> strict_equals (eval vm env ~this g) scrutinee
        | None -> false
      in
      let rec find i = function
        | [] -> None
        | (guard, _) :: rest -> if matches guard then Some i else find (i + 1) rest
      in
      let start =
        match find 0 cases with
        | Some i -> Some i
        | None ->
            let rec find_default i = function
              | [] -> None
              | (None, _) :: _ -> Some i
              | (Some _, _) :: rest -> find_default (i + 1) rest
            in
            find_default 0 cases
      in
      (match start with
      | None -> C_normal
      | Some start ->
          let rec run i = function
            | [] -> C_normal
            | (_, body) :: rest ->
                if i < start then run (i + 1) rest
                else begin
                  match exec_stmts vm env ~this body with
                  | C_normal -> run (i + 1) rest
                  | C_break -> C_normal
                  | (C_continue | C_return _) as c -> c
                end
          in
          run 0 cases)
  | Ast.Block body -> exec_stmts vm env ~this body
  | Ast.Empty -> C_normal

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let call vm f ~this args = call_function vm f ~this args ~what:"(value)"

let run_in_global vm prog =
  let body () =
    hoist vm vm.global prog;
    ignore (exec_stmts vm vm.global ~this:vm.global_this prog)
  in
  if Wr_telemetry.Telemetry.enabled vm.tm then
    Wr_telemetry.Telemetry.with_span vm.tm ~cat:"js" ~name:"eval" body
  else body ()

let read_global vm name =
  match lookup_env vm.global name with
  | Some (owner, cell) ->
      emit vm (var_loc vm ~owner:owner.env_id name) `Read;
      Some !cell
  | None ->
      emit vm ~flags:[ Access.Observed_miss ] (var_loc vm ~owner:vm.global.env_id name) `Read;
      None

let write_global vm name v = write_var vm vm.global name v

let create ?seed ?fuel ~sink () =
  let vm = create_vm ?seed ?fuel ~sink () in
  vm.call_value <- (fun f ~this args -> call vm f ~this args);
  Builtins.install vm;
  (* Sloppy-mode global [this]: an object whose properties unify with the
     global scope, so bare calls reading [this.x] behave like real engines.
     The browser replaces it with the window object. *)
  let global_obj = new_object vm ~class_name:"Global" () in
  global_obj.host <-
    Some
      {
        host_id = vm.global.env_id;
        host_kind = "global";
        host_get =
          (fun vm _obj name ->
            match read_global vm name with Some v -> Some v | None -> Some Undefined);
        host_set =
          (fun vm _obj name v ->
            write_global vm name v;
            true);
      };
  vm.global_this <- Object global_obj;
  vm

let get_prop = get_prop

let set_prop = set_prop

