(** Recursive-descent parser for MiniJS.

    Expression parsing is precedence-climbing over the standard ES5
    operator table; statements are parsed directly. A pragmatic subset of
    automatic semicolon insertion is supported: a statement may end without
    [;] before [}], at end of input, or at a line break. *)

exception Parse_error of string * int * int  (** message, line, col *)

(** [parse src] parses a complete program. Raises {!Parse_error} or
    {!Lexer.Lex_error} on malformed input. [tm] wraps lexing and parsing
    in a ["js-parse"] span when enabled. *)
val parse : ?tm:Wr_telemetry.Telemetry.t -> string -> Ast.program

(** [parse_expression src] parses a single expression (used by tests and by
    [javascript:] URL handling). *)
val parse_expression : string -> Ast.expr
