type t =
  | Undefined
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Object of obj

and obj = {
  oid : int;
  class_name : string;
  mutable proto : obj option;
  props : (string, t ref) Hashtbl.t;
  mutable call : callable option;
  mutable host : host option;
}

and callable =
  | Closure of closure
  | Builtin of string * (vm -> this:t -> t list -> t)

and closure = { params : string list; body : Ast.stmt list; env : env; func_name : string }

and env = { env_id : int; vars : (string, t ref) Hashtbl.t; parent : env option }

and host = {
  host_id : int;
  host_kind : string;
  host_get : vm -> obj -> string -> t option;
  host_set : vm -> obj -> string -> t -> bool;
}

and vm = {
  mutable sink : Wr_mem.Access.t -> unit;
  mutable instrument : bool;
  mutable current_op : Wr_hb.Op.id;
  mutable context : string;
  mutable fuel : int;
  fuel_limit : int;
  rng : Wr_support.Rng.t;
  cell_ids : (int * string, int) Hashtbl.t;
  mutable next_id : int;
  global : env;
  object_proto : obj;
  array_proto : obj;
  function_proto : obj;
  error_proto : obj;
  mutable global_this : t;
  mutable now : unit -> float;
  mutable call_value : t -> this:t -> t list -> t;
  console : string list ref;
  mutable tm : Wr_telemetry.Telemetry.t;
}

exception Js_throw of t

exception Fuel_exhausted

let fresh_id vm =
  let id = vm.next_id in
  vm.next_id <- id + 1;
  id

let cell_id vm ~owner name =
  match Hashtbl.find_opt vm.cell_ids (owner, name) with
  | Some c -> c
  | None ->
      let c = fresh_id vm in
      Hashtbl.add vm.cell_ids (owner, name) c;
      c

let mk_obj ~oid ?proto ?(class_name = "Object") () =
  { oid; class_name; proto; props = Hashtbl.create 8; call = None; host = None }

let create_vm ?(seed = 0) ?(fuel = 50_000_000) ~sink () =
  (* Bootstrap: prototypes and the global scope need ids before the vm
     record exists, so mint them from a local counter continued by vm. *)
  let counter = ref 0 in
  let next () =
    let id = !counter in
    incr counter;
    id
  in
  let object_proto = mk_obj ~oid:(next ()) () in
  let array_proto = mk_obj ~oid:(next ()) ~proto:object_proto () in
  let function_proto = mk_obj ~oid:(next ()) ~proto:object_proto () in
  let error_proto = mk_obj ~oid:(next ()) ~proto:object_proto ~class_name:"Error" () in
  let global = { env_id = next (); vars = Hashtbl.create 64; parent = None } in
  {
    sink;
    instrument = true;
    current_op = 0;
    context = "";
    fuel;
    fuel_limit = fuel;
    rng = Wr_support.Rng.of_int seed;
    cell_ids = Hashtbl.create 1024;
    next_id = !counter;
    global;
    object_proto;
    array_proto;
    function_proto;
    error_proto;
    global_this = Undefined;
    now = (fun () -> 0.);
    call_value =
      (fun _ ~this:_ _ -> failwith "Value.call_value: interpreter not initialized");
    console = ref [];
    tm = Wr_telemetry.Telemetry.disabled;
  }

let new_object vm ?proto ?(class_name = "Object") () =
  let proto = match proto with Some p -> p | None -> vm.object_proto in
  mk_obj ~oid:(fresh_id vm) ~proto ~class_name ()

let set_prop_raw obj name v =
  match Hashtbl.find_opt obj.props name with
  | Some cell -> cell := v
  | None -> Hashtbl.add obj.props name (ref v)

let rec get_prop_raw obj name =
  match Hashtbl.find_opt obj.props name with
  | Some cell -> Some !cell
  | None -> ( match obj.proto with Some p -> get_prop_raw p name | None -> None)

let new_closure vm closure =
  let obj = new_object vm ~proto:vm.function_proto ~class_name:"Function" () in
  obj.call <- Some (Closure closure);
  let prototype = new_object vm () in
  set_prop_raw prototype "constructor" (Object obj);
  set_prop_raw obj "prototype" (Object prototype);
  set_prop_raw obj "length" (Number (float_of_int (List.length closure.params)));
  set_prop_raw obj "name" (String closure.func_name);
  obj

let new_builtin vm name fn =
  let obj = new_object vm ~proto:vm.function_proto ~class_name:"Function" () in
  obj.call <- Some (Builtin (name, fn));
  set_prop_raw obj "name" (String name);
  obj

let new_array vm elems =
  let obj = new_object vm ~proto:vm.array_proto ~class_name:"Array" () in
  List.iteri (fun i v -> set_prop_raw obj (string_of_int i) v) elems;
  set_prop_raw obj "length" (Number (float_of_int (List.length elems)));
  obj

let array_length obj =
  match get_prop_raw obj "length" with
  | Some (Number n) when n >= 0. -> int_of_float n
  | Some _ | None -> 0

let array_elements obj =
  List.init (array_length obj) (fun i ->
      match Hashtbl.find_opt obj.props (string_of_int i) with
      | Some cell -> !cell
      | None -> Undefined)

let throw v = raise (Js_throw v)

let make_error vm kind msg =
  let obj = new_object vm ~proto:vm.error_proto ~class_name:"Error" () in
  set_prop_raw obj "name" (String kind);
  set_prop_raw obj "message" (String msg);
  Object obj

let throw_error vm kind msg = throw (make_error vm kind msg)

let to_boolean = function
  | Undefined | Null -> false
  | Bool b -> b
  | Number n -> n <> 0. && not (Float.is_nan n)
  | String s -> s <> ""
  | Object _ -> true

let number_of_string s =
  let s = String.trim s in
  if s = "" then 0.
  else
    match float_of_string_opt s with
    | Some f -> f
    | None -> Float.nan

let to_number = function
  | Undefined -> Float.nan
  | Null -> 0.
  | Bool true -> 1.
  | Bool false -> 0.
  | Number n -> n
  | String s -> number_of_string s
  | Object _ -> Float.nan

let is_array obj = obj.class_name = "Array"

let rec to_string vm v =
  match v with
  | Undefined -> "undefined"
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Number n -> Pretty.number_to_string n
  | String s -> s
  | Object obj -> (
      match get_prop_raw obj "toString" with
      | Some (Object f as fv) when f.call <> None ->
          to_string vm (vm.call_value fv ~this:v [])
      | Some _ | None ->
          if is_array obj then
            String.concat "," (List.map (to_string vm) (array_elements obj))
          else if obj.call <> None then "function () { [code] }"
          else Printf.sprintf "[object %s]" obj.class_name)

let to_primitive vm v =
  match v with Object _ -> String (to_string vm v) | _ -> v

let to_int32 v =
  let n = to_number v in
  if Float.is_nan n || n = Float.infinity || n = Float.neg_infinity then 0l
  else Int64.to_int32 (Int64.of_float n)

let to_uint32 v = to_int32 v

let strict_equals a b =
  match a, b with
  | Undefined, Undefined | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Number x, Number y -> x = y  (* NaN <> NaN, +0 = -0: float equality *)
  | String x, String y -> String.equal x y
  | Object x, Object y -> x == y
  | (Undefined | Null | Bool _ | Number _ | String _ | Object _), _ -> false

let rec loose_equals vm a b =
  match a, b with
  | Undefined, Null | Null, Undefined -> true
  | Number _, String _ -> loose_equals vm a (Number (to_number b))
  | String _, Number _ -> loose_equals vm (Number (to_number a)) b
  | Bool _, _ -> loose_equals vm (Number (to_number a)) b
  | _, Bool _ -> loose_equals vm a (Number (to_number b))
  | Object _, (Number _ | String _) -> loose_equals vm (to_primitive vm a) b
  | (Number _ | String _), Object _ -> loose_equals vm a (to_primitive vm b)
  | _ -> strict_equals a b

let type_of = function
  | Undefined -> "undefined"
  | Null -> "object"
  | Bool _ -> "boolean"
  | Number _ -> "number"
  | String _ -> "string"
  | Object obj -> if obj.call <> None then "function" else "object"

let is_callable = function Object obj -> obj.call <> None | _ -> false

let describe = function
  | Undefined -> "undefined"
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Number n -> Pretty.number_to_string n
  | String s -> Printf.sprintf "%S" s
  | Object obj ->
      if obj.call <> None then Printf.sprintf "<function:%d>" obj.oid
      else Printf.sprintf "<%s:%d>" obj.class_name obj.oid
