open Ast

let number_to_string n =
  if Float.is_nan n then "NaN"
  else if n = Float.infinity then "Infinity"
  else if n = Float.neg_infinity then "-Infinity"
  else if Float.is_integer n && Float.abs n < 1e21 then Printf.sprintf "%.0f" n
  else
    (* Shortest decimal that round-trips. *)
    let s = Printf.sprintf "%.12g" n in
    if float_of_string s = n then s else Printf.sprintf "%.17g" n

let string_literal s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Everything non-atomic is wrapped in parentheses, so operator precedence
   never needs reconstructing and expression statements can never be
   mistaken for blocks or function declarations. *)
let rec expr buf e =
  match e with
  | Number n -> Buffer.add_string buf (number_to_string n)
  | String s -> Buffer.add_string buf (string_literal s)
  | Regex_lit (body, fl) ->
      Buffer.add_char buf '/';
      Buffer.add_string buf body;
      Buffer.add_char buf '/';
      Buffer.add_string buf fl
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Null -> Buffer.add_string buf "null"
  | Ident name -> Buffer.add_string buf name
  | This -> Buffer.add_string buf "this"
  | _ ->
      Buffer.add_char buf '(';
      compound buf e;
      Buffer.add_char buf ')'

and compound buf e =
  match e with
  | Number _ | String _ | Regex_lit _ | Bool _ | Null | Ident _ | This -> expr buf e
  | Func { fname; params; body } ->
      Buffer.add_string buf "function";
      (match fname with
      | Some name ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf name
      | None -> ());
      Buffer.add_char buf '(';
      Buffer.add_string buf (String.concat ", " params);
      Buffer.add_string buf ") ";
      block buf body
  | Object_lit props ->
      Buffer.add_string buf "{ ";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (string_literal k);
          Buffer.add_string buf ": ";
          expr buf v)
        props;
      Buffer.add_string buf " }"
  | Array_lit elems ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          expr buf v)
        elems;
      Buffer.add_char buf ']'
  | Member (e, name) ->
      (* A numeric base must be parenthesized: "7.x" would lex "7." as the
         number and strand the property name. *)
      (match e with
      | Number _ ->
          Buffer.add_char buf '(';
          expr buf e;
          Buffer.add_char buf ')'
      | _ -> expr buf e);
      Buffer.add_char buf '.';
      Buffer.add_string buf name
  | Index (e, k) ->
      expr buf e;
      Buffer.add_char buf '[';
      expr buf k;
      Buffer.add_char buf ']'
  | Call (f, args) ->
      expr buf f;
      arg_list buf args
  | New (f, args) ->
      Buffer.add_string buf "new ";
      expr buf f;
      arg_list buf args
  | Assign (lv, e) ->
      lvalue buf lv;
      Buffer.add_string buf " = ";
      expr buf e
  | Op_assign (lv, op, e) ->
      lvalue buf lv;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_name op);
      Buffer.add_string buf "= ";
      expr buf e
  | Update (lv, op, pos) ->
      let sym = match op with Incr -> "++" | Decr -> "--" in
      (match pos with
      | Prefix ->
          Buffer.add_string buf sym;
          lvalue buf lv
      | Postfix ->
          lvalue buf lv;
          Buffer.add_string buf sym)
  | Binop (op, a, b) ->
      expr buf a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_name op);
      Buffer.add_char buf ' ';
      expr buf b
  | Unop (op, a) ->
      Buffer.add_string buf (unop_name op);
      expr buf a
  | Cond (c, t, f) ->
      expr buf c;
      Buffer.add_string buf " ? ";
      expr buf t;
      Buffer.add_string buf " : ";
      expr buf f
  | Comma (a, b) ->
      expr buf a;
      Buffer.add_string buf ", ";
      expr buf b

(* An assignment target prints exactly like its expression form at
   compound level: bare identifier, or the [Member]/[Index] cases above
   (including the numeric-base parenthesization). *)
and lvalue buf lv = compound buf (expr_of_lvalue lv)

and arg_list buf args =
  Buffer.add_char buf '(';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      expr buf a)
    args;
  Buffer.add_char buf ')'

and block buf stmts =
  Buffer.add_string buf "{ ";
  List.iter
    (fun s ->
      stmt buf s;
      Buffer.add_char buf ' ')
    stmts;
  Buffer.add_char buf '}'

and var_decls buf decls =
  Buffer.add_string buf "var ";
  List.iteri
    (fun i (name, init) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf name;
      match init with
      | Some e ->
          Buffer.add_string buf " = ";
          expr buf e
      | None -> ())
    decls

and stmt buf s =
  match s with
  | Expr_stmt e ->
      expr buf e;
      Buffer.add_char buf ';'
  | Var_decl decls ->
      var_decls buf decls;
      Buffer.add_char buf ';'
  | Func_decl { fname; params; body } ->
      Buffer.add_string buf "function ";
      Buffer.add_string buf (Option.value fname ~default:"_anonymous");
      Buffer.add_char buf '(';
      Buffer.add_string buf (String.concat ", " params);
      Buffer.add_string buf ") ";
      block buf body
  | If (cond, then_, else_) ->
      Buffer.add_string buf "if (";
      compound buf cond;
      Buffer.add_string buf ") ";
      block buf then_;
      if else_ <> [] then begin
        Buffer.add_string buf " else ";
        block buf else_
      end
  | While (cond, body) ->
      Buffer.add_string buf "while (";
      compound buf cond;
      Buffer.add_string buf ") ";
      block buf body
  | Do_while (body, cond) ->
      Buffer.add_string buf "do ";
      block buf body;
      Buffer.add_string buf " while (";
      compound buf cond;
      Buffer.add_string buf ");"
  | For (init, cond, step, body) ->
      Buffer.add_string buf "for (";
      (match init with
      | Some (Init_decl decls) -> var_decls buf decls
      | Some (Init_expr e) -> expr buf e
      | None -> ());
      Buffer.add_string buf "; ";
      (match cond with Some e -> expr buf e | None -> ());
      Buffer.add_string buf "; ";
      (match step with Some e -> expr buf e | None -> ());
      Buffer.add_string buf ") ";
      block buf body
  | For_in (name, obj, body) ->
      Buffer.add_string buf "for (var ";
      Buffer.add_string buf name;
      Buffer.add_string buf " in ";
      expr buf obj;
      Buffer.add_string buf ") ";
      block buf body
  | Return None -> Buffer.add_string buf "return;"
  | Return (Some e) ->
      Buffer.add_string buf "return ";
      expr buf e;
      Buffer.add_char buf ';'
  | Break -> Buffer.add_string buf "break;"
  | Continue -> Buffer.add_string buf "continue;"
  | Throw e ->
      Buffer.add_string buf "throw ";
      expr buf e;
      Buffer.add_char buf ';'
  | Try (body, catch, finally) ->
      Buffer.add_string buf "try ";
      block buf body;
      (match catch with
      | Some (name, cbody) ->
          Buffer.add_string buf " catch (";
          Buffer.add_string buf name;
          Buffer.add_string buf ") ";
          block buf cbody
      | None -> ());
      (match finally with
      | Some fbody ->
          Buffer.add_string buf " finally ";
          block buf fbody
      | None -> ())
  | Switch (scrutinee, cases) ->
      Buffer.add_string buf "switch (";
      compound buf scrutinee;
      Buffer.add_string buf ") { ";
      List.iter
        (fun (guard, body) ->
          (match guard with
          | Some g ->
              Buffer.add_string buf "case ";
              expr buf g;
              Buffer.add_string buf ": "
          | None -> Buffer.add_string buf "default: ");
          List.iter
            (fun s ->
              stmt buf s;
              Buffer.add_char buf ' ')
            body)
        cases;
      Buffer.add_char buf '}'
  | Block stmts ->
      Buffer.add_string buf "{ ";
      List.iter
        (fun s ->
          stmt buf s;
          Buffer.add_char buf ' ')
        stmts;
      Buffer.add_char buf '}'
  | Empty -> Buffer.add_char buf ';'

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr buf e;
  Buffer.contents buf

let stmt_to_string s =
  let buf = Buffer.create 64 in
  stmt buf s;
  Buffer.contents buf

let program_to_string p =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      stmt buf s;
      Buffer.add_char buf '\n')
    p;
  Buffer.contents buf
