(** Abstract syntax of MiniJS.

    MiniJS is the JavaScript subset the simulated browser executes: enough
    of ES5 to express every pattern the paper's evaluation encountered —
    closures, objects with prototypes, arrays, exceptions, timers, DOM
    calls, handler registration — while staying small enough to interpret
    with full instrumentation. Notable omissions (documented in DESIGN.md):
    regular-expression literals, [with], getters/setters, generators.
    [let]/[const] parse as [var]. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq  (** loose [==] / [!=] *)
  | Strict_eq | Strict_neq
  | Lt | Le | Gt | Ge
  | And | Or  (** short-circuiting *)
  | Bit_and | Bit_or | Bit_xor | Shl | Shr | Ushr
  | Instanceof | In

type unop = Neg | Plus | Not | Bit_not | Typeof | Void | Delete

type update_op = Incr | Decr

type update_pos = Prefix | Postfix

type expr =
  | Number of float
  | String of string
  | Regex_lit of string * string  (** regex literal: body, flags *)
  | Bool of bool
  | Null
  | Ident of string  (** variable reference (includes [undefined]) *)
  | This
  | Func of func
  | Object_lit of (string * expr) list
  | Array_lit of expr list
  | Member of expr * string  (** [e.name] *)
  | Index of expr * expr  (** [e\[k\]] *)
  | Call of expr * expr list
  | New of expr * expr list
  | Assign of lvalue * expr
  | Op_assign of lvalue * binop * expr  (** [+=], [-=], ... *)
  | Update of lvalue * update_op * update_pos  (** [++x], [x--], ... *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cond of expr * expr * expr
  | Comma of expr * expr

and lvalue = L_var of string | L_member of expr * string | L_index of expr * expr

and func = {
  fname : string option;  (** None for anonymous function expressions *)
  params : string list;
  body : stmt list;
}

and stmt =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | Func_decl of func  (** [fname] is always [Some _] here *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of for_init option * expr option * expr option * stmt list
  | For_in of string * expr * stmt list  (** [for (var k in e)] *)
  | Return of expr option
  | Break
  | Continue
  | Throw of expr
  | Try of stmt list * (string * stmt list) option * stmt list option
  | Switch of expr * (expr option * stmt list) list
      (** cases in order; [None] is [default] *)
  | Block of stmt list
  | Empty

and for_init = Init_expr of expr | Init_decl of (string * expr option) list

type program = stmt list

(** [expr_of_lvalue lv] is the expression form of an assignment target —
    [L_var x] is [Ident x], [L_member (e, n)] is [Member (e, n)], and so
    on. Lets consumers (the pretty-printer, the static effect analyzer)
    treat lvalues through the expression traversal instead of duplicating
    the [Member]/[Index] cases. *)
val expr_of_lvalue : lvalue -> expr

(** [fold_lvalue_children fe acc lv] folds [fe] over the subexpressions of
    an assignment target (none for [L_var]; the base and, for [L_index],
    the key). *)
val fold_lvalue_children : ('a -> expr -> 'a) -> 'a -> lvalue -> 'a

(** [fold_expr_children fe fs acc e] folds over the {e immediate} children
    of [e]: [fe] on child expressions, [fs] on child statements (function
    bodies), in source order. The node itself is not visited and no
    recursion happens beyond one level — the visitor decides where to
    descend, so the same helper serves shallow walks (hoisted-declaration
    collection that must stop at nested functions) and deep ones. *)
val fold_expr_children :
  ('a -> expr -> 'a) -> ('a -> stmt -> 'a) -> 'a -> expr -> 'a

(** [fold_stmt_children fe fs acc s] — the statement analogue of
    {!fold_expr_children}. *)
val fold_stmt_children :
  ('a -> expr -> 'a) -> ('a -> stmt -> 'a) -> 'a -> stmt -> 'a

(** [iter_exprs f prog] visits every expression in the program in pre-order,
    including inside nested function bodies. *)
val iter_exprs : (expr -> unit) -> program -> unit

(** [binop_name op] is the operator's surface syntax ("+", "===", ...). *)
val binop_name : binop -> string

(** [unop_name op] is the operator's surface syntax ("!", "typeof ", ...). *)
val unop_name : unop -> string
