(** The MiniJS standard library.

    Installs the globals real pages lean on — [Math], [Array], [Object],
    [String]/[Number]/[Boolean], [Error] family, [Date] (backed by the
    simulator's virtual clock), [console], [parseInt]/[parseFloat]/[isNaN]
    — and populates [Object.prototype], [Array.prototype] and
    [Function.prototype] ([call]/[apply]). [Math.random] draws from the
    VM's seeded generator so runs stay reproducible. *)

(** [install vm] defines the globals in [vm]'s global scope. Idempotent per
    VM only in the sense that re-installation overwrites; call once. *)
val install : Value.vm -> unit

(** [string_member vm s name] resolves primitive-string members
    (["s".length], methods); [None] if [name] is not a string member. *)
val string_member : Value.vm -> string -> string -> Value.t option

(** [number_member vm n name] resolves primitive-number members
    ([toFixed], [toString]). *)
val number_member : Value.vm -> float -> string -> Value.t option

(** [make_regexp vm ~pattern ~flags] builds a RegExp object ([test]/[exec]
    methods, [source]/[flags]/[global]/[lastIndex] properties); raises a
    SyntaxError ([Value.Js_throw]) on malformed patterns. Used for regex
    literals and the [RegExp] constructor. *)
val make_regexp : Value.vm -> pattern:string -> flags:string -> Value.t

(** [regex_cache_stats ()] is [(hits, misses, lock_contended)] for the
    process-global compiled-regex cache over the process lifetime —
    [lock_contended] counts acquisitions of the cache mutex that found it
    held by another domain. The fleet profile reads these to name (or
    exonerate) the cache as a parallel-scaling bottleneck. *)
val regex_cache_stats : unit -> int * int * int
