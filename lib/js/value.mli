(** Runtime values and VM state for MiniJS.

    The value universe is ES5's: primitives plus mutable objects with
    prototype chains. Functions are objects with a [callable]; DOM objects
    are ordinary objects with a [host] hook that lets the browser intercept
    property access (that hook is where HTML-element and event-handler
    logical accesses are emitted, see [Wr_browser.Bindings]).

    The [vm] record carries everything the paper's instrumentation needs:
    the access sink, the identifier of the operation currently executing
    (set by the browser before each turn), and the cell-interning table
    that gives every (owner, property-name) pair a stable logical-location
    identity — including never-written properties, so a read miss can race
    with a later write (Fig. 3's pattern at the JS level). *)

type t =
  | Undefined
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Object of obj

and obj = {
  oid : int;  (** unique object id; property cells intern on (oid, name) *)
  class_name : string;  (** "Object", "Array", "Function", "Error", host kinds *)
  mutable proto : obj option;
  props : (string, t ref) Hashtbl.t;
  mutable call : callable option;
  mutable host : host option;
}

and callable =
  | Closure of closure
  | Builtin of string * (vm -> this:t -> t list -> t)

and closure = {
  params : string list;
  body : Ast.stmt list;
  env : env;
  func_name : string;  (** "" when anonymous *)
}

and env = { env_id : int; vars : (string, t ref) Hashtbl.t; parent : env option }

and host = {
  host_id : int;  (** browser-side identity, e.g. a DOM node uid *)
  host_kind : string;  (** "node", "document", "window", "xhr", ... *)
  host_get : vm -> obj -> string -> t option;
      (** [Some v] intercepts the read; [None] falls through to plain
          property lookup *)
  host_set : vm -> obj -> string -> t -> bool;
      (** [true] when the write was fully handled by the host *)
}

and vm = {
  mutable sink : Wr_mem.Access.t -> unit;
  mutable instrument : bool;
      (** when false, the interpreter skips access emission entirely — the
          "uninstrumented engine" baseline of the §6.3 overhead
          comparison *)
  mutable current_op : Wr_hb.Op.id;
  mutable context : string;  (** label of the executing operation *)
  mutable fuel : int;
  fuel_limit : int;
  rng : Wr_support.Rng.t;
  cell_ids : (int * string, int) Hashtbl.t;
  mutable next_id : int;
  global : env;
  object_proto : obj;
  array_proto : obj;
  function_proto : obj;
  error_proto : obj;
  mutable global_this : t;  (** the window object once the browser binds it *)
  mutable now : unit -> float;  (** virtual clock hook ([Date.now]) *)
  mutable call_value : t -> this:t -> t list -> t;  (** tied by [Interp] *)
  console : string list ref;  (** [console.log] output, newest first *)
  mutable tm : Wr_telemetry.Telemetry.t;
      (** telemetry context; spans script evaluation when enabled *)
}

(** Raised by [throw] for JavaScript exceptions; the payload is the thrown
    value. The browser catches it at operation boundaries, mirroring how
    browsers swallow script crashes (§2.3). *)
exception Js_throw of t

(** Raised when an operation exceeds its step budget (e.g. an accidental
    infinite loop in a generated page). *)
exception Fuel_exhausted

(** [create_vm ?seed ?fuel ~sink ()] builds a VM with fresh prototypes and
    an empty global scope. [Interp.create] is the usual entry point. *)
val create_vm : ?seed:int -> ?fuel:int -> sink:(Wr_mem.Access.t -> unit) -> unit -> vm

(** [fresh_id vm] mints an id unique across objects, scopes and cells. *)
val fresh_id : vm -> int

(** [cell_id vm ~owner name] interns the logical cell for property or
    binding [name] of the object/scope identified by [owner]. *)
val cell_id : vm -> owner:int -> string -> int

(** [new_object vm ?proto ?class_name ()] allocates a plain object;
    [proto] defaults to [vm.object_proto]. *)
val new_object : vm -> ?proto:obj -> ?class_name:string -> unit -> obj

(** [new_closure vm closure] allocates a function object carrying
    [closure], with a fresh [prototype] property for [new]. *)
val new_closure : vm -> closure -> obj

(** [new_builtin vm name fn] allocates a builtin function object. *)
val new_builtin : vm -> string -> (vm -> this:t -> t list -> t) -> obj

(** [new_array vm elems] allocates an Array with the given elements and a
    correct [length]. *)
val new_array : vm -> t list -> obj

(** [array_elements obj] reads back an Array's dense elements. *)
val array_elements : obj -> t list

(** [set_prop_raw obj name v] writes a property without instrumentation —
    for engine-internal setup only (prototypes, builtin installation). *)
val set_prop_raw : obj -> string -> t -> unit

(** [get_prop_raw obj name] reads an own-or-inherited property without
    instrumentation. *)
val get_prop_raw : obj -> string -> t option

(** [throw v] raises {!Js_throw}. *)
val throw : t -> 'a

(** [make_error vm kind msg] builds an Error object ([kind] is e.g.
    "TypeError") with [name]/[message] properties. *)
val make_error : vm -> string -> string -> t

(** [throw_error vm kind msg] is [throw (make_error vm kind msg)]. *)
val throw_error : vm -> string -> string -> 'a

(** {2 Conversions (ES5 abstract operations, simplified)} *)

val to_boolean : t -> bool

(** [to_number v] follows ToNumber; objects yield NaN except via
    [to_primitive]. *)
val to_number : t -> float

(** [to_string vm v] follows ToString; objects dispatch to a [toString]
    property when callable, else ["\[object C\]"] / array join. *)
val to_string : vm -> t -> string

(** [to_primitive vm v] converts objects for [+]/comparison contexts. *)
val to_primitive : vm -> t -> t

val to_int32 : t -> int32

val to_uint32 : t -> int32

val strict_equals : t -> t -> bool

(** [loose_equals vm a b] implements [==] (simplified per DESIGN.md). *)
val loose_equals : vm -> t -> t -> bool

val type_of : t -> string

(** [is_callable v] holds for function objects. *)
val is_callable : t -> bool

(** [describe v] is a short debugging rendering (no user [toString]
    dispatch, never raises). *)
val describe : t -> string
