(** WebRacer — dynamic race detection for (simulated) web applications.

    The top-level API reproducing the paper's tool: load a page in the
    instrumented browser, optionally run automatic exploration (§5.2.2),
    and report the races found by the happens-before detector, raw and
    with the §5.3 filters applied.

    {[
      let report =
        Webracer.analyze
          (Webracer.config ~page:"<script>x = 1;</script><iframe src=\"a.html\">"
             ~resources:[ ("a.html", "<script>x = 2;</script>") ]
             ())
      in
      List.iter (fun r -> Format.printf "%a@." Wr_detect.Race.pp r) report.races
    ]} *)

module Config = Wr_browser.Config
module Race = Wr_detect.Race

type report = {
  races : Race.t list;  (** raw reports, discovery order, one per location *)
  filtered : Race.t list;  (** after the §5.3 form-field + single-dispatch filters *)
  suppressed : (string * Race.t) list;
      (** (filter name, race) attribution for each suppressed report *)
  filter_counts : (string * int) list;
      (** per-filter suppression tally ({!Wr_detect.Filters.outcome}) *)
  crashes : Wr_browser.Browser.crash list;
      (** script crashes the browser swallowed during the run *)
  console : string list;
  ops : int;  (** operations in the happens-before graph *)
  hb_edges : int;
  accesses : int;  (** instrumented accesses observed (raw, pre-dedup) *)
  detector_records : int;
      (** accesses the detector actually processed after the
          [Wr_detect.Dedup] front-end; equals [accesses] with dedup off *)
  virtual_ms : float;  (** virtual time consumed by the page *)
  explored_events : int;  (** user events injected by automatic exploration *)
  wall_clock_s : float;  (** real time spent analyzing *)
  hb_graph : Wr_hb.Graph.t;
      (** the run's happens-before graph (render with
          [Wr_hb.Graph.to_dot]) *)
  trace : Wr_detect.Trace.t option;
      (** the recorded execution trace when [config ~trace:true] *)
  metrics : Wr_support.Json.t option;
      (** telemetry metrics summary ([Wr_telemetry.Telemetry.metrics_json])
          when [config ~telemetry] passed an enabled recorder *)
}

(** [config ~page ()] builds a configuration (see {!Config.default}).
    [resources] maps URLs to bodies for external scripts, frames, images
    and XHR. *)
val config :
  page:string ->
  ?resources:(string * string) list ->
  ?seed:int ->
  ?explore:bool ->
  ?detector:Config.detector_kind ->
  ?hb_strategy:Wr_hb.Graph.strategy ->
  ?time_limit:float ->
  ?mean_latency:float ->
  ?parse_delay:float ->
  ?trace:bool ->
  ?dedup:bool ->
  ?bias:Wr_scheduler.Event_loop.bias ->
  ?telemetry:Wr_telemetry.Telemetry.t ->
  unit ->
  Config.t

(** [analyze config] runs the full pipeline: page load, automatic
    exploration (typing into every text field, dispatching every
    registered exploration-set handler, clicking [javascript:] links),
    then reporting. Deterministic in [config.seed]. *)
val analyze : Config.t -> report

(** [analyze_batch ?jobs cfgs] analyzes each configuration, spread over a
    [Wr_support.Pool] of [jobs] domains (default 1 = sequential), and
    returns the reports in input order regardless of completion order.
    Each run owns its whole stack (graph, detector, VM, RNG), so runs
    share no unguarded mutable state and the aggregate is byte-identical
    across [jobs] settings (modulo [wall_clock_s]). Configs may share an
    enabled [Wr_telemetry.Telemetry.t]: each worker domain records into
    its own sink and readers merge, so parallel batches profile exactly
    like sequential ones. *)
val analyze_batch : ?jobs:int -> Config.t list -> report list

type merged_report = {
  runs : report list;
  merged : Race.t list;  (** union across runs, first occurrence kept *)
  per_run_counts : int list;  (** raw race count per seed, in seed order *)
  stable : bool;  (** all runs reported the same race set *)
}

(** [analyze_many config ~seeds] analyzes the page once per seed and
    merges the reports: races deduplicated across runs by (type, location
    rendering), with per-run counts alongside. The paper observes that
    "races reported across different runs for the same site had little
    variance" (footnote 14); this makes that check mechanical and catches
    schedule-dependent stragglers a single run misses. [jobs] runs the
    seeds in parallel ({!analyze_batch}); the merge is seed-ordered either
    way, and [cfg]'s telemetry context (if enabled) records every run —
    per domain in the parallel path, merged at read time. *)
val analyze_many : ?jobs:int -> Config.t -> seeds:int list -> merged_report

(** [count_by_type races] tallies (html, function, variable, dispatch) —
    the per-site row shape of Tables 1 and 2. *)
val count_by_type : Race.t list -> int * int * int * int

(** [pp_report] renders a human-readable summary. *)
val pp_report : Format.formatter -> report -> unit

(** [report_to_json report] renders the full report for tooling, under a
    top-level ["schema_version"] ({!Wr_support.Schema.version}; the full
    schema is documented in DESIGN.md). Each race (raw and filtered)
    carries a ["witness"] object — provenance chains, nearest common HB
    ancestor, no-path frontier and certificate status from [Wr_explain]
    — and the report carries the per-filter suppression attribution
    (["suppressed"], ["filter_suppressed"]). The [webracer serve]
    [analyze] verb returns exactly this document. *)
val report_to_json : report -> Wr_support.Json.t

(** Adversarial replay: make a detected race {e manifest}.

    WebRacer reports races from a single execution via happens-before
    reasoning — the bad interleaving need not have happened. This
    extension re-runs the same page under many alternative schedules
    (different network-latency seeds, with parsing given a nonzero virtual
    cost so resource arrivals can interleave with it) and reports which
    schedules made the race observable: a script crash the browser hid, or
    divergent console output. It automates the verification step the
    paper's authors performed manually when classifying races as harmful
    (§6.3). *)
module Replay : sig
  type observation = {
    seed : int;
    crashes : string list;  (** crash messages the browser swallowed *)
    console : string list;
    races : int;  (** raw races detected under this schedule *)
  }

  type verdict = {
    observations : observation list;
    crashing_seeds : int list;
    console_variants : string list list;  (** distinct console outputs *)
  }

  (** [explore_schedules ?jobs config ~seeds ?parse_delay ()] re-runs
      [config] once per seed with [parse_delay] (default 2 ms/element);
      the base config's own seed is ignored. [jobs] spreads the
      schedules over {!analyze_batch}'s domain pool; observations stay
      seed-ordered (and the verdict identical) whatever [jobs] is, and
      [config]'s telemetry context records every schedule. *)
  val explore_schedules :
    ?jobs:int -> Config.t -> seeds:int list -> ?parse_delay:float -> unit -> verdict

  (** [manifests verdict] — some schedule crashed, or schedules disagree
      on console output: direct evidence the nondeterminism is
      observable. *)
  val manifests : verdict -> bool

  val pp_verdict : Format.formatter -> verdict -> unit

  (** [verdict_to_json v] renders the verdict for tooling (schedule
      count, manifest flag, crashing seeds, console variants, per-seed
      observations) under a top-level ["schema_version"]; the serve
      [replay] verb returns exactly this document. *)
  val verdict_to_json : verdict -> Wr_support.Json.t

  (** One guided schedule: a named (seed, parse_delay, channel bias)
      triple. The static triage layer derives these from the predicted
      race's MHP ancestry — see [Wr_static.Triage]. *)
  type directed = {
    label : string;
    dir_seed : int;
    dir_parse_delay : float;
    dir_bias : Wr_scheduler.Event_loop.bias;
  }

  (** [run_directed ?jobs config specs] analyzes [config] once per
      directed schedule, traces forced on, reports in spec order
      whatever [jobs] is. This is the guided replacement for blind
      {!explore_schedules}: each run perturbs only the channels its
      directive names. *)
  val run_directed : ?jobs:int -> Config.t -> directed list -> report list
end
