module Config = Wr_browser.Config
module Browser = Wr_browser.Browser
module Race = Wr_detect.Race
module Filters = Wr_detect.Filters
module Detector = Wr_detect.Detector
module Graph = Wr_hb.Graph
module Telemetry = Wr_telemetry.Telemetry
module Log = Wr_support.Log

type report = {
  races : Race.t list;
  filtered : Race.t list;
  suppressed : (string * Race.t) list;
  filter_counts : (string * int) list;
  crashes : Browser.crash list;
  console : string list;
  ops : int;
  hb_edges : int;
  accesses : int;
  detector_records : int;
      (* accesses that reached the detector after the dedup front-end;
         equals [accesses] when dedup is off *)
  virtual_ms : float;
  explored_events : int;
  wall_clock_s : float;
  hb_graph : Wr_hb.Graph.t;
  trace : Wr_detect.Trace.t option;
  metrics : Wr_support.Json.t option;
}

let config ~page ?(resources = []) ?(seed = 0) ?(explore = true)
    ?(detector = Config.Last_access) ?(hb_strategy = Wr_hb.Graph.Closure)
    ?(time_limit = 60_000.) ?(mean_latency = 20.) ?(parse_delay = 0.) ?(trace = false)
    ?(dedup = true) ?(bias = Wr_scheduler.Event_loop.neutral)
    ?(telemetry = Telemetry.disabled) () =
  {
    (Config.default ~page ()) with
    Config.resources;
    seed;
    explore;
    detector;
    hb_strategy;
    time_limit;
    mean_latency;
    parse_delay;
    trace;
    dedup;
    bias;
    telemetry;
  }

(* Automatic exploration (§5.2.2): after the page settles, dispatch every
   registered exploration-set handler, type into text fields, and click
   javascript: links — then drain the loop again. Repeatable user events
   fire twice so the single-dispatch filter (§5.3) sees that clicks and
   hovers are not once-only events; load/DOMContentLoaded keep their
   natural single dispatch. *)
let explore browser =
  let injected = ref 0 in
  List.iter
    (fun (target, event) ->
      injected := !injected + 2;
      Browser.schedule_user_event browser ~target ~event;
      Browser.schedule_user_event browser ~target ~event)
    (Browser.explorable_handler_targets browser);
  List.iter
    (fun target ->
      incr injected;
      Browser.schedule_user_typing browser ~target ~text:"user input")
    (Browser.text_input_uids browser);
  List.iter
    (fun target ->
      injected := !injected + 2;
      Browser.schedule_user_click browser ~target;
      Browser.schedule_user_click browser ~target)
    (Browser.javascript_link_uids browser);
  !injected

let analyze (cfg : Config.t) =
  let tm = cfg.Config.telemetry in
  let started = Wr_support.Clock.now () in
  Telemetry.with_span tm ~cat:"page" ~name:"analyze" (fun () ->
      let browser = Browser.create cfg in
      Browser.start browser;
      ignore (Browser.run browser);
      Telemetry.mark tm ~cat:"page" "settled";
      let explored_events =
        if cfg.Config.explore then begin
          Telemetry.mark tm ~cat:"page" "explore";
          let n = explore browser in
          ignore (Browser.run browser);
          Telemetry.mark tm ~cat:"page" "drained";
          n
        end
        else 0
      in
      let races =
        Telemetry.account tm ~cat:"detect" ~name:"races" (fun () ->
            (Browser.detector browser).Detector.races ())
      in
      let outcome = Filters.apply (Browser.run_info browser) races in
      let filtered = outcome.Filters.kept in
      if Log.enabled Log.Info then begin
        Log.info "page.analyzed"
          [
            ("ops", Wr_support.Json.Int (Graph.n_ops (Browser.graph browser)));
            ("hb_edges", Wr_support.Json.Int (Graph.n_edges (Browser.graph browser)));
            ("accesses", Wr_support.Json.Int (Browser.accesses_seen browser));
            ("explored_events", Wr_support.Json.Int explored_events);
          ];
        Log.info "filters.applied"
          (("races", Wr_support.Json.Int (List.length races))
          :: ("kept", Wr_support.Json.Int (List.length filtered))
          :: List.map (fun (f, n) -> (f, Wr_support.Json.Int n)) outcome.Filters.counts)
      end;
      (* Accumulating [incr] rather than gauge overwrites: a telemetry
         context shared across a batch (or across domains) then reads back
         whole-batch totals, and a single run still reads its own values
         exactly. *)
      Telemetry.incr tm ~by:(Graph.n_ops (Browser.graph browser)) "hb.ops";
      Telemetry.incr tm ~by:(Graph.n_edges (Browser.graph browser)) "hb.edges";
      Telemetry.incr tm ~by:(List.length races) "detect.races";
      Telemetry.incr tm ~by:(List.length filtered) "detect.filtered";
      Telemetry.incr tm ~by:explored_events "explore.injected";
      let detector_records =
        match Browser.dedup_stats browser with
        | Some s ->
            Telemetry.incr tm ~by:(Wr_detect.Dedup.swallowed s) "detect.deduped";
            s.Wr_detect.Dedup.forwarded
        | None -> Browser.accesses_seen browser
      in
      {
        races;
        filtered;
        suppressed = outcome.Filters.suppressed;
        filter_counts = outcome.Filters.counts;
        crashes = Browser.crashes browser;
        console = Browser.console browser;
        ops = Graph.n_ops (Browser.graph browser);
        hb_edges = Graph.n_edges (Browser.graph browser);
        accesses = Browser.accesses_seen browser;
        detector_records;
        virtual_ms = Browser.virtual_now browser;
        explored_events;
        wall_clock_s = Wr_support.Clock.now () -. started;
        hb_graph = Browser.graph browser;
        trace = Browser.trace browser;
        metrics = (if Telemetry.enabled tm then Some (Telemetry.metrics_json tm) else None);
      })

type merged_report = {
  runs : report list;
  merged : Race.t list;
  per_run_counts : int list;
  stable : bool;
}

(* Races from different runs live in different graphs, so identity is by
   type plus rendered location (cell numbers are deterministic per seed
   only; the location's *name* parts are stable, so render without cell
   ids by masking digits). *)
let race_key (r : Race.t) =
  let rendered = Wr_mem.Location.to_string r.Race.loc in
  let masked =
    String.map (fun c -> if c >= '0' && c <= '9' then '#' else c) rendered
  in
  (Race.type_name r.Race.race_type, masked)

(* [analyze] shares nothing mutable across calls (each run owns its
   graph, detector and VM; the JS regex cache is domain-local DLS state;
   the logger emits one channel write per line, which the runtime lock
   makes atomic; a shared [Telemetry.t] gives each domain its own sink),
   so a batch of runs spreads over the work-stealing domain fleet with
   results kept in input order — race aggregation is byte-identical
   whatever [jobs] is, however chunks migrate between deques. *)
let analyze_batch ?(jobs = 1) cfgs = Wr_support.Pool.map_jobs ~jobs analyze cfgs

let analyze_many ?(jobs = 1) cfg ~seeds =
  (* The shared telemetry context rides along on every per-seed config:
     each worker domain records into its own sink, so parallel runs are
     no longer a telemetry black box. *)
  let runs =
    analyze_batch ~jobs
      (List.map (fun seed -> { cfg with Config.seed }) seeds)
  in
  let seen = Hashtbl.create 64 in
  let merged =
    List.concat_map (fun r -> r.races) runs
    |> List.filter (fun race ->
           let key = race_key race in
           if Hashtbl.mem seen key then false
           else begin
             Hashtbl.add seen key ();
             true
           end)
  in
  let keys_of r = List.sort_uniq compare (List.map race_key r.races) in
  let stable =
    match runs with
    | [] -> true
    | first :: rest ->
        let reference = keys_of first in
        List.for_all (fun r -> keys_of r = reference) rest
  in
  { runs; merged; per_run_counts = List.map (fun r -> List.length r.races) runs; stable }

let count_by_type races =
  List.fold_left
    (fun (h, f, v, d) (r : Race.t) ->
      match r.Race.race_type with
      | Race.Html -> (h + 1, f, v, d)
      | Race.Function_race -> (h, f + 1, v, d)
      | Race.Variable -> (h, f, v + 1, d)
      | Race.Event_dispatch -> (h, f, v, d + 1))
    (0, 0, 0, 0) races

let pp_report ppf r =
  let h, f, v, d = count_by_type r.races in
  let suppression =
    if List.exists (fun (_, n) -> n > 0) r.filter_counts then
      Printf.sprintf " (suppressed: %s)"
        (String.concat ", "
           (List.map (fun (f, n) -> Printf.sprintf "%s %d" f n) r.filter_counts))
    else ""
  in
  Format.fprintf ppf
    "@[<v>races: %d (html %d, function %d, variable %d, event-dispatch %d)@,\
     after filters: %d%s@,\
     crashes hidden by the browser: %d@,\
     operations: %d  hb-edges: %d  accesses: %d@,\
     virtual time: %.0f ms  wall clock: %.3f s@]"
    (List.length r.races) h f v d (List.length r.filtered) suppression
    (List.length r.crashes) r.ops r.hb_edges r.accesses r.virtual_ms r.wall_clock_s

module Replay = struct
  type observation = {
    seed : int;
    crashes : string list;
    console : string list;
    races : int;
  }

  type verdict = {
    observations : observation list;
    crashing_seeds : int list;
    console_variants : string list list;
  }

  let observation_of_report seed (report : report) =
    {
      seed;
      crashes = List.map (fun (c : Browser.crash) -> c.Browser.message) report.crashes;
      console = report.console;
      races = List.length report.races;
    }

  let explore_schedules ?(jobs = 1) (cfg : Config.t) ~seeds ?(parse_delay = 2.) () =
    (* Same parallel path as [analyze_many]: one config per seed over
       [analyze_batch]; results come back seed-ordered, so the verdict is
       identical whatever [jobs] is. A shared telemetry context records
       per-domain and merges at read time. *)
    let reports =
      analyze_batch ~jobs
        (List.map
           (fun seed -> { cfg with Config.seed; parse_delay })
           seeds)
    in
    let observations = List.map2 observation_of_report seeds reports in
    let crashing_seeds =
      List.filter_map (fun o -> if o.crashes <> [] then Some o.seed else None) observations
    in
    let console_variants =
      List.sort_uniq compare (List.map (fun o -> o.console) observations)
    in
    { observations; crashing_seeds; console_variants }

  let manifests v = v.crashing_seeds <> [] || List.length v.console_variants > 1

  let pp_verdict ppf v =
    Format.fprintf ppf "@[<v>%d schedules tried; %d crashed; %d distinct console outputs@,"
      (List.length v.observations)
      (List.length v.crashing_seeds)
      (List.length v.console_variants);
    List.iter
      (fun o ->
        if o.crashes <> [] then
          Format.fprintf ppf "seed %d crashed: %s@," o.seed (String.concat "; " o.crashes))
      v.observations;
    (match v.console_variants with
    | [ _ ] | [] -> ()
    | variants ->
        List.iteri
          (fun i c ->
            Format.fprintf ppf "console variant %d: [%s]@," i (String.concat " | " c))
          variants);
    Format.fprintf ppf "verdict: %s@]"
      (if manifests v then "the race manifests under alternative schedules"
       else "no divergence observed (may still be harmful under other inputs)")

  let verdict_to_json v =
    let open Wr_support.Json in
    let observation o =
      Obj
        [
          ("seed", Int o.seed);
          ("crashes", List (List.map (fun s -> String s) o.crashes));
          ("console", List (List.map (fun s -> String s) o.console));
          ("races", Int o.races);
        ]
    in
    Obj
      [
        Wr_support.Schema.tag;
        ("schedules", Int (List.length v.observations));
        ("manifests", Bool (manifests v));
        ("crashing_seeds", List (List.map (fun s -> Int s) v.crashing_seeds));
        ( "console_variants",
          List
            (List.map
               (fun variant -> List (List.map (fun s -> String s) variant))
               v.console_variants) );
        ("observations", List (List.map observation v.observations));
      ]

  (* Guided mode: instead of enumerating seeds blindly, run a specific
     list of directed schedules — each a (seed, parse_delay, channel
     bias) triple chosen by the static triage layer to perturb exactly
     the orderings that could realize a predicted race. Traces are
     forced on so the caller can extract refutation certificates from
     the observed accesses. *)
  type directed = {
    label : string;
    dir_seed : int;
    dir_parse_delay : float;
    dir_bias : Wr_scheduler.Event_loop.bias;
  }

  let run_directed ?(jobs = 1) (cfg : Config.t) specs =
    analyze_batch ~jobs
      (List.map
         (fun d ->
           {
             cfg with
             Config.seed = d.dir_seed;
             parse_delay = d.dir_parse_delay;
             trace = true;
             bias = d.dir_bias;
           })
         specs)
end

let by_type_json races =
  let h, f, v, d = count_by_type races in
  Wr_support.Json.Obj
    [
      ("html", Wr_support.Json.Int h);
      ("function", Wr_support.Json.Int f);
      ("variable", Wr_support.Json.Int v);
      ("event_dispatch", Wr_support.Json.Int d);
    ]

let report_to_json r =
  let open Wr_support.Json in
  (* Every race ships with its checkable witness (provenance chains,
     nearest common HB ancestor, no-path frontier, certificate result). *)
  let race_json race =
    let w = Wr_explain.of_race r.hb_graph race in
    Race.to_json ~extra:[ ("witness", Wr_explain.to_json r.hb_graph w) ] race
  in
  let suppressed_json (filter, race) =
    Obj [ ("filter", String filter); ("race", Race.to_json race) ]
  in
  Obj
    ([
      Wr_support.Schema.tag;
      ("races", List (List.map race_json r.races));
      ("filtered", List (List.map race_json r.filtered));
      ("suppressed", List (List.map suppressed_json r.suppressed));
      ( "filter_suppressed",
        Obj (List.map (fun (f, n) -> (f, Int n)) r.filter_counts) );
      ( "crashes",
        List
          (List.map
             (fun (c : Browser.crash) ->
               Obj
                 [
                   ("op", Int c.Browser.op);
                   ("message", String c.Browser.message);
                   ("context", String c.Browser.context);
                 ])
             r.crashes) );
      ("console", List (List.map (fun s -> String s) r.console));
      ("ops", Int r.ops);
      ("hb_edges", Int r.hb_edges);
      ("accesses", Int r.accesses);
      ("detector_records", Int r.detector_records);
      ("virtual_ms", Float r.virtual_ms);
      ("explored_events", Int r.explored_events);
      ("wall_clock_s", Float r.wall_clock_s);
      ("races_total", Int (List.length r.races));
      ("filtered_total", Int (List.length r.filtered));
      ("races_by_type", by_type_json r.races);
      ("filtered_by_type", by_type_json r.filtered);
    ]
    @ (match r.metrics with None -> [] | Some m -> [ ("telemetry", m) ]))
