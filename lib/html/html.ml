type attr = { name : string; value : string }

type node = Element of element | Text of string

and element = { tag : string; attrs : attr list; children : node list }

let void_tags =
  [ "area"; "base"; "br"; "col"; "embed"; "hr"; "img"; "input"; "link"; "meta"; "param";
    "source"; "track"; "wbr" ]

let raw_text_tags = [ "script"; "style" ]

let is_void tag = List.mem tag void_tags

let is_raw_text tag = List.mem tag raw_text_tags

let attr elem name = List.find_map (fun a -> if a.name = name then Some a.value else None) elem.attrs

let has_attr elem name = List.exists (fun a -> a.name = name) elem.attrs

let el tag ?(attrs = []) children =
  Element { tag; attrs = List.map (fun (name, value) -> { name; value }) attrs; children }

let text s = Text s

(* ------------------------------------------------------------------ *)
(* Entities                                                            *)
(* ------------------------------------------------------------------ *)

let named_entities =
  [ ("amp", "&"); ("lt", "<"); ("gt", ">"); ("quot", "\""); ("apos", "'"); ("nbsp", " ") ]

let decode_entities s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | Some j when j - !i <= 8 ->
            let body = String.sub s (!i + 1) (j - !i - 1) in
            let replacement =
              if String.length body > 1 && body.[0] = '#' then
                let code =
                  if String.length body > 2 && (body.[1] = 'x' || body.[1] = 'X') then
                    int_of_string_opt ("0x" ^ String.sub body 2 (String.length body - 2))
                  else int_of_string_opt (String.sub body 1 (String.length body - 1))
                in
                match code with
                | Some c when c > 0 && c < 128 -> Some (String.make 1 (Char.chr c))
                | Some _ -> Some "?" (* non-ASCII: placeholder, fine for simulation *)
                | None -> None
              else List.assoc_opt body named_entities
            in
            (match replacement with
            | Some r ->
                Buffer.add_string buf r;
                i := j + 1
            | None ->
                Buffer.add_char buf '&';
                incr i)
        | Some _ | None ->
            Buffer.add_char buf '&';
            incr i
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let encode_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let encode_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '<' -> Buffer.add_string buf "&lt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token =
  | T_open of string * attr list * bool  (* tag, attrs, self-closing *)
  | T_close of string
  | T_text of string

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = ':'

let lowercase = String.lowercase_ascii

type cursor = { src : string; mutable pos : int }

let peek cur i = if cur.pos + i < String.length cur.src then Some cur.src.[cur.pos + i] else None

let starts_with cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.src
  && lowercase (String.sub cur.src cur.pos n) = lowercase s

let read_name cur =
  let start = cur.pos in
  while (match peek cur 0 with Some c -> is_name_char c | None -> false) do
    cur.pos <- cur.pos + 1
  done;
  lowercase (String.sub cur.src start (cur.pos - start))

let skip_space cur =
  while (match peek cur 0 with Some c -> is_space c | None -> false) do
    cur.pos <- cur.pos + 1
  done

let read_attr_value cur =
  match peek cur 0 with
  | Some (('"' | '\'') as q) ->
      cur.pos <- cur.pos + 1;
      let start = cur.pos in
      while (match peek cur 0 with Some c -> c <> q | None -> false) do
        cur.pos <- cur.pos + 1
      done;
      let v = String.sub cur.src start (cur.pos - start) in
      if peek cur 0 <> None then cur.pos <- cur.pos + 1;
      decode_entities v
  | _ ->
      let start = cur.pos in
      while
        match peek cur 0 with
        | Some c -> (not (is_space c)) && c <> '>' && c <> '/'
        | None -> false
      do
        cur.pos <- cur.pos + 1
      done;
      decode_entities (String.sub cur.src start (cur.pos - start))

let read_attrs cur =
  let attrs = ref [] in
  let self_closing = ref false in
  let continue = ref true in
  while !continue do
    skip_space cur;
    match peek cur 0 with
    | None -> continue := false
    | Some '>' ->
        cur.pos <- cur.pos + 1;
        continue := false
    | Some '/' ->
        cur.pos <- cur.pos + 1;
        (match peek cur 0 with
        | Some '>' ->
            cur.pos <- cur.pos + 1;
            self_closing := true;
            continue := false
        | Some _ | None -> ())
    | Some c when is_name_char c ->
        let name = read_name cur in
        skip_space cur;
        let value =
          if peek cur 0 = Some '=' then begin
            cur.pos <- cur.pos + 1;
            skip_space cur;
            read_attr_value cur
          end
          else ""
        in
        attrs := { name; value } :: !attrs
    | Some _ -> cur.pos <- cur.pos + 1 (* skip stray character *)
  done;
  (List.rev !attrs, !self_closing)

(* Raw-text elements: scan for the matching close tag without tokenizing. *)
let read_raw_text cur tag =
  let close = "</" ^ tag in
  let start = cur.pos in
  let n = String.length cur.src in
  let rec find i =
    if i >= n then n
    else if
      i + String.length close <= n
      && lowercase (String.sub cur.src i (String.length close)) = close
    then i
    else find (i + 1)
  in
  let stop = find cur.pos in
  let body = String.sub cur.src start (stop - start) in
  cur.pos <- stop;
  (* Consume the close tag if present. *)
  if cur.pos < n then begin
    cur.pos <- cur.pos + String.length close;
    while (match peek cur 0 with Some c -> c <> '>' | None -> false) do
      cur.pos <- cur.pos + 1
    done;
    if peek cur 0 = Some '>' then cur.pos <- cur.pos + 1
  end;
  body

let tokenize src =
  let cur = { src; pos = 0 } in
  let out = ref [] in
  let n = String.length src in
  while cur.pos < n do
    if peek cur 0 = Some '<' then begin
      if starts_with cur "<!--" then begin
        (* Comment: skip to -->. *)
        cur.pos <- cur.pos + 4;
        let rec find () =
          if cur.pos >= n then ()
          else if starts_with cur "-->" then cur.pos <- cur.pos + 3
          else begin
            cur.pos <- cur.pos + 1;
            find ()
          end
        in
        find ()
      end
      else if starts_with cur "<!" then begin
        (* Doctype or other declaration: skip to >. *)
        while (match peek cur 0 with Some c -> c <> '>' | None -> false) do
          cur.pos <- cur.pos + 1
        done;
        if peek cur 0 = Some '>' then cur.pos <- cur.pos + 1
      end
      else if peek cur 1 = Some '/' then begin
        cur.pos <- cur.pos + 2;
        let name = read_name cur in
        while (match peek cur 0 with Some c -> c <> '>' | None -> false) do
          cur.pos <- cur.pos + 1
        done;
        if peek cur 0 = Some '>' then cur.pos <- cur.pos + 1;
        if name <> "" then out := T_close name :: !out
      end
      else if (match peek cur 1 with Some c -> is_name_char c | None -> false) then begin
        cur.pos <- cur.pos + 1;
        let name = read_name cur in
        let attrs, self_closing = read_attrs cur in
        out := T_open (name, attrs, self_closing) :: !out;
        if is_raw_text name && not self_closing then begin
          let body = read_raw_text cur name in
          (* [out] is in reverse order: push text, then the close tag. *)
          out := T_close name :: T_text body :: !out
        end
      end
      else begin
        (* A lone '<' in text. *)
        out := T_text "<" :: !out;
        cur.pos <- cur.pos + 1
      end
    end
    else begin
      let start = cur.pos in
      while (match peek cur 0 with Some c -> c <> '<' | None -> false) do
        cur.pos <- cur.pos + 1
      done;
      let t = String.sub src start (cur.pos - start) in
      out := T_text (decode_entities t) :: !out
    end
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Tree builder                                                        *)
(* ------------------------------------------------------------------ *)

type frame = { f_tag : string; f_attrs : attr list; mutable f_children : node list }

let tree_build tokens =
  let root = { f_tag = "#root"; f_attrs = []; f_children = [] } in
  let stack = ref [ root ] in
  let top () = List.hd !stack in
  let add_child node =
    let t = top () in
    t.f_children <- node :: t.f_children
  in
  let close_frame () =
    match !stack with
    | f :: (parent :: _ as rest) ->
        stack := rest;
        parent.f_children <-
          Element { tag = f.f_tag; attrs = f.f_attrs; children = List.rev f.f_children }
          :: parent.f_children
    | [ _ ] | [] -> ()
  in
  let handle = function
    | T_text "" -> ()
    | T_text t -> add_child (Text t)
    | T_open (tag, attrs, self_closing) ->
        if self_closing || is_void tag then
          add_child (Element { tag; attrs; children = [] })
        else stack := { f_tag = tag; f_attrs = attrs; f_children = [] } :: !stack
    | T_close tag ->
        (* Close the matching open element if any; otherwise ignore. *)
        if List.exists (fun f -> f.f_tag = tag) !stack then begin
          let rec pop () =
            let was = (top ()).f_tag in
            close_frame ();
            if was <> tag then pop ()
          in
          if List.length !stack > 1 then pop ()
        end
  in
  List.iter handle tokens;
  while List.length !stack > 1 do
    close_frame ()
  done;
  List.rev root.f_children

let parse ?(tm = Wr_telemetry.Telemetry.disabled) src =
  let module T = Wr_telemetry.Telemetry in
  if not (T.enabled tm) then tree_build (tokenize src)
  else begin
    let tokens = T.with_span tm ~cat:"parse" ~name:"tokenize" (fun () -> tokenize src) in
    T.incr tm ~by:(List.length tokens) "html.tokens";
    T.incr tm ~by:(String.length src) "html.bytes";
    T.with_span tm ~cat:"parse" ~name:"tree-build" (fun () -> tree_build tokens)
  end

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let rec emit buf node =
  match node with
  | Text t -> Buffer.add_string buf (encode_text t)
  | Element { tag; attrs; children } ->
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun { name; value } ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf name;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (encode_attr value);
          Buffer.add_char buf '"')
        attrs;
      Buffer.add_char buf '>';
      if not (is_void tag) then begin
        if is_raw_text tag then
          List.iter (function Text t -> Buffer.add_string buf t | n -> emit buf n) children
        else List.iter (emit buf) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      end

(* Domain-local high-water mark for the serializer buffer: corpus pages
   rendered on one fleet domain are of similar size, so pre-sizing to the
   largest page seen avoids the doubling-and-copy garbage of growing from
   1k on every site (serialized pages run to hundreds of kB). Only the
   initial *size* crosses calls — the buffer itself is fresh per call. *)
let to_string_size_hint : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 1024)

let to_string nodes =
  let hint = Domain.DLS.get to_string_size_hint in
  let buf = Buffer.create !hint in
  List.iter (emit buf) nodes;
  hint := max !hint (Buffer.length buf);
  Buffer.contents buf

let rec pp ppf = function
  | Text t -> Format.fprintf ppf "%S" t
  | Element { tag; attrs; children } ->
      Format.fprintf ppf "@[<v 2>(%s%a%a)@]" tag
        (fun ppf attrs ->
          List.iter (fun { name; value } -> Format.fprintf ppf " %s=%S" name value) attrs)
        attrs
        (fun ppf children ->
          List.iter (fun c -> Format.fprintf ppf "@,%a" pp c) children)
        children
