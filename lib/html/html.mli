(** HTML parsing for the simulated browser.

    A pragmatic HTML parser: enough of the real algorithm for the pages the
    evaluation exercises — nested elements, attributes in all three
    quoting styles, boolean attributes, void elements, raw-text elements
    ([<script>]/[<style>] bodies are not tokenized as markup), comments,
    doctype, and the common named entities. Error handling is
    browser-like: unexpected close tags are ignored, unclosed elements are
    closed at end of input; nothing well-formed is rejected.

    The element {e forest} preserves source order: a pre-order walk visits
    opening tags in syntactic order, which is exactly the "E1 precedes E2"
    relation the happens-before rules for static HTML need (§3.1). *)

type attr = { name : string; value : string }

type node = Element of element | Text of string

and element = { tag : string; attrs : attr list; children : node list }

(** [parse src] parses a document or fragment into a forest. Never raises
    on malformed markup. Tag and attribute names are lowercased. [tm]
    records tokenize/tree-build spans and token counts when enabled. *)
val parse : ?tm:Wr_telemetry.Telemetry.t -> string -> node list

(** [attr elem name] finds an attribute value (first wins, names
    case-insensitive at parse time). *)
val attr : element -> string -> string option

(** [has_attr elem name] also covers boolean attributes. *)
val has_attr : element -> string -> bool

(** [el tag ?attrs children] and [text s] build nodes programmatically;
    used by the synthetic-site generator. *)
val el : string -> ?attrs:(string * string) list -> node list -> node

val text : string -> node

(** [to_string nodes] serializes a forest back to HTML (raw-text element
    bodies are emitted verbatim, other text is entity-escaped). Parsing
    the output yields an equal forest — a qcheck property. *)
val to_string : node list -> string

(** [void_tags] are elements that never have children ([img], [input],
    [br], ...). *)
val void_tags : string list

(** [raw_text_tags] are elements whose content is raw text ([script],
    [style]). *)
val raw_text_tags : string list

(** [pp] prints a readable tree for debugging. *)
val pp : Format.formatter -> node -> unit
