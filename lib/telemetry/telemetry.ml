(* Domain-safe telemetry: every domain that records into a context gets
   its own sink (span buffer, counters, histograms, accounts, marks), so
   the hot path never contends with other domains. Sinks register with
   the shared context under [reg_lock]; readers merge all sinks. Each
   sink carries its own small mutex so the serve accept loop can read
   counters while worker domains are still recording — the lock is
   domain-private in the common case and therefore uncontended. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_depth : int;
  sp_dom : int;  (* domain id, the Chrome-trace tid *)
  sp_start : float;  (* wall seconds since context creation *)
  sp_vstart : float;  (* virtual ms at span start *)
  mutable sp_dur : float;
  mutable sp_vdur : float;
  mutable sp_child : float;  (* wall time inside child spans/accounts *)
  mutable sp_vchild : float;
}

type series = { mutable buf : float array; mutable len : int }

type sink = {
  sk_dom : int;
  sk_lock : Mutex.t;
  mutable vclock : unit -> float;
  mutable spans : span array;  (* completed spans, completion order *)
  mutable n_spans : int;
  mutable stack : span list;  (* open spans, innermost first *)
  counters : (string, int ref) Hashtbl.t;
  histos : (string, series) Hashtbl.t;
  accounts : (string * string, float ref) Hashtbl.t;
  mutable marks : (string * string * float * float * int) list;
      (* cat, name, wall s, virtual ms, domain *)
}

type t = {
  enabled : bool;
  clock : unit -> float;
  t0 : float;
  reg_lock : Mutex.t;
  mutable sinks : sink list;  (* registration order *)
}

let no_span =
  {
    sp_name = ""; sp_cat = ""; sp_depth = 0; sp_dom = 0; sp_start = 0.;
    sp_vstart = 0.; sp_dur = 0.; sp_vdur = 0.; sp_child = 0.; sp_vchild = 0.;
  }

let make ~enabled ~clock =
  {
    enabled;
    clock;
    t0 = (if enabled then clock () else 0.);
    reg_lock = Mutex.create ();
    sinks = [];
  }

let disabled = make ~enabled:false ~clock:(fun () -> 0.)

let create ?(clock = Unix.gettimeofday) () = make ~enabled:true ~clock

let enabled t = t.enabled

let new_sink () =
  {
    sk_dom = (Domain.self () :> int);
    sk_lock = Mutex.create ();
    vclock = (fun () -> 0.);
    spans = Array.make 64 no_span;
    n_spans = 0;
    stack = [];
    counters = Hashtbl.create 16;
    histos = Hashtbl.create 16;
    accounts = Hashtbl.create 16;
    marks = [];
  }

(* One process-global DLS slot caching the last (context, sink) pair used
   on this domain: the common case — one enabled context per domain — is
   a single physical-equality check, no lock. The slow path registers a
   fresh sink (or refinds this domain's existing one) under [reg_lock]. *)
let dls_cache : (t * sink) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let sink t =
  let cell = Domain.DLS.get dls_cache in
  match !cell with
  | Some (t', s) when t' == t -> s
  | _ ->
      let dom = (Domain.self () :> int) in
      Mutex.lock t.reg_lock;
      let s =
        match List.find_opt (fun s -> s.sk_dom = dom) t.sinks with
        | Some s -> s
        | None ->
            let s = new_sink () in
            t.sinks <- t.sinks @ [ s ];
            s
      in
      Mutex.unlock t.reg_lock;
      cell := Some (t, s);
      s

(* Merge-time snapshot of the registered sinks, oldest first. *)
let all_sinks t =
  Mutex.lock t.reg_lock;
  let sinks = t.sinks in
  Mutex.unlock t.reg_lock;
  sinks

let domains t = List.length (all_sinks t)

let locked s f =
  Mutex.lock s.sk_lock;
  match f () with
  | v ->
      Mutex.unlock s.sk_lock;
      v
  | exception e ->
      Mutex.unlock s.sk_lock;
      raise e

let set_virtual_clock t f =
  if t.enabled then begin
    let s = sink t in
    locked s (fun () -> s.vclock <- f)
  end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let push_span s sp =
  if s.n_spans = Array.length s.spans then begin
    let spans = Array.make (2 * s.n_spans) no_span in
    Array.blit s.spans 0 spans 0 s.n_spans;
    s.spans <- spans
  end;
  s.spans.(s.n_spans) <- sp;
  s.n_spans <- s.n_spans + 1

let finish_span t s sp =
  let now = t.clock () in
  let vnow = s.vclock () in
  locked s (fun () ->
      sp.sp_dur <- now -. t.t0 -. sp.sp_start;
      sp.sp_vdur <- vnow -. sp.sp_vstart;
      (match s.stack with
      | top :: rest when top == sp ->
          s.stack <- rest;
          (match rest with
          | parent :: _ ->
              parent.sp_child <- parent.sp_child +. sp.sp_dur;
              parent.sp_vchild <- parent.sp_vchild +. sp.sp_vdur
          | [] -> ())
      | _ ->
          (* Unbalanced close (an exception skipped an inner span): drop the
             stale frames above [sp] without attributing child time. *)
          s.stack <- List.filter (fun x -> not (x == sp)) s.stack);
      push_span s sp)

let with_span t ~cat ~name f =
  if not t.enabled then f ()
  else begin
    let s = sink t in
    let sp =
      locked s (fun () ->
          let sp =
            {
              sp_name = name;
              sp_cat = cat;
              sp_depth = List.length s.stack;
              sp_dom = s.sk_dom;
              sp_start = t.clock () -. t.t0;
              sp_vstart = s.vclock ();
              sp_dur = 0.;
              sp_vdur = 0.;
              sp_child = 0.;
              sp_vchild = 0.;
            }
          in
          s.stack <- sp :: s.stack;
          sp)
    in
    match f () with
    | v ->
        finish_span t s sp;
        v
    | exception e ->
        finish_span t s sp;
        raise e
  end

(* A completed span observed from outside the recording domain — the GC
   runtime probe converts [Runtime_events] phase events (which carry
   their own timestamps and happened on some other domain) into spans.
   The span lands in the *calling* domain's sink (single consumer, no
   cross-domain contention) but is tagged with the originating domain's
   id, so the Chrome trace shows it on that domain's tid, interleaved
   with the spans the domain recorded itself. Depth 1 keeps injected
   time out of [total_wall]'s depth-0 denominator — GC time happens
   inside analysis spans, so counting it at depth 0 would double it. *)
let inject_span t ~dom ~cat ~name ~start_s ~dur_s =
  if t.enabled then begin
    let s = sink t in
    let sp =
      {
        sp_name = name;
        sp_cat = cat;
        sp_depth = 1;
        sp_dom = dom;
        sp_start = start_s -. t.t0;
        sp_vstart = 0.;
        sp_dur = dur_s;
        sp_vdur = 0.;
        sp_child = 0.;
        sp_vchild = 0.;
      }
    in
    locked s (fun () -> push_span s sp)
  end

let mark t ~cat name =
  if t.enabled then begin
    let s = sink t in
    let now = t.clock () -. t.t0 in
    locked s (fun () -> s.marks <- (cat, name, now, s.vclock (), s.sk_dom) :: s.marks)
  end

(* ------------------------------------------------------------------ *)
(* Counters, histograms, accounted time                                *)
(* ------------------------------------------------------------------ *)

let counter_ref s name =
  match Hashtbl.find_opt s.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add s.counters name r;
      r

let incr t ?(by = 1) name =
  if t.enabled then begin
    let s = sink t in
    locked s (fun () ->
        let r = counter_ref s name in
        r := !r + by)
  end

(* A gauge overwrite is domain-local; the merged reading sums the last
   value written by each domain, so gauges written from a single domain
   (the serve accept loop) read back exactly. *)
let set_counter t name v =
  if t.enabled then begin
    let s = sink t in
    locked s (fun () -> counter_ref s name := v)
  end

let fold_counters t f acc =
  List.fold_left
    (fun acc s ->
      locked s (fun () ->
          Hashtbl.fold (fun name r acc -> f acc name !r) s.counters acc))
    acc (all_sinks t)

let counter_value t name =
  fold_counters t (fun acc n v -> if n = name then acc + v else acc) 0

let counters t =
  let tbl = Hashtbl.create 16 in
  fold_counters t
    (fun () name v ->
      match Hashtbl.find_opt tbl name with
      | Some r -> r := !r + v
      | None -> Hashtbl.add tbl name (ref v))
    ();
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe t name v =
  if t.enabled then begin
    let s = sink t in
    locked s (fun () ->
        let series =
          match Hashtbl.find_opt s.histos name with
          | Some x -> x
          | None ->
              let x = { buf = Array.make 64 0.; len = 0 } in
              Hashtbl.add s.histos name x;
              x
        in
        if series.len = Array.length series.buf then begin
          let buf = Array.make (2 * series.len) 0. in
          Array.blit series.buf 0 buf 0 series.len;
          series.buf <- buf
        end;
        series.buf.(series.len) <- v;
        series.len <- series.len + 1)
  end

let account t ~cat ~name f =
  if not t.enabled then f ()
  else begin
    let s = sink t in
    let started = t.clock () in
    let finish () =
      let dt = t.clock () -. started in
      locked s (fun () ->
          (match Hashtbl.find_opt s.accounts (cat, name) with
          | Some r -> r := !r +. dt
          | None -> Hashtbl.add s.accounts (cat, name) (ref dt));
          match s.stack with
          | top :: _ -> top.sp_child <- top.sp_child +. dt
          | [] -> ())
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summarize_samples xs n =
  Array.sort Float.compare xs;
  let l = Array.to_list xs in
  {
    count = n;
    mean = Wr_support.Stats.fmean l;
    p50 = Wr_support.Stats.fpercentile l 50.;
    p95 = Wr_support.Stats.fpercentile l 95.;
    p99 = Wr_support.Stats.fpercentile l 99.;
    max = (if n = 0 then 0. else xs.(n - 1));
  }

(* Merge the per-domain sample buffers for [name] into one summary. *)
let merged_series t name =
  let parts =
    List.filter_map
      (fun s ->
        locked s (fun () ->
            Option.map
              (fun x -> Array.sub x.buf 0 x.len)
              (Hashtbl.find_opt s.histos name)))
      (all_sinks t)
  in
  match parts with [] -> None | parts -> Some (Array.concat parts)

let histogram t name =
  Option.map (fun xs -> summarize_samples xs (Array.length xs)) (merged_series t name)

let histo_names t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      locked s (fun () ->
          Hashtbl.iter (fun name _ -> Hashtbl.replace tbl name ()) s.histos))
    (all_sinks t);
  Hashtbl.fold (fun name () acc -> name :: acc) tbl [] |> List.sort String.compare

let histograms t =
  List.filter_map (fun name -> Option.map (fun h -> (name, h)) (histogram t name))
    (histo_names t)

let n_spans t =
  List.fold_left (fun acc s -> acc + locked s (fun () -> s.n_spans)) 0 (all_sinks t)

(* The pipeline's category order; unknown categories sort after, by name. *)
let canonical_cats =
  [ "parse"; "js"; "dispatch"; "scheduler"; "net"; "detect"; "serve"; "page" ]

let phase_totals t =
  let totals : (string, float ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let cell cat =
    match Hashtbl.find_opt totals cat with
    | Some c -> c
    | None ->
        let c = (ref 0., ref 0.) in
        Hashtbl.add totals cat c;
        c
  in
  List.iter
    (fun s ->
      locked s (fun () ->
          for i = 0 to s.n_spans - 1 do
            let sp = s.spans.(i) in
            let w, v = cell sp.sp_cat in
            w := !w +. Float.max 0. (sp.sp_dur -. sp.sp_child);
            v := !v +. Float.max 0. (sp.sp_vdur -. sp.sp_vchild)
          done;
          Hashtbl.iter
            (fun (cat, _) r ->
              let w, _ = cell cat in
              w := !w +. !r)
            s.accounts))
    (all_sinks t);
  let rank cat =
    let rec idx i = function
      | [] -> List.length canonical_cats
      | c :: rest -> if c = cat then i else idx (i + 1) rest
    in
    idx 0 canonical_cats
  in
  Hashtbl.fold (fun cat (w, v) acc -> (cat, !w, !v) :: acc) totals []
  |> List.sort (fun (a, _, _) (b, _, _) ->
         match compare (rank a) (rank b) with 0 -> String.compare a b | c -> c)

(* Depth-0 span time summed across domains: with [jobs] domains busy this
   counts work time (like CPU seconds), not elapsed wall time. *)
let total_wall t =
  List.fold_left
    (fun acc s ->
      locked s (fun () ->
          let total = ref 0. in
          for i = 0 to s.n_spans - 1 do
            let sp = s.spans.(i) in
            if sp.sp_depth = 0 then total := !total +. sp.sp_dur
          done;
          acc +. !total))
    0. (all_sinks t)

let phase_label = function
  | "parse" -> "parse"
  | "js" -> "js-exec"
  | "dispatch" -> "event-dispatch"
  | "scheduler" -> "scheduler"
  | "net" -> "network"
  | "detect" -> "detector"
  | "serve" -> "serve"
  | "page" -> "other"
  | cat -> cat

let phase_table t =
  let total = total_wall t in
  let pct w = if total > 0. then 100. *. w /. total else 0. in
  let row (cat, w, v) =
    [
      phase_label cat;
      Printf.sprintf "%.2f" (w *. 1e3);
      Printf.sprintf "%.1f%%" (pct w);
      Printf.sprintf "%.1f" v;
    ]
  in
  let rows = List.map row (phase_totals t) in
  let total_row =
    [ "total"; Printf.sprintf "%.2f" (total *. 1e3); "100.0%"; "" ]
  in
  Wr_support.Table.render
    ~header:[ "phase"; "wall(ms)"; "share"; "virtual(ms)" ]
    (rows @ [ total_row ])

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let to_chrome_trace t =
  let open Wr_support.Json in
  let us s = Float (s *. 1e6) in
  let sinks = all_sinks t in
  let main_tid = match sinks with s :: _ -> s.sk_dom | [] -> 0 in
  let process_meta =
    Obj
      [
        ("name", String "process_name");
        ("ph", String "M");
        ("pid", Int 1);
        ("tid", Int main_tid);
        ("args", Obj [ ("name", String "webracer") ]);
      ]
  in
  (* Injected spans can carry domain ids with no sink of their own
     (a GC slice on a domain that never recorded telemetry); give every
     tid that appears anywhere its named thread row. *)
  let tids = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace tids s.sk_dom ()) sinks;
  List.iter
    (fun s ->
      locked s (fun () ->
          for i = 0 to s.n_spans - 1 do
            Hashtbl.replace tids s.spans.(i).sp_dom ()
          done))
    sinks;
  let thread_meta =
    Hashtbl.fold (fun tid () acc -> tid :: acc) tids []
    |> List.sort compare
    |> List.map (fun tid ->
           Obj
             [
               ("name", String "thread_name");
               ("ph", String "M");
               ("pid", Int 1);
               ("tid", Int tid);
               ( "args",
                 Obj
                   [
                     ( "name",
                       String
                         (if tid = main_tid then "domain-0 (main)"
                          else Printf.sprintf "domain-%d" tid) );
                   ] );
             ])
  in
  let span_events =
    List.concat_map
      (fun s ->
        locked s (fun () ->
            let events = ref [] in
            for i = s.n_spans - 1 downto 0 do
              let sp = s.spans.(i) in
              events :=
                Obj
                  [
                    ("name", String sp.sp_name);
                    ("cat", String sp.sp_cat);
                    ("ph", String "X");
                    ("ts", us sp.sp_start);
                    ("dur", us sp.sp_dur);
                    ("pid", Int 1);
                    ("tid", Int sp.sp_dom);
                    ( "args",
                      Obj
                        [
                          ("virtual_ts_ms", Float sp.sp_vstart);
                          ("virtual_dur_ms", Float sp.sp_vdur);
                        ] );
                  ]
                :: !events
            done;
            !events))
      sinks
  in
  let mark_events =
    List.concat_map
      (fun s ->
        locked s (fun () ->
            List.rev_map
              (fun (cat, name, wall, virt, dom) ->
                Obj
                  [
                    ("name", String name);
                    ("cat", String cat);
                    ("ph", String "i");
                    ("ts", us wall);
                    ("pid", Int 1);
                    ("tid", Int dom);
                    ("s", String "t");
                    ("args", Obj [ ("virtual_ts_ms", Float virt) ]);
                  ])
              s.marks))
      sinks
  in
  let end_ts = if t.enabled then t.clock () -. t.t0 else 0. in
  let counter_events =
    List.map
      (fun (name, v) ->
        Obj
          [
            ("name", String name);
            ("ph", String "C");
            ("ts", us end_ts);
            ("pid", Int 1);
            ("tid", Int main_tid);
            ("args", Obj [ ("value", Int v) ]);
          ])
      (counters t)
  in
  Obj
    [
      ( "traceEvents",
        List
          ((process_meta :: thread_meta) @ span_events @ mark_events
          @ counter_events) );
      ("displayTimeUnit", String "ms");
    ]

let metrics_json t =
  let open Wr_support.Json in
  let phases =
    List.map
      (fun (cat, w, v) ->
        (cat, Obj [ ("wall_s", Float w); ("virtual_ms", Float v) ]))
      (phase_totals t)
  in
  let histo_fields =
    List.map
      (fun (name, h) ->
        ( name,
          Obj
            [
              ("count", Int h.count);
              ("mean", Float h.mean);
              ("p50", Float h.p50);
              ("p95", Float h.p95);
              ("p99", Float h.p99);
              ("max", Float h.max);
            ] ))
      (histograms t)
  in
  Obj
    [
      ("total_wall_s", Float (total_wall t));
      ("spans", Int (n_spans t));
      ("domains", Int (domains t));
      ("phases", Obj phases);
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) (counters t)));
      ("histograms", Obj histo_fields);
    ]
