type span = {
  sp_name : string;
  sp_cat : string;
  sp_depth : int;
  sp_start : float;  (* wall seconds since context creation *)
  sp_vstart : float;  (* virtual ms at span start *)
  mutable sp_dur : float;
  mutable sp_vdur : float;
  mutable sp_child : float;  (* wall time inside child spans/accounts *)
  mutable sp_vchild : float;
}

type series = { mutable buf : float array; mutable len : int }

type t = {
  enabled : bool;
  clock : unit -> float;
  mutable vclock : unit -> float;
  t0 : float;
  mutable spans : span array;  (* completed spans, completion order *)
  mutable n_spans : int;
  mutable stack : span list;  (* open spans, innermost first *)
  counters : (string, int ref) Hashtbl.t;
  histos : (string, series) Hashtbl.t;
  accounts : (string * string, float ref) Hashtbl.t;
  mutable marks : (string * string * float * float) list;  (* cat, name, wall s, virtual ms *)
}

let no_span =
  {
    sp_name = ""; sp_cat = ""; sp_depth = 0; sp_start = 0.; sp_vstart = 0.;
    sp_dur = 0.; sp_vdur = 0.; sp_child = 0.; sp_vchild = 0.;
  }

let make ~enabled ~clock =
  {
    enabled;
    clock;
    vclock = (fun () -> 0.);
    t0 = (if enabled then clock () else 0.);
    spans = Array.make 64 no_span;
    n_spans = 0;
    stack = [];
    counters = Hashtbl.create 16;
    histos = Hashtbl.create 16;
    accounts = Hashtbl.create 16;
    marks = [];
  }

let disabled = make ~enabled:false ~clock:(fun () -> 0.)

let create ?(clock = Unix.gettimeofday) () = make ~enabled:true ~clock

let enabled t = t.enabled

let set_virtual_clock t f = if t.enabled then t.vclock <- f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let push_span t sp =
  if t.n_spans = Array.length t.spans then begin
    let spans = Array.make (2 * t.n_spans) no_span in
    Array.blit t.spans 0 spans 0 t.n_spans;
    t.spans <- spans
  end;
  t.spans.(t.n_spans) <- sp;
  t.n_spans <- t.n_spans + 1

let finish_span t sp =
  sp.sp_dur <- t.clock () -. t.t0 -. sp.sp_start;
  sp.sp_vdur <- t.vclock () -. sp.sp_vstart;
  (match t.stack with
  | top :: rest when top == sp ->
      t.stack <- rest;
      (match rest with
      | parent :: _ ->
          parent.sp_child <- parent.sp_child +. sp.sp_dur;
          parent.sp_vchild <- parent.sp_vchild +. sp.sp_vdur
      | [] -> ())
  | _ ->
      (* Unbalanced close (an exception skipped an inner span): drop the
         stale frames above [sp] without attributing child time. *)
      t.stack <- List.filter (fun s -> not (s == sp)) t.stack);
  push_span t sp

let with_span t ~cat ~name f =
  if not t.enabled then f ()
  else begin
    let sp =
      {
        sp_name = name;
        sp_cat = cat;
        sp_depth = List.length t.stack;
        sp_start = t.clock () -. t.t0;
        sp_vstart = t.vclock ();
        sp_dur = 0.;
        sp_vdur = 0.;
        sp_child = 0.;
        sp_vchild = 0.;
      }
    in
    t.stack <- sp :: t.stack;
    match f () with
    | v ->
        finish_span t sp;
        v
    | exception e ->
        finish_span t sp;
        raise e
  end

let mark t ~cat name =
  if t.enabled then t.marks <- (cat, name, t.clock () -. t.t0, t.vclock ()) :: t.marks

(* ------------------------------------------------------------------ *)
(* Counters, histograms, accounted time                                *)
(* ------------------------------------------------------------------ *)

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t ?(by = 1) name =
  if t.enabled then begin
    let r = counter_ref t name in
    r := !r + by
  end

let set_counter t name v = if t.enabled then counter_ref t name := v

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe t name v =
  if t.enabled then begin
    let s =
      match Hashtbl.find_opt t.histos name with
      | Some s -> s
      | None ->
          let s = { buf = Array.make 64 0.; len = 0 } in
          Hashtbl.add t.histos name s;
          s
    in
    if s.len = Array.length s.buf then begin
      let buf = Array.make (2 * s.len) 0. in
      Array.blit s.buf 0 buf 0 s.len;
      s.buf <- buf
    end;
    s.buf.(s.len) <- v;
    s.len <- s.len + 1
  end

let account t ~cat ~name f =
  if not t.enabled then f ()
  else begin
    let started = t.clock () in
    let finish () =
      let dt = t.clock () -. started in
      (match Hashtbl.find_opt t.accounts (cat, name) with
      | Some r -> r := !r +. dt
      | None -> Hashtbl.add t.accounts (cat, name) (ref dt));
      match t.stack with top :: _ -> top.sp_child <- top.sp_child +. dt | [] -> ()
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

type histogram_summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

let summarize s =
  let xs = Array.sub s.buf 0 s.len in
  Array.sort Float.compare xs;
  let l = Array.to_list xs in
  {
    count = s.len;
    mean = Wr_support.Stats.fmean l;
    p50 = Wr_support.Stats.fpercentile l 50.;
    p95 = Wr_support.Stats.fpercentile l 95.;
    max = (if s.len = 0 then 0. else xs.(s.len - 1));
  }

let histogram t name = Option.map summarize (Hashtbl.find_opt t.histos name)

let histograms t =
  Hashtbl.fold (fun name s acc -> (name, summarize s) :: acc) t.histos []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let n_spans t = t.n_spans

(* The pipeline's category order; unknown categories sort after, by name. *)
let canonical_cats = [ "parse"; "js"; "dispatch"; "scheduler"; "net"; "detect"; "page" ]

let phase_totals t =
  let totals : (string, float ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let cell cat =
    match Hashtbl.find_opt totals cat with
    | Some c -> c
    | None ->
        let c = (ref 0., ref 0.) in
        Hashtbl.add totals cat c;
        c
  in
  for i = 0 to t.n_spans - 1 do
    let sp = t.spans.(i) in
    let w, v = cell sp.sp_cat in
    w := !w +. Float.max 0. (sp.sp_dur -. sp.sp_child);
    v := !v +. Float.max 0. (sp.sp_vdur -. sp.sp_vchild)
  done;
  Hashtbl.iter
    (fun (cat, _) r ->
      let w, _ = cell cat in
      w := !w +. !r)
    t.accounts;
  let rank cat =
    let rec idx i = function
      | [] -> List.length canonical_cats
      | c :: rest -> if c = cat then i else idx (i + 1) rest
    in
    idx 0 canonical_cats
  in
  Hashtbl.fold (fun cat (w, v) acc -> (cat, !w, !v) :: acc) totals []
  |> List.sort (fun (a, _, _) (b, _, _) ->
         match compare (rank a) (rank b) with 0 -> String.compare a b | c -> c)

let total_wall t =
  let total = ref 0. in
  for i = 0 to t.n_spans - 1 do
    let sp = t.spans.(i) in
    if sp.sp_depth = 0 then total := !total +. sp.sp_dur
  done;
  !total

let phase_label = function
  | "parse" -> "parse"
  | "js" -> "js-exec"
  | "dispatch" -> "event-dispatch"
  | "scheduler" -> "scheduler"
  | "net" -> "network"
  | "detect" -> "detector"
  | "page" -> "other"
  | cat -> cat

let phase_table t =
  let total = total_wall t in
  let pct w = if total > 0. then 100. *. w /. total else 0. in
  let row (cat, w, v) =
    [
      phase_label cat;
      Printf.sprintf "%.2f" (w *. 1e3);
      Printf.sprintf "%.1f%%" (pct w);
      Printf.sprintf "%.1f" v;
    ]
  in
  let rows = List.map row (phase_totals t) in
  let total_row =
    [ "total"; Printf.sprintf "%.2f" (total *. 1e3); "100.0%"; "" ]
  in
  Wr_support.Table.render
    ~header:[ "phase"; "wall(ms)"; "share"; "virtual(ms)" ]
    (rows @ [ total_row ])

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let to_chrome_trace t =
  let open Wr_support.Json in
  let us s = Float (s *. 1e6) in
  let meta =
    Obj
      [
        ("name", String "process_name");
        ("ph", String "M");
        ("pid", Int 1);
        ("tid", Int 1);
        ("args", Obj [ ("name", String "webracer") ]);
      ]
  in
  let span_events = ref [] in
  for i = t.n_spans - 1 downto 0 do
    let sp = t.spans.(i) in
    span_events :=
      Obj
        [
          ("name", String sp.sp_name);
          ("cat", String sp.sp_cat);
          ("ph", String "X");
          ("ts", us sp.sp_start);
          ("dur", us sp.sp_dur);
          ("pid", Int 1);
          ("tid", Int 1);
          ( "args",
            Obj
              [
                ("virtual_ts_ms", Float sp.sp_vstart);
                ("virtual_dur_ms", Float sp.sp_vdur);
              ] );
        ]
      :: !span_events
  done;
  let mark_events =
    List.rev_map
      (fun (cat, name, wall, virt) ->
        Obj
          [
            ("name", String name);
            ("cat", String cat);
            ("ph", String "i");
            ("ts", us wall);
            ("pid", Int 1);
            ("tid", Int 1);
            ("s", String "t");
            ("args", Obj [ ("virtual_ts_ms", Float virt) ]);
          ])
      t.marks
  in
  let end_ts = if t.enabled then t.clock () -. t.t0 else 0. in
  let counter_events =
    List.map
      (fun (name, v) ->
        Obj
          [
            ("name", String name);
            ("ph", String "C");
            ("ts", us end_ts);
            ("pid", Int 1);
            ("tid", Int 1);
            ("args", Obj [ ("value", Int v) ]);
          ])
      (counters t)
  in
  Obj
    [
      ("traceEvents", List ((meta :: !span_events) @ mark_events @ counter_events));
      ("displayTimeUnit", String "ms");
    ]

let metrics_json t =
  let open Wr_support.Json in
  let phases =
    List.map
      (fun (cat, w, v) ->
        (cat, Obj [ ("wall_s", Float w); ("virtual_ms", Float v) ]))
      (phase_totals t)
  in
  let histo_fields =
    List.map
      (fun (name, h) ->
        ( name,
          Obj
            [
              ("count", Int h.count);
              ("mean", Float h.mean);
              ("p50", Float h.p50);
              ("p95", Float h.p95);
              ("max", Float h.max);
            ] ))
      (histograms t)
  in
  Obj
    [
      ("total_wall_s", Float (total_wall t));
      ("spans", Int t.n_spans);
      ("phases", Obj phases);
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) (counters t)));
      ("histograms", Obj histo_fields);
    ]
