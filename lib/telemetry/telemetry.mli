(** Structured telemetry for the detection pipeline — domain-safe.

    A context records three kinds of signal, all behind a single [enabled]
    flag so a disabled context is a near-no-op on hot paths:

    - {e spans}: nested timed regions ([with_span]) capturing wall-clock
      and virtual-time start/duration. Exclusive (self) time per category
      is what the phase-breakdown table reports, so the phases of one run
      sum to the root span's duration;
    - {e counters} and {e accounted time}: monotonic tallies ([incr]) and
      aggregate timers ([account]) for paths too hot to give each call its
      own span (the detector records one access per instrumented read or
      write). Accounted time is deducted from the enclosing span's self
      time, keeping the phase table additive;
    - {e histograms}: raw float samples ([observe]) summarized as
      count/mean/p50/p95/p99/max (scheduler queue depth, network latency).

    {b Domain model.} One context may be shared across OCaml 5 domains:
    each recording domain lazily gets its own {e sink} (span buffer,
    counter table, histogram buffers), so recording never contends across
    domains — the span stack, in particular, is per-domain, matching the
    per-domain dynamic call structure. Readers ([counters],
    [phase_totals], the exporters) merge all sinks: counters sum across
    domains, histograms concatenate, and spans keep the id of the domain
    that recorded them, which [to_chrome_trace] emits as the event's
    [tid] (one named thread row per domain). Reading while other domains
    record is safe and yields a point-in-time snapshot.

    Exporters: [to_chrome_trace] emits Chrome [trace_event] JSON loadable
    in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto};
    [metrics_json] a compact summary; [phase_table] the CLI's breakdown. *)

type t

(** [disabled] is the shared inert context: every recording operation on
    it is a cheap guard-and-return. *)
val disabled : t

(** [create ?clock ()] builds an enabled context. [clock] returns wall
    seconds (default [Unix.gettimeofday]); tests inject a fake clock. *)
val create : ?clock:(unit -> float) -> unit -> t

val enabled : t -> bool

(** [domains t] is the number of domains that have recorded into [t] so
    far (0 until the first recording operation). *)
val domains : t -> int

(** [set_virtual_clock t f] installs the virtual-time source (ms), e.g.
    [Event_loop.now], for the {e calling} domain's sink — each domain
    analyzes its own page and owns its own virtual clock. Until set,
    virtual timestamps on that domain read 0. *)
val set_virtual_clock : t -> (unit -> float) -> unit

(** [with_span t ~cat ~name f] runs [f] inside a span on the calling
    domain's stack. Spans nest with the dynamic call structure;
    exceptions still close the span. *)
val with_span : t -> cat:string -> name:string -> (unit -> 'a) -> 'a

(** [mark t ~cat name] records an instant event (page lifecycle edges:
    DOMContentLoaded, load, ...). *)
val mark : t -> cat:string -> string -> unit

(** [inject_span t ~dom ~cat ~name ~start_s ~dur_s] records an
    already-completed span observed from outside the recording domain —
    the GC runtime probe ({!Runtime_probe}) turning [Runtime_events]
    phase events into trace slices. [start_s] is absolute wall-clock
    seconds on the context's clock timeline; [dom] is the domain the
    span belongs to (its Chrome-trace tid). Injected spans sit at depth
    1 (outside [total_wall]'s depth-0 denominator, since GC time elapses
    inside the analysis spans it interrupts) and contribute to [cat]'s
    phase totals. *)
val inject_span :
  t -> dom:int -> cat:string -> name:string -> start_s:float -> dur_s:float -> unit

(** [incr t ?by name] bumps a monotonic counter (domain-local; merged
    readings sum across domains). *)
val incr : t -> ?by:int -> string -> unit

(** [set_counter t name v] overwrites a counter (final gauges). The
    overwrite is domain-local: a merged reading sums the last value
    written by each domain, so gauges written from a single domain read
    back exactly. *)
val set_counter : t -> string -> int -> unit

(** [observe t name v] appends a sample to histogram [name]. *)
val observe : t -> string -> float -> unit

(** [account t ~cat ~name f] times [f] into the aggregate timer
    [(cat, name)] without allocating a span, and attributes the time to
    [cat] in the phase totals (deducting it from the enclosing span). *)
val account : t -> cat:string -> name:string -> (unit -> 'a) -> 'a

type histogram_summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val counters : t -> (string * int) list
(** Sorted by name, summed across domains. *)

val counter_value : t -> string -> int
(** 0 when absent; summed across domains. *)

val histogram : t -> string -> histogram_summary option
(** Samples merged across domains. *)

val histograms : t -> (string * histogram_summary) list
(** Sorted by name. *)

(** [phase_totals t] is the exclusive wall seconds and virtual ms per
    category, merged across domains: span self-times plus accounted time,
    in canonical pipeline order (parse, js, dispatch, scheduler, net,
    detect, serve, page) followed by any other categories
    alphabetically. *)
val phase_totals : t -> (string * float * float) list

(** [total_wall t] is the summed duration of completed depth-0 spans
    across all domains — the denominator of the phase table's
    percentages. With several domains busy this counts work time (like
    CPU seconds), not elapsed time. *)
val total_wall : t -> float

val n_spans : t -> int

(** [phase_table t] renders the per-phase breakdown as an aligned text
    table (phase, wall ms, %, virtual ms) with a total row. *)
val phase_table : t -> string

(** [to_chrome_trace t] is the run as Chrome [trace_event] JSON:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] with one complete
    ("ph":"X") event per span carrying the recording domain's id as its
    [tid], a named thread row per domain, instants for marks, and counter
    events. *)
val to_chrome_trace : t -> Wr_support.Json.t

(** [metrics_json t] is the compact summary: phases, counters, histogram
    summaries, span count, domain count and total wall time. *)
val metrics_json : t -> Wr_support.Json.t
