(* Self-monitoring GC observer built on OCaml's [Runtime_events].

   The runtime emits begin/end phase events (minor collection, major
   slice, stop-the-world sections) into a per-domain ring buffer; this
   module attaches an in-process cursor and folds those events into the
   application's own observability surface:

   - per-domain pause histograms ([Wr_support.Stats.Histo], ms) and
     GC-time totals, read back as {!stats} — the numbers behind
     [corpus --profile]'s GC table;
   - telemetry spans ([Telemetry.inject_span], category "gc") so Chrome
     traces show GC slices interleaved with the analysis spans on each
     domain's tid.

   Nested phases are flattened to their root: a minor collection emits
   many sub-phase events ([minor_local_roots], [minor_clear], ...), but
   one root begin/end pair bounds the whole pause, which is the slice a
   trace reader wants and the pause a histogram should count once.

   Two bookkeeping problems are solved with custom user events (which
   travel through the same ring, stamped by the same clock):

   - {e clock calibration}: event timestamps are monotonic nanoseconds,
     telemetry runs on wall-clock seconds. At [start] we write a sync
     event bracketed by [Unix.gettimeofday]; observing it fixes the
     offset.
   - {e ring -> domain identity}: callbacks report a ring index, and
     rings are recycled as domains come and go, so ring index is not a
     domain id. Every domain joining a [Wr_support.Pool] fleet (and the
     domain calling [start]) writes an announce event carrying its
     [Domain.self] id, which binds its ring to the id the rest of the
     telemetry uses as tid.

   A background systhread drains the cursor every [interval_s] so ring
   buffers do not overflow mid-run (overflow is counted, not fatal);
   [stop] joins it and takes a final drain, making the numbers exact. *)

module RE = Runtime_events
module Histo = Wr_support.Stats.Histo
module Json = Wr_support.Json
module Log = Wr_support.Log

type RE.User.tag += Probe_sync | Probe_announce

(* User events register once per process (re-registering a name raises). *)
let sync_ev = lazy (RE.User.register "webracer.probe_sync" Probe_sync RE.Type.int)

let announce_ev =
  lazy (RE.User.register "webracer.domain_announce" Probe_announce RE.Type.int)

type ring_state = {
  ring : int;
  mutable dom : int;  (* announced domain id; defaults to the ring index *)
  mutable depth : int;  (* current phase-nesting depth *)
  mutable root_ts : float;  (* monotonic s of the open root phase *)
  mutable seen : int;  (* most specific kind inside the open root window *)
  pauses : Histo.t;  (* every root GC pause, ms *)
  mutable minor_pauses : int;
  mutable major_slices : int;
  mutable stw_pauses : int;
  mutable gc_s : float;  (* total time inside root GC phases *)
}

type t = {
  mutable running : bool;
  tm : Telemetry.t;
  interval : float;
  lock : Mutex.t;  (* guards rings/offset/lost: poller vs. readers *)
  rings : (int, ring_state) Hashtbl.t;
  mutable offset_s : float;  (* wall = mono + offset; nan until synced *)
  mutable sync_wall : float;  (* wall-clock instant of the sync write *)
  mutable lost : int;
  started_at : float;
  mutable stopped_at : float option;
  mutable cursor : RE.cursor option;
  mutable callbacks : RE.Callbacks.t option;
  mutable poller : Thread.t option;
}

type domain_gc = {
  dom : int;
  ring : int;
  minor_pauses : int;
  major_slices : int;
  stw_pauses : int;
  pauses : Histo.t;
  gc_s : float;
}

let mono_s ts = Int64.to_float (RE.Timestamp.to_int64 ts) *. 1e-9

(* Spans shorter than this are histogrammed but not injected into the
   Chrome trace: a busy run takes tens of thousands of sub-50µs minor
   pauses, and a trace that size helps nobody. *)
let span_min_s = 20e-6

(* Minor collections run inside stop-the-world sections, so the root of
   a minor pause is an [EV_STW_*] phase with [EV_MINOR] nested below it.
   A root window is therefore classified by the most specific phase seen
   anywhere inside it: minor beats major beats bare STW. Encoded as an
   int rank so "most specific so far" is [max]. *)
let rank_of = function
  | RE.EV_MINOR | RE.EV_MINOR_LOCAL_ROOTS | RE.EV_MINOR_FINALIZED
  | RE.EV_EXPLICIT_GC_MINOR ->
      2
  | RE.EV_STW_API_BARRIER | RE.EV_STW_HANDLER | RE.EV_STW_LEADER
  | RE.EV_MAJOR_GC_STW ->
      0
  | _ -> 1

let kind_of_rank = function 2 -> `Minor | 1 -> `Major | _ -> `Stw

let span_name = function
  | `Minor -> "gc.minor"
  | `Stw -> "gc.stw"
  | `Major -> "gc.major"

let ring_state t ring =
  match Hashtbl.find_opt t.rings ring with
  | Some st -> st
  | None ->
      let st =
        {
          ring;
          dom = ring;
          depth = 0;
          root_ts = 0.;
          seen = 0;
          pauses = Histo.create ();
          minor_pauses = 0;
          major_slices = 0;
          stw_pauses = 0;
          gc_s = 0.;
        }
      in
      Hashtbl.add t.rings ring st;
      st

(* Callbacks run inside [read_poll], always under [t.lock]. *)
let make_callbacks t =
  let runtime_begin ring ts phase =
    let st = ring_state t ring in
    if st.depth = 0 then begin
      st.root_ts <- mono_s ts;
      st.seen <- rank_of phase
    end
    else st.seen <- max st.seen (rank_of phase);
    st.depth <- st.depth + 1
  in
  let runtime_end ring ts _phase =
    let st = ring_state t ring in
    if st.depth > 0 then begin
      st.depth <- st.depth - 1;
      if st.depth = 0 then begin
        let dur_s = Float.max 0. (mono_s ts -. st.root_ts) in
        let kind = kind_of_rank st.seen in
        Histo.add st.pauses (dur_s *. 1e3);
        st.gc_s <- st.gc_s +. dur_s;
        (match kind with
        | `Minor -> st.minor_pauses <- st.minor_pauses + 1
        | `Major -> st.major_slices <- st.major_slices + 1
        | `Stw -> st.stw_pauses <- st.stw_pauses + 1);
        if Telemetry.enabled t.tm then begin
          Telemetry.observe t.tm
            (match kind with
            | `Minor -> "gc.minor_pause_ms"
            | `Major -> "gc.major_pause_ms"
            | `Stw -> "gc.stw_pause_ms")
            (dur_s *. 1e3);
          if dur_s >= span_min_s && not (Float.is_nan t.offset_s) then
            Telemetry.inject_span t.tm ~dom:st.dom ~cat:"gc"
              ~name:(span_name kind)
              ~start_s:(st.root_ts +. t.offset_s)
              ~dur_s
        end
      end
    end
  in
  let lost_events _ring n =
    t.lost <- t.lost + n;
    Telemetry.incr t.tm ~by:n "gc.lost_events"
  in
  RE.Callbacks.create ~runtime_begin ~runtime_end ~lost_events ()
  |> RE.Callbacks.add_user_event RE.Type.int (fun ring ts ev v ->
         match RE.User.tag ev with
         | Probe_announce -> (ring_state t ring).dom <- v
         | Probe_sync ->
             if Float.is_nan t.offset_s then
               t.offset_s <- t.sync_wall -. mono_s ts
         | _ -> ())

(* --- lifecycle --------------------------------------------------------- *)

let registry_lock = Mutex.create ()

let current_probe : t option ref = ref None

let announce () =
  match !current_probe with
  | Some p when p.running -> (
      try RE.User.write (Lazy.force announce_ev) (Domain.self () :> int)
      with _ -> ())
  | _ -> ()

let inert tm =
  {
    running = false;
    tm;
    interval = 0.;
    lock = Mutex.create ();
    rings = Hashtbl.create 1;
    offset_s = Float.nan;
    sync_wall = 0.;
    lost = 0;
    started_at = Unix.gettimeofday ();
    stopped_at = Some (Unix.gettimeofday ());
    cursor = None;
    callbacks = None;
    poller = None;
  }

let poll t =
  if t.running then begin
    Mutex.lock t.lock;
    (match (t.cursor, t.callbacks) with
    | Some cursor, Some cbs -> ( try ignore (RE.read_poll cursor cbs None) with _ -> ())
    | _ -> ());
    Mutex.unlock t.lock
  end

let rec poller_loop t =
  if t.running then begin
    poll t;
    Thread.delay t.interval;
    poller_loop t
  end

let start ?(telemetry = Telemetry.disabled) ?(interval_s = 0.02)
    ?(inject_failure = false) () =
  Mutex.lock registry_lock;
  let result =
    match !current_probe with
    | Some p when p.running -> p
    | _ -> (
        try
          if inject_failure then failwith "injected ring-creation failure";
          RE.start ();
          (* A previous probe's [stop] leaves collection paused. *)
          (try RE.resume () with _ -> ());
          let cursor = RE.create_cursor None in
          let t =
            {
              running = true;
              tm = telemetry;
              interval = Float.max 0.001 interval_s;
              lock = Mutex.create ();
              rings = Hashtbl.create 8;
              offset_s = Float.nan;
              sync_wall = 0.;
              lost = 0;
              started_at = Unix.gettimeofday ();
              stopped_at = None;
              cursor = Some cursor;
              callbacks = None;
              poller = None;
            }
          in
          t.callbacks <- Some (make_callbacks t);
          (* Calibrate: the sync event's ring timestamp equals (up to the
             write latency) this wall-clock instant. *)
          let w0 = Unix.gettimeofday () in
          RE.User.write (Lazy.force sync_ev) 0;
          let w1 = Unix.gettimeofday () in
          t.sync_wall <- (w0 +. w1) /. 2.;
          current_probe := Some t;
          Wr_support.Pool.set_worker_hook announce;
          announce ();
          t.poller <- Some (Thread.create poller_loop t);
          t
        with e ->
          Log.warn "gc_probe.start_failed"
            [ ("error", Json.String (Printexc.to_string e)) ];
          let t = inert telemetry in
          current_probe := Some t;
          t)
  in
  Mutex.unlock registry_lock;
  result

let active t = t.running

let stop t =
  Mutex.lock registry_lock;
  if t.running then begin
    t.running <- false;
    (match t.poller with Some th -> Thread.join th | None -> ());
    t.poller <- None;
    (* Final drain so post-[stop] stats are exact. *)
    Mutex.lock t.lock;
    (match (t.cursor, t.callbacks) with
    | Some cursor, Some cbs ->
        (try ignore (RE.read_poll cursor cbs None) with _ -> ());
        (try RE.free_cursor cursor with _ -> ())
    | _ -> ());
    t.cursor <- None;
    Mutex.unlock t.lock;
    (try RE.pause () with _ -> ());
    t.stopped_at <- Some (Unix.gettimeofday ());
    Wr_support.Pool.set_worker_hook (fun () -> ());
    (match !current_probe with Some p when p == t -> current_probe := None | _ -> ())
  end;
  Mutex.unlock registry_lock

let current () =
  match !current_probe with Some p when p.running -> Some p | _ -> None

(* --- readings ---------------------------------------------------------- *)

let elapsed_s t =
  (match t.stopped_at with Some s -> s | None -> Unix.gettimeofday ())
  -. t.started_at

let lost_events t = t.lost

let stats t =
  Mutex.lock t.lock;
  let rows =
    Hashtbl.fold
      (fun _ (st : ring_state) acc ->
        if Histo.count st.pauses = 0 then acc
        else
          {
            dom = st.dom;
            ring = st.ring;
            minor_pauses = st.minor_pauses;
            major_slices = st.major_slices;
            stw_pauses = st.stw_pauses;
            (* merge-with-empty = snapshot copy, safe to read unlocked *)
            pauses = Histo.merge st.pauses (Histo.create ());
            gc_s = st.gc_s;
          }
          :: acc)
      t.rings []
  in
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare (a.dom, a.ring) (b.dom, b.ring)) rows

let current_stats () = match current () with Some p -> stats p | None -> []

let row_json ?elapsed r =
  Json.Obj
    ([
       ("dom", Json.Int r.dom);
       ("ring", Json.Int r.ring);
       ("minor_pauses", Json.Int r.minor_pauses);
       ("major_slices", Json.Int r.major_slices);
       ("stw_pauses", Json.Int r.stw_pauses);
       ("pause_ms", Histo.summary_json r.pauses);
       ("gc_s", Json.Float r.gc_s);
     ]
    @
    match elapsed with
    | Some e when e > 0. -> [ ("gc_share", Json.Float (r.gc_s /. e)) ]
    | _ -> [])

let stats_json t =
  let elapsed = elapsed_s t in
  Json.Obj
    [
      ("source", Json.String "runtime_events");
      ("elapsed_s", Json.Float elapsed);
      ("lost_events", Json.Int t.lost);
      ("domains", Json.List (List.map (row_json ~elapsed) (stats t)));
    ]

let render_stats t =
  let elapsed = elapsed_s t in
  let header =
    [ "domain"; "minor"; "major-slices"; "stw"; "pause-p50(ms)"; "p99(ms)";
      "max(ms)"; "gc(ms)"; "gc-share" ]
  in
  let row r =
    [
      Printf.sprintf "dom-%d" r.dom;
      string_of_int r.minor_pauses;
      string_of_int r.major_slices;
      string_of_int r.stw_pauses;
      Printf.sprintf "%.3f" (Histo.percentile r.pauses 50.);
      Printf.sprintf "%.3f" (Histo.percentile r.pauses 99.);
      Printf.sprintf "%.3f" (Histo.maximum r.pauses);
      Printf.sprintf "%.1f" (r.gc_s *. 1e3);
      (if elapsed > 0. then Printf.sprintf "%.1f%%" (100. *. r.gc_s /. elapsed)
       else "-");
    ]
  in
  match stats t with
  | [] -> "no GC events observed\n"
  | rows ->
      Wr_support.Table.render ~header (List.map row rows)
      ^ Printf.sprintf "GC pauses over %.2f s; %d ring events lost\n" elapsed
          t.lost
