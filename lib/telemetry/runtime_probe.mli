(** GC observability from the runtime's own event stream.

    A probe is a self-monitoring [Runtime_events] consumer: it starts the
    runtime's event ring, attaches an in-process cursor, and drains it
    from a background thread, folding per-domain GC phase events
    (minor collections, major slices, stop-the-world sections — nested
    sub-phases flattened to their root pause) into:

    - per-domain pause histograms (ms) and GC-time totals ({!stats}),
      the source of [corpus --profile]'s GC table and the [gc] rows of
      the serve [watch] snapshots;
    - telemetry spans (category ["gc"]) via {!Telemetry.inject_span},
      so Chrome traces show GC slices on each domain's tid, interleaved
      with the analysis spans they interrupt.

    Ring indices are recycled across domain lifetimes, so the probe maps
    rings to OCaml domain ids with an announce user event written by
    every domain joining a [Wr_support.Pool] fleet (wired through
    [Pool.set_worker_hook] while a probe runs). Event timestamps are
    monotonic nanoseconds; a calibration event written at {!start}
    anchors them to wall-clock seconds for span injection.

    One probe runs per process ({!start} returns the active probe if one
    is already running). All failure paths degrade to an inert probe —
    GC observability is never worth crashing an analysis. *)

type t

(** Per-domain GC reading. [dom] is the OCaml domain id (joins
    [Pool.domain_stats.dom] and the Chrome-trace tid) — falls back to
    the raw ring index if the domain never announced itself. [pauses]
    holds every root GC pause in milliseconds. [gc_s] is total seconds
    spent inside root GC phases. *)
type domain_gc = {
  dom : int;
  ring : int;
  minor_pauses : int;
  major_slices : int;
  stw_pauses : int;
  pauses : Wr_support.Stats.Histo.t;
  gc_s : float;
}

(** [start ?telemetry ?interval_s ?inject_failure ()] starts (or
    returns the already-running) probe. [telemetry] receives GC spans
    and pause histograms (default {!Telemetry.disabled}: stats only).
    [interval_s] is the poll period of the drain thread (default 20 ms,
    clamped to >= 1 ms). [inject_failure] forces the creation path to
    raise — the test hook for the graceful-failure guarantee: on any
    setup error the result is an inert probe ([active] = false) and the
    failure is logged, never raised. *)
val start :
  ?telemetry:Telemetry.t ->
  ?interval_s:float ->
  ?inject_failure:bool ->
  unit ->
  t

(** [active t] — is [t] collecting? [false] for inert (failed) probes
    and after {!stop}. *)
val active : t -> bool

(** [stop t] joins the drain thread, takes a final exact drain, frees
    the cursor and pauses runtime event collection; idempotent. A new
    probe may be started afterwards. *)
val stop : t -> unit

(** The process-wide running probe, if any. *)
val current : unit -> t option

(** [stats t] is a point-in-time snapshot, one row per ring that
    recorded at least one pause, sorted by domain id. Exact after
    {!stop}. *)
val stats : t -> domain_gc list

(** [{!stats} of {!current}]; [[]] when no probe is running. The serve
    daemon reads this for [watch] snapshots. *)
val current_stats : unit -> domain_gc list

(** Seconds the probe has been (or was, once stopped) running — the
    denominator of GC-share figures. *)
val elapsed_s : t -> float

(** Events dropped to ring-buffer overflow (counted, not fatal). *)
val lost_events : t -> int

(** [stats_json t] is the machine-readable reading:
    [{source: "runtime_events"; elapsed_s; lost_events; domains:
    [{dom; ring; minor_pauses; major_slices; stw_pauses; pause_ms:
    summary; gc_s; gc_share}]}]. *)
val stats_json : t -> Wr_support.Json.t

(** [render_stats t] is the CLI table: one row per domain — pause
    counts by kind, p50/p99/max pause (ms), total GC time and GC-time
    share of probe elapsed time. *)
val render_stats : t -> string
