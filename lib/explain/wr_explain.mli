(** Race witnesses — checkable evidence for every reported race.

    The paper spends most of §6 on filters and classification because raw
    race reports are unreadable: a developer is told two accesses conflict
    but not {e why} the tool believes they can interleave. This module
    turns each {!Wr_detect.Race.t} into a {!witness} extracted from the
    happens-before graph:

    - a {b provenance chain} per racing operation — the path of creation
      edges from the root operation (which parser step, script, timer or
      dispatched event ultimately spawned it);
    - the {b nearest common HB ancestor} — the latest operation ordered
      before both accesses, where their control flow forked;
    - the {b no-path frontier} — a certificate that [happens_before]
      holds in neither direction. Operation ids are assigned in schedule
      order and every HB edge points from an older to a newer operation,
      so the newer access trivially cannot reach the older one; the
      frontier proves the nontrivial direction. It is the set of
      operations backward-reachable from the newer access without passing
      below the older one. {!verify} re-checks it against the graph:
      the newer access is in the set, the older is not, and the set is
      closed under predecessor edges that stay at or above the older
      access — so any HB path between the accesses would contradict the
      set's closure. A fabricated frontier (an op dropped, or a pair that
      is in fact ordered) fails the check.

    Witnesses are self-contained evidence: they can be re-verified against
    the graph by a third party without trusting the detector, pretty
    printed, exported as JSON, or rendered as a highlighted Graphviz
    subgraph containing only the evidence operations. *)

module Op = Wr_hb.Op
module Graph = Wr_hb.Graph
module Race = Wr_detect.Race

type witness = {
  race : Race.t;
  older : Op.id;  (** the racing operation with the smaller id *)
  newer : Op.id;  (** the racing operation with the larger id *)
  older_provenance : Op.info list;
      (** creation chain, root first, ending at [older] *)
  newer_provenance : Op.info list;  (** likewise for [newer] *)
  common_ancestor : Op.id option;
      (** nearest common HB ancestor of the two, [None] when the only
          shared history is absent (disconnected roots) *)
  frontier : Op.id list;
      (** sorted certificate set for [not (happens_before older newer)]:
          ops backward-reachable from [newer] with ids >= [older] *)
}

(** [provenance g op] walks creation edges from [op] back to a root: at
    each step it follows the operation's {e first-added} predecessor edge
    (the edge recorded when the operation was scheduled — later edges are
    ordering constraints, not provenance). Returned root-first, ending at
    [op]. *)
val provenance : Graph.t -> Op.id -> Op.info list

(** [nearest_common_ancestor g a b] is the largest-id operation that
    happens-before both [a] and [b] (ids order creation, so "largest id"
    is "nearest"). [None] when no operation precedes both. *)
val nearest_common_ancestor : Graph.t -> Op.id -> Op.id -> Op.id option

(** [frontier g ~older ~newer] computes the certificate set: every
    operation backward-reachable from [newer] along predecessor edges
    without visiting an id below [older]. Requires [older < newer].
    [older] is a member iff [happens_before g older newer] — so for a
    true race it is absent. Sorted ascending. *)
val frontier : Graph.t -> older:Op.id -> newer:Op.id -> Op.id list

(** [of_race g race] extracts the full witness for a reported race. *)
val of_race : Graph.t -> Race.t -> witness

(** [of_races g races] is [List.map (of_race g) races]. *)
val of_races : Graph.t -> Race.t list -> witness list

(** [verify g w] re-checks the witness against the graph — the
    machine-checkable part of the report:

    - [older < newer] and both ids exist (rules out the newer-to-older
      direction by topological id order);
    - the frontier contains [newer], excludes [older], stays within
      [[older, newer]], and is closed under predecessors [>= older] —
      together certifying [not (happens_before older newer)];
    - both provenance chains start at a root (no predecessors), end at
      their access, and follow direct graph edges;
    - the common ancestor, when present, happens-before both accesses.

    Returns [false] on any forged or stale component. *)
val verify : Graph.t -> witness -> bool

(** [dot g w] renders the witness as a Graphviz subgraph: only the
    evidence operations (both provenance chains, the frontier, the common
    ancestor), with the racing operations outlined red and the provenance
    paths drawn as bold red edges. *)
val dot : Graph.t -> witness -> string

(** [dot_many g ws] — one subgraph covering several witnesses (the
    [--dot] export when no single race is selected). *)
val dot_many : Graph.t -> witness list -> string

val pp : Graph.t -> Format.formatter -> witness -> unit

(** [to_json g w] includes the witness fields plus [certified], the
    result of {!verify} at export time, under a top-level
    ["schema_version"] ({!Wr_support.Schema.version}). *)
val to_json : Graph.t -> witness -> Wr_support.Json.t
