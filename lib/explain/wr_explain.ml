module Op = Wr_hb.Op
module Graph = Wr_hb.Graph
module Race = Wr_detect.Race
module Bitset = Wr_support.Bitset
module Json = Wr_support.Json

type witness = {
  race : Race.t;
  older : Op.id;
  newer : Op.id;
  older_provenance : Op.info list;
  newer_provenance : Op.info list;
  common_ancestor : Op.id option;
  frontier : Op.id list;
}

(* The first edge added to an operation is the one recorded when it was
   scheduled (parse chaining, timer registration, dispatch anchoring);
   later edges are ordering constraints. Predecessors are consed as edges
   arrive, so the creation edge sits at the tail of the list. *)
let creation_pred preds =
  match preds with [] -> None | _ :: _ -> Some (List.nth preds (List.length preds - 1))

let provenance g op =
  let rec up acc op =
    let info = Graph.info g op in
    match creation_pred (Graph.preds g op) with
    | None -> info :: acc
    | Some p -> up (info :: acc) p
  in
  up [] op

let nearest_common_ancestor g a b =
  (* An ancestor of both has an id below both (edges point old -> new);
     ids order creation, so the first hit scanning downward is nearest. *)
  let rec scan c =
    if c < 0 then None
    else if Graph.happens_before g c a && Graph.happens_before g c b then Some c
    else scan (c - 1)
  in
  scan (min a b - 1)

let frontier g ~older ~newer =
  if older >= newer then
    invalid_arg
      (Printf.sprintf "Wr_explain.frontier: need older < newer, got %d >= %d" older newer);
  let seen = Bitset.create (Graph.n_ops g) in
  let rec walk stack =
    match stack with
    | [] -> ()
    | n :: rest ->
        if n < older || Bitset.mem seen n then walk rest
        else begin
          Bitset.add seen n;
          walk (List.rev_append (Graph.preds g n) rest)
        end
  in
  walk [ newer ];
  let out = ref [] in
  Bitset.iter (fun n -> out := n :: !out) seen;
  List.rev !out

let of_race g (race : Race.t) =
  let a = race.Race.first.Wr_mem.Access.op and b = race.Race.second.Wr_mem.Access.op in
  let older = min a b and newer = max a b in
  {
    race;
    older;
    newer;
    older_provenance = provenance g older;
    newer_provenance = provenance g newer;
    common_ancestor = nearest_common_ancestor g older newer;
    frontier = frontier g ~older ~newer;
  }

let of_races g races = List.map (of_race g) races

(* --- Certificate check ---------------------------------------------------

   Soundness of the frontier certificate: suppose a path
   older = p0 -> p1 -> ... -> pk = newer existed. Edges only point from
   older ids to newer ids, so every pi >= older. The set contains pk and
   is closed under predecessors >= older, so by downward induction p0 =
   older is a member — contradicting the membership checks. Extraction
   yields exactly the backward-reachable set, which satisfies closure by
   construction; any forged set either breaks closure or, when the pair
   is truly ordered, is forced to contain [older]. *)

let valid_id g id = id >= 0 && id < Graph.n_ops g

let check_frontier g ~older ~newer frontier =
  valid_id g older && valid_id g newer && older < newer
  &&
  let set = Bitset.create (Graph.n_ops g) in
  List.for_all
    (fun n ->
      if valid_id g n && n >= older && n <= newer then begin
        Bitset.add set n;
        true
      end
      else false)
    frontier
  && Bitset.mem set newer
  && (not (Bitset.mem set older))
  && List.for_all
       (fun n ->
         List.for_all
           (fun p -> p < older || Bitset.mem set p)
           (Graph.preds g n))
       frontier

let check_provenance g chain ~target =
  match chain with
  | [] -> false
  | root :: _ ->
      valid_id g root.Op.id
      && Graph.preds g root.Op.id = []
      && (match List.rev chain with last :: _ -> last.Op.id = target | [] -> false)
      && fst
           (List.fold_left
              (fun (ok, prev) (step : Op.info) ->
                match prev with
                | None -> (ok && valid_id g step.Op.id, Some step.Op.id)
                | Some p ->
                    ( ok && valid_id g step.Op.id && List.mem p (Graph.preds g step.Op.id),
                      Some step.Op.id ))
              (true, None) chain)

let verify g w =
  check_frontier g ~older:w.older ~newer:w.newer w.frontier
  && check_provenance g w.older_provenance ~target:w.older
  && check_provenance g w.newer_provenance ~target:w.newer
  &&
  match w.common_ancestor with
  | None -> true
  | Some c ->
      valid_id g c && Graph.happens_before g c w.older && Graph.happens_before g c w.newer

(* --- Rendering ----------------------------------------------------------- *)

let chain_edges chain =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a.Op.id, b.Op.id) :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs chain

let evidence_nodes w =
  List.sort_uniq compare
    ((match w.common_ancestor with None -> [] | Some c -> [ c ])
    @ List.map (fun (i : Op.info) -> i.Op.id) w.older_provenance
    @ List.map (fun (i : Op.info) -> i.Op.id) w.newer_provenance
    @ w.frontier)

let dot_many g ws =
  let nodes = List.concat_map evidence_nodes ws in
  let highlight = List.concat_map (fun w -> [ w.older; w.newer ]) ws in
  let highlight_edges =
    List.concat_map
      (fun w -> chain_edges w.older_provenance @ chain_edges w.newer_provenance)
      ws
  in
  Graph.to_dot_subgraph ~highlight ~highlight_edges ~nodes g

let dot g w = dot_many g [ w ]

let pp_chain ppf chain =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ -> ")
    (fun ppf (i : Op.info) -> Format.fprintf ppf "#%d[%s]" i.Op.id (Op.kind_name i.Op.kind))
    ppf chain

let pp g ppf w =
  let op_line ppf id = Op.pp ppf (Graph.info g id) in
  Format.fprintf ppf "@[<v 2>witness for %s race on %a:@," (Race.type_name w.race.Race.race_type)
    Wr_mem.Location.pp w.race.Race.loc;
  Format.fprintf ppf "older access: %a@," op_line w.older;
  Format.fprintf ppf "  provenance: @[<hov>%a@]@," pp_chain w.older_provenance;
  Format.fprintf ppf "newer access: %a@," op_line w.newer;
  Format.fprintf ppf "  provenance: @[<hov>%a@]@," pp_chain w.newer_provenance;
  (match w.common_ancestor with
  | Some c -> Format.fprintf ppf "forked after common ancestor: %a@," op_line c
  | None -> Format.fprintf ppf "no common ancestor (disconnected histories)@,");
  Format.fprintf ppf "no-path frontier (#%d cannot reach #%d): {%s} (%d ops)@," w.older
    w.newer
    (String.concat ", " (List.map (Printf.sprintf "#%d") w.frontier))
    (List.length w.frontier);
  Format.fprintf ppf "certificate: %s@]" (if verify g w then "PASS" else "FAIL")

let to_json g w =
  let op_json id =
    let i = Graph.info g id in
    Json.Obj
      [
        ("id", Json.Int i.Op.id);
        ("kind", Json.String (Op.kind_name i.Op.kind));
        ("label", Json.String i.Op.label);
      ]
  in
  let chain_json chain = Json.List (List.map (fun (i : Op.info) -> op_json i.Op.id) chain) in
  Json.Obj
    [
      Wr_support.Schema.tag;
      ("older_op", Json.Int w.older);
      ("newer_op", Json.Int w.newer);
      ("older_provenance", chain_json w.older_provenance);
      ("newer_provenance", chain_json w.newer_provenance);
      ( "common_ancestor",
        match w.common_ancestor with None -> Json.Null | Some c -> op_json c );
      ("frontier", Json.List (List.map (fun n -> Json.Int n) w.frontier));
      ("frontier_size", Json.Int (List.length w.frontier));
      ("certified", Json.Bool (verify g w));
    ]
