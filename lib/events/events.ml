module Instr = Wr_mem.Instr
module Location = Wr_mem.Location

type phase = Capture | At_target | Bubble

let phase_name = function Capture -> "capture" | At_target -> "target" | Bubble -> "bubble"

type 'h registration = { listener_uid : int; handler : 'h; capture : bool }

type 'h slot_state = {
  mutable inline_handler : 'h option;
  mutable listener_list : 'h registration list;  (* registration order *)
  mutable dispatches : int;
}

type 'h t = {
  instr : Instr.t;
  slots : (int * string, 'h slot_state) Hashtbl.t;
  tm : Wr_telemetry.Telemetry.t;
}

let create ?(tm = Wr_telemetry.Telemetry.disabled) instr =
  { instr; slots = Hashtbl.create 64; tm }

let state t ~target ~event =
  match Hashtbl.find_opt t.slots (target, event) with
  | Some s -> s
  | None ->
      let s = { inline_handler = None; listener_list = []; dispatches = 0 } in
      Hashtbl.add t.slots (target, event) s;
      s

let container_location ~target ~event =
  Location.Event_handler { target; event; slot = Location.Container }

let inline_location ~target ~event =
  Location.Event_handler { target; event; slot = Location.Attr }

let listener_location ~target ~event ~uid =
  Location.Event_handler { target; event; slot = Location.Listener uid }

let set_inline t ~target ~event h =
  let s = state t ~target ~event in
  s.inline_handler <- h;
  Instr.emit t.instr (inline_location ~target ~event) `Write;
  Instr.emit t.instr (container_location ~target ~event) `Write

let inline t ~target ~event = (state t ~target ~event).inline_handler

let add_listener t ~target ~event ~capture h =
  Wr_telemetry.Telemetry.incr t.tm "events.listeners_registered";
  let s = state t ~target ~event in
  let uid = t.instr.Instr.fresh_id () in
  s.listener_list <- s.listener_list @ [ { listener_uid = uid; handler = h; capture } ];
  Instr.emit t.instr (listener_location ~target ~event ~uid) `Write;
  Instr.emit t.instr (container_location ~target ~event) `Write;
  uid

let remove_listener t ~target ~event ~uid =
  let s = state t ~target ~event in
  let before = List.length s.listener_list in
  s.listener_list <- List.filter (fun r -> r.listener_uid <> uid) s.listener_list;
  if List.length s.listener_list <> before then begin
    Instr.emit t.instr (listener_location ~target ~event ~uid) `Write;
    Instr.emit t.instr (container_location ~target ~event) `Write
  end

let listeners t ~target ~event = (state t ~target ~event).listener_list

type 'h step = {
  phase : phase;
  current_target : int;
  slot : Wr_mem.Location.handler_slot;
  callback : 'h;
}

let steps_at t ~node ~event ~phase =
  let s = state t ~target:node ~event in
  let want_capture = phase = Capture in
  let listener_steps =
    List.filter_map
      (fun r ->
        if r.capture = want_capture then
          Some
            {
              phase;
              current_target = node;
              slot = Location.Listener r.listener_uid;
              callback = r.handler;
            }
        else None)
      s.listener_list
  in
  let inline_steps =
    match s.inline_handler with
    | Some h when not want_capture ->
        [ { phase; current_target = node; slot = Location.Attr; callback = h } ]
    | Some _ | None -> []
  in
  (* Inline handler runs before listeners, as in browsers. *)
  inline_steps @ listener_steps

let plan t ~path ~event ~bubbles =
  match List.rev path with
  | [] -> []
  | target :: ancestors_rev ->
      let ancestors = List.rev ancestors_rev in
      (* root .. parent *)
      let capture =
        List.concat_map (fun n -> steps_at t ~node:n ~event ~phase:Capture) ancestors
      in
      let at_target =
        (* At the target, the inline handler runs first, then all listeners
           in registration order regardless of their capture flag. *)
        let s = state t ~target ~event in
        let inline_steps =
          match s.inline_handler with
          | Some h ->
              [ { phase = At_target; current_target = target; slot = Location.Attr; callback = h } ]
          | None -> []
        in
        inline_steps
        @ List.map
            (fun r ->
              {
                phase = At_target;
                current_target = target;
                slot = Location.Listener r.listener_uid;
                callback = r.handler;
              })
            s.listener_list
      in
      let bubble =
        if bubbles then
          List.concat_map (fun n -> steps_at t ~node:n ~event ~phase:Bubble) ancestors_rev
        else []
      in
      capture @ at_target @ bubble

let record_dispatch t ~target ~event =
  Wr_telemetry.Telemetry.incr t.tm "events.dispatches";
  let s = state t ~target ~event in
  let i = s.dispatches in
  s.dispatches <- i + 1;
  i

let dispatch_count t ~target ~event = (state t ~target ~event).dispatches

let targets_with_handlers t =
  Hashtbl.fold
    (fun (target, event) s acc ->
      if s.inline_handler <> None || s.listener_list <> [] then (target, event) :: acc
      else acc)
    t.slots []
  |> List.sort compare

let non_bubbling_events = [ "load"; "unload"; "focus"; "blur"; "mouseenter"; "mouseleave" ]

let exploration_events =
  [
    "mouseover"; "mousemove"; "mouseout"; "mouseup"; "mousedown"; "keydown"; "keyup";
    "keypress"; "change"; "input"; "focus"; "blur";
  ]
