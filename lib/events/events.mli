(** Event-handler registry and dispatch planning (paper §3.1, §4.3, App. A).

    Handlers are stored per (target uid, event name) in two slots, matching
    the logical-location model:

    - the {e inline} slot, fed by [on<event>] content attributes and
      [el.onload = f] property writes — logical location
      [(el, e, Attr)];
    - the {e listener list}, fed by [addEventListener] — each entry a
      distinct [(el, e, Listener uid)] location.

    Registration and removal emit the §4.3 write accesses here (including
    the container write that lets a later dispatch race with it, see
    DESIGN.md); the browser emits the dispatch-side reads when it executes
    a plan, because those reads belong to dispatch operations that only
    exist at dispatch time.

    The handler payload type is abstract ('h is a JS function value in the
    browser), so this module stays independent of the interpreter and
    directly testable. *)

type phase = Capture | At_target | Bubble

val phase_name : phase -> string

type 'h registration = {
  listener_uid : int;  (** identity for the [Listener] location *)
  handler : 'h;
  capture : bool;
}

type 'h t

val create : ?tm:Wr_telemetry.Telemetry.t -> Wr_mem.Instr.t -> 'h t

(** [set_inline t ~target ~event h] installs the inline handler (writes the
    [(el,e,Attr)] and container locations). [h = None] clears it. *)
val set_inline : 'h t -> target:int -> event:string -> 'h option -> unit

(** [inline t ~target ~event] reads back the inline handler {e without}
    instrumentation (the instrumented read happens at dispatch). *)
val inline : 'h t -> target:int -> event:string -> 'h option

(** [add_listener t ~target ~event ~capture h] appends a listener,
    returning its uid; emits the listener and container writes. *)
val add_listener : 'h t -> target:int -> event:string -> capture:bool -> 'h -> int

(** [remove_listener t ~target ~event ~uid] removes by uid; emits writes
    when something was removed. *)
val remove_listener : 'h t -> target:int -> event:string -> uid:int -> unit

(** [listeners t ~target ~event] lists current registrations in
    registration order, uninstrumented. *)
val listeners : 'h t -> target:int -> event:string -> 'h registration list

(** One handler invocation of a dispatch plan. *)
type 'h step = {
  phase : phase;
  current_target : int;  (** the node whose handler runs *)
  slot : Wr_mem.Location.handler_slot;  (** Attr or Listener for the §4.3 read *)
  callback : 'h;
}

(** [plan t ~path ~event] computes the capture → target → bubble handler
    sequence for a dispatch whose propagation path is [path] (root first,
    target last). Bubbling is skipped when [bubbles] is false (load events
    do not bubble). Capture listeners run in the capture phase; inline
    handlers and non-capture listeners run at target/bubble. *)
val plan : 'h t -> path:int list -> event:string -> bubbles:bool -> 'h step list

(** [record_dispatch t ~target ~event] increments and returns the dispatch
    index (0-based) for [dispi] bookkeeping and the single-dispatch
    filter. *)
val record_dispatch : 'h t -> target:int -> event:string -> int

(** [dispatch_count t ~target ~event] is how many dispatches have been
    recorded. *)
val dispatch_count : 'h t -> target:int -> event:string -> int

(** [container_location ~target ~event] / [inline_location] /
    [listener_location] build the §4.3 logical locations; exported for the
    browser's dispatch-side reads. *)
val container_location : target:int -> event:string -> Wr_mem.Location.t

val inline_location : target:int -> event:string -> Wr_mem.Location.t

val listener_location : target:int -> event:string -> uid:int -> Wr_mem.Location.t

(** [targets_with_handlers t] enumerates (target, event) pairs that
    currently have an inline handler or at least one listener — the
    automatic-exploration work list (§5.2.2). Order is deterministic
    (sorted by target uid, then event name). *)
val targets_with_handlers : 'h t -> (int * string) list

(** [non_bubbling_events] — events dispatched without a bubble phase. *)
val non_bubbling_events : string list

(** [exploration_events] — the §5.2.2 automatic-exploration event set. *)
val exploration_events : string list
