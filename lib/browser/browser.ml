module Graph = Wr_hb.Graph
module Op = Wr_hb.Op
module Access = Wr_mem.Access
module Location = Wr_mem.Location
module Instr = Wr_mem.Instr
module Detector = Wr_detect.Detector
module Html = Wr_html.Html
module Dom = Wr_dom.Dom
module Events = Wr_events.Events
module Event_loop = Wr_scheduler.Event_loop
module Network = Wr_scheduler.Network
module Value = Wr_js.Value
module Interp = Wr_js.Interp
module Parser = Wr_js.Parser
module Lexer = Wr_js.Lexer
module Telemetry = Wr_telemetry.Telemetry

type crash = { op : Op.id; message : string; context : string }

type fetch_state = Fetch_pending | Fetch_arrived of string | Fetch_failed

type window = {
  win_uid : int;
  doc : Dom.document;
  frame : frame option;
  mutable win_obj : Value.obj;
  mutable doc_obj : Value.obj;
  mutable parse_items : item list;
  mutable parse_preds : Op.id list;
  mutable parsing_done : bool;
  mutable blocked_on_script : bool;
  mutable deferred : defer list;  (* syntactic order *)
  mutable dcl_done : bool;
  mutable dcl_ops : Op.id list;
  mutable load_fired : bool;
  mutable pending_loads : int;
  mutable load_preds : Op.id list;
  mutable defer_ld_ops : Op.id list;
}

and frame = { parent : window; iframe_node : Dom.node }

and item =
  | I_elem of { elem : Html.element; item_parent : Dom.node }
  | I_text of { content : string; item_parent : Dom.node }

and defer = {
  defer_node : Dom.node;
  defer_parse_op : Op.id;
  defer_url : string;
  mutable defer_state : fetch_state;
}

type interval_state = {
  mutable iter : int;
  mutable last_op : Op.id;
  mutable active : bool;
  mutable pending : Event_loop.handle option;
}

type t = {
  config : Config.t;
  graph : Graph.t;
  det : Detector.t;
  vm : Value.vm;
  instr : Instr.t;
  loop : Event_loop.t;
  net : Network.t;
  registry : Value.t Events.t;
  init_op : Op.id;
  mutable main : window option;
  mutable windows : window list;
  mutable current_window : window option;
  node_objs : (int, Value.obj) Hashtbl.t;
  nodes : (int, Dom.node * window) Hashtbl.t;
  create_ops : (int, Op.id) Hashtbl.t;
  dispatch_ops : (int * string * int, Op.id list) Hashtbl.t;
  counted_loadables : (int, unit) Hashtbl.t;
  load_started : (int, unit) Hashtbl.t;
  timeouts : (int, Event_loop.handle) Hashtbl.t;  (* timer uid -> loop handle *)
  intervals : (int, interval_state) Hashtbl.t;
  mutable crashes : crash list;
  mutable segment_counter : int;
  recorded_accesses : (unit -> Access.t list) option;
  dedup_stats : (unit -> Wr_detect.Dedup.stats) option;
  mutable doc_write : (window * Dom.node * Buffer.t) option;
      (* accumulates document.write output while a parser-driven script
         runs; flushed into the parse stream when the script completes *)
}

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let graph t = t.graph

let detector t = t.det

let crashes t = List.rev t.crashes

let console t = List.rev !(t.vm.Value.console)

let virtual_now t = Event_loop.now t.loop

let accesses_seen t = t.det.Detector.accesses_seen ()

let dedup_stats t = match t.dedup_stats with Some read -> Some (read ()) | None -> None

let trace t =
  match t.recorded_accesses with
  | Some read -> Some (Wr_detect.Trace.capture t.graph ~accesses:(read ()))
  | None -> None

let run_info t =
  {
    Wr_detect.Filters.dispatch_count =
      (fun ~target ~event -> Events.dispatch_count t.registry ~target ~event);
  }

let main_window t = match t.main with Some w -> w | None -> failwith "Browser: not started"

let main_document t = (main_window t).doc

let window_load_fired t = (main_window t).load_fired

(* ------------------------------------------------------------------ *)
(* Operation plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let set_op t op ~label =
  t.instr.Instr.op <- op;
  t.instr.Instr.context <- label;
  t.vm.Value.current_op <- op;
  t.vm.Value.context <- label

let current_op t = t.instr.Instr.op

let fresh_op t kind ~label ~preds =
  let op = Graph.fresh t.graph kind ~label in
  List.iter (fun p -> if p < op then Graph.add_edge t.graph p op) (List.sort_uniq compare preds);
  op

let describe_throw t v =
  match v with
  | Value.Object o -> (
      match Value.get_prop_raw o "name", Value.get_prop_raw o "message" with
      | Some n, Some m -> Value.to_string t.vm n ^ ": " ^ Value.to_string t.vm m
      | _ -> Value.describe v)
  | _ -> Value.describe v

let tel t = t.config.Config.telemetry

(* Guarded span: the disabled path must not even allocate the closure's
   span bookkeeping, so hot callers stay at seed-baseline cost. *)
let span t ~cat ~name f =
  let tm = tel t in
  if Telemetry.enabled tm then Telemetry.with_span tm ~cat ~name f else f ()

let record_crash t message =
  Wr_support.Log.warn "browser.crash"
    [
      ("op", Wr_support.Json.Int (current_op t));
      ("message", Wr_support.Json.String message);
      ("context", Wr_support.Json.String t.instr.Instr.context);
    ];
  t.crashes <- { op = current_op t; message; context = t.instr.Instr.context } :: t.crashes

(* Run [f] as operation [op]; swallow script crashes like a browser (§2.3).
   Returns the final segment id (inline dispatch may have split the op). *)
let within_op t op ~label f =
  let saved_op = t.instr.Instr.op and saved_ctx = t.instr.Instr.context in
  set_op t op ~label;
  Interp.refuel t.vm;
  (try f () with
  | Value.Js_throw v -> record_crash t ("uncaught exception: " ^ describe_throw t v)
  | Value.Fuel_exhausted -> record_crash t "script exceeded step budget");
  let final = current_op t in
  set_op t saved_op ~label:saved_ctx;
  final

let enter_window t w =
  t.current_window <- Some w;
  Hashtbl.replace t.vm.Value.global.Value.vars "document" (ref (Value.Object w.doc_obj));
  Hashtbl.replace t.vm.Value.global.Value.vars "window" (ref (Value.Object w.win_obj))

(* ------------------------------------------------------------------ *)
(* Event dispatch (rules 8, 9; Appendix A)                             *)
(* ------------------------------------------------------------------ *)

let node_path (node : Dom.node) =
  let rec up acc (n : Dom.node) =
    match n.Dom.parent with Some p -> up (n.Dom.uid :: acc) p | None -> n.Dom.uid :: acc
  in
  up [] node

(* The event object handlers receive: [stopPropagation] suppresses the
   remaining handler steps, [preventDefault] cancels the default action. *)
let make_event_object t ~event ~target_value =
  let obj = Value.new_object t.vm ~class_name:"Event" () in
  let stopped = ref false in
  let default_prevented = ref false in
  Value.set_prop_raw obj "type" (Value.String event);
  Value.set_prop_raw obj "target" target_value;
  Value.set_prop_raw obj "stopPropagation"
    (Value.Object
       (Value.new_builtin t.vm "stopPropagation" (fun _vm ~this:_ _ ->
            stopped := true;
            Value.Undefined)));
  Value.set_prop_raw obj "preventDefault"
    (Value.Object
       (Value.new_builtin t.vm "preventDefault" (fun _vm ~this:_ _ ->
            default_prevented := true;
            Value.Undefined)));
  (obj, stopped, default_prevented)

let rec dispatch t ?win ~target ~path ~event ~bubbles ~preds ?(target_value = Value.Undefined)
    ?default_action () =
  span t ~cat:"dispatch" ~name:("dispatch " ^ event) (fun () ->
      dispatch_body t ?win ~target ~path ~event ~bubbles ~preds ~target_value ?default_action
        ())

and dispatch_body t ?win ~target ~path ~event ~bubbles ~preds ~target_value ?default_action ()
    =
  let index = Events.record_dispatch t.registry ~target ~event in
  let preds =
    let create_pred =
      match Hashtbl.find_opt t.create_ops target with Some op -> [ op ] | None -> []
    in
    let rule9_preds =
      if index > 0 then
        match Hashtbl.find_opt t.dispatch_ops (target, event, index - 1) with
        | Some ops -> ops
        | None -> []
      else []
    in
    preds @ create_pred @ rule9_preds
  in
  (match win with Some w -> enter_window t w | None -> ());
  let label = Printf.sprintf "dispatch %s[%d] @node#%d" event index target in
  let anchor = fresh_op t (Op.Dispatch_anchor { event; index }) ~label ~preds in
  (* The browser's own read of handler containers along the path (the
     event-dispatch-race read of Fig. 5). *)
  let anchor_final =
    within_op t anchor ~label (fun () ->
        List.iter
          (fun uid -> Instr.emit t.instr (Events.container_location ~target:uid ~event) `Read)
          path)
  in
  let plan = Events.plan t.registry ~path ~event ~bubbles in
  let target_value =
    match target_value with
    | Value.Undefined -> (
        match Hashtbl.find_opt t.node_objs target with
        | Some o -> Value.Object o
        | None -> Value.Undefined)
    | v -> v
  in
  let event_obj, stopped, default_prevented = make_event_object t ~event ~target_value in
  (* Appendix A phasing: ops of earlier (phase, current-target) groups
     precede ops of later groups; ops within a group stay unordered. *)
  let all_ops = ref [ anchor_final ] in
  let prior_ops = ref [ anchor_final ] in
  let group = ref [] in
  let group_key = ref None in
  let flush_group () =
    prior_ops := !group @ !prior_ops;
    group := []
  in
  List.iter
    (fun (step : Value.t Events.step) ->
      if not !stopped then begin
      let key = (step.Events.phase, step.Events.current_target) in
      if !group_key <> Some key then begin
        flush_group ();
        group_key := Some key
      end;
      let hlabel =
        Printf.sprintf "%s handler (%s) @node#%d" event
          (Events.phase_name step.Events.phase)
          step.Events.current_target
      in
      let op =
        fresh_op t
          (Op.Handler { event; index; phase = Events.phase_name step.Events.phase })
          ~label:hlabel ~preds:!prior_ops
      in
      let final =
        span t ~cat:"dispatch" ~name:hlabel (fun () ->
            within_op t op ~label:hlabel (fun () ->
                Instr.emit t.instr
                  (Location.Event_handler
                     { target = step.Events.current_target; event; slot = step.Events.slot })
                  `Read;
                ignore
                  (Interp.call t.vm step.Events.callback ~this:target_value
                     [ Value.Object event_obj ])))
      in
      group := final :: !group;
      all_ops := final :: !all_ops
      end)
    plan;
  flush_group ();
  (match default_action with
  | Some _ when !default_prevented -> ()
  | Some f ->
      let dlabel = Printf.sprintf "%s default action @node#%d" event target in
      let op =
        fresh_op t (Op.Handler { event; index; phase = "default" }) ~label:dlabel
          ~preds:!prior_ops
      in
      let final = span t ~cat:"dispatch" ~name:dlabel (fun () -> within_op t op ~label:dlabel f) in
      all_ops := final :: !all_ops
  | None -> ());
  let ops = List.rev !all_ops in
  Hashtbl.replace t.dispatch_ops (target, event, index) ops;
  ops

(* Inline (programmatic) dispatch: split the interrupted operation
   (Appendix A "splitting happens-before"). *)
and dispatch_inline t ?win ~target ~path ~event ~bubbles ?default_action () =
  let interrupted = current_op t in
  let interrupted_label = t.instr.Instr.context in
  let ops =
    dispatch t ?win ~target ~path ~event ~bubbles ~preds:[ interrupted ] ?default_action ()
  in
  t.segment_counter <- t.segment_counter + 1;
  let label = Printf.sprintf "%s [segment %d]" interrupted_label t.segment_counter in
  let segment =
    fresh_op t
      (Op.Segment { parent = interrupted; part = t.segment_counter })
      ~label
      ~preds:(interrupted :: ops)
  in
  set_op t segment ~label

(* ------------------------------------------------------------------ *)
(* load / DOMContentLoaded bookkeeping (rules 7, 11-15)                *)
(* ------------------------------------------------------------------ *)

let rec maybe_fire_window_load t w =
  if w.parsing_done && w.dcl_done && w.pending_loads = 0 && not w.load_fired then begin
    w.load_fired <- true;
    if w.frame = None then Telemetry.mark (tel t) ~cat:"page" "load";
    if w.frame = None then
      Wr_support.Log.info "page.load"
        [ ("virtual_ms", Wr_support.Json.Float (Event_loop.now t.loop)) ];
    let preds = w.dcl_ops @ w.load_preds in
    let ops =
      dispatch t ~win:w ~target:w.win_uid ~path:[ w.win_uid ] ~event:"load" ~bubbles:false
        ~preds ~target_value:(Value.Object w.win_obj) ()
    in
    match w.frame with
    | None -> ()
    | Some { parent; iframe_node } ->
        ignore (element_load t parent iframe_node ~event:"load" ~preds:ops)
  end

(* Dispatch load/error on an element; returns the dispatch ops and keeps
   the owning window's rule-15 state. *)
and element_load t w node ~event ~preds =
  let ops =
    dispatch t ~win:w ~target:node.Dom.uid ~path:(node_path node) ~event ~bubbles:false ~preds
      ()
  in
  if Hashtbl.mem t.counted_loadables node.Dom.uid then begin
    Hashtbl.remove t.counted_loadables node.Dom.uid;
    w.pending_loads <- w.pending_loads - 1;
    w.load_preds <- ops @ w.load_preds;
    maybe_fire_window_load t w
  end;
  ops

let fire_dcl t w =
  if not w.dcl_done then begin
    w.dcl_done <- true;
    if w.frame = None then Telemetry.mark (tel t) ~cat:"page" "DOMContentLoaded";
    if w.frame = None then
      Wr_support.Log.info "page.DOMContentLoaded"
        [ ("virtual_ms", Wr_support.Json.Float (Event_loop.now t.loop)) ];
    let root = Dom.root w.doc in
    let preds = w.parse_preds @ w.defer_ld_ops in
    let ops =
      dispatch t ~win:w ~target:root.Dom.uid ~path:[ root.Dom.uid ] ~event:"DOMContentLoaded"
        ~bubbles:false ~preds ~target_value:(Value.Object w.doc_obj) ()
    in
    w.dcl_ops <- ops;
    maybe_fire_window_load t w
  end

(* ------------------------------------------------------------------ *)
(* Script execution                                                    *)
(* ------------------------------------------------------------------ *)

let run_script_source t w ~source ~label =
  enter_window t w;
  match Parser.parse ~tm:(tel t) source with
  | exception Parser.Parse_error (msg, line, col) ->
      record_crash t (Printf.sprintf "%s: syntax error at %d:%d: %s" label line col msg)
  | exception Lexer.Lex_error (msg, line, col) ->
      record_crash t (Printf.sprintf "%s: lex error at %d:%d: %s" label line col msg)
  | prog -> Interp.run_in_global t.vm prog

let exec_script_op t w ~source ~preds ~label =
  let op = fresh_op t Op.Script ~label ~preds in
  within_op t op ~label (fun () -> run_script_source t w ~source ~label)

(* ------------------------------------------------------------------ *)
(* Loadable resources                                                  *)
(* ------------------------------------------------------------------ *)

let count_loadable t w node =
  if not w.load_fired then begin
    Hashtbl.replace t.counted_loadables node.Dom.uid ();
    w.pending_loads <- w.pending_loads + 1
  end

let start_image_load t w node ~url =
  Hashtbl.replace t.load_started node.Dom.uid ();
  count_loadable t w node;
  Network.fetch t.net ~url (fun outcome ->
      let event = match outcome with Network.Fetched _ -> "load" | Network.Missing -> "error" in
      ignore (element_load t w node ~event ~preds:[]))

(* Async and script-inserted external scripts: execute on fetch arrival
   (create(E) -> exe(E) is the only ordering, rule 2). *)
let start_external_script t w node ~url =
  Hashtbl.replace t.load_started node.Dom.uid ();
  count_loadable t w node;
  Network.fetch t.net ~url (fun outcome ->
      match outcome with
      | Network.Fetched source ->
          let preds =
            match Hashtbl.find_opt t.create_ops node.Dom.uid with Some op -> [ op ] | None -> []
          in
          let final = exec_script_op t w ~source ~preds ~label:("script " ^ url) in
          ignore (element_load t w node ~event:"load" ~preds:[ final ])
      | Network.Missing -> ignore (element_load t w node ~event:"error" ~preds:[]))

(* ------------------------------------------------------------------ *)
(* Handler content attributes                                          *)
(* ------------------------------------------------------------------ *)

let compile_handler_code t ~code ~label =
  match Parser.parse ~tm:(tel t) code with
  | exception _ ->
      record_crash t (Printf.sprintf "bad handler code on %s" label);
      None
  | body ->
      let closure =
        { Value.params = [ "event" ]; body; env = t.vm.Value.global; func_name = label }
      in
      Some (Value.Object (Value.new_closure t.vm closure))

let register_handler_attrs t (node : Dom.node) =
  Hashtbl.iter
    (fun name code ->
      if String.length name > 2 && String.sub name 0 2 = "on" then begin
        let event = String.sub name 2 (String.length name - 2) in
        match compile_handler_code t ~code ~label:(node.Dom.tag ^ "." ^ name) with
        | Some h -> Events.set_inline t.registry ~target:node.Dom.uid ~event (Some h)
        | None -> ()
      end)
    node.Dom.attrs

let html_attrs (e : Html.element) =
  List.map (fun { Html.name; value } -> (name, value)) e.Html.attrs

(* ==================================================================== *)
(* The big recursive knot: parsing, dynamic insertion, JS bindings.     *)
(* ==================================================================== *)

let rec schedule_parse t w =
  ignore
    (Event_loop.schedule ~cls:Event_loop.Parse t.loop ~delay:t.config.Config.parse_delay
       (fun () -> parse_step t w))

(* One parse(E) operation per static element (§3.2), chained in syntactic
   order (rule 1a) with inline-script and sync-script chaining (1b, 1c). *)
and parse_step t w = span t ~cat:"parse" ~name:"parse-step" (fun () -> parse_step_inner t w)

and parse_step_inner t w =
  match w.parse_items with
  | [] -> if not w.parsing_done then finish_parsing t w
  | I_text { content; item_parent } :: rest ->
      (* Text is not an operation of its own (§3.2); it attaches as a
         continuation of the preceding parse-chain operation, keeping
         document order for mixed content. *)
      w.parse_items <- rest;
      let op = match w.parse_preds with p :: _ -> p | [] -> t.init_op in
      ignore
        (within_op t op ~label:"parse #text" (fun () ->
             Dom.append w.doc ~parent:item_parent ~child:(Dom.create_text w.doc content)));
      if not w.blocked_on_script then schedule_parse t w
  | I_elem { elem; item_parent } :: rest -> (
      w.parse_items <- rest;
      let label = Printf.sprintf "parse <%s>" elem.Html.tag in
      let op = fresh_op t Op.Parse ~label ~preds:w.parse_preds in
      let node_ref = ref None in
      let final =
        within_op t op ~label (fun () ->
            let n = Dom.create_element w.doc ~tag:elem.Html.tag ~attrs:(html_attrs elem) in
            node_ref := Some n;
            Hashtbl.replace t.nodes n.Dom.uid (n, w);
            Hashtbl.replace t.create_ops n.Dom.uid op;
            Dom.append w.doc ~parent:item_parent ~child:n;
            register_handler_attrs t n;
            if elem.Html.tag = "script" then
              List.iter
                (function
                  | Html.Text s -> n.Dom.text <- n.Dom.text ^ s
                  | Html.Element _ -> ())
                elem.Html.children)
      in
      match !node_ref with
      | None -> schedule_parse t w
      | Some node ->
          let child_items =
            if elem.Html.tag = "script" then []
            else
              List.map
                (function
                  | Html.Element child -> I_elem { elem = child; item_parent = node }
                  | Html.Text s -> I_text { content = s; item_parent = node })
                elem.Html.children
          in
          w.parse_items <- child_items @ w.parse_items;
          w.parse_preds <- [ final ];
          (match elem.Html.tag with
          | "script" -> handle_static_script t w node ~parse_op:final
          | "iframe" -> handle_static_iframe t w node
          | "img" -> (
              match Dom.get_attr node "src" with
              | Some url when url <> "" -> start_image_load t w node ~url
              | Some _ | None -> ())
          | _ -> ());
          if not w.blocked_on_script then schedule_parse t w)

(* Run a parser-blocking script with document.write capture: writes buffer
   up during execution and flush into the parse stream right after the
   script element (so the written markup parses next, ordered after the
   execution — browsers tokenize eagerly, buffering to script end is an
   order-preserving approximation, see DESIGN.md). *)
and exec_parser_script t w node ~source ~preds ~label =
  let buf = Buffer.create 64 in
  t.doc_write <- Some (w, node, buf);
  let final = exec_script_op t w ~source ~preds ~label in
  t.doc_write <- None;
  if Buffer.length buf > 0 then begin
    match node.Dom.parent with
    | Some parent ->
        let written =
          List.map
            (function
              | Html.Element e -> I_elem { elem = e; item_parent = parent }
              | Html.Text s -> I_text { content = s; item_parent = parent })
            (Html.parse ~tm:(tel t) (Buffer.contents buf))
        in
        w.parse_items <- written @ w.parse_items
    | None -> ()
  end;
  final

and handle_static_script t w node ~parse_op =
  let async = Dom.get_attr node "async" <> None in
  let defer = Dom.get_attr node "defer" <> None in
  match Dom.get_attr node "src" with
  | None | Some "" ->
      (* Static inline script (rule 1b): executes during parsing, and the
         chain continues from its execution. *)
      let final =
        exec_parser_script t w node ~source:node.Dom.text ~preds:[ parse_op ]
          ~label:"script (inline)"
      in
      w.parse_preds <- [ final ]
  | Some url when defer ->
      let d =
        { defer_node = node; defer_parse_op = parse_op; defer_url = url;
          defer_state = Fetch_pending }
      in
      w.deferred <- w.deferred @ [ d ];
      count_loadable t w node;
      Network.fetch t.net ~url (fun outcome ->
          d.defer_state <-
            (match outcome with
            | Network.Fetched body -> Fetch_arrived body
            | Network.Missing -> Fetch_failed);
          if w.parsing_done then run_deferred t w)
  | Some url when async -> start_external_script t w node ~url
  | Some url ->
      (* Synchronous external script: parsing blocks; further parse ops wait
         for the script's load event (rule 1c). *)
      w.blocked_on_script <- true;
      count_loadable t w node;
      Network.fetch t.net ~url (fun outcome ->
          w.blocked_on_script <- false;
          (match outcome with
          | Network.Fetched source ->
              let final =
                exec_parser_script t w node ~source ~preds:[ parse_op ]
                  ~label:("script " ^ url)
              in
              w.parse_preds <- element_load t w node ~event:"load" ~preds:[ final ]
          | Network.Missing ->
              w.parse_preds <- element_load t w node ~event:"error" ~preds:[]);
          schedule_parse t w)

and finish_parsing t w =
  w.parsing_done <- true;
  if w.frame = None then Telemetry.mark (tel t) ~cat:"page" "parsing-done";
    if w.frame = None then
      Wr_support.Log.info "page.parsing_done"
        [ ("virtual_ms", Wr_support.Json.Float (Event_loop.now t.loop)) ];
  run_deferred t w

(* Deferred scripts run in syntactic order after parsing (rules 4, 5, 14),
   then DOMContentLoaded. *)
and run_deferred t w =
  match w.deferred with
  | [] -> if not w.dcl_done then fire_dcl t w
  | d :: rest -> (
      match d.defer_state with
      | Fetch_pending -> ()  (* its fetch callback will re-enter *)
      | Fetch_arrived source ->
          w.deferred <- rest;
          let preds = (d.defer_parse_op :: w.parse_preds) @ w.defer_ld_ops in
          let final =
            exec_script_op t w ~source ~preds ~label:("script " ^ d.defer_url ^ " (defer)")
          in
          let ld_ops = element_load t w d.defer_node ~event:"load" ~preds:[ final ] in
          w.defer_ld_ops <- w.defer_ld_ops @ ld_ops;
          run_deferred t w
      | Fetch_failed ->
          w.deferred <- rest;
          let ld_ops = element_load t w d.defer_node ~event:"error" ~preds:[] in
          w.defer_ld_ops <- w.defer_ld_ops @ ld_ops;
          run_deferred t w)

and handle_static_iframe t w node =
  match Dom.get_attr node "src" with
  | None | Some "" -> ()
  | Some url ->
      count_loadable t w node;
      Network.fetch t.net ~url (fun outcome ->
          match outcome with
          | Network.Fetched html -> start_frame_document t ~parent:w ~iframe_node:node ~html ~url
          | Network.Missing -> ignore (element_load t w node ~event:"error" ~preds:[]))

and start_frame_document t ~parent ~iframe_node ~html ~url =
  let child = make_window t ~frame:(Some { parent; iframe_node }) ~url in
  (* Rule 6: create(I) happens-before everything in the nested document. *)
  (match Hashtbl.find_opt t.create_ops iframe_node.Dom.uid with
  | Some op ->
      child.parse_preds <- [ op ];
      Hashtbl.replace t.create_ops child.win_uid op;
      Hashtbl.replace t.create_ops (Dom.root child.doc).Dom.uid op
  | None -> ());
  child.parse_items <-
    List.map
      (function
        | Html.Element e -> I_elem { elem = e; item_parent = Dom.root child.doc }
        | Html.Text s -> I_text { content = s; item_parent = Dom.root child.doc })
      (Html.parse ~tm:(tel t) html);
  schedule_parse t child

(* --- dynamic insertion ---------------------------------------------- *)

(* Bookkeeping for a subtree that just became attached by script: record
   create ops, register handler attributes, start loads, run inserted
   scripts. [run_scripts] is false for innerHTML (spec: such scripts do
   not execute). *)
and after_attach t w ?(run_scripts = true) node =
  let newly =
    let acc = ref [] in
    Dom.iter_subtree
      (fun n ->
        if n.Dom.tag <> "#text" && not (Hashtbl.mem t.create_ops n.Dom.uid) then begin
          Hashtbl.replace t.create_ops n.Dom.uid (current_op t);
          Hashtbl.replace t.nodes n.Dom.uid (n, w);
          register_handler_attrs t n;
          acc := n :: !acc
        end)
      node;
    List.rev !acc
  in
  List.iter
    (fun (n : Dom.node) ->
      match n.Dom.tag with
      | "img" -> (
          match Dom.get_attr n "src" with
          | Some url when url <> "" && not (Hashtbl.mem t.load_started n.Dom.uid) ->
              start_image_load t w n ~url
          | Some _ | None -> ())
      | "iframe" -> (
          match Dom.get_attr n "src" with
          | Some url when url <> "" && not (Hashtbl.mem t.load_started n.Dom.uid) ->
              Hashtbl.replace t.load_started n.Dom.uid ();
              count_loadable t w n;
              Network.fetch t.net ~url (fun outcome ->
                  match outcome with
                  | Network.Fetched html ->
                      start_frame_document t ~parent:w ~iframe_node:n ~html ~url
                  | Network.Missing -> ignore (element_load t w n ~event:"error" ~preds:[]))
          | Some _ | None -> ())
      | "script" -> (
          match Dom.get_attr n "src" with
          | Some url when url <> "" && not (Hashtbl.mem t.load_started n.Dom.uid) ->
              if run_scripts then start_external_script t w n ~url
          | Some _ | None ->
              (* Script-inserted inline scripts execute synchronously inside
                 the inserting operation (§3.3, footnote 9). *)
              if run_scripts && n.Dom.text <> "" then
                run_script_source t w ~source:n.Dom.text ~label:"script (inserted inline)")
      | _ -> ())
    newly

(* --- JS wrappers ----------------------------------------------------- *)

and wrap_node t w (node : Dom.node) =
  match Hashtbl.find_opt t.node_objs node.Dom.uid with
  | Some obj -> obj
  | None ->
      let vm = t.vm in
      let obj = Value.new_object vm ~class_name:"HTMLElement" () in
      Hashtbl.replace t.node_objs node.Dom.uid obj;
      install_node_methods t w node obj;
      obj.Value.host <-
        Some
          {
            Value.host_id = node.Dom.uid;
            host_kind = "node";
            host_get = (fun _vm o name -> node_host_get t w node o name);
            host_set = (fun _vm o name v -> node_host_set t w node o name v);
          };
      obj

and node_value t w node = Value.Object (wrap_node t w node)

and prop_cell t ~owner name =
  Location.Js_var { cell = t.instr.Instr.cell_id ~owner name; name }

and node_host_get t w node obj name =
  let vm = t.vm in
  match name with
  | "value" | "checked" -> (
      match Dom.get_idl w.doc node name with
      | Some v -> Some (if name = "checked" then Value.Bool (v = "true") else Value.String v)
      | None -> Some (if name = "checked" then Value.Bool false else Value.String ""))
  | "id" | "src" | "href" | "name" | "type" | "title" | "alt" | "rel" -> (
      match Dom.get_idl w.doc node name with
      | Some v -> Some (Value.String v)
      | None -> Some (Value.String ""))
  | "className" -> (
      match Dom.get_idl w.doc node "class" with
      | Some v -> Some (Value.String v)
      | None -> Some (Value.String ""))
  | "tagName" | "nodeName" -> Some (Value.String (String.uppercase_ascii node.Dom.tag))
  | "style" -> (
      (* One style object per node; its properties are ordinary
         instrumented JS properties. *)
      match Value.get_prop_raw obj "__style" with
      | Some v -> Some v
      | None ->
          let style = Value.new_object vm ~class_name:"CSSStyleDeclaration" () in
          (match Dom.get_attr node "style" with
          | Some css ->
              (* Seed from the style attribute: "a: b; c: d". *)
              List.iter
                (fun decl ->
                  match String.index_opt decl ':' with
                  | Some i ->
                      let k = String.trim (String.sub decl 0 i) in
                      let v =
                        String.trim (String.sub decl (i + 1) (String.length decl - i - 1))
                      in
                      if k <> "" then Value.set_prop_raw style k (Value.String v)
                  | None -> ())
                (String.split_on_char ';' css)
          | None -> ());
          let sv = Value.Object style in
          Value.set_prop_raw obj "__style" sv;
          Some sv)
  | "parentNode" -> (
      Instr.emit t.instr (prop_cell t ~owner:node.Dom.uid "parentNode") `Read;
      match node.Dom.parent with
      | Some p when p.Dom.tag <> "#document" -> Some (node_value t w p)
      | Some _ -> Some (Value.Object w.doc_obj)
      | None -> Some Value.Null)
  | "childNodes" | "children" ->
      let elems = List.filter (fun (c : Dom.node) -> c.Dom.tag <> "#text") (Dom.children node) in
      List.iteri
        (fun i _ ->
          Instr.emit t.instr
            (prop_cell t ~owner:node.Dom.uid (Printf.sprintf "childNodes.%d" i))
            `Read)
        elems;
      Some (Value.Object (Value.new_array vm (List.map (node_value t w) elems)))
  | "firstChild" -> (
      Instr.emit t.instr (prop_cell t ~owner:node.Dom.uid "childNodes.0") `Read;
      match List.filter (fun (c : Dom.node) -> c.Dom.tag <> "#text") (Dom.children node) with
      | c :: _ -> Some (node_value t w c)
      | [] -> Some Value.Null)
  | "innerHTML" ->
      (* Serialization is a markup inspection, not a §4 logical access. *)
      Some (Value.String (serialize_children node))
  | "textContent" | "innerText" ->
      let buf = Buffer.create 32 in
      Dom.iter_subtree
        (fun n -> if n.Dom.tag = "#text" then Buffer.add_string buf n.Dom.text)
        node;
      Some (Value.String (Buffer.contents buf))
  | "text" when node.Dom.tag = "script" -> Some (Value.String node.Dom.text)
  | "offsetWidth" | "offsetHeight" | "clientWidth" | "clientHeight" | "scrollTop" ->
      Some (Value.Number 0.)
  | "ownerDocument" -> Some (Value.Object w.doc_obj)
  | _ when String.length name > 2 && String.sub name 0 2 = "on" ->
      let event = String.sub name 2 (String.length name - 2) in
      Some
        (match Events.inline t.registry ~target:node.Dom.uid ~event with
        | Some h -> h
        | None -> Value.Null)
  | _ -> None

and serialize_children (node : Dom.node) =
  let rec to_html (n : Dom.node) =
    if n.Dom.tag = "#text" then Html.text n.Dom.text
    else
      Html.el n.Dom.tag
        ~attrs:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) n.Dom.attrs [])
        (List.map to_html (Dom.children n))
  in
  Html.to_string (List.map to_html (Dom.children node))

and node_host_set t w node _obj name v =
  let vm = t.vm in
  match name with
  | "value" | "checked" ->
      Dom.set_idl w.doc node name (Value.to_string vm v);
      true
  | "id" | "class" | "title" | "alt" | "href" | "name" | "type" | "rel" ->
      Dom.set_attr w.doc node name (Value.to_string vm v);
      true
  | "className" ->
      Dom.set_attr w.doc node "class" (Value.to_string vm v);
      true
  | "src" ->
      Dom.set_attr w.doc node "src" (Value.to_string vm v);
      if Dom.is_attached w.doc node then after_attach_src t w node;
      true
  | "innerHTML" ->
      set_inner_html t w node (Value.to_string vm v);
      true
  | "textContent" | "innerText" ->
      List.iter (fun child -> Dom.remove w.doc child) (Dom.children node);
      Dom.append w.doc ~parent:node ~child:(Dom.create_text w.doc (Value.to_string vm v));
      true
  | "text" when node.Dom.tag = "script" ->
      node.Dom.text <- Value.to_string vm v;
      true
  | _ when String.length name > 2 && String.sub name 0 2 = "on" ->
      let event = String.sub name 2 (String.length name - 2) in
      let handler =
        match v with
        | Value.String code ->
            compile_handler_code t ~code ~label:(node.Dom.tag ^ ".on" ^ event)
        | Value.Null | Value.Undefined -> None
        | v when Value.is_callable v -> Some v
        | _ -> None
      in
      Events.set_inline t.registry ~target:node.Dom.uid ~event handler;
      true
  | _ -> false

(* A src set on an already-attached script/img/iframe starts its load. *)
and after_attach_src t w node =
  if not (Hashtbl.mem t.load_started node.Dom.uid) then
    match node.Dom.tag, Dom.get_attr node "src" with
    | _, (None | Some "") -> ()
    | "img", Some url -> start_image_load t w node ~url
    | "script", Some url -> start_external_script t w node ~url
    | "iframe", Some url ->
        Hashtbl.replace t.load_started node.Dom.uid ();
        count_loadable t w node;
        Network.fetch t.net ~url (fun outcome ->
            match outcome with
            | Network.Fetched html -> start_frame_document t ~parent:w ~iframe_node:node ~html ~url
            | Network.Missing -> ignore (element_load t w node ~event:"error" ~preds:[]))
    | _ -> ()

and set_inner_html t w node html =
  List.iter (fun child -> Dom.remove w.doc child) (Dom.children node);
  let rec build (h : Html.node) =
    match h with
    | Html.Text s -> Dom.create_text w.doc s
    | Html.Element e ->
        let n = Dom.create_element w.doc ~tag:e.Html.tag ~attrs:(html_attrs e) in
        List.iter
          (fun child ->
            if e.Html.tag = "script" then
              match child with
              | Html.Text s -> n.Dom.text <- n.Dom.text ^ s
              | Html.Element _ -> ()
            else Dom.append w.doc ~parent:n ~child:(build child))
          e.Html.children;
        n
  in
  List.iter
    (fun h ->
      let child = build h in
      Dom.append w.doc ~parent:node ~child;
      if Dom.is_attached w.doc node then after_attach t w ~run_scripts:false child)
    (Html.parse ~tm:(tel t) html)

and install_node_methods t w node obj =
  let vm = t.vm in
  let m name fn = Value.set_prop_raw obj name (Value.Object (Value.new_builtin vm name fn)) in
  let as_node v =
    match v with
    | Value.Object { Value.host = Some { Value.host_kind = "node"; host_id; _ }; _ } ->
        Hashtbl.find_opt t.nodes host_id |> Option.map fst
    | _ -> None
  in
  m "appendChild" (fun _vm ~this:_ args ->
      match as_node (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) with
      | Some child ->
          Dom.append w.doc ~parent:node ~child;
          if Dom.is_attached w.doc node then after_attach t w child;
          node_value t w child
      | None -> Value.throw_error vm "TypeError" "appendChild: argument is not a node");
  m "insertBefore" (fun _vm ~this:_ args ->
      let child = as_node (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let before = as_node (List.nth_opt args 1 |> Option.value ~default:Value.Undefined) in
      match child, before with
      | Some child, Some before ->
          Dom.insert_before w.doc ~parent:node ~child ~before;
          if Dom.is_attached w.doc node then after_attach t w child;
          node_value t w child
      | Some child, None ->
          Dom.append w.doc ~parent:node ~child;
          if Dom.is_attached w.doc node then after_attach t w child;
          node_value t w child
      | None, _ -> Value.throw_error vm "TypeError" "insertBefore: argument is not a node");
  m "removeChild" (fun _vm ~this:_ args ->
      match as_node (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) with
      | Some child ->
          Dom.remove w.doc child;
          node_value t w child
      | None -> Value.throw_error vm "TypeError" "removeChild: argument is not a node");
  m "setAttribute" (fun vm ~this:_ args ->
      let name = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let v = Value.to_string vm (List.nth_opt args 1 |> Option.value ~default:Value.Undefined) in
      (if String.length name > 2 && String.sub name 0 2 = "on" then
         ignore (node_host_set t w node obj name (Value.String v))
       else begin
         Dom.set_attr w.doc node name v;
         if name = "src" && Dom.is_attached w.doc node then after_attach_src t w node
       end);
      Value.Undefined);
  m "getAttribute" (fun _vm ~this:_ args ->
      let name = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      match Dom.get_idl w.doc node name with
      | Some v -> Value.String v
      | None -> Value.Null);
  m "addEventListener" (fun vm ~this:_ args ->
      let event = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let handler = List.nth_opt args 1 |> Option.value ~default:Value.Undefined in
      let capture =
        match List.nth_opt args 2 with Some v -> Value.to_boolean v | None -> false
      in
      if Value.is_callable handler then
        ignore (Events.add_listener t.registry ~target:node.Dom.uid ~event ~capture handler);
      Value.Undefined);
  m "removeEventListener" (fun vm ~this:_ args ->
      let event = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let handler = List.nth_opt args 1 |> Option.value ~default:Value.Undefined in
      List.iter
        (fun (r : Value.t Events.registration) ->
          if Value.strict_equals r.Events.handler handler then
            Events.remove_listener t.registry ~target:node.Dom.uid ~event ~uid:r.Events.listener_uid)
        (Events.listeners t.registry ~target:node.Dom.uid ~event);
      Value.Undefined);
  m "getElementsByTagName" (fun vm ~this:_ args ->
      let tag =
        String.lowercase_ascii
          (Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined))
      in
      let all = Dom.get_elements_by_tag_name w.doc tag in
      let under =
        List.filter
          (fun (n : Dom.node) ->
            let rec descends (x : Dom.node) =
              match x.Dom.parent with
              | Some p -> p.Dom.uid = node.Dom.uid || descends p
              | None -> false
            in
            descends n)
          all
      in
      Value.Object (Value.new_array vm (List.map (node_value t w) under)));
  m "querySelector" (fun vm ~this:_ args ->
      let sel = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      match query_select t w ~under:node sel with
      | n :: _ -> node_value t w n
      | [] -> Value.Null);
  m "querySelectorAll" (fun vm ~this:_ args ->
      let sel = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      Value.Object
        (Value.new_array vm (List.map (node_value t w) (query_select t w ~under:node sel))));
  m "getElementsByClassName" (fun vm ~this:_ args ->
      let cls = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      Value.Object
        (Value.new_array vm
           (List.map (node_value t w) (query_select t w ~under:node ("." ^ cls)))));
  let dispatch_method event =
    m event (fun _vm ~this:_ _args ->
        user_action_dispatch t w node ~event ~inline:true;
        Value.Undefined)
  in
  dispatch_method "click";
  dispatch_method "focus";
  dispatch_method "blur"

(* Minimal selector engine: "#id", ".class", "tag", and the descendant
   combination "tag.class". Matching elements are read per §4.2 like the
   collection accessors. *)
and query_select t w ~under selector =
  let selector = String.trim selector in
  if selector = "" then []
  else if selector.[0] = '#' then begin
    let id = String.sub selector 1 (String.length selector - 1) in
    match Dom.get_element_by_id w.doc id with
    | Some n ->
        let rec descends (x : Dom.node) =
          x.Dom.uid = under.Dom.uid
          || match x.Dom.parent with Some p -> descends p | None -> false
        in
        if descends n then [ n ] else []
    | None -> []
  end
  else begin
    let tag, cls =
      match String.index_opt selector '.' with
      | Some 0 -> (None, Some (String.sub selector 1 (String.length selector - 1)))
      | Some i ->
          ( Some (String.lowercase_ascii (String.sub selector 0 i)),
            Some (String.sub selector (i + 1) (String.length selector - i - 1)) )
      | None -> (Some (String.lowercase_ascii selector), None)
    in
    let has_class n c =
      match Dom.get_attr n "class" with
      | Some classes -> List.mem c (String.split_on_char ' ' classes)
      | None -> false
    in
    let matches (n : Dom.node) =
      (match tag with Some t -> n.Dom.tag = t | None -> true)
      && (match cls with Some c -> has_class n c | None -> true)
    in
    let out = ref [] in
    Dom.iter_subtree
      (fun n -> if n.Dom.tag <> "#text" && n.Dom.uid <> under.Dom.uid && matches n then out := n :: !out)
      under;
    let nodes = List.rev !out in
    (* Read the collection cells insertions write (§4.2): the tag cell
       and/or the per-class cell, so misses still race with insertion. *)
    let read_collection name =
      Instr.emit t.instr
        (Location.Html_elem (Location.Collection { doc = Dom.doc_uid w.doc; name }))
        `Read
    in
    (match tag with Some tg -> read_collection ("tag:" ^ tg) | None -> ());
    (match cls with Some c -> read_collection ("class:" ^ c) | None -> ());
    List.iter (fun n -> Instr.emit t.instr (Dom.node_location n) `Read) nodes;
    nodes
  end

(* A click/focus/blur: either a simulated user action (top-level op) or an
   inline dispatch from script (splits the interrupted op). *)
and user_action_dispatch t w node ~event ~inline =
  let default_action =
    if event = "click" && node.Dom.tag = "a" then
      match Dom.get_attr node "href" with
      | Some href when String.length href > 11 && String.sub href 0 11 = "javascript:" ->
          let code = String.sub href 11 (String.length href - 11) in
          Some (fun () -> run_script_source t w ~source:code ~label:("href " ^ code))
      | Some _ | None -> None
    else None
  in
  let bubbles = not (List.mem event Events.non_bubbling_events) in
  if inline then
    dispatch_inline t ~win:w ~target:node.Dom.uid ~path:(node_path node) ~event ~bubbles
      ?default_action ()
  else
    ignore
      (dispatch t ~win:w ~target:node.Dom.uid ~path:(node_path node) ~event ~bubbles ~preds:[]
         ?default_action ())

(* --- document and window objects ------------------------------------- *)

and make_document_object t w =
  let vm = t.vm in
  let obj = Value.new_object vm ~class_name:"HTMLDocument" () in
  let root = Dom.root w.doc in
  Hashtbl.replace t.node_objs root.Dom.uid obj;
  (* Documents expose the Node interface too (appendChild, removeChild,
     ...); document-specific methods below override where they differ. *)
  install_node_methods t w root obj;
  let m name fn = Value.set_prop_raw obj name (Value.Object (Value.new_builtin vm name fn)) in
  m "getElementById" (fun vm ~this:_ args ->
      let id = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      match Dom.get_element_by_id w.doc id with
      | Some n -> node_value t w n
      | None -> Value.Null);
  m "getElementsByTagName" (fun vm ~this:_ args ->
      let tag = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      Value.Object
        (Value.new_array vm (List.map (node_value t w) (Dom.get_elements_by_tag_name w.doc tag))));
  m "getElementsByName" (fun vm ~this:_ args ->
      let name = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let nodes =
        List.filter (fun n -> Dom.get_attr n "name" = Some name) (Dom.document_order w.doc)
      in
      List.iter (fun n -> Instr.emit t.instr (Dom.node_location n) `Read) nodes;
      Value.Object (Value.new_array vm (List.map (node_value t w) nodes)));
  m "createElement" (fun vm ~this:_ args ->
      let tag = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let n = Dom.create_element w.doc ~tag ~attrs:[] in
      Hashtbl.replace t.nodes n.Dom.uid (n, w);
      node_value t w n);
  m "createTextNode" (fun vm ~this:_ args ->
      let s = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let n = Dom.create_text w.doc s in
      Hashtbl.replace t.nodes n.Dom.uid (n, w);
      node_value t w n);
  m "addEventListener" (fun vm ~this:_ args ->
      let event = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let handler = List.nth_opt args 1 |> Option.value ~default:Value.Undefined in
      let capture = match List.nth_opt args 2 with Some v -> Value.to_boolean v | None -> false in
      if Value.is_callable handler then
        ignore (Events.add_listener t.registry ~target:root.Dom.uid ~event ~capture handler);
      Value.Undefined);
  let doc_write newline vm args =
    let text = String.concat "" (List.map (Value.to_string vm) args) in
    (match t.doc_write with
    | Some (w', _, buf) when w'.win_uid = w.win_uid ->
        Buffer.add_string buf text;
        if newline then Buffer.add_char buf '\n'
    | Some _ | None ->
        (* Outside parser-driven execution a real document.write would blow
           the document away; that destructive path is not simulated. *)
        record_crash t "document.write outside parsing is not supported (ignored)");
    Value.Undefined
  in
  m "write" (fun vm ~this:_ args -> doc_write false vm args);
  m "writeln" (fun vm ~this:_ args -> doc_write true vm args);
  obj.Value.host <-
    Some
      {
        Value.host_id = root.Dom.uid;
        host_kind = "document";
        host_get =
          (fun _vm o name ->
            match name with
            | "body" -> (
                match Dom.get_elements_by_tag_name w.doc "body" with
                | n :: _ -> Some (node_value t w n)
                | [] -> Some Value.Null)
            | "documentElement" -> (
                match Dom.get_elements_by_tag_name w.doc "html" with
                | n :: _ -> Some (node_value t w n)
                | [] -> Some Value.Null)
            | "images" | "forms" | "links" | "anchors" | "scripts" ->
                Some
                  (Value.Object
                     (Value.new_array t.vm (List.map (node_value t w) (Dom.collection w.doc name))))
            | "readyState" ->
                Some
                  (Value.String
                     (if w.load_fired then "complete"
                      else if w.parsing_done then "interactive"
                      else "loading"))
            | "defaultView" -> Some (Value.Object w.win_obj)
            | "cookie" ->
                (* Cookie state is shared mutable state (the paper notes
                   Zheng et al.'s special cookie handling and that adding
                   it "would be straightforward" — §8); one logical cell
                   per document. *)
                Instr.emit t.instr (prop_cell t ~owner:root.Dom.uid "cookie") `Read;
                (match Value.get_prop_raw o "__cookie" with
                | Some v -> Some v
                | None -> Some (Value.String ""))
            | _ when String.length name > 2 && String.sub name 0 2 = "on" -> (
                let event = String.sub name 2 (String.length name - 2) in
                match Events.inline t.registry ~target:root.Dom.uid ~event with
                | Some h -> Some h
                | None -> Some Value.Null)
            | _ -> None);
        host_set =
          (fun _vm o name v ->
            match name with
            | "cookie" ->
                Instr.emit t.instr (prop_cell t ~owner:root.Dom.uid "cookie") `Write;
                (* Real cookies append "k=v" pairs; keep the concatenated
                   jar so reads see all writes. *)
                let prev =
                  match Value.get_prop_raw o "__cookie" with
                  | Some (Value.String s) -> s
                  | _ -> ""
                in
                let added = Value.to_string t.vm v in
                let jar = if prev = "" then added else prev ^ "; " ^ added in
                Value.set_prop_raw o "__cookie" (Value.String jar);
                true
            | _ when String.length name > 2 && String.sub name 0 2 = "on" ->
                let event = String.sub name 2 (String.length name - 2) in
                let handler =
                  match v with
                  | Value.String code -> compile_handler_code t ~code ~label:("document.on" ^ event)
                  | Value.Null | Value.Undefined -> None
                  | v when Value.is_callable v -> Some v
                  | _ -> None
                in
                Events.set_inline t.registry ~target:root.Dom.uid ~event handler;
                true
            | _ -> false);
      };
  obj

and make_window_object t w =
  let vm = t.vm in
  let obj = Value.new_object vm ~class_name:"Window" () in
  let m name fn = Value.set_prop_raw obj name (Value.Object (Value.new_builtin vm name fn)) in
  let location = Value.new_object vm ~class_name:"Location" () in
  Value.set_prop_raw location "href" (Value.String (Dom.url w.doc));
  Value.set_prop_raw obj "location" (Value.Object location);
  m "setTimeout" (fun vm ~this:_ args -> set_timeout t w vm args);
  m "setInterval" (fun vm ~this:_ args -> set_interval t w vm args);
  m "clearTimeout" (fun vm ~this:_ args -> clear_timeout t vm args);
  m "clearInterval" (fun vm ~this:_ args -> clear_interval t vm args);
  m "alert" (fun vm ~this:_ args ->
      let msg = String.concat " " (List.map (Value.to_string vm) args) in
      vm.Value.console := ("[alert] " ^ msg) :: !(vm.Value.console);
      Value.Undefined);
  m "addEventListener" (fun vm ~this:_ args ->
      let event = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let handler = List.nth_opt args 1 |> Option.value ~default:Value.Undefined in
      let capture = match List.nth_opt args 2 with Some v -> Value.to_boolean v | None -> false in
      if Value.is_callable handler then
        ignore (Events.add_listener t.registry ~target:w.win_uid ~event ~capture handler);
      Value.Undefined);
  m "getComputedStyle" (fun _vm ~this:_ args ->
      match List.nth_opt args 0 with
      | Some (Value.Object { Value.host = Some { Value.host_kind = "node"; host_id; _ }; _ }) -> (
          match Hashtbl.find_opt t.nodes host_id with
          | Some (n, w') -> (
              match node_host_get t w' n (wrap_node t w' n) "style" with
              | Some v -> v
              | None -> Value.Null)
          | None -> Value.Null)
      | _ -> Value.Null);
  Value.set_prop_raw obj "XMLHttpRequest" (Value.Object (make_xhr_ctor t w));
  (* localStorage: each key is its own logical location, so concurrent
     handlers racing on one key are detected without colliding on
     others. *)
  let storage = Value.new_object vm ~class_name:"Storage" () in
  let storage_uid = t.instr.Instr.fresh_id () in
  let storage_data : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let sm name fn = Value.set_prop_raw storage name (Value.Object (Value.new_builtin vm name fn)) in
  sm "getItem" (fun vm ~this:_ args ->
      let key = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      (match Hashtbl.find_opt storage_data key with
      | Some v ->
          Instr.emit t.instr (prop_cell t ~owner:storage_uid key) `Read;
          Value.String v
      | None ->
          Instr.emit t.instr ~flags:[ Access.Observed_miss ]
            (prop_cell t ~owner:storage_uid key)
            `Read;
          Value.Null));
  sm "setItem" (fun vm ~this:_ args ->
      let key = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      let v = Value.to_string vm (List.nth_opt args 1 |> Option.value ~default:Value.Undefined) in
      Instr.emit t.instr (prop_cell t ~owner:storage_uid key) `Write;
      Hashtbl.replace storage_data key v;
      Value.Undefined);
  sm "removeItem" (fun vm ~this:_ args ->
      let key = Value.to_string vm (List.nth_opt args 0 |> Option.value ~default:Value.Undefined) in
      if Hashtbl.mem storage_data key then begin
        Instr.emit t.instr (prop_cell t ~owner:storage_uid key) `Write;
        Hashtbl.remove storage_data key
      end;
      Value.Undefined);
  Value.set_prop_raw obj "localStorage" (Value.Object storage);
  obj.Value.host <-
    Some
      {
        Value.host_id = w.win_uid;
        host_kind = "window";
        host_get =
          (fun vm o name ->
            match name with
            | "document" -> Some (Value.Object w.doc_obj)
            | "window" | "self" | "top" -> Some (Value.Object obj)
            | "parent" -> (
                match w.frame with
                | Some { parent; _ } -> Some (Value.Object parent.win_obj)
                | None -> Some (Value.Object obj))
            | _ when String.length name > 2 && String.sub name 0 2 = "on" -> (
                let event = String.sub name 2 (String.length name - 2) in
                match Events.inline t.registry ~target:w.win_uid ~event with
                | Some h -> Some h
                | None -> Some Value.Null)
            | _ when Hashtbl.mem o.Value.props name -> None
            | _ -> (
                (* Unify window properties with the shared global scope. *)
                match Interp.read_global vm name with Some v -> Some v | None -> Some Value.Undefined)
            );
        host_set =
          (fun vm _o name v ->
            match name with
            | _ when String.length name > 2 && String.sub name 0 2 = "on" ->
                let event = String.sub name 2 (String.length name - 2) in
                let handler =
                  match v with
                  | Value.String code -> compile_handler_code t ~code ~label:("window.on" ^ event)
                  | Value.Null | Value.Undefined -> None
                  | v when Value.is_callable v -> Some v
                  | _ -> None
                in
                Events.set_inline t.registry ~target:w.win_uid ~event handler;
                true
            | "location" -> true (* navigation not simulated *)
            | _ ->
                Interp.write_global vm name v;
                true);
      };
  obj

(* --- timers (rules 16, 17 + clearTimeout extension) ------------------- *)

and callback_of t _vm v =
  match v with
  | Value.String code -> compile_handler_code t ~code ~label:"timer code"
  | v when Value.is_callable v -> Some v
  | _ -> None

and timer_alive_loc t uid = prop_cell t ~owner:uid "alive"

and set_timeout t w vm args =
  let f = List.nth_opt args 0 |> Option.value ~default:Value.Undefined in
  let delay =
    match List.nth_opt args 1 with Some v -> Value.to_number v | None -> 0.
  in
  let delay = if Float.is_nan delay then 0. else Float.max 0. delay in
  match callback_of t vm f with
  | None -> Value.Number (-1.)
  | Some callback ->
      let caller = current_op t in
      let timer_uid = t.instr.Instr.fresh_id () in
      let handle =
        Event_loop.schedule ~cls:Event_loop.Timer t.loop ~delay (fun () ->
            Hashtbl.remove t.timeouts timer_uid;
            let label = Printf.sprintf "setTimeout callback (timer %d)" timer_uid in
            let op = fresh_op t Op.Timeout_callback ~label ~preds:[ caller ] in
            ignore
              (within_op t op ~label (fun () ->
                   (* clearTimeout extension: the callback reads the timer's
                      liveness; an unordered clear writes it. *)
                   Instr.emit t.instr (timer_alive_loc t timer_uid) `Read;
                   enter_window t w;
                   ignore (Interp.call t.vm callback ~this:Value.Undefined []))))
      in
      Hashtbl.replace t.timeouts timer_uid handle;
      Value.Number (float_of_int timer_uid)

and set_interval t w vm args =
  let f = List.nth_opt args 0 |> Option.value ~default:Value.Undefined in
  let delay =
    match List.nth_opt args 1 with Some v -> Value.to_number v | None -> 0.
  in
  let delay = if Float.is_nan delay then 0. else Float.max 1. delay in
  match callback_of t vm f with
  | None -> Value.Number (-1.)
  | Some callback ->
      let caller = current_op t in
      let timer_uid = t.instr.Instr.fresh_id () in
      let st = { iter = 0; last_op = caller; active = true; pending = None } in
      Hashtbl.replace t.intervals timer_uid st;
      let rec arm () =
        st.pending <-
          Some
            (Event_loop.schedule ~cls:Event_loop.Timer t.loop ~delay (fun () ->
                 if st.active then begin
                   let label =
                     Printf.sprintf "setInterval callback #%d (timer %d)" st.iter timer_uid
                   in
                   let op =
                     fresh_op t (Op.Interval_callback st.iter) ~label ~preds:[ st.last_op ]
                   in
                   let final =
                     within_op t op ~label (fun () ->
                         Instr.emit t.instr (timer_alive_loc t timer_uid) `Read;
                         enter_window t w;
                         ignore (Interp.call t.vm callback ~this:Value.Undefined []))
                   in
                   st.last_op <- final;
                   st.iter <- st.iter + 1;
                   arm ()
                 end))
      in
      arm ();
      Value.Number (float_of_int timer_uid)

and clear_timeout t _vm args =
  (match List.nth_opt args 0 with
  | Some v -> (
      let uid = int_of_float (Value.to_number v) in
      match Hashtbl.find_opt t.timeouts uid with
      | Some handle ->
          Event_loop.cancel t.loop handle;
          Hashtbl.remove t.timeouts uid;
          Instr.emit t.instr (timer_alive_loc t uid) `Write
      | None -> ())
  | None -> ());
  Value.Undefined

and clear_interval t _vm args =
  (match List.nth_opt args 0 with
  | Some v -> (
      let uid = int_of_float (Value.to_number v) in
      match Hashtbl.find_opt t.intervals uid with
      | Some st ->
          st.active <- false;
          (match st.pending with Some h -> Event_loop.cancel t.loop h | None -> ());
          Hashtbl.remove t.intervals uid;
          Instr.emit t.instr (timer_alive_loc t uid) `Write
      | None -> ())
  | None -> ());
  Value.Undefined

(* --- XHR (rule 10) ---------------------------------------------------- *)

and make_xhr_ctor t w =
  let vm = t.vm in
  Value.new_builtin vm "XMLHttpRequest" (fun vm ~this:_ _args ->
      let xhr_uid = t.instr.Instr.fresh_id () in
      let obj = Value.new_object vm ~class_name:"XMLHttpRequest" () in
      Hashtbl.replace t.node_objs xhr_uid obj;
      Hashtbl.replace t.create_ops xhr_uid (current_op t);
      Value.set_prop_raw obj "readyState" (Value.Number 0.);
      Value.set_prop_raw obj "responseText" (Value.String "");
      Value.set_prop_raw obj "status" (Value.Number 0.);
      let url = ref "" in
      let m name fn = Value.set_prop_raw obj name (Value.Object (Value.new_builtin vm name fn)) in
      m "open" (fun vm ~this:_ args ->
          url := Value.to_string vm (List.nth_opt args 1 |> Option.value ~default:Value.Undefined);
          Value.set_prop_raw obj "readyState" (Value.Number 1.);
          Value.Undefined);
      m "setRequestHeader" (fun _vm ~this:_ _ -> Value.Undefined);
      m "send" (fun _vm ~this:_ _args ->
          let send_op = current_op t in
          Network.fetch ~cls:Event_loop.Xhr t.net ~url:!url (fun outcome ->
              (match outcome with
              | Network.Fetched body ->
                  Value.set_prop_raw obj "readyState" (Value.Number 4.);
                  Value.set_prop_raw obj "responseText" (Value.String body);
                  Value.set_prop_raw obj "status" (Value.Number 200.)
              | Network.Missing ->
                  Value.set_prop_raw obj "readyState" (Value.Number 4.);
                  Value.set_prop_raw obj "status" (Value.Number 404.));
              ignore
                (dispatch t ~win:w ~target:xhr_uid ~path:[ xhr_uid ] ~event:"readystatechange"
                   ~bubbles:false ~preds:[ send_op ] ~target_value:(Value.Object obj) ()));
          Value.Undefined);
      obj.Value.host <-
        Some
          {
            Value.host_id = xhr_uid;
            host_kind = "xhr";
            host_get =
              (fun _vm _o name ->
                match name with
                | "onreadystatechange" -> (
                    match Events.inline t.registry ~target:xhr_uid ~event:"readystatechange" with
                    | Some h -> Some h
                    | None -> Some Value.Null)
                | _ -> None);
            host_set =
              (fun _vm _o name v ->
                match name with
                | "onreadystatechange" ->
                    let handler = if Value.is_callable v then Some v else None in
                    Events.set_inline t.registry ~target:xhr_uid ~event:"readystatechange" handler;
                    true
                | _ -> false);
          };
      Value.Object obj)

(* --- window construction ---------------------------------------------- *)

and make_window t ~frame ~url =
  let win_uid = t.instr.Instr.fresh_id () in
  let doc = Dom.create_document t.instr ~url in
  let w =
    {
      win_uid;
      doc;
      frame;
      win_obj = Value.new_object t.vm ();  (* replaced below *)
      doc_obj = Value.new_object t.vm ();
      parse_items = [];
      parse_preds = [ t.init_op ];
      parsing_done = false;
      blocked_on_script = false;
      deferred = [];
      dcl_done = false;
      dcl_ops = [];
      load_fired = false;
      pending_loads = 0;
      load_preds = [];
      defer_ld_ops = [];
    }
  in
  w.doc_obj <- make_document_object t w;
  w.win_obj <- make_window_object t w;
  Hashtbl.replace t.nodes (Dom.root doc).Dom.uid (Dom.root doc, w);
  Hashtbl.replace t.create_ops w.win_uid t.init_op;
  Hashtbl.replace t.create_ops (Dom.root doc).Dom.uid t.init_op;
  t.windows <- t.windows @ [ w ];
  (* Window-level builtins double as bare globals: setTimeout(...) without
     the window. prefix. Install once, from the main window. *)
  if frame = None then begin
    List.iter
      (fun name ->
        match Value.get_prop_raw w.win_obj name with
        | Some v -> Hashtbl.replace t.vm.Value.global.Value.vars name (ref v)
        | None -> ())
      [
        "setTimeout"; "setInterval"; "clearTimeout"; "clearInterval"; "alert";
        "XMLHttpRequest"; "getComputedStyle"; "location"; "localStorage";
      ];
    t.vm.Value.global_this <- Value.Object w.win_obj
  end;
  enter_window t w;
  w

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let create (config : Config.t) =
  let tm = config.Config.telemetry in
  let loop = Event_loop.create ~tm ~bias:config.Config.bias () in
  Telemetry.set_virtual_clock tm (fun () -> Event_loop.now loop);
  let rng = Wr_support.Rng.of_int config.Config.seed in
  let resolve url = List.assoc_opt url config.Config.resources in
  let net =
    Network.create ~loop ~rng:(Wr_support.Rng.split rng) ~resolve
      ~mean_latency:config.Config.mean_latency ~tm ()
  in
  let graph = Graph.create ~strategy:config.Config.hb_strategy () in
  let det =
    match config.Config.detector with
    | Config.Last_access -> Wr_detect.Last_access.create graph
    | Config.Full_track -> Wr_detect.Full_track.create graph
    | Config.No_detector -> Detector.null
  in
  (* Wrapper order matters: the dedup cache sits closest to the detector so
     the trace recorder still captures the raw access stream (offline replay
     must see what the page did, not what the cache forwarded). *)
  let det, dedup_stats =
    if config.Config.dedup && config.Config.detector <> Config.No_detector then
      let det, stats = Wr_detect.Dedup.wrap det in
      (det, Some stats)
    else (det, None)
  in
  let det, recorded_accesses =
    if config.Config.trace then
      let det, read = Wr_detect.Trace.recorder det in
      (det, Some read)
    else (det, None)
  in
  let det = Detector.with_telemetry tm det in
  let vm =
    Interp.create ~seed:config.Config.seed ~fuel:config.Config.fuel
      ~sink:(fun a -> det.Detector.record a)
      ()
  in
  vm.Value.now <- (fun () -> Event_loop.now loop);
  vm.Value.tm <- tm;
  let instr =
    {
      Instr.op = 0;
      context = "init";
      sink = (fun a -> det.Detector.record a);
      cell_id = (fun ~owner name -> Value.cell_id vm ~owner name);
      fresh_id = (fun () -> Value.fresh_id vm);
    }
  in
  let init_op = Graph.fresh graph Op.Initial ~label:"browser start" in
  let t =
    {
      config;
      graph;
      det;
      vm;
      instr;
      loop;
      net;
      registry = Events.create ~tm instr;
      init_op;
      main = None;
      windows = [];
      current_window = None;
      node_objs = Hashtbl.create 256;
      nodes = Hashtbl.create 256;
      create_ops = Hashtbl.create 256;
      dispatch_ops = Hashtbl.create 64;
      counted_loadables = Hashtbl.create 16;
      load_started = Hashtbl.create 16;
      timeouts = Hashtbl.create 16;
      intervals = Hashtbl.create 8;
      crashes = [];
      segment_counter = 0;
      recorded_accesses;
      dedup_stats;
      doc_write = None;
    }
  in
  set_op t init_op ~label:"browser start";
  t

let start t =
  Telemetry.mark (tel t) ~cat:"page" "start";
  let w = make_window t ~frame:None ~url:"http://site.test/" in
  t.main <- Some w;
  w.parse_items <-
    List.map
      (function
        | Html.Element e -> I_elem { elem = e; item_parent = Dom.root w.doc }
        | Html.Text s -> I_text { content = s; item_parent = Dom.root w.doc })
      (Html.parse ~tm:(tel t) t.config.Config.page);
  schedule_parse t w

let run t = Event_loop.run_until t.loop ~deadline:t.config.Config.time_limit

(* ------------------------------------------------------------------ *)
(* User simulation                                                     *)
(* ------------------------------------------------------------------ *)

let attached_node t uid =
  match Hashtbl.find_opt t.nodes uid with
  | Some (n, w) when Dom.is_attached w.doc n -> Some (n, w)
  | _ -> None

let explorable_handler_targets t =
  List.filter
    (fun (target, event) ->
      List.mem event Events.exploration_events && attached_node t target <> None)
    (Events.targets_with_handlers t.registry)

let text_input_uids t =
  let out = ref [] in
  Hashtbl.iter
    (fun uid (n, w) ->
      if Dom.is_attached w.doc n then
        match n.Dom.tag with
        | "textarea" -> out := uid :: !out
        | "input" -> (
            match Dom.get_attr n "type" with
            | None | Some "" | Some "text" | Some "search" | Some "email" | Some "tel" ->
                out := uid :: !out
            | Some _ -> ())
        | _ -> ())
    t.nodes;
  List.sort compare !out

let javascript_link_uids t =
  let out = ref [] in
  Hashtbl.iter
    (fun uid (n, w) ->
      if Dom.is_attached w.doc n && n.Dom.tag = "a" then
        match Dom.get_attr n "href" with
        | Some href when String.length href > 11 && String.sub href 0 11 = "javascript:" ->
            out := uid :: !out
        | Some _ | None -> ())
    t.nodes;
  List.sort compare !out

let schedule_user_event t ~target ~event =
  ignore
    (Event_loop.schedule ~cls:Event_loop.User t.loop ~delay:0. (fun () ->
         match attached_node t target with
         | Some (n, w) -> user_action_dispatch t w n ~event ~inline:false
         | None -> ()))

let schedule_user_click t ~target =
  ignore
    (Event_loop.schedule ~cls:Event_loop.User t.loop ~delay:0. (fun () ->
         match attached_node t target with
         | Some (n, w) -> user_action_dispatch t w n ~event:"click" ~inline:false
         | None -> ()))

let schedule_user_typing t ~target ~text =
  ignore
    (Event_loop.schedule ~cls:Event_loop.User t.loop ~delay:0. (fun () ->
         match attached_node t target with
         | None -> ()
         | Some (n, w) ->
             (* The user operation writes the field's value (§5.2.2's
                this.value := this.value instrumentation made this write
                visible in WebKit; here it is direct), then input fires. *)
             let label = Printf.sprintf "user types into node#%d" n.Dom.uid in
             let op = fresh_op t Op.User ~label ~preds:[] in
             let final =
               within_op t op ~label (fun () ->
                   Dom.set_idl w.doc n ~flags:[ Access.User_input ] "value" text)
             in
             ignore
               (dispatch t ~win:w ~target:n.Dom.uid ~path:(node_path n) ~event:"input"
                  ~bubbles:true ~preds:[ final ] ())))
