(** The browser simulator — the WebKit substitute WebRacer instruments.

    One [t] runs one page (plus nested iframes) on a virtual-time event
    loop, executing MiniJS through the instrumented interpreter and
    building the happens-before graph online as rules 1-17 (§3.3) fire:

    - progressive HTML parsing, one [parse(E)] operation per static
      element, chained in syntactic order (rule 1a);
    - script scheduling with real semantics: inline scripts run during
      parsing (1b), external synchronous scripts block the parser until
      fetched (1c), [async] scripts run whenever their fetch lands, [defer]
      scripts run in order before [DOMContentLoaded] (rules 4-5),
      script-inserted external scripts run on arrival and script-inserted
      inline scripts run inside the inserting operation (§3.3 footnote);
    - iframes load asynchronously with rules 6-7;
    - event dispatch with capture/target/bubble, per-handler operations,
      rules 8-9, the Appendix A phasing edges, and operation splitting
      around inline (programmatic) dispatch;
    - [DOMContentLoaded] and window [load] per rules 11-15;
    - timers per rules 16-17, with the [clearTimeout]/[clearInterval]
      conflict extension described in DESIGN.md;
    - XHR with rule 10.

    Uncaught script exceptions are swallowed and logged, as browsers do
    (§2.3). All nondeterminism comes from the seeded network model, so any
    run is reproducible from its config. *)

type t

(** A script crash the browser hid from the "user" (§2.3). *)
type crash = { op : Wr_hb.Op.id; message : string; context : string }

(** [create config] builds the browser stack: event loop, network,
    detector, VM, empty main window. *)
val create : Config.t -> t

(** [start t] begins loading the main page (queues the first parse task).
    Call {!run} to make progress. *)
val start : t -> unit

(** [run t] drains the event loop up to the config's time limit. Returns
    the number of tasks executed. Safe to call repeatedly (e.g. after
    scheduling exploration events). *)
val run : t -> int

(** {2 Results} *)

val graph : t -> Wr_hb.Graph.t

val detector : t -> Wr_detect.Detector.t

(** [trace t] snapshots the recorded execution trace; [None] unless the
    config enabled [trace]. *)
val trace : t -> Wr_detect.Trace.t option

val crashes : t -> crash list

val console : t -> string list
(** [console t] is the page's console output, oldest first. *)

val virtual_now : t -> float

(** [run_info t] packages dispatch counts for the §5.3 filters. *)
val run_info : t -> Wr_detect.Filters.run_info

(** [main_document t] exposes the top window's document (tests inspect the
    final DOM). *)
val main_document : t -> Wr_dom.Dom.document

(** [window_load_fired t] — whether the main window's [load] has been
    dispatched. *)
val window_load_fired : t -> bool

(** {2 User simulation (used by automatic exploration, §5.2.2)} *)

(** [explorable_handler_targets t] lists (node uid, event) pairs with
    registered handlers for the exploration event set. *)
val explorable_handler_targets : t -> (int * string) list

(** [text_input_uids t] lists attached text-entry elements across all
    windows. *)
val text_input_uids : t -> int list

(** [javascript_link_uids t] lists attached anchors whose [href] uses the
    [javascript:] protocol. *)
val javascript_link_uids : t -> int list

(** [schedule_user_event t ~target ~event] queues a simulated user
    dispatch. *)
val schedule_user_event : t -> target:int -> event:string -> unit

(** [schedule_user_typing t ~target ~text] queues a simulated typing
    action: a user operation writes the field's [value] (flagged
    [User_input]) and dispatches [input]. *)
val schedule_user_typing : t -> target:int -> text:string -> unit

(** [schedule_user_click t ~target] queues a click dispatch, including the
    default action for [javascript:] links. *)
val schedule_user_click : t -> target:int -> unit

(** [accesses_seen t] is the number of instrumented accesses so far (raw:
    the dedup front-end does not change this count). *)
val accesses_seen : t -> int

(** [dedup_stats t] — raw vs forwarded access counts of the
    [Wr_detect.Dedup] front-end; [None] when [Config.dedup] is off or no
    detector is attached. *)
val dedup_stats : t -> Wr_detect.Dedup.stats option
