(** Browser run configuration. *)

type detector_kind = Last_access | Full_track | No_detector

type t = {
  seed : int;  (** drives network latencies and [Math.random] *)
  page : string;  (** HTML of the main page *)
  resources : (string * string) list;  (** URL -> body for scripts/frames/xhr *)
  time_limit : float;
      (** virtual-ms horizon; bounds pages with unbounded [setInterval]
          chains *)
  detector : detector_kind;
  hb_strategy : Wr_hb.Graph.strategy;
  fuel : int;  (** evaluation-step budget per operation *)
  mean_latency : float;  (** mean simulated fetch latency (ms) *)
  parse_delay : float;
      (** virtual ms consumed per parsed element. 0 (default) parses the
          whole page before any network arrival, like a fast machine; > 0
          lets resource arrivals interleave with parsing, making
          race-induced crashes (Figs. 3-4) observable — the adversarial
          replay mode uses this *)
  explore : bool;  (** §5.2.2 automatic exploration *)
  trace : bool;
      (** record the full execution trace (operations, edges, accesses)
          for offline analysis — see [Wr_detect.Trace] *)
  dedup : bool;
      (** per-operation access deduplication in front of the detector
          (see [Wr_detect.Dedup]) — semantics-preserving, on by default;
          turn off to measure raw detector pressure *)
  bias : Wr_scheduler.Event_loop.bias;
      (** per-channel delay transform for guided (triage-directed)
          schedules; {!Wr_scheduler.Event_loop.neutral} by default *)
  telemetry : Wr_telemetry.Telemetry.t;
      (** spans/counters/histograms across the pipeline; the disabled
          default is a near-no-op (see [Wr_telemetry.Telemetry]) *)
}

(** [default ~page ()] — seed 0, no extra resources, 60 s virtual horizon,
    the paper's detector, closure reachability, exploration on. *)
val default : page:string -> unit -> t
