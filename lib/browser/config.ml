type detector_kind = Last_access | Full_track | No_detector

type t = {
  seed : int;
  page : string;
  resources : (string * string) list;
  time_limit : float;
  detector : detector_kind;
  hb_strategy : Wr_hb.Graph.strategy;
  fuel : int;
  mean_latency : float;
  parse_delay : float;
  explore : bool;
  trace : bool;
  dedup : bool;
  bias : Wr_scheduler.Event_loop.bias;
  telemetry : Wr_telemetry.Telemetry.t;
}

let default ~page () =
  {
    seed = 0;
    page;
    resources = [];
    time_limit = 60_000.;
    detector = Last_access;
    hb_strategy = Wr_hb.Graph.Closure;
    fuel = 5_000_000;
    mean_latency = 20.;
    parse_delay = 0.;
    explore = true;
    trace = false;
    dedup = true;
    bias = Wr_scheduler.Event_loop.neutral;
    telemetry = Wr_telemetry.Telemetry.disabled;
  }
