type strategy = Dfs | Closure | Chain_vc

type node = {
  info : Op.info;
  mutable preds : Op.id list;
  mutable succs : Op.id list;
  mutable last_succ : Op.id;  (* most recently added successor; -1 if none *)
  ancestors : Wr_support.Bitset.t option;  (* Some iff strategy = Closure *)
  mutable vc : int array;  (* Chain_vc: chain -> highest reaching index + 1 *)
  mutable chain : int;  (* Chain_vc: -1 while unassigned *)
  mutable chain_idx : int;
}

type t = {
  strategy : strategy;
  mutable nodes : node array;  (* dense array indexed by op id *)
  mutable count : int;
  mutable edges : int;
  edge_set : (Op.id * Op.id, unit) Hashtbl.t;  (* O(1) duplicate-edge check *)
  mutable chain_tops : Op.id array;  (* Chain_vc: last op of each chain *)
  mutable chain_count : int;
}

let create ?(strategy = Closure) () =
  {
    strategy;
    nodes = [||];
    count = 0;
    edges = 0;
    edge_set = Hashtbl.create 1024;
    chain_tops = Array.make 16 (-1);
    chain_count = 0;
  }

let strategy t = t.strategy

let node t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Hb.Graph: unknown operation id %d" id);
  t.nodes.(id)

let fresh t kind ~label =
  let id = t.count in
  if id >= Array.length t.nodes then begin
    let capacity = max 64 (Array.length t.nodes * 2) in
    let dummy =
      { info = { Op.id = -1; kind = Op.Initial; label = "" };
        preds = []; succs = []; last_succ = -1; ancestors = None; vc = [||]; chain = -1;
        chain_idx = 0 }
    in
    let nodes = Array.make capacity dummy in
    Array.blit t.nodes 0 nodes 0 t.count;
    t.nodes <- nodes
  end;
  let ancestors =
    match t.strategy with
    | Closure -> Some (Wr_support.Bitset.create 64)
    | Dfs | Chain_vc -> None
  in
  t.nodes.(id) <-
    { info = { Op.id; kind; label }; preds = []; succs = []; last_succ = -1; ancestors;
      vc = [||]; chain = -1; chain_idx = 0 };
  t.count <- id + 1;
  id

let info t id = (node t id).info

let n_ops t = t.count

let n_edges t = t.edges

(* --- Closure strategy --------------------------------------------------- *)

(* Closure invariant: if [a] is in ancestors[n] then ancestors[a] is a
   subset of ancestors[n]. [propagate] restores it along successors after a
   new edge lands on a node that already has successors. *)
let rec propagate t a anc_a n =
  let node_n = t.nodes.(n) in
  match node_n.ancestors with
  | None -> ()
  | Some anc_n ->
      if not (Wr_support.Bitset.mem anc_n a) then begin
        Wr_support.Bitset.union_into ~into:anc_n anc_a;
        Wr_support.Bitset.add anc_n a;
        List.iter (propagate t a anc_a) node_n.succs
      end

(* --- Chain-VC strategy ---------------------------------------------------

   The "more efficient vector-clock representation" the paper leaves to
   future work (§5.2.1), realized via online chain decomposition: every
   operation joins the chain of one of its predecessors when that
   predecessor is still the chain's last element, else starts a new chain.
   An operation's clock maps each chain to the highest position on it that
   happens-before the operation, so a reachability query is one array
   lookup. Event-driven pages decompose into few chains (the parse chain,
   one per timer/fetch chain), keeping clocks short. *)

let ensure_chain t x =
  let nx = t.nodes.(x) in
  if nx.chain = -1 then begin
    if t.chain_count = Array.length t.chain_tops then begin
      let tops = Array.make (2 * t.chain_count) (-1) in
      Array.blit t.chain_tops 0 tops 0 t.chain_count;
      t.chain_tops <- tops
    end;
    nx.chain <- t.chain_count;
    nx.chain_idx <- 0;
    t.chain_tops.(t.chain_count) <- x;
    t.chain_count <- t.chain_count + 1
  end

(* Pointwise max of [src] plus the single entry (chain, bound) into
   [dst.vc]; returns true when anything grew. *)
let merge_vc dst src ~chain ~bound =
  let needed = max (Array.length src) (chain + 1) in
  if Array.length dst.vc < needed then begin
    let vc = Array.make needed 0 in
    Array.blit dst.vc 0 vc 0 (Array.length dst.vc);
    dst.vc <- vc
  end;
  let changed = ref false in
  Array.iteri
    (fun i v ->
      if v > dst.vc.(i) then begin
        dst.vc.(i) <- v;
        changed := true
      end)
    src;
  if chain >= 0 && bound > dst.vc.(chain) then begin
    dst.vc.(chain) <- bound;
    changed := true
  end;
  !changed

let rec vc_propagate t src ~chain ~bound n =
  let nn = t.nodes.(n) in
  if merge_vc nn src ~chain ~bound then
    List.iter (vc_propagate t nn.vc ~chain:(-1) ~bound:0) nn.succs

(* --- Edge insertion ------------------------------------------------------ *)

let add_edge t a b =
  if a >= b then
    invalid_arg
      (Printf.sprintf
         "Hb.Graph.add_edge: %d -> %d violates topological construction (edges must point \
          from an older operation to a newer one)"
         a b);
  let na = node t a and nb = node t b in
  (* Duplicate insertions are common (every access-pair rule re-derives the
     same edge) and used to pay O(out-degree) in [List.mem]; the last-succ
     slot catches the consecutive-repeat pattern for free and the edge set
     answers the rest in O(1), so dense pages no longer go quadratic. *)
  if na.last_succ <> b && not (Hashtbl.mem t.edge_set (a, b)) then begin
    na.last_succ <- b;
    Hashtbl.add t.edge_set (a, b) ();
    na.succs <- b :: na.succs;
    nb.preds <- a :: nb.preds;
    t.edges <- t.edges + 1;
    match t.strategy with
    | Dfs -> ()
    | Closure -> (
        match na.ancestors with
        | Some anc_a -> propagate t a anc_a b
        | None -> ())
    | Chain_vc ->
        ensure_chain t a;
        (* Extend a's chain with b when a is still its tip. *)
        if nb.chain = -1 && t.chain_tops.(na.chain) = a then begin
          nb.chain <- na.chain;
          nb.chain_idx <- na.chain_idx + 1;
          t.chain_tops.(na.chain) <- b
        end;
        vc_propagate t na.vc ~chain:na.chain ~bound:(na.chain_idx + 1) b
  end

(* --- Queries -------------------------------------------------------------- *)

let happens_before_dfs t a b =
  (* Backward traversal from [b]: does any path reach [a]? Ids decrease
     along pred edges, so nodes below [a] are pruned. *)
  let visited = Wr_support.Bitset.create t.count in
  let rec search stack =
    match stack with
    | [] -> false
    | n :: rest ->
        if n = a then true
        else if n < a || Wr_support.Bitset.mem visited n then search rest
        else begin
          Wr_support.Bitset.add visited n;
          search (List.rev_append t.nodes.(n).preds rest)
        end
  in
  search [ b ]

let happens_before t a b =
  if a = b then false
  else begin
    let na = node t a and nb = node t b in
    match t.strategy with
    | Closure -> (
        match nb.ancestors with
        | Some anc -> Wr_support.Bitset.mem anc a
        | None -> false)
    | Chain_vc ->
        na.chain >= 0
        && Array.length nb.vc > na.chain
        && nb.vc.(na.chain) >= na.chain_idx + 1
    | Dfs -> happens_before_dfs t a b
  end

let chc t a b = a <> b && (not (happens_before t a b)) && not (happens_before t b a)

let preds t id = (node t id).preds

let succs t id = (node t id).succs

let n_chains t = t.chain_count

let iter_ops f t =
  for i = 0 to t.count - 1 do
    f t.nodes.(i).info
  done

let dot_color = function
  | Op.Initial -> "gray"
  | Op.Parse -> "lightblue"
  | Op.Script -> "palegreen"
  | Op.Timeout_callback | Op.Interval_callback _ -> "khaki"
  | Op.Dispatch_anchor _ -> "plum"
  | Op.Handler _ -> "lightpink"
  | Op.User -> "orange"
  | Op.Segment _ -> "lightcyan"

let dot_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* Shared renderer behind [to_dot] (all nodes) and [to_dot_subgraph] (a
   selection). [include_node] restricts both the node list and the edges;
   [highlight_edges] render bold red (witness paths). Successor lists are
   deduplicated in the output so a node never prints the same edge twice. *)
let render_dot ~include_node ~highlight ~highlight_edges t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph happens_before {\n  rankdir=TB;\n  node [style=filled];\n";
  iter_ops
    (fun info ->
      if include_node info.Op.id then begin
        let extra =
          if List.mem info.Op.id highlight then ", color=red, penwidth=3" else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"#%d %s\", fillcolor=%s%s];\n" info.Op.id info.Op.id
             (dot_escape info.Op.label)
             (dot_color info.Op.kind) extra)
      end)
    t;
  for i = 0 to t.count - 1 do
    if include_node i then
      List.iter
        (fun succ ->
          if include_node succ then
            let attrs =
              if List.mem (i, succ) highlight_edges then
                " [color=red, penwidth=2.5, style=bold]"
              else ""
            in
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" i succ attrs))
        (List.sort_uniq compare t.nodes.(i).succs)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_dot ?(highlight = []) ?(highlight_edges = []) t =
  render_dot ~include_node:(fun _ -> true) ~highlight ~highlight_edges t

let to_dot_subgraph ?(highlight = []) ?(highlight_edges = []) ~nodes t =
  let wanted = Wr_support.Bitset.create (max 1 t.count) in
  List.iter
    (fun id -> if id >= 0 && id < t.count then Wr_support.Bitset.add wanted id)
    nodes;
  render_dot ~include_node:(Wr_support.Bitset.mem wanted) ~highlight ~highlight_edges t
