(** The happens-before graph (paper §3.3, §5.2.1).

    The browser registers operations and adds the edges mandated by rules
    1-17 as execution proceeds; the race detector asks "can these two
    operations happen concurrently?" ({!chc}). The relation queried is the
    transitive closure of the added edges.

    Three query strategies are provided:

    - {!Dfs} answers each query with a backward graph traversal, mirroring
      the paper's implementation ("repeated graph traversals contribute to
      the high overhead", §5.2.1);
    - {!Closure} maintains an incremental transitive-closure bitset per
      operation: constant-time queries, quadratic bits of memory;
    - {!Chain_vc} is the "more efficient vector-clock representation" the
      paper plans (§5.2.1): operations are decomposed online into chains
      (greedily extending a predecessor's chain), and each operation keeps
      a clock mapping chains to the highest position that happens-before
      it. Queries are one array lookup; memory is #ops x #chains, and
      event-driven pages decompose into few chains.

    All strategies are exact (a qcheck property asserts they agree); the
    benchmark suite compares their cost.

    The graph relies on edges being added in topological order: an edge
    [a -> b] may only be added while [b] has not yet finished being wired up
    (in practice, [a] was created before [b]). Adding a cycle is therefore
    impossible by construction, but {!add_edge} checks [a <> b]. *)

type t

type strategy = Dfs | Closure | Chain_vc

(** [create ~strategy ()] returns an empty graph. *)
val create : ?strategy:strategy -> unit -> t

val strategy : t -> strategy

(** [fresh t kind ~label] registers a new operation and returns its id. *)
val fresh : t -> Op.kind -> label:string -> Op.id

(** [info t id] retrieves the operation's metadata. Raises [Invalid_argument]
    on an unknown id. *)
val info : t -> Op.id -> Op.info

(** [n_ops t] is the number of registered operations. *)
val n_ops : t -> int

(** [n_edges t] is the number of direct edges added. *)
val n_edges : t -> int

(** [add_edge t a b] records that [a] happens-before [b]. Requires [a < b]
    (operations are created in schedule order, so every rule's edge points
    from an older operation to a newer one); raises [Invalid_argument]
    otherwise. Duplicate edges are ignored. *)
val add_edge : t -> Op.id -> Op.id -> unit

(** [happens_before t a b] holds iff [a -> b] is in the transitive closure
    (strict: [happens_before t a a = false]). *)
val happens_before : t -> Op.id -> Op.id -> bool

(** [chc t a b] — Can-Happen-Concurrently: [a <> b] and neither
    happens-before the other (paper §5.1). *)
val chc : t -> Op.id -> Op.id -> bool

(** [n_chains t] — chains created so far under {!Chain_vc} (0 for the
    other strategies); diagnostics and benchmarks. *)
val n_chains : t -> int

(** [preds t id] / [succs t id] expose direct edges, for tests and
    diagnostics. *)
val preds : t -> Op.id -> Op.id list

val succs : t -> Op.id -> Op.id list

(** [iter_ops f t] visits all operations in id order. *)
val iter_ops : (Op.info -> unit) -> t -> unit

(** [to_dot ?highlight ?highlight_edges t] renders the direct-edge graph
    in Graphviz DOT (operations labelled and colored by kind; ids in
    [highlight] drawn bold red — used to mark a race's endpoints; direct
    edges in [highlight_edges] drawn bold red — used to mark witness
    paths). Duplicate successor entries are deduplicated in the output. *)
val to_dot : ?highlight:Op.id list -> ?highlight_edges:(Op.id * Op.id) list -> t -> string

(** [to_dot_subgraph ?highlight ?highlight_edges ~nodes t] renders only
    the operations in [nodes] (ids outside the graph are ignored) and the
    direct edges between them — full-page graphs are unreadable, so race
    witnesses export just their evidence ops. Highlights as {!to_dot}. *)
val to_dot_subgraph :
  ?highlight:Op.id list -> ?highlight_edges:(Op.id * Op.id) list -> nodes:Op.id list -> t -> string
