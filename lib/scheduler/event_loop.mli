(** A single-threaded event loop over virtual time.

    The web platform's sources of nondeterminism — "variation in network
    bandwidth, CPU resources, or the timing of user input events" (§2.1) —
    become explicit delays on this loop. Time is virtual (milliseconds as
    floats): running a task advances the clock to its due time, so a whole
    page load is deterministic given the seed that produced the delays.

    Tasks at equal due times run in FIFO order, which matches how browser
    task queues drain. *)

type t

(** Identifies a scheduled task for cancellation ([clearTimeout]). *)
type handle

(** The channel a task arrives on — the browser-level source of the
    delay. Guided exploration (triage) perturbs whole channels at a
    time: "make the network fast and the timers slow" is one schedule. *)
type cls = Parse | Timer | Net | Xhr | User

type speed = Fast | Slow

(** A per-channel speed override. [None] leaves the channel's delays
    untouched. The transform is uniform and monotone per channel
    ([Fast] scales delays down, [Slow] adds a channel-specific
    constant), so same-channel relative order — and with it every
    happens-before edge the simulator derives from program order on a
    channel — is preserved. Only cross-channel interleavings change. *)
type bias = {
  parse : speed option;
  timer : speed option;
  net : speed option;
  xhr : speed option;
  user : speed option;
}

(** All channels at their natural speed. *)
val neutral : bias

val cls_name : cls -> string
val speed_name : speed -> string

(** [apply_bias b cls delay] is the biased delay a [schedule ~cls] call
    would use; exposed so directive labels can explain themselves. *)
val apply_bias : bias -> cls -> float -> float

(** [create ()] is an empty loop at time 0. [tm] wraps every task run in
    a ["scheduler"] span and samples queue depth per task when enabled.
    [bias] applies a per-channel delay transform to classified
    [schedule] calls; default {!neutral}. *)
val create : ?tm:Wr_telemetry.Telemetry.t -> ?bias:bias -> unit -> t

(** [now t] is the current virtual time in milliseconds. *)
val now : t -> float

(** [schedule t ~delay f] enqueues [f] to run at [now t +. max 0 delay].
    [cls] classifies the delay's source channel; classified delays pass
    through the loop's {!bias} transform, unclassified ones never move. *)
val schedule : ?cls:cls -> t -> delay:float -> (unit -> unit) -> handle

(** [cancel t h] prevents the task from running if it has not run yet;
    idempotent. *)
val cancel : t -> handle -> unit

(** [run_one t] pops and runs the earliest task, advancing the clock.
    Returns [false] when the queue is empty. *)
val run_one : t -> bool

(** [run_until t ~deadline] runs tasks in time order until the queue is
    empty or the next task is due after [deadline] (virtual ms). Pending
    later tasks stay queued. Returns the number of tasks run. The deadline
    is how the simulator bounds pages with unbounded [setInterval] chains
    (the Gomez pattern, §6.3). *)
val run_until : t -> deadline:float -> int

(** [pending t] is the number of queued (uncancelled) tasks. *)
val pending : t -> int
