(** A single-threaded event loop over virtual time.

    The web platform's sources of nondeterminism — "variation in network
    bandwidth, CPU resources, or the timing of user input events" (§2.1) —
    become explicit delays on this loop. Time is virtual (milliseconds as
    floats): running a task advances the clock to its due time, so a whole
    page load is deterministic given the seed that produced the delays.

    Tasks at equal due times run in FIFO order, which matches how browser
    task queues drain. *)

type t

(** Identifies a scheduled task for cancellation ([clearTimeout]). *)
type handle

(** [create ()] is an empty loop at time 0. [tm] wraps every task run in
    a ["scheduler"] span and samples queue depth per task when enabled. *)
val create : ?tm:Wr_telemetry.Telemetry.t -> unit -> t

(** [now t] is the current virtual time in milliseconds. *)
val now : t -> float

(** [schedule t ~delay f] enqueues [f] to run at [now t +. max 0 delay]. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** [cancel t h] prevents the task from running if it has not run yet;
    idempotent. *)
val cancel : t -> handle -> unit

(** [run_one t] pops and runs the earliest task, advancing the clock.
    Returns [false] when the queue is empty. *)
val run_one : t -> bool

(** [run_until t ~deadline] runs tasks in time order until the queue is
    empty or the next task is due after [deadline] (virtual ms). Pending
    later tasks stay queued. Returns the number of tasks run. The deadline
    is how the simulator bounds pages with unbounded [setInterval] chains
    (the Gomez pattern, §6.3). *)
val run_until : t -> deadline:float -> int

(** [pending t] is the number of queued (uncancelled) tasks. *)
val pending : t -> int
