(** Simulated network fetches.

    The paper's races are triggered by real network variance (external
    scripts, iframes, images, XHR arriving in any order). Here a fetch
    resolves a URL against a page-provided resource table and completes on
    the event loop after a latency sampled from a seeded distribution —
    reproducible, but with exactly the reordering freedom real networks
    have. Per-URL latency overrides let tests and the adversarial-replay
    mode force a specific order. *)

type outcome = Fetched of string | Missing

type t

(** [create ~loop ~rng ~resolve ()] builds a network whose universe of
    resources is [resolve]. Default latency: exponential with mean
    [mean_latency] (default 20 ms) plus [min_latency] (default 1 ms). *)
val create :
  loop:Event_loop.t ->
  rng:Wr_support.Rng.t ->
  resolve:(string -> string option) ->
  ?mean_latency:float ->
  ?min_latency:float ->
  ?tm:Wr_telemetry.Telemetry.t ->
  unit ->
  t

(** [fetch t ~url k] samples a latency, schedules the completion, and calls
    [k] with the outcome when the virtual clock reaches it. [cls] is the
    event-loop channel the completion lands on (default
    {!Event_loop.Net}; XHR sends pass [Xhr]) so schedule bias can steer
    fetch arrivals. *)
val fetch : ?cls:Event_loop.cls -> t -> url:string -> (outcome -> unit) -> unit

(** [set_latency t ~url ms] pins the latency for [url] (used to steer
    schedules). *)
val set_latency : t -> url:string -> float -> unit

(** [fetches t] counts fetches issued so far. *)
val fetches : t -> int
