type handle = int

type task = { due : float; seq : int; run : unit -> unit }

type cls = Parse | Timer | Net | Xhr | User

type speed = Fast | Slow

type bias = {
  parse : speed option;
  timer : speed option;
  net : speed option;
  xhr : speed option;
  user : speed option;
}

let neutral = { parse = None; timer = None; net = None; xhr = None; user = None }

let cls_name = function
  | Parse -> "parse"
  | Timer -> "timer"
  | Net -> "net"
  | Xhr -> "xhr"
  | User -> "user"

let speed_name = function Fast -> "fast" | Slow -> "slow"

(* Per-channel additive penalty for [Slow]. Scaled to dominate the
   channel's natural delays (timer intervals, sampled latencies) so a
   slowed channel lands after unbiased traffic, while [Fast] scales the
   delay down uniformly. Both transforms are monotone in the original
   delay, so relative order *within* a channel is preserved — only
   cross-channel interleavings move, which is exactly the freedom the
   HB model leaves open. *)
let slow_extra = function
  | Parse -> 50.
  | Timer -> 500.
  | Net -> 300.
  | Xhr -> 300.
  | User -> 200.

let speed_for bias = function
  | Parse -> bias.parse
  | Timer -> bias.timer
  | Net -> bias.net
  | Xhr -> bias.xhr
  | User -> bias.user

let apply_bias bias cls delay =
  match speed_for bias cls with
  | None -> delay
  | Some Fast -> delay *. 0.01
  | Some Slow -> delay +. slow_extra cls

(* Binary min-heap on (due, seq). *)
type t = {
  mutable heap : task array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  cancelled : (int, unit) Hashtbl.t;
  tm : Wr_telemetry.Telemetry.t;
  bias : bias;
}

let dummy = { due = 0.; seq = -1; run = ignore }

let create ?(tm = Wr_telemetry.Telemetry.disabled) ?(bias = neutral) () =
  {
    heap = Array.make 64 dummy;
    size = 0;
    clock = 0.;
    next_seq = 0;
    cancelled = Hashtbl.create 16;
    tm;
    bias;
  }

let now t = t.clock

let earlier a b = a.due < b.due || (a.due = b.due && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t task =
  if t.size = Array.length t.heap then begin
    let heap = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  t.heap.(t.size) <- task;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    if t.size > 0 then sift_down t 0;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.heap.(0)

let schedule ?cls t ~delay run =
  let delay =
    match cls with None -> delay | Some c -> apply_bias t.bias c delay
  in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { due = t.clock +. Float.max 0. delay; seq; run };
  seq

let cancel t h =
  Wr_telemetry.Telemetry.incr t.tm "scheduler.cancelled";
  Hashtbl.replace t.cancelled h ()

(* Run a task under telemetry: a ["task"] span plus a queue-depth sample.
   The guard keeps the disabled path allocation-free. *)
let run_task t task =
  let module T = Wr_telemetry.Telemetry in
  if T.enabled t.tm then begin
    T.incr t.tm "scheduler.tasks";
    T.observe t.tm "scheduler.queue_depth" (float_of_int (t.size + 1));
    T.with_span t.tm ~cat:"scheduler" ~name:"task" task.run
  end
  else task.run ()

let rec run_one t =
  match pop t with
  | None -> false
  | Some task ->
      if Hashtbl.mem t.cancelled task.seq then begin
        Hashtbl.remove t.cancelled task.seq;
        run_one t
      end
      else begin
        t.clock <- Float.max t.clock task.due;
        run_task t task;
        true
      end

let run_until t ~deadline =
  let rec loop n =
    match peek t with
    | None -> n
    | Some task ->
        if Hashtbl.mem t.cancelled task.seq then begin
          ignore (pop t);
          Hashtbl.remove t.cancelled task.seq;
          loop n
        end
        else if task.due > deadline then n
        else begin
          ignore (pop t);
          t.clock <- Float.max t.clock task.due;
          run_task t task;
          loop (n + 1)
        end
  in
  loop 0

let pending t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not (Hashtbl.mem t.cancelled t.heap.(i).seq) then incr n
  done;
  !n
