type outcome = Fetched of string | Missing

type t = {
  loop : Event_loop.t;
  rng : Wr_support.Rng.t;
  resolve : string -> string option;
  mean_latency : float;
  min_latency : float;
  pinned : (string, float) Hashtbl.t;
  mutable count : int;
  tm : Wr_telemetry.Telemetry.t;
}

let create ~loop ~rng ~resolve ?(mean_latency = 20.) ?(min_latency = 1.)
    ?(tm = Wr_telemetry.Telemetry.disabled) () =
  {
    loop;
    rng;
    resolve;
    mean_latency;
    min_latency;
    pinned = Hashtbl.create 8;
    count = 0;
    tm;
  }

let latency t url =
  match Hashtbl.find_opt t.pinned url with
  | Some ms -> ms
  | None -> t.min_latency +. Wr_support.Rng.exponential t.rng ~mean:t.mean_latency

let fetch ?(cls = Event_loop.Net) t ~url k =
  t.count <- t.count + 1;
  let delay = latency t url in
  let outcome = match t.resolve url with Some body -> Fetched body | None -> Missing in
  let module T = Wr_telemetry.Telemetry in
  if T.enabled t.tm then begin
    T.incr t.tm "net.fetches";
    T.observe t.tm "net.latency_ms" delay;
    (match outcome with Missing -> T.incr t.tm "net.missing" | Fetched _ -> ())
  end;
  ignore (Event_loop.schedule ~cls t.loop ~delay (fun () -> k outcome))

let set_latency t ~url ms = Hashtbl.replace t.pinned url ms

let fetches t = t.count
