(* Validate static predictions against the dynamic detector: run the
   instrumented browser on the same page, then match every dynamically
   detected race (raw, pre-filter — the predictor models the unfiltered
   detector) against the prediction set.

   Matching is intentionally generous on the static side — an abstract
   location covers a dynamic one whenever they may denote the same cell —
   because the harness measures recall (every dynamic race must be
   covered by some prediction) and precision (predictions confirmed by at
   least one dynamic race). *)

module Json = Wr_support.Json
module Race = Wr_detect.Race
module Location = Wr_mem.Location

(* May abstract location [sl] denote the concrete dynamic location?
   Dynamic document keys are node uids from the run, unrelated to the
   static 0-based document numbering, so documents are not compared —
   id/name/event identity carries the matching. *)
let loc_covers (sl : Effects.sloc) (dl : Location.t) =
  let s_matches s name = Effects.sstr_matches s (Effects.Lit name) in
  match (sl, dl) with
  | Effects.S_top, _ -> true
  | Effects.S_global s, Location.Js_var { name; _ } -> s_matches s name
  | Effects.S_prop { prop; _ }, Location.Js_var { name; _ } ->
      (* Dynamic object-property cells are reported by property name. *)
      s_matches prop name
  | Effects.S_id { id; _ }, Location.Html_elem (Location.Id { id = i; _ }) ->
      s_matches id i
  | ( Effects.S_collection { name; _ },
      Location.Html_elem (Location.Collection { name = n; _ }) ) ->
      s_matches name n
  | Effects.S_node _, Location.Html_elem (Location.Node _) -> true
  | Effects.S_dom_any _, Location.Html_elem _ -> true
  | Effects.S_handler { event; _ }, Location.Event_handler { event = e; _ } ->
      event = "*" || event = e
  | _ -> false

let type_compat (st : Race.race_type) (dt : Race.race_type) =
  st = dt
  ||
  (* Function vs. variable hinges on whether the racing write is the
     hoisted declaration or a later reassignment — a distinction the
     flow-insensitive static side can blur. *)
  match (st, dt) with
  | Race.Variable, Race.Function_race | Race.Function_race, Race.Variable ->
      true
  | _ -> false

let covers (p : Predict.prediction) (r : Race.t) =
  type_compat p.Predict.race_type r.Race.race_type
  && loc_covers p.Predict.loc r.Race.loc

type comparison = {
  dynamic_races : int;
  predicted : int;
  matched_dynamic : int;  (** dynamic races covered by some prediction *)
  confirmed : int;  (** predictions covering some dynamic race *)
  missed : (Race.t * string) list;  (** dynamic races no prediction covers *)
  unconfirmed : Predict.prediction list;
}

let recall c =
  if c.dynamic_races = 0 then 1.0
  else float_of_int c.matched_dynamic /. float_of_int c.dynamic_races

let precision c =
  if c.predicted = 0 then 1.0
  else float_of_int c.confirmed /. float_of_int c.predicted

let against_report (result : Predict.result) (report : Webracer.report) =
  let preds = result.Predict.predictions in
  let races = report.Webracer.races in
  let missed =
    List.filter_map
      (fun r ->
        if List.exists (fun p -> covers p r) preds then None
        else Some (r, Location.to_string r.Race.loc))
      races
  in
  let unconfirmed =
    List.filter (fun p -> not (List.exists (covers p) races)) preds
  in
  {
    dynamic_races = List.length races;
    predicted = List.length preds;
    matched_dynamic = List.length races - List.length missed;
    confirmed = List.length preds - List.length unconfirmed;
    missed;
    unconfirmed;
  }

(* [run ?seed ~page ~resources result] analyzes the page dynamically
   (exploration on, matching production defaults) and scores [result]
   against the raw race reports. *)
let run ?seed ~page ~resources (result : Predict.result) =
  let cfg = Webracer.config ~page ~resources ?seed () in
  against_report result (Webracer.analyze cfg)

let to_json (m : Model.t) c =
  Json.Obj
    [
      ("dynamic_races", Json.Int c.dynamic_races);
      ("predicted", Json.Int c.predicted);
      ("matched_dynamic", Json.Int c.matched_dynamic);
      ("confirmed", Json.Int c.confirmed);
      ("recall", Json.Float (recall c));
      ("precision", Json.Float (precision c));
      ( "missed",
        Json.List
          (List.map
             (fun (r, loc) ->
               Json.Obj
                 [
                   ("type", Json.String (Race.type_name r.Race.race_type));
                   ("location", Json.String loc);
                 ])
             c.missed) );
      ( "unconfirmed",
        Json.List (List.map (Predict.prediction_to_json m) c.unconfirmed) );
    ]
