(* Static read/write effect extraction over the MiniJS AST.

   Each code unit (script, timer callback, event handler, ...) is folded
   into a set of abstract effects over the same logical memory model the
   dynamic detector instruments (Wr_mem.Location): global variables,
   form-field properties, per-document id/collection lookup cells, element
   presence, and event-handler containers. The abstraction is deliberately
   recall-oriented: dynamic property names and eval-like constructs widen
   to wildcard ("Any") or top effects rather than being dropped, so a race
   the dynamic detector can observe always has a conflicting static effect
   pair (soundness caveats are listed in DESIGN.md §8). *)

module Ast = Wr_js.Ast

(* ------------------------------------------------------------------ *)
(* Abstract strings, targets, locations                                *)
(* ------------------------------------------------------------------ *)

(* Constant propagation keeps three precision levels for strings: fully
   known, known prefix (the ubiquitous ["id_" + i] idiom), or unknown. *)
type sstr = Lit of string | Prefix of string | Any_str

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let sstr_matches a b =
  match (a, b) with
  | Any_str, _ | _, Any_str -> true
  | Lit a, Lit b -> String.equal a b
  | Lit l, Prefix p | Prefix p, Lit l -> starts_with ~prefix:p l
  | Prefix a, Prefix b -> starts_with ~prefix:a b || starts_with ~prefix:b a

let sstr_to_string = function Lit s -> s | Prefix p -> p ^ "*" | Any_str -> "*"

(* Who an effect touches: a statically named element (by id pattern), a
   concrete parsed element (by per-document pre-order index), the document
   root (#document — on every dispatch path), the window, or unknown. *)
type target =
  | T_elem of { doc : int; id : sstr }
  | T_node of { doc : int; node : int }
  | T_root of int
  | T_window of int
  | T_unknown

let target_matches a b =
  match (a, b) with
  | T_unknown, _ | _, T_unknown -> true
  | T_elem { doc = d; id = a }, T_elem { doc = d'; id = b } ->
      d = d' && sstr_matches a b
  | T_node { doc = d; node = n }, T_node { doc = d'; node = n' } -> d = d' && n = n'
  | T_root d, T_root d' | T_window d, T_window d' -> d = d'
  | _ -> false

let target_to_string = function
  | T_elem { doc; id } -> Printf.sprintf "doc%d#%s" doc (sstr_to_string id)
  | T_node { doc; node } -> Printf.sprintf "doc%d/node%d" doc node
  | T_root doc -> Printf.sprintf "doc%d" doc
  | T_window doc -> Printf.sprintf "window%d" doc
  | T_unknown -> "?"

(* Static analogue of Wr_mem.Location.t. [S_top] is the sound fallback for
   eval-like constructs: it conflicts with every location. *)
type sloc =
  | S_global of sstr
  | S_prop of { target : target; prop : sstr }
  | S_id of { doc : int; id : sstr }
  | S_node of { doc : int; node : int }
  | S_collection of { doc : int; name : sstr }
  | S_handler of { target : target; event : string }  (** event ["*"] = any *)
  | S_dom_any of int
  | S_top

let sloc_to_string = function
  | S_global s -> Printf.sprintf "var %s" (sstr_to_string s)
  | S_prop { target; prop } ->
      Printf.sprintf "var %s@%s" (sstr_to_string prop) (target_to_string target)
  | S_id { doc; id } -> Printf.sprintf "elem doc%d#%s" doc (sstr_to_string id)
  | S_node { doc; node } -> Printf.sprintf "elem doc%d/node%d" doc node
  | S_collection { doc; name } ->
      Printf.sprintf "elem doc%d[%s]" doc (sstr_to_string name)
  | S_handler { target; event } ->
      Printf.sprintf "handler (%s, %s)" (target_to_string target) event
  | S_dom_any doc -> Printf.sprintf "elem doc%d[any]" doc
  | S_top -> "top"

let event_matches a b = a = "*" || b = "*" || a = b

let html_sloc = function
  | S_id _ | S_node _ | S_collection _ | S_dom_any _ -> true
  | _ -> false

let sloc_doc = function
  | S_id { doc; _ } | S_node { doc; _ } | S_collection { doc; _ } | S_dom_any doc ->
      Some doc
  | _ -> None

(* Location overlap, ignoring access kinds. *)
let sloc_conflicts a b =
  match (a, b) with
  | S_top, _ | _, S_top -> true
  | S_dom_any d, other when html_sloc other -> sloc_doc other = Some d
  | other, S_dom_any d when html_sloc other -> sloc_doc other = Some d
  | S_global a, S_global b -> sstr_matches a b
  | S_prop { target = t; prop = p }, S_prop { target = t'; prop = p' } ->
      target_matches t t' && sstr_matches p p'
  | S_id { doc; id }, S_id { doc = d'; id = i' } -> doc = d' && sstr_matches id i'
  | S_node { doc; node }, S_node { doc = d'; node = n' } -> doc = d' && node = n'
  | S_collection { doc; name }, S_collection { doc = d'; name = n' } ->
      doc = d' && sstr_matches name n'
  | S_handler { target = t; event = e }, S_handler { target = t'; event = e' } ->
      target_matches t t' && event_matches e e'
  | _ -> false

type kind = Read | Write

let kind_name = function Read -> "read" | Write -> "write"

type eff = {
  loc : sloc;
  kind : kind;
  func_decl : bool;  (** write is a hoisted function declaration *)
  call : bool;  (** read in call position *)
  user : bool;  (** write models user input *)
  may_miss : bool;  (** lookup may observe absence *)
}

(* Mirrors Wr_mem.Location.conflict_relevant: write-write pairs on
   collection and handler-container cells are exempt (disjoint handler
   registrations / unrelated insertions must not interfere). *)
let conflicts a b =
  (a.kind = Write || b.kind = Write)
  && (not
        (a.kind = Write && b.kind = Write
        && match a.loc with S_collection _ | S_handler _ -> true | _ -> false))
  && sloc_conflicts a.loc b.loc

(* Mirrors Wr_detect.Race.classify. *)
(* Wildcard locations (S_top, an eval) defer to the other side's class:
   the pair's concrete cell, when one side names it, decides the type. *)
let classify a b =
  let loc =
    match (a.loc, b.loc) with S_top, l -> l | l, _ -> l
  in
  match loc with
  | S_handler _ -> Wr_detect.Race.Event_dispatch
  | S_id _ | S_node _ | S_collection _ | S_dom_any _ -> Wr_detect.Race.Html
  | S_global _ | S_prop _ | S_top ->
      if (a.kind = Write && a.func_decl) || (b.kind = Write && b.func_decl) then
        Wr_detect.Race.Function_race
      else Wr_detect.Race.Variable

(* ------------------------------------------------------------------ *)
(* Analysis results                                                    *)
(* ------------------------------------------------------------------ *)

(* Analyzing one unit body may discover nested units: timer callbacks, XHR
   completion handlers, event-handler bodies. Each gets its own effect
   set; the happens-before edge from the registering unit is the model's
   concern. *)
type sub_kind =
  | K_timer of { interval : bool; delay : float option }
  | K_xhr
  | K_handler of { target : target; event : string }

type analysis = {
  mutable effs : eff list;  (** reverse discovery order, deduplicated *)
  mutable subs : (sub_kind * analysis) list;
}

(* Static DOM knowledge the analyzer needs to resolve collection queries
   to concrete parsed elements (supplied by Model). *)
type dom_info = {
  nodes_by_tag : int -> string -> int list;
  nodes_by_class : int -> string -> int list;
}

let no_dom = { nodes_by_tag = (fun _ _ -> []); nodes_by_class = (fun _ _ -> []) }

type ctx = {
  doc : int;
  dom : dom_info;
  funcs : (string, Ast.func) Hashtbl.t;  (** page-wide global function table *)
  declared : (string, unit) Hashtbl.t;  (** page-wide declared globals *)
}

let make_ctx ?(dom = no_dom) ~doc () =
  { doc; dom; funcs = Hashtbl.create 16; declared = Hashtbl.create 16 }

(* Pre-pass: harvest top-level function declarations (and function-valued
   top-level vars/assignments) from a unit so cross-unit calls can be
   resolved interprocedurally, plus the set of declared global names. *)
let collect_globals ctx (prog : Ast.program) =
  List.iter
    (fun s ->
      match s with
      | Ast.Func_decl ({ Ast.fname = Some n; _ } as f) ->
          Hashtbl.replace ctx.funcs n f;
          Hashtbl.replace ctx.declared n ()
      | Ast.Var_decl ds ->
          List.iter
            (fun (n, init) ->
              Hashtbl.replace ctx.declared n ();
              match init with
              | Some (Ast.Func f) -> Hashtbl.replace ctx.funcs n f
              | _ -> ())
            ds
      | Ast.Expr_stmt (Ast.Assign (Ast.L_var n, Ast.Func f)) ->
          Hashtbl.replace ctx.funcs n f;
          Hashtbl.replace ctx.declared n ()
      | Ast.Expr_stmt (Ast.Assign (Ast.L_var n, _)) -> Hashtbl.replace ctx.declared n ()
      | _ -> ())
    prog

(* ------------------------------------------------------------------ *)
(* Abstract values                                                     *)
(* ------------------------------------------------------------------ *)

type aval =
  | V_unknown
  | V_num
  | V_bool
  | V_str of sstr
  | V_document
  | V_window
  | V_elem of target
  | V_func of Ast.func
  | V_xhr
  | V_pure  (** effect-free builtin namespace: Math, Date, JSON, console *)
  | V_ignore  (** style objects: accesses beneath them are uninstrumented *)

let join_aval a b = if a = b then a else V_unknown

let pure_namespaces = [ "Math"; "Date"; "JSON"; "console" ]

(* Builtin globals whose reads touch no page-observable cell. *)
let builtin_globals =
  [
    "undefined"; "NaN"; "Infinity"; "Array"; "Object"; "String"; "Number";
    "Boolean"; "RegExp"; "Error"; "TypeError"; "parseInt"; "parseFloat"; "isNaN";
    "isFinite"; "encodeURIComponent"; "decodeURIComponent"; "alert"; "confirm";
    "prompt"; "setTimeout"; "setInterval"; "clearTimeout"; "clearInterval";
    "XMLHttpRequest"; "Image"; "eval"; "Function";
  ]

(* ------------------------------------------------------------------ *)
(* Analyzer state                                                      *)
(* ------------------------------------------------------------------ *)

type st = {
  ctx : ctx;
  gvals : (string, aval) Hashtbl.t;  (** global value map, unit-scoped *)
  mutable acc : analysis;
  mutable scopes : (string, aval) Hashtbl.t list;  (** innermost first *)
  mutable inl : Ast.func list;  (** inline-expansion stack (physical eq) *)
  mutable anc : Ast.func list;  (** sub-unit ancestry: cuts poll_N-style
                                    self-rescheduling timer chains *)
}

let emit st ?(func_decl = false) ?(call = false) ?(user = false) ?(may_miss = false)
    kind loc =
  let e = { loc; kind; func_decl; call; user; may_miss } in
  if not (List.mem e st.acc.effs) then st.acc.effs <- e :: st.acc.effs

let lookup_local st name =
  let rec go = function
    | [] -> None
    | tbl :: rest -> ( match Hashtbl.find_opt tbl name with Some v -> Some v | None -> go rest)
  in
  go st.scopes

let bind_local st name v =
  match st.scopes with
  | tbl :: _ -> Hashtbl.replace tbl name v
  | [] -> Hashtbl.replace st.gvals name v (* unit top level: caller emitted the write *)

let rebind st name v =
  let rec go = function
    | [] -> Hashtbl.replace st.gvals name v
    | tbl :: rest -> if Hashtbl.mem tbl name then Hashtbl.replace tbl name v else go rest
  in
  go st.scopes

let at_toplevel st = st.scopes = []

(* Shallow hoisted-declaration collection: stops at nested functions. *)
let rec collect_decls acc s =
  match s with
  | Ast.Var_decl ds -> List.fold_left (fun a (n, _) -> n :: a) acc ds
  | Ast.Func_decl { Ast.fname = Some n; _ } -> n :: acc
  | Ast.Func_decl _ -> acc
  | Ast.For_in (n, _, body) -> List.fold_left collect_decls (n :: acc) body
  | Ast.For (Some (Ast.Init_decl ds), _, _, body) ->
      List.fold_left collect_decls
        (List.fold_left (fun a (n, _) -> n :: a) acc ds)
        body
  | Ast.Try (body, catch, fin) ->
      let acc = List.fold_left collect_decls acc body in
      let acc =
        match catch with
        | Some (n, cb) -> List.fold_left collect_decls (n :: acc) cb
        | None -> acc
      in
      (match fin with Some fb -> List.fold_left collect_decls acc fb | None -> acc)
  | _ -> Ast.fold_stmt_children (fun a _ -> a) collect_decls acc s

let event_of_prop name =
  if String.length name > 2 && starts_with ~prefix:"on" name then
    Some (String.sub name 2 (String.length name - 2))
  else None

let elem_target st = function
  | V_elem t -> t
  | V_document -> T_root st.ctx.doc
  | V_window -> T_window st.ctx.doc
  | _ -> T_unknown

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

let rec eval_expr st (e : Ast.expr) : aval =
  match e with
  | Ast.Number _ -> V_num
  | Ast.String s -> V_str (Lit s)
  | Ast.Regex_lit _ -> V_unknown
  | Ast.Bool _ -> V_bool
  | Ast.Null -> V_unknown
  | Ast.This -> if at_toplevel st then V_window else V_unknown
  | Ast.Ident name -> read_ident st name ~call:false
  | Ast.Func f -> V_func f
  | Ast.Object_lit props ->
      List.iter (fun (_, v) -> ignore (eval_expr st v)) props;
      V_unknown
  | Ast.Array_lit elems ->
      List.iter (fun v -> ignore (eval_expr st v)) elems;
      V_unknown
  | Ast.Member (base, name) -> member_read st (eval_expr st base) (Lit name)
  | Ast.Index (base, key) ->
      let b = eval_expr st base in
      let k = eval_expr st key in
      member_read st b (match k with V_str s -> s | _ -> Any_str)
  | Ast.Call (f, args) -> eval_call st f args
  | Ast.New (f, args) -> eval_new st f args
  | Ast.Assign (lv, rhs) ->
      let v = eval_expr st rhs in
      assign st lv v;
      v
  | Ast.Op_assign (lv, _, rhs) ->
      ignore (eval_expr st (Ast.expr_of_lvalue lv));
      ignore (eval_expr st rhs);
      assign st lv V_unknown;
      V_unknown
  | Ast.Update (lv, _, _) ->
      ignore (eval_expr st (Ast.expr_of_lvalue lv));
      assign st lv V_num;
      V_num
  | Ast.Binop (Ast.Add, a, b) -> (
      let va = eval_expr st a in
      let vb = eval_expr st b in
      match (va, vb) with
      | V_str (Lit x), V_str (Lit y) -> V_str (Lit (x ^ y))
      | V_str (Lit x), _ -> V_str (Prefix x)
      | V_str (Prefix x), _ -> V_str (Prefix x)
      | V_num, V_num -> V_num
      | _, V_str _ -> V_str Any_str
      | _ -> V_unknown)
  | Ast.Binop ((Ast.And | Ast.Or), a, b) ->
      let va = eval_expr st a in
      let vb = eval_expr st b in
      join_aval va vb
  | Ast.Binop (op, a, b) ->
      ignore (eval_expr st a);
      ignore (eval_expr st b);
      (match op with
      | Ast.Eq | Ast.Neq | Ast.Strict_eq | Ast.Strict_neq | Ast.Lt | Ast.Le
      | Ast.Gt | Ast.Ge | Ast.Instanceof | Ast.In ->
          V_bool
      | _ -> V_num)
  | Ast.Unop (Ast.Typeof, Ast.Ident name) ->
      (* typeof reads the cell but tolerates absence. *)
      ignore (read_ident st name ~call:false);
      V_str Any_str
  | Ast.Unop (Ast.Delete, e) ->
      (match e with
      | Ast.Member (base, name) ->
          member_write st (eval_expr st base) (Lit name) V_unknown
      | Ast.Index (base, key) ->
          let b = eval_expr st base in
          let k = eval_expr st key in
          member_write st b (match k with V_str s -> s | _ -> Any_str) V_unknown
      | _ -> ignore (eval_expr st e));
      V_bool
  | Ast.Unop (op, a) -> (
      ignore (eval_expr st a);
      match op with Ast.Not -> V_bool | Ast.Void -> V_unknown | _ -> V_num)
  | Ast.Cond (c, t, f) ->
      ignore (eval_expr st c);
      let vt = eval_expr st t in
      let vf = eval_expr st f in
      join_aval vt vf
  | Ast.Comma (a, b) ->
      ignore (eval_expr st a);
      eval_expr st b

and read_ident st name ~call =
  match lookup_local st name with
  | Some v -> v
  | None ->
      if name = "document" then V_document
      else if name = "window" || name = "self" then V_window
      else if List.mem name pure_namespaces then V_pure
      else if List.mem name builtin_globals then V_pure
      else begin
        let declared = Hashtbl.mem st.ctx.declared name in
        emit st ~call ~may_miss:(not declared) Read (S_global (Lit name));
        match Hashtbl.find_opt st.gvals name with
        | Some v -> v
        | None -> (
            match Hashtbl.find_opt st.ctx.funcs name with
            | Some f -> V_func f
            | None -> V_unknown)
      end

and assign st lv v =
  match lv with
  | Ast.L_var name ->
      if lookup_local st name <> None then rebind st name v
      else begin
        emit st Write (S_global (Lit name));
        Hashtbl.replace st.gvals name v
      end
  | Ast.L_member (base, name) -> member_write st (eval_expr st base) (Lit name) v
  | Ast.L_index (base, key) ->
      let b = eval_expr st base in
      let k = eval_expr st key in
      member_write st b (match k with V_str s -> s | _ -> Any_str) v

and member_read st base name : aval =
  match (base, name) with
  | (V_ignore | V_pure), _ -> base
  | V_elem _, Lit "style" -> V_ignore
  | V_elem t, Lit n -> (
      match event_of_prop n with
      | Some event ->
          emit st Read (S_handler { target = t; event });
          V_unknown
      | None -> (
          match n with
          | "value" | "checked" ->
              emit st Read (S_prop { target = t; prop = Lit n });
              V_unknown
          | "id" | "tagName" | "className" | "nodeName" | "parentNode"
          | "children" | "firstChild" | "nextSibling" ->
              V_unknown
          | _ ->
              emit st Read (S_prop { target = t; prop = Lit n });
              V_unknown))
  | V_elem t, (Prefix _ | Any_str) ->
      (* Computed member name: widen to any property of the target. *)
      emit st Read (S_prop { target = t; prop = Any_str });
      V_unknown
  | V_document, Lit ("body" | "documentElement") -> V_elem (T_root st.ctx.doc)
  | V_document, Lit n -> (
      match event_of_prop n with
      | Some event ->
          emit st Read (S_handler { target = T_root st.ctx.doc; event });
          V_unknown
      | None -> V_unknown)
  | V_window, Lit "document" -> V_document
  | V_window, Lit n -> (
      match event_of_prop n with
      | Some event ->
          emit st Read (S_handler { target = T_window st.ctx.doc; event });
          V_unknown
      | None ->
          (* window.x is the global x. *)
          read_ident st n ~call:false)
  | V_window, (Prefix _ | Any_str) ->
      emit st Read (S_global Any_str);
      V_unknown
  | V_xhr, _ -> V_unknown
  | (V_str _ | V_num | V_bool | V_func _), _ -> V_unknown
  | V_unknown, Lit n -> (
      match event_of_prop n with
      | Some event ->
          emit st Read (S_handler { target = T_unknown; event });
          V_unknown
      | None ->
          emit st Read (S_prop { target = T_unknown; prop = Lit n });
          V_unknown)
  | V_unknown, (Prefix _ | Any_str) ->
      emit st Read (S_prop { target = T_unknown; prop = Any_str });
      V_unknown
  | V_document, (Prefix _ | Any_str) -> V_unknown

and member_write st base name v =
  match base with
  | V_ignore | V_pure | V_str _ | V_num | V_bool | V_func _ -> ()
  | V_xhr -> (
      match name with
      | Lit n when event_of_prop n = Some "readystatechange" || n = "onload" ->
          enter_sub st K_xhr v
      | _ -> ())
  | V_window -> (
      match name with
      | Lit n -> (
          match event_of_prop n with
          | Some event -> register st (T_window st.ctx.doc) event v
          | None ->
              emit st Write (S_global (Lit n));
              Hashtbl.replace st.gvals n v)
      | Prefix _ | Any_str -> emit st Write (S_global Any_str))
  | V_document -> (
      match name with
      | Lit n -> (
          match event_of_prop n with
          | Some event -> register st (T_root st.ctx.doc) event v
          | None -> ())
      | _ -> ())
  | V_elem t -> elem_member_write st t name v
  | V_unknown -> elem_member_write st T_unknown name v

and elem_member_write st t name v =
  match name with
  | Lit "style" -> ()
  | Lit n -> (
      match event_of_prop n with
      | Some event -> register st t event v
      | None -> (
          match n with
          | "value" | "checked" -> emit st Write (S_prop { target = t; prop = Lit n })
          | "id" ->
              emit st Write
                (S_id
                   {
                     doc = st.ctx.doc;
                     id = (match v with V_str s -> s | _ -> Any_str);
                   })
          | "className" ->
              emit st Write
                (S_collection
                   {
                     doc = st.ctx.doc;
                     name =
                       (match v with
                       | V_str (Lit c) -> Lit ("class:" ^ c)
                       | _ -> Prefix "class:");
                   })
          | "innerHTML" | "outerHTML" ->
              emit st Write (S_dom_any st.ctx.doc);
              html_fragment_writes st v
          | "src" | "href" | "alt" | "title" -> ()
          | _ -> emit st Write (S_prop { target = t; prop = Lit n })))
  | Prefix _ | Any_str ->
      emit st Write (S_prop { target = t; prop = Any_str });
      emit st Write (S_handler { target = t; event = "*" })

(* Handler registration: writes the (target, event) container cell and, if
   the value is a function, opens a nested unit for its body. *)
and register st target event v =
  emit st Write (S_handler { target; event });
  match v with
  | V_func _ -> enter_sub st (K_handler { target; event }) v
  | _ -> ()

(* A literal HTML fragment written via document.write/innerHTML plants the
   same presence cells the parser would. *)
and html_fragment_writes st v =
  match v with
  | V_str (Lit html) ->
      let nodes = Wr_html.Html.parse html in
      let rec walk (n : Wr_html.Html.node) =
        match n with
        | Wr_html.Html.Text _ -> ()
        | Wr_html.Html.Element el ->
            (match Wr_html.Html.attr el "id" with
            | Some id -> emit st Write (S_id { doc = st.ctx.doc; id = Lit id })
            | None -> ());
            emit st Write
              (S_collection { doc = st.ctx.doc; name = Lit ("tag:" ^ el.Wr_html.Html.tag) });
            List.iter walk el.Wr_html.Html.children
      in
      List.iter walk nodes
  | V_str _ -> emit st Write (S_dom_any st.ctx.doc)
  | _ -> ()

and eval_call st f args =
  match f with
  | Ast.Ident ("setTimeout" | "setInterval") ->
      let interval = f = Ast.Ident "setInterval" in
      let cb = match args with a :: _ -> Some (eval_expr st a) | [] -> None in
      let delay =
        match args with
        | _ :: Ast.Number n :: _ -> Some n
        | _ :: _ :: _ -> None
        | _ -> Some 0.
      in
      List.iteri (fun i a -> if i > 0 then ignore (eval_expr st a)) args;
      (match cb with
      | Some (V_func _ as v) -> enter_sub st (K_timer { interval; delay }) v
      | Some (V_str (Lit code)) -> (
          match Wr_js.Parser.parse code with
          | prog -> enter_sub_prog st (K_timer { interval; delay }) prog
          | exception _ -> ())
      | _ -> ());
      V_num
  | Ast.Ident ("clearTimeout" | "clearInterval") ->
      List.iter (fun a -> ignore (eval_expr st a)) args;
      V_unknown
  | Ast.Ident ("eval" | "Function") -> (
      List.iter (fun a -> ignore (eval_expr st a)) args;
      match args with
      | [ Ast.String code ] -> (
          (* A fully literal eval is just inline code. *)
          match Wr_js.Parser.parse code with
          | prog -> (
              List.iter (analyze_stmt st) prog;
              V_unknown)
          | exception _ -> V_unknown)
      | _ ->
          (* Dynamic code: sound top effect. *)
          emit st Read S_top;
          emit st Write S_top;
          V_unknown)
  | Ast.Ident name -> (
      match lookup_local st name with
      | Some v ->
          let argv = List.map (eval_expr st) args in
          apply st v argv
      | None ->
          if List.mem name pure_namespaces || List.mem name builtin_globals then begin
            List.iter (fun a -> ignore (eval_expr st a)) args;
            V_unknown
          end
          else begin
            let v = read_ident st name ~call:true in
            let argv = List.map (eval_expr st) args in
            apply st v argv
          end)
  | Ast.Member (base_e, m) -> method_call st (eval_expr st base_e) m args
  | Ast.Index (base_e, Ast.String m) -> method_call st (eval_expr st base_e) m args
  | _ ->
      let v = eval_expr st f in
      let argv = List.map (eval_expr st) args in
      apply st v argv

and eval_new st f args =
  match f with
  | Ast.Ident "XMLHttpRequest" ->
      List.iter (fun a -> ignore (eval_expr st a)) args;
      V_xhr
  | Ast.Ident "Image" ->
      List.iter (fun a -> ignore (eval_expr st a)) args;
      V_elem T_unknown
  | Ast.Ident ("Date" | "Array" | "Object" | "RegExp" | "Error" | "String" | "Number"
              | "Boolean") ->
      List.iter (fun a -> ignore (eval_expr st a)) args;
      V_pure
  | _ ->
      let v = eval_expr st f in
      let argv = List.map (eval_expr st) args in
      ignore (apply st v argv);
      V_unknown

(* Calling an abstract value: known functions are inlined (their effects
   happen in the calling unit), with a physical-identity cycle guard and a
   depth cap. *)
and apply st v argv =
  match v with
  | V_func fn -> inline_call st fn argv
  | _ -> V_unknown

and inline_call st fn argv =
  if List.memq fn st.inl || List.length st.inl > 12 then V_unknown
  else begin
    let scope = Hashtbl.create 8 in
    List.iteri
      (fun i p ->
        Hashtbl.replace scope p (match List.nth_opt argv i with Some v -> v | None -> V_unknown))
      fn.Ast.params;
    List.iter
      (fun n -> if not (Hashtbl.mem scope n) then Hashtbl.replace scope n V_unknown)
      (List.fold_left collect_decls [] fn.Ast.body);
    let saved_scopes = st.scopes in
    st.scopes <- scope :: st.scopes;
    st.inl <- fn :: st.inl;
    List.iter (analyze_stmt st) fn.Ast.body;
    st.inl <- List.tl st.inl;
    st.scopes <- saved_scopes;
    V_unknown
  end

and method_call st base m args =
  let eval_args () = List.map (eval_expr st) args in
  match (base, m) with
  | V_document, "getElementById" -> (
      match eval_args () with
      | [ V_str s ] | V_str s :: _ ->
          emit st ~may_miss:true Read (S_id { doc = st.ctx.doc; id = s });
          V_elem (T_elem { doc = st.ctx.doc; id = s })
      | _ ->
          emit st ~may_miss:true Read (S_id { doc = st.ctx.doc; id = Any_str });
          V_elem (T_elem { doc = st.ctx.doc; id = Any_str }))
  | V_document, "getElementsByTagName" -> (
      match eval_args () with
      | [ V_str (Lit tag) ] ->
          collection_read st ("tag:" ^ String.lowercase_ascii tag)
            (st.ctx.dom.nodes_by_tag st.ctx.doc (String.lowercase_ascii tag));
          V_unknown
      | _ ->
          emit st Read (S_collection { doc = st.ctx.doc; name = Any_str });
          V_unknown)
  | V_document, "getElementsByClassName" -> (
      match eval_args () with
      | [ V_str (Lit c) ] ->
          collection_read st ("class:" ^ c) (st.ctx.dom.nodes_by_class st.ctx.doc c);
          V_unknown
      | _ ->
          emit st Read (S_collection { doc = st.ctx.doc; name = Any_str });
          V_unknown)
  | V_document, ("querySelector" | "querySelectorAll") -> (
      match eval_args () with
      | [ V_str (Lit sel) ] when String.length sel > 1 && sel.[0] = '#' ->
          let id = String.sub sel 1 (String.length sel - 1) in
          emit st ~may_miss:true Read (S_id { doc = st.ctx.doc; id = Lit id });
          if m = "querySelector" then V_elem (T_elem { doc = st.ctx.doc; id = Lit id })
          else V_unknown
      | [ V_str (Lit sel) ] when String.length sel > 1 && sel.[0] = '.' ->
          let c = String.sub sel 1 (String.length sel - 1) in
          collection_read st ("class:" ^ c) (st.ctx.dom.nodes_by_class st.ctx.doc c);
          V_unknown
      | [ V_str (Lit sel) ] ->
          collection_read st
            ("tag:" ^ String.lowercase_ascii sel)
            (st.ctx.dom.nodes_by_tag st.ctx.doc (String.lowercase_ascii sel));
          V_unknown
      | _ ->
          emit st Read (S_collection { doc = st.ctx.doc; name = Any_str });
          emit st ~may_miss:true Read (S_id { doc = st.ctx.doc; id = Any_str });
          V_unknown)
  | V_document, ("write" | "writeln") -> (
      match eval_args () with
      | [ (V_str (Lit _) as v) ] -> html_fragment_writes st v; V_unknown
      | _ ->
          emit st Write (S_dom_any st.ctx.doc);
          V_unknown)
  | V_document, "createElement" ->
      ignore (eval_args ());
      V_elem T_unknown
  | (V_document | V_window | V_elem _ | V_unknown), "addEventListener" -> (
      let t = elem_target st base in
      match args with
      | ev :: rest -> (
          let evv = eval_expr st ev in
          let handler = match rest with h :: _ -> Some (eval_expr st h) | [] -> None in
          List.iteri (fun i a -> if i > 0 then ignore (eval_expr st a)) rest;
          let event = match evv with V_str (Lit e) -> e | _ -> "*" in
          (match handler with
          | Some (V_func _ as hv) -> register st t event hv
          | _ -> emit st Write (S_handler { target = t; event }));
          V_unknown)
      | [] -> V_unknown)
  | (V_document | V_window | V_elem _ | V_unknown), "removeEventListener" ->
      let t = elem_target st base in
      let event =
        match eval_args () with V_str (Lit e) :: _ -> e | _ -> "*"
      in
      emit st Write (S_handler { target = t; event });
      V_unknown
  | (V_elem _ | V_unknown), "setAttribute" -> (
      let t = elem_target st base in
      match eval_args () with
      | [ V_str (Lit n); v ] -> (
          match event_of_prop n with
          | Some event -> (
              emit st Write (S_handler { target = t; event });
              match v with
              | V_str (Lit code) -> (
                  match Wr_js.Parser.parse code with
                  | prog -> enter_sub_prog st (K_handler { target = t; event }) prog
                  | exception _ -> ())
              | _ -> ())
          | None -> (
              match n with
              | "id" ->
                  emit st Write
                    (S_id
                       {
                         doc = st.ctx.doc;
                         id = (match v with V_str s -> s | _ -> Any_str);
                       })
              | "class" ->
                  emit st Write
                    (S_collection
                       {
                         doc = st.ctx.doc;
                         name =
                           (match v with
                           | V_str (Lit c) -> Lit ("class:" ^ c)
                           | _ -> Prefix "class:");
                       })
              | "value" | "checked" -> emit st Write (S_prop { target = t; prop = Lit n })
              | _ -> ()))
      | _ ->
          (* Dynamic attribute name: any property or handler of the target. *)
          emit st Write (S_prop { target = t; prop = Any_str });
          emit st Write (S_handler { target = t; event = "*" });
          V_unknown |> ignore;
          ());
      V_unknown
  | (V_elem _ | V_unknown), "getAttribute" ->
      ignore (eval_args ());
      V_unknown
  | (V_elem _ | V_unknown | V_document), ("appendChild" | "insertBefore" | "removeChild"
                                         | "replaceChild") ->
      ignore (eval_args ());
      emit st Write (S_dom_any st.ctx.doc);
      V_unknown
  | (V_elem _ | V_unknown), (("click" | "focus" | "blur") as ev) ->
      ignore (eval_args ());
      emit st Read (S_handler { target = elem_target st base; event = ev });
      V_unknown
  | (V_elem _ | V_unknown), "dispatchEvent" ->
      ignore (eval_args ());
      emit st Read (S_handler { target = elem_target st base; event = "*" });
      V_unknown
  | V_xhr, _ ->
      ignore (eval_args ());
      V_unknown
  | V_pure, _ | V_ignore, _ ->
      ignore (eval_args ());
      V_unknown
  | _, _ ->
      let argv = eval_args () in
      let mv = member_read st base (Lit m) in
      ignore (apply st mv argv);
      V_unknown

and collection_read st name nodes =
  emit st Read (S_collection { doc = st.ctx.doc; name = Lit name });
  List.iter (fun n -> emit st Read (S_node { doc = st.ctx.doc; node = n })) nodes

(* Open a nested unit for a callback/handler body. Bodies captured by the
   same function already on the sub-unit ancestry (a timer rescheduling
   itself) are cut: the new unit's effects would duplicate the existing
   one's, and its happens-before successors are the same. *)
and enter_sub st kind v =
  match v with
  | V_func fn when List.memq fn st.anc -> ()
  | V_func fn ->
      let sub = { effs = []; subs = [] } in
      st.acc.subs <- (kind, sub) :: st.acc.subs;
      let saved_acc = st.acc and saved_scopes = st.scopes and saved_inl = st.inl in
      let saved_anc = st.anc in
      st.acc <- sub;
      st.anc <- fn :: st.anc;
      st.inl <- [];
      let scope = Hashtbl.create 8 in
      List.iter (fun p -> Hashtbl.replace scope p V_unknown) fn.Ast.params;
      List.iter
        (fun n -> if not (Hashtbl.mem scope n) then Hashtbl.replace scope n V_unknown)
        (List.fold_left collect_decls [] fn.Ast.body);
      st.scopes <- scope :: st.scopes;
      List.iter (analyze_stmt st) fn.Ast.body;
      st.acc <- saved_acc;
      st.scopes <- saved_scopes;
      st.inl <- saved_inl;
      st.anc <- saved_anc
  | _ -> ()

and enter_sub_prog st kind prog =
  let sub = { effs = []; subs = [] } in
  st.acc.subs <- (kind, sub) :: st.acc.subs;
  let saved_acc = st.acc and saved_scopes = st.scopes and saved_inl = st.inl in
  st.acc <- sub;
  st.inl <- [];
  let scope = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace scope n V_unknown) (List.fold_left collect_decls [] prog);
  st.scopes <- scope :: st.scopes;
  List.iter (analyze_stmt st) prog;
  st.acc <- saved_acc;
  st.scopes <- saved_scopes;
  st.inl <- saved_inl

and analyze_stmt st (s : Ast.stmt) =
  match s with
  | Ast.Expr_stmt e -> ignore (eval_expr st e)
  | Ast.Var_decl ds ->
      List.iter
        (fun (n, init) ->
          let v = match init with Some e -> eval_expr st e | None -> V_unknown in
          if at_toplevel st then begin
            emit st Write (S_global (Lit n));
            Hashtbl.replace st.gvals n v
          end
          else bind_local st n v)
        ds
  | Ast.Func_decl ({ Ast.fname; _ } as f) -> (
      match fname with
      | Some n ->
          if at_toplevel st then begin
            emit st ~func_decl:true Write (S_global (Lit n));
            Hashtbl.replace st.gvals n (V_func f)
          end
          else bind_local st n (V_func f)
      | None -> ())
  | Ast.If (c, t, e) ->
      ignore (eval_expr st c);
      List.iter (analyze_stmt st) t;
      List.iter (analyze_stmt st) e
  | Ast.While (c, b) ->
      ignore (eval_expr st c);
      List.iter (analyze_stmt st) b
  | Ast.Do_while (b, c) ->
      List.iter (analyze_stmt st) b;
      ignore (eval_expr st c)
  | Ast.For (init, cond, step, b) ->
      (match init with
      | Some (Ast.Init_expr e) -> ignore (eval_expr st e)
      | Some (Ast.Init_decl ds) -> analyze_stmt st (Ast.Var_decl ds)
      | None -> ());
      (match cond with Some e -> ignore (eval_expr st e) | None -> ());
      List.iter (analyze_stmt st) b;
      (match step with Some e -> ignore (eval_expr st e) | None -> ())
  | Ast.For_in (n, obj, b) ->
      ignore (eval_expr st obj);
      if at_toplevel st then emit st Write (S_global (Lit n))
      else bind_local st n (V_str Any_str);
      List.iter (analyze_stmt st) b
  | Ast.Return (Some e) -> ignore (eval_expr st e)
  | Ast.Return None | Ast.Break | Ast.Continue | Ast.Empty -> ()
  | Ast.Throw e -> ignore (eval_expr st e)
  | Ast.Try (b, catch, fin) ->
      List.iter (analyze_stmt st) b;
      (match catch with
      | Some (n, cb) ->
          let scope = Hashtbl.create 1 in
          Hashtbl.replace scope n V_unknown;
          let saved = st.scopes in
          st.scopes <- scope :: st.scopes;
          List.iter (analyze_stmt st) cb;
          st.scopes <- saved
      | None -> ());
      (match fin with Some fb -> List.iter (analyze_stmt st) fb | None -> ())
  | Ast.Switch (scrut, cases) ->
      ignore (eval_expr st scrut);
      List.iter
        (fun (guard, body) ->
          (match guard with Some g -> ignore (eval_expr st g) | None -> ());
          List.iter (analyze_stmt st) body)
        cases
  | Ast.Block b -> List.iter (analyze_stmt st) b

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let fresh_st ctx = { ctx; gvals = Hashtbl.create 16; acc = { effs = []; subs = [] };
                     scopes = []; inl = []; anc = [] }

(* [analyze ctx prog] — effects of a top-level script unit: [var] and
   function declarations at the outermost level write globals. *)
let analyze ctx prog =
  let st = fresh_st ctx in
  List.iter (analyze_stmt st) prog;
  st.acc

(* [analyze_handler ctx prog] — effects of inline-attribute handler code or
   a [javascript:] URL body: declarations are handler-local. *)
let analyze_handler ctx prog =
  let st = fresh_st ctx in
  let scope = Hashtbl.create 4 in
  List.iter (fun n -> Hashtbl.replace scope n V_unknown) (List.fold_left collect_decls [] prog);
  st.scopes <- [ scope ];
  List.iter (analyze_stmt st) prog;
  st.acc
