(* Static -> dynamic triage (DESIGN.md §8).

   The predictor names every pair that MAY race; the dynamic detector
   reports whatever the one schedule it ran happened to realize. This
   layer closes the loop: for each prediction it derives *scheduling
   directives* — which delay channels (parse, timers, network, XHR,
   user input) to speed up or slow down so the two units can land in
   either order — from the MHP model's ancestor bitsets, runs only
   those directed schedules through [Webracer.Replay.run_directed], and
   classifies every prediction as confirmed (some schedule realized
   it), refuted (a certificate shows it unrealizable under the explored
   directive space), or unconfirmed (budget exhausted).

   Soundness stays pinned throughout: any raw dynamic race observed in
   any schedule that no prediction covers is reported as [unpredicted]
   — the CLI exits 2 on it, and CI runs `triage --corpus` as a gate. *)

module Race = Wr_detect.Race
module Loop = Wr_scheduler.Event_loop
module Json = Wr_support.Json

(* ------------------------------------------------------------------ *)
(* Directive extraction                                                *)

type channel = C_parse | C_timer | C_net | C_xhr | C_user

let channel_name = function
  | C_parse -> "parse"
  | C_timer -> "timer"
  | C_net -> "net"
  | C_xhr -> "xhr"
  | C_user -> "user"

let channel_rank = function
  | C_parse -> 0
  | C_timer -> 1
  | C_net -> 2
  | C_xhr -> 3
  | C_user -> 4

(* The delay channel a unit's own dispatch rides on. DCL/load fire at
   structural points the bias cannot move, so they contribute none. *)
let own_channel (u : Model.unit_) =
  match u.Model.kind with
  | Model.U_parse _ | Model.U_script `Sync | Model.U_script `Defer -> Some C_parse
  | Model.U_script `Async -> Some C_net
  | Model.U_timer _ -> Some C_timer
  | Model.U_xhr -> Some C_xhr
  | Model.U_handler _ | Model.U_dispatch _ | Model.U_user _ -> Some C_user
  | Model.U_dcl | Model.U_load -> None

(* Every channel whose delays can move WHEN a unit runs: its own plus
   those of all its HB ancestors (a timer registered by an async script
   moves when the network does). *)
let channels (m : Model.t) uid =
  let acc = ref [] in
  let add = function
    | Some c when not (List.mem c !acc) -> acc := c :: !acc
    | _ -> ()
  in
  add (own_channel m.Model.units.(uid));
  Array.iteri
    (fun i u -> if Wr_support.Bitset.mem m.Model.anc.(uid) i then add (own_channel u))
    m.Model.units;
  List.sort (fun a b -> compare (channel_rank a) (channel_rank b)) !acc

(* A directive: a set of per-channel speed overrides, canonically
   ordered so equal directives render (and dedup) identically. *)
type directive = (channel * Loop.speed) list

let norm (d : directive) =
  List.sort (fun (a, _) (b, _) -> compare (channel_rank a) (channel_rank b)) d

let directive_label (d : directive) =
  String.concat "+"
    (List.map (fun (c, s) -> channel_name c ^ ":" ^ Loop.speed_name s) d)

let bias_of (d : directive) =
  List.fold_left
    (fun b (c, s) ->
      match c with
      | C_parse -> { b with Loop.parse = Some s }
      | C_timer -> { b with Loop.timer = Some s }
      | C_net -> { b with Loop.net = Some s }
      | C_xhr -> { b with Loop.xhr = Some s }
      | C_user -> { b with Loop.user = Some s })
    Loop.neutral d

let max_directives_per_prediction = 10

(* Cross directives (one side fast, the other slow — the two targeted
   inversions) first, then single-channel perturbations. *)
let directives_for (m : Model.t) (p : Predict.prediction) =
  let a = channels m p.Predict.first_unit and b = channels m p.Predict.second_unit in
  let cross =
    List.concat_map
      (fun ca ->
        List.concat_map
          (fun cb ->
            if ca = cb then []
            else [ norm [ (ca, Loop.Fast); (cb, Loop.Slow) ];
                   norm [ (ca, Loop.Slow); (cb, Loop.Fast) ] ])
          b)
      a
  in
  let union =
    List.sort_uniq (fun x y -> compare (channel_rank x) (channel_rank y)) (a @ b)
  in
  let singles =
    List.concat_map (fun c -> [ [ (c, Loop.Fast) ]; [ (c, Loop.Slow) ] ]) union
  in
  let seen = Hashtbl.create 16 in
  let deduped =
    List.filter
      (fun d ->
        let l = directive_label d in
        if Hashtbl.mem seen l then false
        else begin
          Hashtbl.replace seen l ();
          true
        end)
      (cross @ singles)
  in
  List.filteri (fun i _ -> i < max_directives_per_prediction) deduped

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

type certificate =
  | Side_never_observed of { side : string; sloc : string }
  | Disjoint_cells of { first_cells : string list; second_cells : string list }
  | Always_ordered of { common_cells : string list }

type classification =
  | Confirmed of { schedule : string }
  | Refuted of certificate
  | Unconfirmed of { reason : string }

type item = {
  prediction : Predict.prediction;
  classification : classification;
  directives : string list;  (** labels derived for this prediction *)
}

type t = {
  result : Predict.result;
  items : item list;
  schedules_run : int;
  schedules_to_confirm : int;
      (** index of the schedule that produced the last new confirmation
          (1 = baseline); 0 when nothing confirmed *)
  budget : int;
  unpredicted : (Race.t * string) list;
      (** raw dynamic races no prediction covers, with the schedule
          label that surfaced them — a soundness violation *)
}

let cap_cells n cells =
  List.filteri (fun i _ -> i < n) (List.sort_uniq compare cells)

let access_kind_of_eff = function Effects.Read -> `Read | Effects.Write -> `Write

(* Per-run rendered cell sets an effect's abstract location matched in
   the trace, kind-respecting. *)
let side_cells runs (eff : Effects.eff) =
  let want = access_kind_of_eff eff.Effects.kind in
  List.map
    (fun (_, (report : Webracer.report)) ->
      match report.Webracer.trace with
      | None -> []
      | Some tr ->
          List.sort_uniq compare
            (List.filter_map
               (fun (a : Wr_mem.Access.t) ->
                 if
                   a.Wr_mem.Access.kind = want
                   && Compare.loc_covers eff.Effects.loc a.Wr_mem.Access.loc
                 then Some (Wr_mem.Location.to_string a.Wr_mem.Access.loc)
                 else None)
               tr.Wr_detect.Trace.accesses))
    runs

let certificate_for runs (p : Predict.prediction) =
  let first = side_cells runs p.Predict.first_eff
  and second = side_cells runs p.Predict.second_eff in
  if List.for_all (fun cells -> cells = []) first then
    Side_never_observed
      { side = "first"; sloc = Effects.sloc_to_string p.Predict.first_eff.Effects.loc }
  else if List.for_all (fun cells -> cells = []) second then
    Side_never_observed
      { side = "second"; sloc = Effects.sloc_to_string p.Predict.second_eff.Effects.loc }
  else
    let inter a b = List.filter (fun c -> List.mem c b) a in
    let common = List.concat (List.map2 inter first second) in
    if common = [] then
      Disjoint_cells
        {
          first_cells = cap_cells 5 (List.concat first);
          second_cells = cap_cells 5 (List.concat second);
        }
    else Always_ordered { common_cells = cap_cells 5 common }

(* ------------------------------------------------------------------ *)
(* The guided search                                                   *)

(* Fixed re-classification granularity: confirmations are rechecked
   every [chunk_size] schedules whatever [jobs] is, so the schedule
   count (and the whole report) is independent of parallelism. *)
let chunk_size = 4

let default_budget = 24

let race_key (r : Race.t) =
  Race.type_name r.Race.race_type ^ "|" ^ Wr_mem.Location.to_string r.Race.loc

let run ?tm ?(seed = 42) ?(jobs = 1) ?(budget = default_budget) ~page ~resources () =
  let result = Predict.predict ?tm ~page ~resources () in
  let preds = Array.of_list result.Predict.predictions in
  let n = Array.length preds in
  let confirmed = Array.make n None in
  let base_cfg =
    Webracer.config ~page ~resources ~seed ~explore:true ~trace:true
      ?telemetry:tm ()
  in
  let runs = ref [] in
  let schedules = ref 0 and last_confirm = ref 0 in
  let note label (report : Webracer.report) =
    incr schedules;
    runs := (label, report) :: !runs;
    Array.iteri
      (fun i p ->
        if
          confirmed.(i) = None
          && List.exists (fun r -> Compare.covers p r) report.Webracer.races
        then begin
          confirmed.(i) <- Some label;
          last_confirm := !schedules
        end)
      preds
  in
  (* Schedule 1: the page as configured — same semantics as the
     predict --compare baseline. Most true predictions confirm here. *)
  note "baseline" (Webracer.analyze base_cfg);
  (* Directive pool: insertion-ordered, globally deduplicated, each
     entry carrying the predictions waiting on it. *)
  let by_label = Hashtbl.create 32 in
  let pool = ref [] in
  let per_pred = Array.make n [] in
  Array.iteri
    (fun i p ->
      let ds = directives_for result.Predict.model p in
      per_pred.(i) <- List.map directive_label ds;
      List.iter
        (fun d ->
          let lbl = directive_label d in
          match Hashtbl.find_opt by_label lbl with
          | Some waiting -> waiting := i :: !waiting
          | None ->
              let waiting = ref [ i ] in
              Hashtbl.replace by_label lbl waiting;
              pool := (lbl, d, waiting) :: !pool)
        ds)
    preds;
  let executed = Hashtbl.create 32 in
  let pending = ref (List.rev !pool) in
  let wanted (_, _, waiting) = List.exists (fun i -> confirmed.(i) = None) !waiting in
  let rec drive () =
    (* A directive all of whose predictions have confirmed will never
       be needed again — confirmations only grow. *)
    pending := List.filter wanted !pending;
    let room = budget - !schedules in
    if !pending <> [] && room > 0 then begin
      let k = min chunk_size room in
      let chunk = List.filteri (fun i _ -> i < k) !pending in
      pending := List.filteri (fun i _ -> i >= k) !pending;
      let specs =
        List.map
          (fun (lbl, d, _) ->
            {
              Webracer.Replay.label = lbl;
              dir_seed = seed;
              dir_parse_delay = 2.;
              dir_bias = bias_of d;
            })
          chunk
      in
      let reports = Webracer.Replay.run_directed ~jobs base_cfg specs in
      List.iter2
        (fun (lbl, _, _) report ->
          Hashtbl.replace executed lbl ();
          note lbl report)
        chunk reports;
      drive ()
    end
  in
  drive ();
  let runs = List.rev !runs in
  let items =
    List.mapi
      (fun i p ->
        let classification =
          match confirmed.(i) with
          | Some schedule -> Confirmed { schedule }
          | None ->
              if List.for_all (Hashtbl.mem executed) per_pred.(i) then
                Refuted (certificate_for runs p)
              else Unconfirmed { reason = "budget exhausted" }
        in
        { prediction = p; classification; directives = per_pred.(i) })
      (Array.to_list preds)
  in
  let seen = Hashtbl.create 8 in
  let unpredicted =
    List.concat_map
      (fun (lbl, (report : Webracer.report)) ->
        List.filter_map
          (fun r ->
            let key = race_key r in
            if Hashtbl.mem seen key || Array.exists (fun p -> Compare.covers p r) preds
            then None
            else begin
              Hashtbl.replace seen key ();
              Some (r, lbl)
            end)
          report.Webracer.races)
      runs
  in
  {
    result;
    items;
    schedules_run = !schedules;
    schedules_to_confirm = !last_confirm;
    budget;
    unpredicted;
  }

let count cls t =
  List.length
    (List.filter
       (fun it ->
         match (it.classification, cls) with
         | Confirmed _, `Confirmed | Refuted _, `Refuted | Unconfirmed _, `Unconfirmed
           ->
             true
         | _ -> false)
       t.items)

let sound t = t.unpredicted = []

(* ------------------------------------------------------------------ *)
(* Blind counterpart (Perf-8)                                          *)

type blind = { blind_schedules : int; blind_matched : bool }

(* How many schedules blind enumeration (the pre-triage
   [Replay.explore_schedules] recipe: baseline, then seed enumeration
   at 2 ms/element parse cost) needs before every guided-confirmed
   prediction is also blindly confirmed. Capped — some targeted
   interleavings are simply never sampled blindly. *)
let blind_equivalent ?(jobs = 1) ?(cap = 64) ?(seed = 42) ~page ~resources t =
  let goals =
    List.filter_map
      (fun it ->
        match it.classification with Confirmed _ -> Some it.prediction | _ -> None)
      t.items
  in
  if goals = [] then { blind_schedules = 0; blind_matched = true }
  else begin
    let goals = Array.of_list goals in
    let matched = Array.make (Array.length goals) false in
    let all_matched () = Array.for_all (fun m -> m) matched in
    let absorb (report : Webracer.report) =
      Array.iteri
        (fun i p ->
          if
            (not matched.(i))
            && List.exists (fun r -> Compare.covers p r) report.Webracer.races
          then matched.(i) <- true)
        goals
    in
    let base = Webracer.config ~page ~resources ~seed ~explore:true () in
    let used = ref 0 in
    absorb (Webracer.analyze base);
    incr used;
    let next_seed = ref 0 in
    while (not (all_matched ())) && !used < cap do
      let k = min chunk_size (cap - !used) in
      let seeds = List.init k (fun i -> !next_seed + i) in
      next_seed := !next_seed + k;
      let reports =
        Webracer.analyze_batch ~jobs
          (List.map (fun s -> { base with Wr_browser.Config.seed = s; parse_delay = 2. }) seeds)
      in
      List.iter
        (fun report ->
          if not (all_matched ()) then begin
            absorb report;
            incr used
          end)
        reports
    done;
    { blind_schedules = !used; blind_matched = all_matched () }
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let classification_name = function
  | Confirmed _ -> "confirmed"
  | Refuted _ -> "refuted"
  | Unconfirmed _ -> "unconfirmed"

let certificate_to_json = function
  | Side_never_observed { side; sloc } ->
      Json.Obj
        [
          ("kind", Json.String "side-never-observed");
          ("side", Json.String side);
          ("location", Json.String sloc);
        ]
  | Disjoint_cells { first_cells; second_cells } ->
      Json.Obj
        [
          ("kind", Json.String "disjoint-cells");
          ("first_cells", Json.List (List.map (fun c -> Json.String c) first_cells));
          ("second_cells", Json.List (List.map (fun c -> Json.String c) second_cells));
        ]
  | Always_ordered { common_cells } ->
      Json.Obj
        [
          ("kind", Json.String "always-ordered");
          ("common_cells", Json.List (List.map (fun c -> Json.String c) common_cells));
        ]

let item_to_json it =
  let p = it.prediction in
  let base =
    [
      ("type", Json.String (Race.type_name p.Predict.race_type));
      ("location", Json.String (Effects.sloc_to_string p.Predict.loc));
      ("classification", Json.String (classification_name it.classification));
    ]
  in
  let tail =
    match it.classification with
    | Confirmed { schedule } -> [ ("schedule", Json.String schedule) ]
    | Refuted cert -> [ ("certificate", certificate_to_json cert) ]
    | Unconfirmed { reason } -> [ ("reason", Json.String reason) ]
  in
  Json.Obj
    (base @ tail
    @ [ ("directives", Json.List (List.map (fun d -> Json.String d) it.directives)) ])

let to_json t =
  Json.Obj
    [
      Wr_support.Schema.tag_of Wr_support.Schema.v2;
      ("budget", Json.Int t.budget);
      ("schedules_run", Json.Int t.schedules_run);
      ("schedules_to_confirm", Json.Int t.schedules_to_confirm);
      ("predictions", Json.Int (List.length t.items));
      ("confirmed", Json.Int (count `Confirmed t));
      ("refuted", Json.Int (count `Refuted t));
      ("unconfirmed", Json.Int (count `Unconfirmed t));
      ("sound", Json.Bool (sound t));
      ("items", Json.List (List.map item_to_json t.items));
      ( "unpredicted",
        Json.List
          (List.map
             (fun (r, lbl) ->
               Json.Obj
                 [
                   ("type", Json.String (Race.type_name r.Race.race_type));
                   ("location", Json.String (Wr_mem.Location.to_string r.Race.loc));
                   ("schedule", Json.String lbl);
                 ])
             t.unpredicted) );
    ]

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "predictions: %d  confirmed: %d  refuted: %d  unconfirmed: %d\n\
        schedules: %d run (budget %d), last confirmation at %d\n"
       (List.length t.items) (count `Confirmed t) (count `Refuted t)
       (count `Unconfirmed t) t.schedules_run t.budget t.schedules_to_confirm);
  List.iter
    (fun it ->
      let p = it.prediction in
      let detail =
        match it.classification with
        | Confirmed { schedule } -> "schedule " ^ schedule
        | Refuted (Side_never_observed { side; sloc }) ->
            Printf.sprintf "certificate: %s side (%s) never observed" side sloc
        | Refuted (Disjoint_cells _) -> "certificate: sides touch disjoint cells"
        | Refuted (Always_ordered _) -> "certificate: accesses always ordered"
        | Unconfirmed { reason } -> reason
      in
      Buffer.add_string b
        (Printf.sprintf "  %-11s %-8s %s — %s\n"
           (classification_name it.classification)
           (Race.type_name p.Predict.race_type)
           (Effects.sloc_to_string p.Predict.loc)
           detail))
    t.items;
  List.iter
    (fun (r, lbl) ->
      Buffer.add_string b
        (Printf.sprintf "  UNPREDICTED %s %s (schedule %s)\n"
           (Race.type_name r.Race.race_type)
           (Wr_mem.Location.to_string r.Race.loc)
           lbl))
    t.unpredicted;
  Buffer.contents b
