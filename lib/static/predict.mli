(** The ahead-of-time race predictor (DESIGN.md §8).

    Intersects the effect sets of may-happen-in-parallel units under the
    dynamic detector's conflict rules and classifies the surviving pairs
    into the paper's race classes. Deduplicated to one prediction per
    (type, location), matching the dynamic one-report-per-location
    rule. *)

type prediction = {
  race_type : Wr_detect.Race.race_type;
  loc : Effects.sloc;  (** the more concrete of the two effect locations *)
  first_unit : int;
  second_unit : int;
  first_eff : Effects.eff;
  second_eff : Effects.eff;
}

type lint_finding =
  | Duplicate_id of { doc : int; id : string; count : int }
  | Handler_on_missing_id of {
      doc : int;
      id : string;
      event : string;
      registered_by : string;
    }
  | Write_only_global of { name : string; written_by : string }

type result = {
  model : Model.t;
  predictions : prediction list;
  mhp_pairs : int;
  lint : lint_finding list;
}

(** [predict ~page ~resources ()] builds the static model and reports
    predicted races and lint findings. Never raises on malformed pages. *)
val predict :
  ?tm:Wr_telemetry.Telemetry.t ->
  page:string ->
  resources:(string * string) list ->
  unit ->
  result

(** [count_by_type preds] tallies (html, function, variable, dispatch). *)
val count_by_type : prediction list -> int * int * int * int

val prediction_to_json : Model.t -> prediction -> Wr_support.Json.t

val lint_to_json : lint_finding -> Wr_support.Json.t

(** [to_json ?compare r] — the [schema_version]-stamped predict document;
    [compare] (from {!Compare}) is appended under ["compare"]. *)
val to_json : ?compare:Wr_support.Json.t -> result -> Wr_support.Json.t
