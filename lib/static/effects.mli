(** Static read/write effect extraction over the MiniJS AST (DESIGN.md §8).

    Folds each code unit into a set of abstract effects over the same
    logical memory model the dynamic detector instruments
    ([Wr_mem.Location]): global variables, form-field properties,
    per-document id/collection lookup cells, element presence, and
    event-handler containers. Recall-oriented: dynamic property names and
    eval-like constructs widen to wildcard or top effects rather than
    being dropped. *)

(** Abstract strings: fully known, known prefix (the ["id_" + i] idiom),
    or unknown. *)
type sstr = Lit of string | Prefix of string | Any_str

(** [sstr_matches a b] — may the two abstract strings denote the same
    concrete string? *)
val sstr_matches : sstr -> sstr -> bool

val sstr_to_string : sstr -> string

(** Who an effect touches: an element named by id pattern, a concrete
    parsed element (per-document pre-order index), the document root
    (#document, on every dispatch path), the window, or unknown (matches
    everything). *)
type target =
  | T_elem of { doc : int; id : sstr }
  | T_node of { doc : int; node : int }
  | T_root of int
  | T_window of int
  | T_unknown

val target_matches : target -> target -> bool

val target_to_string : target -> string

(** Static analogue of [Wr_mem.Location.t]; [S_top] (eval-like constructs)
    conflicts with every location, [S_dom_any] with every HTML cell of its
    document, and the handler event ["*"] with every event. *)
type sloc =
  | S_global of sstr
  | S_prop of { target : target; prop : sstr }
  | S_id of { doc : int; id : sstr }
  | S_node of { doc : int; node : int }
  | S_collection of { doc : int; name : sstr }
  | S_handler of { target : target; event : string }
  | S_dom_any of int
  | S_top

val sloc_to_string : sloc -> string

(** [sloc_conflicts a b] — may the two abstract locations overlap
    (kind-independent)? *)
val sloc_conflicts : sloc -> sloc -> bool

type kind = Read | Write

val kind_name : kind -> string

type eff = {
  loc : sloc;
  kind : kind;
  func_decl : bool;  (** write is a hoisted function declaration *)
  call : bool;  (** read in call position *)
  user : bool;  (** write models user input *)
  may_miss : bool;  (** lookup may observe absence *)
}

(** [conflicts a b] — do the two effects form a candidate race pair?
    Mirrors [Wr_mem.Location.conflict_relevant]: at least one write, and
    write-write pairs on collection/handler-container cells are exempt. *)
val conflicts : eff -> eff -> bool

(** [classify a b] mirrors [Wr_detect.Race.classify] on abstract
    locations. *)
val classify : eff -> eff -> Wr_detect.Race.race_type

(** Nested units discovered while analyzing a body: timer callbacks, XHR
    completion handlers, event-handler bodies. *)
type sub_kind =
  | K_timer of { interval : bool; delay : float option }
  | K_xhr
  | K_handler of { target : target; event : string }

type analysis = {
  mutable effs : eff list;  (** deduplicated, reverse discovery order *)
  mutable subs : (sub_kind * analysis) list;
}

(** Static DOM knowledge used to resolve collection queries to concrete
    parsed elements (supplied by {!Model}). *)
type dom_info = {
  nodes_by_tag : int -> string -> int list;
  nodes_by_class : int -> string -> int list;
}

val no_dom : dom_info

type ctx = {
  doc : int;
  dom : dom_info;
  funcs : (string, Wr_js.Ast.func) Hashtbl.t;
  declared : (string, unit) Hashtbl.t;
}

val make_ctx : ?dom:dom_info -> doc:int -> unit -> ctx

(** [collect_globals ctx prog] (pre-pass, run over every unit first)
    harvests top-level function declarations into [ctx.funcs] — cross-unit
    calls are inlined through this table — and declared global names into
    [ctx.declared]. *)
val collect_globals : ctx -> Wr_js.Ast.program -> unit

(** [analyze ctx prog] — effects of a top-level script unit: [var] and
    function declarations at the outermost level write globals. *)
val analyze : ctx -> Wr_js.Ast.program -> analysis

(** [analyze_handler ctx prog] — effects of inline-attribute handler code
    or a [javascript:] URL body: declarations are handler-local. *)
val analyze_handler : ctx -> Wr_js.Ast.program -> analysis
