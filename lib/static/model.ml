(* Static page model: code units and a may-happen-in-parallel relation
   derived from the parsed DOM without executing anything.

   The unit graph mirrors the dynamic happens-before rules in Wr_hb /
   Wr_browser (paper §3) edge for edge:

   - parse units chain in document pre-order (rule 1), with inline and
     sync external scripts interleaved at their position (rules 2-3);
   - async scripts hang off their create point only: the fetch arrival is
     unordered with the rest of parsing (rule 8);
   - defer scripts run in order after parsing, before DOMContentLoaded
     (rules 4-5, 9);
   - iframe documents chain after the iframe element's parse (rules 6-7);
   - timers and XHR completion handlers follow their registering unit
     (rules 10, 16); same-unit timers with known delays d1 <= d2 are
     ordered (rule 17);
   - event-handler bodies follow their registering unit; dispatch anchors
     follow only the target element's parse — the user can fire the event
     any time after the element exists (§5.2.2);
   - DOMContentLoaded follows parsing and defers (rule 11); window load
     follows DCL, async scripts and resource loads (rules 12-15).

   MHP(a, b) = neither unit reaches the other through the edge set. *)

module Html = Wr_html.Html
module Bitset = Wr_support.Bitset
module Telemetry = Wr_telemetry.Telemetry

type unit_kind =
  | U_parse of { node : int; tag : string; elem_id : string option }
  | U_script of [ `Sync | `Async | `Defer ]
  | U_timer of { interval : bool; delay : float option }
  | U_xhr
  | U_handler of { target : Effects.target; event : string }
  | U_dispatch of { target : Effects.target; event : string }
  | U_user of { node : int }
  | U_dcl
  | U_load

type unit_ = {
  uid : int;
  kind : unit_kind;
  label : string;
  doc : int;
  mutable preds : int list;
  mutable effs : Effects.eff list;
}

let kind_name = function
  | U_parse _ -> "parse"
  | U_script `Sync -> "script"
  | U_script `Async -> "async-script"
  | U_script `Defer -> "defer-script"
  | U_timer { interval = false; _ } -> "timer"
  | U_timer { interval = true; _ } -> "interval"
  | U_xhr -> "xhr"
  | U_handler _ -> "handler"
  | U_dispatch _ -> "dispatch"
  | U_user _ -> "user"
  | U_dcl -> "dcl"
  | U_load -> "load"

type t = {
  units : unit_ array;
  docs : int;
  duplicate_ids : (int * string * int) list;
  missing_handler_ids : (int * string * string * string) list;
  anc : Bitset.t array;
}

(* --- static DOM ----------------------------------------------------- *)

type selem = {
  sdoc : int;
  snode : int;
  stag : string;
  sid : string option;
  sclasses : string list;
  sancestors : int list;  (* node indices, nearest first *)
  sattrs : (string * string) list;
  stext : string;  (* concatenated text children: script bodies *)
}

let classes_of attrs =
  match List.assoc_opt "class" attrs with
  | None -> []
  | Some v -> String.split_on_char ' ' v |> List.filter (fun c -> c <> "")

(* Document-level named collections an element joins on insertion;
   mirrors the dynamic DOM's collection bookkeeping. *)
let named_collections tag attrs =
  let has n = List.mem_assoc n attrs in
  match tag with
  | "img" -> [ "images" ]
  | "form" -> [ "forms" ]
  | "script" -> [ "scripts" ]
  | "a" ->
      (if has "href" then [ "links" ] else [])
      @ if has "name" then [ "anchors" ] else []
  | _ -> []

let text_of_children children =
  String.concat ""
    (List.filter_map
       (function Html.Text s -> Some s | Html.Element _ -> None)
       children)

(* Mirrors Browser.text_input_uids: elements user exploration types into. *)
let is_text_input e =
  match e.stag with
  | "textarea" -> true
  | "input" -> (
      match List.assoc_opt "type" e.sattrs with
      | None | Some "" | Some "text" | Some "search" | Some "email" | Some "tel"
        ->
          true
      | Some _ -> false)
  | _ -> false

let elem_suffix e = match e.sid with Some id -> "#" ^ id | None -> ""

(* --- builder --------------------------------------------------------- *)

type doc_acc = {
  adoc : int;
  mutable chain : int list;  (* preds for the next parser-chain unit *)
  mutable defers : (selem * string) list;  (* reverse order *)
  mutable asyncs : int list;
  mutable loadables : int list;  (* element load/error dispatch units *)
  mutable scripts : (int * Wr_js.Ast.program) list;  (* reverse order *)
  mutable handlers : (int * Wr_js.Ast.program) list;
      (* inline-attribute handler and javascript:-link bodies, rev order *)
}

type builder = {
  resources : (string * string) list;
  mutable next_doc : int;
  mutable vunits : unit_ list;  (* reverse order *)
  mutable nunits : int;
  ids : (int * string, int) Hashtbl.t;
  id_counts : (int * string, int) Hashtbl.t;
  by_node : (int * int, selem) Hashtbl.t;
  parse_uid : (int * int, int) Hashtbl.t;
  tags : (int * string, int list) Hashtbl.t;
  cls : (int * string, int list) Hashtbl.t;
  mutable docs_done : doc_acc list;  (* reverse order *)
  mutable missing : (int * string * string * string) list;
  dispatched : (string, unit) Hashtbl.t;  (* dedup key for dispatch units *)
}

let mk b ?(preds = []) ?(effs = []) ~doc ~label kind =
  let u = { uid = b.nunits; kind; label; doc; preds; effs } in
  b.vunits <- u :: b.vunits;
  b.nunits <- b.nunits + 1;
  u

let target_of_elem e =
  match e.sid with
  | Some id -> Effects.T_elem { doc = e.sdoc; id = Effects.Lit id }
  | None -> Effects.T_node { doc = e.sdoc; node = e.snode }

let read_handler target event =
  {
    Effects.loc = Effects.S_handler { target; event };
    kind = Effects.Read;
    func_decl = false;
    call = false;
    user = false;
    may_miss = false;
  }

let write_handler target event =
  { (read_handler target event) with Effects.kind = Effects.Write }

(* Container cells a dispatch anchored at [e] reads: the element itself,
   every static ancestor, and the document root — the capture/bubble path
   the dynamic dispatch anchor touches. *)
let dispatch_reads b e event =
  (read_handler (target_of_elem e) event
  :: List.filter_map
       (fun anc ->
         Option.map
           (fun a -> read_handler (target_of_elem a) event)
           (Hashtbl.find_opt b.by_node (e.sdoc, anc)))
       e.sancestors)
  @ [ read_handler (Effects.T_root e.sdoc) event ]

(* Presence effects of parsing an element: its node cell, its id lookup
   cell, and every collection it joins. *)
let presence_effs e =
  let w loc =
    {
      Effects.loc;
      kind = Effects.Write;
      func_decl = false;
      call = false;
      user = false;
      may_miss = false;
    }
  in
  (w (Effects.S_node { doc = e.sdoc; node = e.snode })
  :: (match e.sid with
     | Some id -> [ w (Effects.S_id { doc = e.sdoc; id = Effects.Lit id }) ]
     | None -> []))
  @ List.map
      (fun c -> w (Effects.S_collection { doc = e.sdoc; name = Effects.Lit c }))
      (("tag:" ^ e.stag)
      :: (List.map (fun c -> "class:" ^ c) e.sclasses
         @ named_collections e.stag e.sattrs))

let parse_js src =
  match Wr_js.Parser.parse src with
  | prog -> Some prog
  | exception _ -> None

let dispatch_key doc target event =
  Printf.sprintf "%d/%s/%s" doc (Effects.target_to_string target) event

(* --- document walk --------------------------------------------------- *)

let rec walk_doc b ~doc ~preds nodes =
  let acc =
    {
      adoc = doc;
      chain = preds;
      defers = [];
      asyncs = [];
      loadables = [];
      scripts = [];
      handlers = [];
    }
  in
  let next_node = ref 0 in
  let rec walk_nodes ancestors ns = List.iter (walk_node ancestors) ns
  and walk_node ancestors n =
    match n with
    | Html.Text _ -> ()
    | Html.Element el ->
        let node = !next_node in
        incr next_node;
        let attrs =
          List.map (fun a -> (a.Html.name, a.Html.value)) el.Html.attrs
        in
        let e =
          {
            sdoc = doc;
            snode = node;
            stag = el.Html.tag;
            sid = List.assoc_opt "id" attrs;
            sclasses = classes_of attrs;
            sancestors = ancestors;
            sattrs = attrs;
            stext = text_of_children el.Html.children;
          }
        in
        Hashtbl.replace b.by_node (doc, node) e;
        (match e.sid with
        | Some id ->
            let k = (doc, id) in
            if not (Hashtbl.mem b.ids k) then Hashtbl.replace b.ids k node;
            Hashtbl.replace b.id_counts k
              (1 + Option.value ~default:0 (Hashtbl.find_opt b.id_counts k))
        | None -> ());
        Hashtbl.replace b.tags (doc, e.stag)
          (node
          :: Option.value ~default:[] (Hashtbl.find_opt b.tags (doc, e.stag)));
        List.iter
          (fun c ->
            Hashtbl.replace b.cls (doc, c)
              (node
              :: Option.value ~default:[] (Hashtbl.find_opt b.cls (doc, c))))
          e.sclasses;
        let pu =
          mk b ~preds:acc.chain ~effs:(presence_effs e) ~doc
            ~label:(Printf.sprintf "parse <%s%s>" e.stag (elem_suffix e))
            (U_parse { node; tag = e.stag; elem_id = e.sid })
        in
        Hashtbl.replace b.parse_uid (doc, node) pu.uid;
        acc.chain <- [ pu.uid ];
        (* Inline on<event> attributes register their handler at parse
           time: the parse unit writes the container, the body becomes a
           handler unit ordered after it. *)
        List.iter
          (fun (name, value) ->
            if String.length name > 2 && String.sub name 0 2 = "on" then begin
              let event = String.sub name 2 (String.length name - 2) in
              pu.effs <- write_handler (target_of_elem e) event :: pu.effs;
              match parse_js value with
              | Some prog ->
                  let hu =
                    mk b ~preds:[ pu.uid ] ~doc
                      ~label:
                        (Printf.sprintf "handler %s on <%s%s>" event e.stag
                           (elem_suffix e))
                      (U_handler { target = target_of_elem e; event })
                  in
                  acc.handlers <- (hu.uid, prog) :: acc.handlers
              | None -> ()
            end)
          attrs;
        (match e.stag with
        | "script" -> script_elem b acc e pu
        | "img" -> loadable_elem b acc e pu
        | "iframe" -> iframe_elem b acc e pu
        | "a" -> js_link_elem b acc e pu
        | _ -> ());
        if is_text_input e then begin
          Hashtbl.replace b.dispatched
            (dispatch_key doc (target_of_elem e) "input")
            ();
          let uu =
            mk b ~preds:[ pu.uid ] ~doc
              ~label:
                (Printf.sprintf "user types into <%s%s>" e.stag (elem_suffix e))
              (U_user { node })
          in
          uu.effs <-
            {
              Effects.loc =
                Effects.S_prop
                  { target = target_of_elem e; prop = Effects.Lit "value" };
              kind = Effects.Write;
              func_decl = false;
              call = false;
              user = true;
              may_miss = false;
            }
            :: dispatch_reads b e "input"
        end;
        walk_nodes (node :: ancestors) el.Html.children
  in
  walk_nodes [] nodes;
  acc

and script_elem b acc e pu =
  let src = List.assoc_opt "src" e.sattrs in
  let body =
    match src with
    | Some url -> List.assoc_opt url b.resources
    | None -> Some e.stext
  in
  match body with
  | None -> () (* the fetch fails: the script never executes *)
  | Some source -> (
      let is_async = List.mem_assoc "async" e.sattrs && src <> None in
      let is_defer =
        (not is_async) && List.mem_assoc "defer" e.sattrs && src <> None
      in
      if is_defer then acc.defers <- (e, source) :: acc.defers
      else
        match parse_js source with
        | None -> ()
        | Some prog ->
            let mode = if is_async then `Async else `Sync in
            let label =
              match src with
              | Some url ->
                  Printf.sprintf "%s script %s"
                    (match mode with `Async -> "async" | _ -> "sync")
                    url
              | None ->
                  Printf.sprintf "inline script (doc%d/node%d)" e.sdoc e.snode
            in
            let preds =
              match mode with `Async -> [ pu.uid ] | _ -> acc.chain
            in
            let su = mk b ~preds ~doc:e.sdoc ~label (U_script mode) in
            acc.scripts <- (su.uid, prog) :: acc.scripts;
            (match mode with
            | `Async -> acc.asyncs <- su.uid :: acc.asyncs
            | `Sync -> acc.chain <- [ su.uid ]);
            (* External scripts fire load after execution. *)
            if src <> None then begin
              let du =
                mk b ~preds:[ su.uid ] ~doc:e.sdoc
                  ~effs:(dispatch_reads b e "load")
                  ~label:
                    (Printf.sprintf "dispatch load on script %s"
                       (Option.get src))
                  (U_dispatch { target = target_of_elem e; event = "load" })
              in
              Hashtbl.replace b.dispatched
                (dispatch_key e.sdoc (target_of_elem e) "load")
                ();
              acc.loadables <- du.uid :: acc.loadables
            end)

and loadable_elem b acc e pu =
  match List.assoc_opt "src" e.sattrs with
  | None -> ()
  | Some url ->
      let event = if List.mem_assoc url b.resources then "load" else "error" in
      let du =
        mk b ~preds:[ pu.uid ] ~doc:e.sdoc
          ~effs:(dispatch_reads b e event)
          ~label:(Printf.sprintf "dispatch %s on <img%s>" event (elem_suffix e))
          (U_dispatch { target = target_of_elem e; event })
      in
      Hashtbl.replace b.dispatched
        (dispatch_key e.sdoc (target_of_elem e) event)
        ();
      acc.loadables <- du.uid :: acc.loadables

and iframe_elem b acc e pu =
  match List.assoc_opt "src" e.sattrs with
  | None -> ()
  | Some url -> (
      match List.assoc_opt url b.resources with
      | None -> ()
      | Some body ->
          let child_doc = b.next_doc in
          b.next_doc <- b.next_doc + 1;
          let child_load =
            finish_doc b ~doc:child_doc ~preds:[ pu.uid ] (Html.parse body)
          in
          let du =
            mk b
              ~preds:[ child_load; pu.uid ]
              ~doc:e.sdoc
              ~effs:(dispatch_reads b e "load")
              ~label:(Printf.sprintf "dispatch load on <iframe %s>" url)
              (U_dispatch { target = target_of_elem e; event = "load" })
          in
          Hashtbl.replace b.dispatched
            (dispatch_key e.sdoc (target_of_elem e) "load")
            ();
          acc.loadables <- du.uid :: acc.loadables)

and js_link_elem b acc e pu =
  match List.assoc_opt "href" e.sattrs with
  | Some href
    when String.length href > 11 && String.sub href 0 11 = "javascript:" -> (
      let code = String.sub href 11 (String.length href - 11) in
      match parse_js code with
      | None -> ()
      | Some prog ->
          let du =
            mk b ~preds:[ pu.uid ] ~doc:e.sdoc
              ~effs:(dispatch_reads b e "click")
              ~label:(Printf.sprintf "dispatch click on <a%s>" (elem_suffix e))
              (U_dispatch { target = target_of_elem e; event = "click" })
          in
          Hashtbl.replace b.dispatched
            (dispatch_key e.sdoc (target_of_elem e) "click")
            ();
          acc.handlers <- (du.uid, prog) :: acc.handlers)
  | _ -> ()

(* Walk a document and wire its defer / DCL / load units; returns the
   load unit's id (the terminal unit, used as the iframe-load pred). *)
and finish_doc b ~doc ~preds nodes =
  let acc = walk_doc b ~doc ~preds nodes in
  let defer_units =
    List.fold_left
      (fun prev (e, source) ->
        match parse_js source with
        | None -> prev
        | Some prog ->
            let preds =
              (match prev with Some p -> [ p ] | None -> []) @ acc.chain
            in
            let du =
              mk b ~preds ~doc
                ~label:
                  (Printf.sprintf "defer script %s"
                     (Option.value ~default:"?"
                        (List.assoc_opt "src" e.sattrs)))
                (U_script `Defer)
            in
            acc.scripts <- (du.uid, prog) :: acc.scripts;
            Some du.uid)
      None (List.rev acc.defers)
  in
  let dcl =
    mk b
      ~preds:(acc.chain @ Option.to_list defer_units)
      ~doc
      ~effs:[ read_handler (Effects.T_root doc) "DOMContentLoaded" ]
      ~label:(Printf.sprintf "DOMContentLoaded (doc%d)" doc)
      U_dcl
  in
  let load =
    mk b
      ~preds:((dcl.uid :: acc.asyncs) @ acc.loadables)
      ~doc
      ~effs:
        [
          read_handler (Effects.T_window doc) "load";
          read_handler (Effects.T_root doc) "load";
        ]
      ~label:(Printf.sprintf "window load (doc%d)" doc)
      U_load
  in
  b.docs_done <- acc :: b.docs_done;
  load.uid

(* --- effect analysis and sub-unit flattening ------------------------- *)

(* Attach the nested units an analysis discovered (timers, XHR handlers,
   handler bodies) under [parent], recursively, and apply rule 17 to
   same-parent timers with known delays. *)
let rec attach_subs b parent (a : Effects.analysis) =
  let timers = ref [] in
  List.iter
    (fun (sk, (sub : Effects.analysis)) ->
      let u =
        match sk with
        | Effects.K_timer { interval; delay } ->
            let u =
              mk b ~preds:[ parent.uid ] ~doc:parent.doc
                ~label:
                  (Printf.sprintf "%s%s from %s"
                     (if interval then "interval" else "timer")
                     (match delay with
                     | Some d -> Printf.sprintf " (%gms)" d
                     | None -> "")
                     parent.label)
                (U_timer { interval; delay })
            in
            (match delay with
            | Some d ->
                (* Rule 17: same registering unit, d1 <= d2 => ordered. *)
                List.iter
                  (fun (d', uid') ->
                    if d' <= d then u.preds <- uid' :: u.preds)
                  !timers;
                timers := (d, u.uid) :: !timers
            | None -> ());
            u
        | Effects.K_xhr ->
            mk b ~preds:[ parent.uid ] ~doc:parent.doc
              ~label:(Printf.sprintf "xhr handler from %s" parent.label)
              U_xhr
        | Effects.K_handler { target; event } ->
            mk b ~preds:[ parent.uid ] ~doc:parent.doc
              ~label:
                (Printf.sprintf "handler %s on %s from %s" event
                   (Effects.target_to_string target)
                   parent.label)
              (U_handler { target; event })
      in
      u.effs <- u.effs @ sub.effs;
      attach_subs b u sub)
    (List.rev a.subs)

let analyze_code b =
  let units_by_uid = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace units_by_uid u.uid u) b.vunits;
  let find uid : unit_ = Hashtbl.find units_by_uid uid in
  List.iter
    (fun acc ->
      let doc = acc.adoc in
      let dom =
        {
          Effects.nodes_by_tag =
            (fun d tag ->
              Option.value ~default:[] (Hashtbl.find_opt b.tags (d, tag)));
          nodes_by_class =
            (fun d c ->
              Option.value ~default:[] (Hashtbl.find_opt b.cls (d, c)));
        }
      in
      let ctx = Effects.make_ctx ~dom ~doc () in
      let scripts = List.rev acc.scripts in
      let handlers = List.rev acc.handlers in
      (* Pre-pass: page-wide global function table, so cross-unit calls
         inline and handler bodies can resolve script-declared names. *)
      List.iter (fun (_, prog) -> Effects.collect_globals ctx prog) scripts;
      List.iter
        (fun (uid, prog) ->
          let u = find uid in
          let a = Effects.analyze ctx prog in
          u.effs <- u.effs @ a.effs;
          attach_subs b u a)
        scripts;
      List.iter
        (fun (uid, prog) ->
          let u = find uid in
          let a = Effects.analyze_handler ctx prog in
          u.effs <- u.effs @ a.effs;
          attach_subs b u a)
        handlers)
    (List.rev b.docs_done)

(* --- registration-driven dispatch units ------------------------------ *)

(* For every statically observed handler registration on an event the
   dynamic explorer fires (§5.2.2), create a dispatch unit anchored at the
   target's parse unit — or record a lint finding when the registration
   names an id absent from the static DOM. *)
let make_dispatch_units b =
  let explorable e =
    e = "*" || List.mem e Wr_events.Events.exploration_events
  in
  let add_for_elem reg_doc event e =
    let target = target_of_elem e in
    let key = dispatch_key reg_doc target event in
    if not (Hashtbl.mem b.dispatched key) then begin
      Hashtbl.replace b.dispatched key ();
      let preds =
        Option.to_list (Hashtbl.find_opt b.parse_uid (e.sdoc, e.snode))
      in
      ignore
        (mk b ~preds ~doc:e.sdoc
           ~effs:(dispatch_reads b e event)
           ~label:
             (Printf.sprintf "dispatch %s on <%s%s>" event e.stag
                (elem_suffix e))
           (U_dispatch { target; event }))
    end
  in
  let add_special doc target event =
    let key = dispatch_key doc target event in
    if not (Hashtbl.mem b.dispatched key) then begin
      Hashtbl.replace b.dispatched key ();
      ignore
        (mk b ~preds:[] ~doc
           ~effs:[ read_handler target event ]
           ~label:
             (Printf.sprintf "dispatch %s on %s" event
                (Effects.target_to_string target))
           (U_dispatch { target; event }))
    end
  in
  let registrations =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun (eff : Effects.eff) ->
            match (eff.loc, eff.kind) with
            | Effects.S_handler { target; event }, Effects.Write ->
                Some (u, target, event)
            | _ -> None)
          u.effs)
      (List.rev b.vunits)
  in
  List.iter
    (fun ((u : unit_), target, event) ->
      match target with
      | Effects.T_elem { doc; id = Effects.Lit id } -> (
          match Hashtbl.find_opt b.ids (doc, id) with
          | Some node ->
              if explorable event then
                add_for_elem doc event (Hashtbl.find b.by_node (doc, node))
          | None -> b.missing <- (doc, id, event, u.label) :: b.missing)
      | Effects.T_elem { doc; id = pat } ->
          if explorable event then
            Hashtbl.iter
              (fun (d, id) node ->
                if d = doc && Effects.sstr_matches pat (Effects.Lit id) then
                  add_for_elem doc event (Hashtbl.find b.by_node (d, node)))
              b.ids
      | Effects.T_node { doc; node } ->
          if explorable event then (
            match Hashtbl.find_opt b.by_node (doc, node) with
            | Some e -> add_for_elem doc event e
            | None -> ())
      | Effects.T_root doc | Effects.T_window doc ->
          (* DCL/load containers on root and window are read by the
             structural DCL/load units; other explorable events on the
             document get a free-floating dispatch anchor. *)
          if explorable event then add_special doc target event
      | Effects.T_unknown ->
          if explorable event then add_special u.doc Effects.T_unknown event)
    registrations

(* --- MHP closure ------------------------------------------------------ *)

(* Units are created in topological order (every pred has a smaller uid),
   so ancestor bitsets close in one forward pass. *)
let close_ancestors units =
  let n = Array.length units in
  let anc = Array.init n (fun _ -> Bitset.create n) in
  Array.iter
    (fun u ->
      List.iter
        (fun p ->
          Bitset.add anc.(u.uid) p;
          Bitset.union_into ~into:anc.(u.uid) anc.(p))
        u.preds)
    units;
  anc

(* --- entry point ------------------------------------------------------ *)

let build ?(tm = Telemetry.disabled) ~page ~resources () =
  let b =
    {
      resources;
      next_doc = 1;
      vunits = [];
      nunits = 0;
      ids = Hashtbl.create 64;
      id_counts = Hashtbl.create 64;
      by_node = Hashtbl.create 64;
      parse_uid = Hashtbl.create 64;
      tags = Hashtbl.create 64;
      cls = Hashtbl.create 16;
      docs_done = [];
      missing = [];
      dispatched = Hashtbl.create 16;
    }
  in
  Telemetry.with_span tm ~cat:"static" ~name:"static.effects" (fun () ->
      ignore (finish_doc b ~doc:0 ~preds:[] (Html.parse page));
      analyze_code b;
      make_dispatch_units b);
  let units = Array.of_list (List.rev b.vunits) in
  let anc =
    Telemetry.with_span tm ~cat:"static" ~name:"static.mhp" (fun () ->
        close_ancestors units)
  in
  let duplicate_ids =
    Hashtbl.fold
      (fun (doc, id) count l -> if count > 1 then (doc, id, count) :: l else l)
      b.id_counts []
    |> List.sort compare
  in
  Telemetry.set_counter tm "static.units" (Array.length units);
  Telemetry.set_counter tm "static.effects"
    (Array.fold_left (fun n u -> n + List.length u.effs) 0 units);
  {
    units;
    docs = b.next_doc;
    duplicate_ids;
    missing_handler_ids = List.sort_uniq compare b.missing;
    anc;
  }

let happens_before t a b = a <> b && Bitset.mem t.anc.(b) a

let mhp t a b =
  a <> b
  && (not (Bitset.mem t.anc.(b) a))
  && not (Bitset.mem t.anc.(a) b)

let mhp_pairs t =
  let n = Array.length t.units in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if mhp t i j then incr count
    done
  done;
  !count
