(** Static → dynamic triage: prediction-guided schedule exploration
    (DESIGN.md §8).

    For each static prediction, derive the scheduling directives (which
    delay channels to speed up or slow down) that could realize it —
    from the MHP model's ancestor bitsets — and run only those directed
    schedules. Every prediction ends up {e confirmed} (a schedule
    realized it), {e refuted} (with a certificate over the explored
    directive space), or {e unconfirmed} (budget exhausted). Any
    dynamic race observed along the way that no prediction covers is a
    soundness violation and is reported as [unpredicted]. *)

(** A delay channel the guided search can perturb. *)
type channel = C_parse | C_timer | C_net | C_xhr | C_user

val channel_name : channel -> string

(** [channels m uid] — the channels that move when unit [uid] runs: its
    own dispatch channel plus those of all its HB ancestors. *)
val channels : Model.t -> int -> channel list

(** One directed schedule: per-channel speed overrides, canonically
    ordered. *)
type directive = (channel * Wr_scheduler.Event_loop.speed) list

val directive_label : directive -> string

val bias_of : directive -> Wr_scheduler.Event_loop.bias

(** [directives_for m p] — the directive list derived for prediction
    [p]: cross inversions (one side's channels fast, the other's slow)
    first, then single-channel perturbations; deduplicated and capped. *)
val directives_for : Model.t -> Predict.prediction -> directive list

(** Why a prediction is unrealizable under the explored schedules. *)
type certificate =
  | Side_never_observed of { side : string; sloc : string }
      (** one side's abstract location matched no trace access in any
          explored schedule (dead-branch registration) *)
  | Disjoint_cells of { first_cells : string list; second_cells : string list }
      (** both sides execute, but the concrete cells they touch never
          intersect in any schedule (widened computed member names) *)
  | Always_ordered of { common_cells : string list }
      (** a common cell exists, but the detector found every access
          pair ordered in every explored schedule *)

type classification =
  | Confirmed of { schedule : string }
  | Refuted of certificate
  | Unconfirmed of { reason : string }

type item = {
  prediction : Predict.prediction;
  classification : classification;
  directives : string list;  (** directive labels derived for it *)
}

type t = {
  result : Predict.result;
  items : item list;
  schedules_run : int;
  schedules_to_confirm : int;
      (** index of the schedule producing the last new confirmation
          (1 = baseline); 0 when nothing confirmed *)
  budget : int;
  unpredicted : (Wr_detect.Race.t * string) list;
      (** soundness violations: raw dynamic races no prediction covers,
          with the schedule label that surfaced them *)
}

val default_budget : int

(** [run ~page ~resources ()] predicts, runs the baseline schedule plus
    directed schedules (at most [budget] total, default
    {!default_budget}), and classifies every prediction. The report is
    deterministic in [seed] and independent of [jobs]. *)
val run :
  ?tm:Wr_telemetry.Telemetry.t ->
  ?seed:int ->
  ?jobs:int ->
  ?budget:int ->
  page:string ->
  resources:(string * string) list ->
  unit ->
  t

val count : [ `Confirmed | `Refuted | `Unconfirmed ] -> t -> int

(** [sound t] — no unpredicted dynamic race was observed. *)
val sound : t -> bool

type blind = { blind_schedules : int; blind_matched : bool }

(** [blind_equivalent ~page ~resources t] — how many schedules blind
    enumeration (baseline + seed sweep at 2 ms/element, the
    [Replay.explore_schedules] recipe) needs to confirm everything the
    guided search confirmed; capped at [cap] (default 64) with
    [blind_matched = false] when the cap is hit first. The Perf-8
    guided-vs-blind comparison. *)
val blind_equivalent :
  ?jobs:int ->
  ?cap:int ->
  ?seed:int ->
  page:string ->
  resources:(string * string) list ->
  t ->
  blind

(** [to_json t] — the schema-v2-stamped triage report, stable field
    order. *)
val to_json : t -> Wr_support.Json.t

(** [render t] — the human-readable classification listing. *)
val render : t -> string
