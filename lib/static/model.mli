(** Static page model: code units + may-happen-in-parallel (DESIGN.md §8).

    Builds, from the parsed HTML alone, the set of code units a page can
    run (parser steps, scripts, timers, XHR handlers, event handlers,
    dispatch anchors, user input, DOMContentLoaded, load) and a
    happens-before edge set mirroring the dynamic rules in [Wr_hb] /
    [Wr_browser]. MHP is the complement of reachability over those
    edges. *)

type unit_kind =
  | U_parse of { node : int; tag : string; elem_id : string option }
  | U_script of [ `Sync | `Async | `Defer ]
  | U_timer of { interval : bool; delay : float option }
  | U_xhr
  | U_handler of { target : Effects.target; event : string }
  | U_dispatch of { target : Effects.target; event : string }
  | U_user of { node : int }
  | U_dcl
  | U_load

type unit_ = {
  uid : int;
  kind : unit_kind;
  label : string;
  doc : int;
  mutable preds : int list;  (** direct happens-before predecessors *)
  mutable effs : Effects.eff list;
}

val kind_name : unit_kind -> string

type t = {
  units : unit_ array;  (** indexed by [uid]; topologically ordered *)
  docs : int;  (** document count: main page + parsed iframes *)
  duplicate_ids : (int * string * int) list;
      (** (doc, id, occurrences) for ids appearing more than once *)
  missing_handler_ids : (int * string * string * string) list;
      (** (doc, id, event, registering unit label): handler registered on
          an id absent from the static DOM *)
  anc : Wr_support.Bitset.t array;  (** transitive HB ancestors per unit *)
}

(** [build ~page ~resources ()] parses [page] (iframe/script/img sources
    resolved against the [resources] association list, URL -> body) and
    constructs the unit graph. Never raises on malformed input: unparsable
    scripts contribute no unit, failing fetches none either. *)
val build :
  ?tm:Wr_telemetry.Telemetry.t ->
  page:string ->
  resources:(string * string) list ->
  unit ->
  t

val happens_before : t -> int -> int -> bool

(** [mhp t a b] — neither unit reaches the other. *)
val mhp : t -> int -> int -> bool

(** [mhp_pairs t] counts unordered MHP unit pairs. *)
val mhp_pairs : t -> int
