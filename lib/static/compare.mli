(** Precision/recall harness: score static predictions against the
    dynamic detector's raw race reports on the same page. *)

type comparison = {
  dynamic_races : int;
  predicted : int;
  matched_dynamic : int;  (** dynamic races covered by some prediction *)
  confirmed : int;  (** predictions covering some dynamic race *)
  missed : (Wr_detect.Race.t * string) list;
      (** dynamic races no prediction covers, with rendered location *)
  unconfirmed : Predict.prediction list;
}

(** Recall/precision over this page; both are 1.0 on the empty side. *)
val recall : comparison -> float

val precision : comparison -> float

(** [loc_covers sl loc] — may the abstract static location denote the
    concrete dynamic one? Exposed for the triage layer, which matches
    predictions against individual trace accesses (not just reported
    races) when building refutation certificates. *)
val loc_covers : Effects.sloc -> Wr_mem.Location.t -> bool

(** [covers p r] — may the prediction denote the dynamic race's location
    (with compatible race types)? *)
val covers : Predict.prediction -> Wr_detect.Race.t -> bool

(** [against_report result report] scores predictions against an existing
    dynamic report (raw, pre-filter races). *)
val against_report : Predict.result -> Webracer.report -> comparison

(** [run ?seed ~page ~resources result] analyzes the page dynamically
    (exploration on) and scores [result]. *)
val run :
  ?seed:int ->
  page:string ->
  resources:(string * string) list ->
  Predict.result ->
  comparison

val to_json : Model.t -> comparison -> Wr_support.Json.t
