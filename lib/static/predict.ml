(* The ahead-of-time race predictor: intersect the effect sets of
   may-happen-in-parallel units (Model) under the conflict rules the
   dynamic detector uses (Effects.conflicts), classify each surviving
   pair into the paper's race classes, and deduplicate to one prediction
   per (type, location) — matching the dynamic side's one-report-per-
   location rule. *)

module Json = Wr_support.Json
module Telemetry = Wr_telemetry.Telemetry

type prediction = {
  race_type : Wr_detect.Race.race_type;
  loc : Effects.sloc;  (* the more concrete of the two effect locations *)
  first_unit : int;
  second_unit : int;
  first_eff : Effects.eff;
  second_eff : Effects.eff;
}

type lint_finding =
  | Duplicate_id of { doc : int; id : string; count : int }
  | Handler_on_missing_id of {
      doc : int;
      id : string;
      event : string;
      registered_by : string;
    }
  | Write_only_global of { name : string; written_by : string }

type result = {
  model : Model.t;
  predictions : prediction list;
  mhp_pairs : int;
  lint : lint_finding list;
}

(* How specifically a location names its cell; dedup keeps the most
   concrete witness and loc pairs are canonicalized to the sharper one. *)
let sstr_rank = function
  | Effects.Lit _ -> 2
  | Effects.Prefix _ -> 1
  | Effects.Any_str -> 0

let loc_rank = function
  | Effects.S_top -> -2
  | Effects.S_dom_any _ -> -1
  | Effects.S_global s | Effects.S_collection { name = s; _ } -> sstr_rank s
  | Effects.S_id { id; _ } -> sstr_rank id
  | Effects.S_prop { prop; _ } -> sstr_rank prop
  | Effects.S_node _ -> 2
  | Effects.S_handler { event; _ } -> if event = "*" then 0 else 2

let canonical_loc (a : Effects.eff) (b : Effects.eff) =
  if loc_rank b.loc > loc_rank a.loc then b.loc else a.loc

(* --- prediction ------------------------------------------------------- *)

let find_conflicts (m : Model.t) =
  let out = ref [] in
  let n = Array.length m.units in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Model.mhp m i j then
        List.iter
          (fun (e1 : Effects.eff) ->
            List.iter
              (fun (e2 : Effects.eff) ->
                if Effects.conflicts e1 e2 then
                  out :=
                    {
                      race_type = Effects.classify e1 e2;
                      loc = canonical_loc e1 e2;
                      first_unit = i;
                      second_unit = j;
                      first_eff = e1;
                      second_eff = e2;
                    }
                    :: !out)
              m.units.(j).effs)
          m.units.(i).effs
    done
  done;
  List.rev !out

(* One prediction per (race type, canonical location), keeping the most
   concretely-located witness — mirrors Location.report_key collapsing on
   the dynamic side. *)
let dedup preds =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun p ->
      let key =
        Wr_detect.Race.type_name p.race_type ^ "|" ^ Effects.sloc_to_string p.loc
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.stable_sort
       (fun a b -> compare (loc_rank b.loc) (loc_rank a.loc))
       preds)
  |> List.stable_sort (fun a b ->
         compare
           (a.first_unit, a.second_unit)
           (b.first_unit, b.second_unit))

(* --- lint ------------------------------------------------------------- *)

let lint_findings (m : Model.t) =
  let dup =
    List.map
      (fun (doc, id, count) -> Duplicate_id { doc; id; count })
      m.duplicate_ids
  in
  let missing =
    List.map
      (fun (doc, id, event, registered_by) ->
        Handler_on_missing_id { doc; id; event; registered_by })
      m.missing_handler_ids
  in
  (* Globals written by some unit but read by none: dead state or a typo
     for another variable. Only literal names count — wildcard reads or
     writes make the question unanswerable. *)
  let reads = Hashtbl.create 64 and writes = Hashtbl.create 64 in
  let any_read = ref false in
  Array.iter
    (fun (u : Model.unit_) ->
      List.iter
        (fun (e : Effects.eff) ->
          match (e.loc, e.kind) with
          | Effects.S_global (Effects.Lit n), Effects.Read ->
              Hashtbl.replace reads n ()
          | Effects.S_global (Effects.Lit n), Effects.Write ->
              if not (Hashtbl.mem writes n) then
                Hashtbl.replace writes n u.label
          | Effects.S_global _, Effects.Read | Effects.S_top, _ ->
              any_read := true
          | _ -> ())
        u.effs)
    m.units;
  let write_only =
    if !any_read then []
    else
      Hashtbl.fold
        (fun name written_by l ->
          if Hashtbl.mem reads name then l
          else Write_only_global { name; written_by } :: l)
        writes []
      |> List.sort compare
  in
  dup @ missing @ write_only

(* --- entry point ------------------------------------------------------ *)

let predict ?(tm = Telemetry.disabled) ~page ~resources () =
  let model = Model.build ~tm ~page ~resources () in
  let predictions =
    Telemetry.with_span tm ~cat:"static" ~name:"static.predict" (fun () ->
        dedup (find_conflicts model))
  in
  let mhp_pairs = Model.mhp_pairs model in
  Telemetry.set_counter tm "static.predictions" (List.length predictions);
  Telemetry.set_counter tm "static.mhp_pairs" mhp_pairs;
  { model; predictions; mhp_pairs; lint = lint_findings model }

let count_by_type preds =
  List.fold_left
    (fun (h, f, v, d) p ->
      match p.race_type with
      | Wr_detect.Race.Html -> (h + 1, f, v, d)
      | Wr_detect.Race.Function_race -> (h, f + 1, v, d)
      | Wr_detect.Race.Variable -> (h, f, v + 1, d)
      | Wr_detect.Race.Event_dispatch -> (h, f, v, d + 1))
    (0, 0, 0, 0) preds

(* --- JSON ------------------------------------------------------------- *)

let prediction_to_json (m : Model.t) p =
  let unit_json i =
    Json.Obj
      [
        ("uid", Json.Int i);
        ("kind", Json.String (Model.kind_name m.units.(i).kind));
        ("label", Json.String m.units.(i).label);
      ]
  in
  Json.Obj
    [
      ("type", Json.String (Wr_detect.Race.type_name p.race_type));
      ("location", Json.String (Effects.sloc_to_string p.loc));
      ("first", unit_json p.first_unit);
      ("second", unit_json p.second_unit);
      ("first_kind", Json.String (Effects.kind_name p.first_eff.Effects.kind));
      ("second_kind", Json.String (Effects.kind_name p.second_eff.Effects.kind));
    ]

let lint_to_json = function
  | Duplicate_id { doc; id; count } ->
      Json.Obj
        [
          ("check", Json.String "duplicate-id");
          ("doc", Json.Int doc);
          ("id", Json.String id);
          ("count", Json.Int count);
        ]
  | Handler_on_missing_id { doc; id; event; registered_by } ->
      Json.Obj
        [
          ("check", Json.String "handler-on-missing-id");
          ("doc", Json.Int doc);
          ("id", Json.String id);
          ("event", Json.String event);
          ("registered_by", Json.String registered_by);
        ]
  | Write_only_global { name; written_by } ->
      Json.Obj
        [
          ("check", Json.String "write-only-global");
          ("name", Json.String name);
          ("written_by", Json.String written_by);
        ]

let to_json ?compare r =
  let h, f, v, d = count_by_type r.predictions in
  Json.Obj
    (Wr_support.Schema.tag
    :: [
         ("units", Json.Int (Array.length r.model.Model.units));
         ("docs", Json.Int r.model.Model.docs);
         ("mhp_pairs", Json.Int r.mhp_pairs);
         ( "predictions",
           Json.List (List.map (prediction_to_json r.model) r.predictions) );
         ( "summary",
           Json.Obj
             [
               ("total", Json.Int (List.length r.predictions));
               ("html", Json.Int h);
               ("function", Json.Int f);
               ("variable", Json.Int v);
               ("dispatch", Json.Int d);
             ] );
         ("lint", Json.List (List.map lint_to_json r.lint));
       ]
    @ match compare with None -> [] | Some c -> [ ("compare", c) ])
