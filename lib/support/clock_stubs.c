/* Monotonic clock for Wr_support.Clock.

   OCaml's Unix library exposes only wall-clock time; the pool's
   queue-wait / run / idle arithmetic and the serve daemon's per-stage
   latencies need a clock that never steps backwards (NTP slews and
   manual clock changes used to force Float.max 0. clamps around every
   subtraction). CLOCK_MONOTONIC is exactly that; the boot-relative
   epoch is irrelevant because every caller only ever subtracts two
   readings. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <stdint.h>
#include <time.h>

#if defined(_WIN32)
#include <windows.h>
#endif

static int64_t wr_clock_ns(void)
{
#if defined(_WIN32)
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return (int64_t)(count.QuadPart * (1000000000.0 / freq.QuadPart));
#elif defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return 0;
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
#else
  /* No monotonic source: fall back to the realtime clock; callers then
     degrade to pre-monotonic behavior (possible negative deltas). */
  struct timespec ts;
  if (clock_gettime(CLOCK_REALTIME, &ts) != 0)
    return 0;
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
#endif
}

int64_t wr_clock_monotonic_ns_native(value unit)
{
  (void)unit;
  return wr_clock_ns();
}

CAMLprim value wr_clock_monotonic_ns_bytecode(value unit)
{
  (void)unit;
  return caml_copy_int64(wr_clock_ns());
}
