(** A fixed-size fleet of OCaml 5 domains behind a blocking task channel.

    The analysis pipeline is embarrassingly parallel at page granularity:
    every page (or seed, or corpus site) builds its own graph, detector and
    VM, so nothing mutable crosses domains unguarded (the few
    process-global caches, e.g. the JS regex cache, take a mutex). This pool is the one shared
    primitive — a plain [Queue.t] guarded by a mutex/condition pair (no
    work stealing; page analyses are coarse enough that a single channel
    never contends) feeding [jobs] long-lived worker domains.

    [map] is deterministic: results come back in input order, independent
    of completion order, so parallel runs aggregate byte-identically to
    sequential ones. *)

type t

(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs <= 1] spawns
    none and [map] degenerates to [List.map]); the submitting domain
    always works alongside the fleet, so [jobs] bounds total
    parallelism. *)
val create : jobs:int -> t

val jobs : t -> int

(** [map pool f xs] applies [f] to every element, spread across the pool,
    and returns the results in input order. The first exception raised by
    any [f] is re-raised (after all items finish or are abandoned). A
    pool is reusable across [map] calls but a single [map] at a time. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [submit pool f] enqueues fire-and-forget work for the worker
    domains; the submitter never helps, so the pool must have at least
    one worker ([create ~jobs] with [jobs >= 2]) or the task would never
    run — a workerless or closed pool raises [Invalid_argument]. [f]
    delivers its own result (e.g. onto a caller-provided channel) and
    must not let exceptions escape; the daemon in [Wr_serve] is the
    intended client. Tasks already queued when [close] is called still
    run before the workers see their quit signal. *)
val submit : t -> (unit -> unit) -> unit

(** [close pool] shuts the workers down and joins them; idempotent. *)
val close : t -> unit

(** [with_pool ~jobs f] — create, run [f], always close. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [map_jobs ~jobs f xs] is a one-shot [with_pool] + [map]; [~jobs:1]
    costs nothing over [List.map]. *)
val map_jobs : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** The hardware's useful parallelism ([Domain.recommended_domain_count]). *)
val default_jobs : unit -> int
