(** A work-stealing fleet of OCaml 5 domains.

    The analysis pipeline is embarrassingly parallel at page granularity:
    every page (or seed, or corpus site) builds its own graph, detector
    and VM, so nothing mutable crosses domains unguarded (the few
    domain-local caches, e.g. the JS regex cache, live in [Domain.DLS]).
    This pool is the one shared primitive. Each lane (the submitter plus
    each spawned worker) owns a private deque under its own mutex; [map]
    coarsens the input into contiguous chunks distributed round-robin
    across the deques, and an idle lane steals half of a random victim's
    queue. In steady state no lock is contended and the only per-chunk
    shared write is one atomic counter.

    Two policies keep the fleet from running slower than sequential:

    - {b Hardware capping.} [create ~jobs] spawns at most
      [hardware_domains () - 1] workers regardless of [jobs]: in OCaml 5
      every minor collection is a stop-the-world rendezvous across all
      domains, so oversubscribing cores multiplies GC barrier cost
      instead of adding throughput. [jobs] is a ceiling, not a promise.
    - {b Minor-heap tuning.} Spawned workers enlarge their (domain-local)
      minor heaps — default 4M words, override with
      [WEBRACER_MINOR_HEAP_WORDS] (0 disables) — cutting the
      stop-the-world minor-GC rate ~16x for allocation-heavy corpus
      work.

    [map] is deterministic: results come back in input order, independent
    of completion order, chunking and stealing, so parallel runs
    aggregate byte-identically to sequential ones. *)

type t

(** Per-domain profile: what one lane of the fleet did. [worker] 0 is
    the submitting domain (which helps drain [map] batches); workers 1..
    are the spawned domains. [dom] is the slot's OCaml domain id (the
    telemetry Chrome-trace tid, and the join key against
    [Wr_telemetry.Runtime_probe] GC rows); [-1] until the worker has
    started. Accounting is per {e item} even though [map] enqueues
    chunks: [tasks] counts items executed by this lane (wherever they
    were first enqueued), [queue_wait_s] sums each item's enqueue→start
    latency, [steals] counts steal operations this lane performed, and
    the GC figures are this domain's [Gc.quick_stat] deltas summed
    across its items (minor/major collection counts, promoted and
    minor-allocated words). Because every item is charged to exactly the
    lane that ran it, per-lane rows always partition the batch: tasks
    sum to items submitted even when work migrated between deques. *)
type domain_stats = {
  worker : int;
  dom : int;
  tasks : int;
  queue_wait_s : float;
  run_s : float;
  idle_s : float;
  steals : int;
  gc_minor : int;
  gc_major : int;
  promoted_words : float;
  minor_words : float;
}

(** Fleet profile: per-domain rows plus fleet-wide counters.
    [lock_contended] counts deque-mutex acquisitions that found the lock
    held — with per-lane deques this should read ~0; a hot value means
    stealing is thrashing. [stolen] is the sum of per-lane [steals]. *)
type stats = {
  per_domain : domain_stats list;
  lock_contended : int;
  submitted : int;
  stolen : int;
}

(** [create ~jobs ()] spawns up to [jobs - 1] worker domains, capped at
    [hardware_domains () - 1] ([jobs <= 1], or one hardware thread,
    spawns none and [map] degenerates to a sequential loop on the
    submitter). [?min_workers] (default 0) overrides the hardware cap
    upward for clients that require spawned domains — [submit] tasks
    only ever run on workers, so the serve daemon passes
    [~min_workers:1]. [?minor_heap_words] overrides the per-worker
    minor-heap size (default 4M words or [WEBRACER_MINOR_HEAP_WORDS];
    [None] disables tuning). *)
val create : ?min_workers:int -> ?minor_heap_words:int option -> jobs:int -> unit -> t

(** [stats pool] reads the fleet profile. Exact once the writers have
    quiesced (after [close], or between [map] calls — including when
    tasks migrated between deques via stealing); a benign point-in-time
    snapshot while tasks are still running. *)
val stats : t -> stats

(** [render_stats stats] is the profile as an aligned text table (one
    row per lane) plus a summary line (submitted tasks, steals, lock
    contention). *)
val render_stats : stats -> string

(** [stats_json stats] is the same fleet profile as a JSON document
    ([per_domain] rows with the [render_stats] fields, plus
    [lock_contended], [submitted] and [stolen]) — machine-readable for
    [corpus --profile --json] and the serve [watch] snapshots. *)
val stats_json : stats -> Json.t

(** [set_worker_hook f] installs a process-wide callback run once by
    every domain joining a pool (each spawned worker, and the submitter
    at [create]). [Wr_telemetry.Runtime_probe] uses it to bind GC event
    rings to fleet domains; exceptions from [f] are swallowed. *)
val set_worker_hook : (unit -> unit) -> unit

(** The requested parallelism ceiling ([~jobs] as passed, floored at 1). *)
val jobs : t -> int

(** The number of spawned worker domains after hardware capping —
    [jobs - 1] on big-enough hardware, less on small machines,
    at least [min_workers]. *)
val workers : t -> int

(** [map pool f xs] applies [f] to every element, spread across the
    fleet in contiguous chunks (several per lane, so stealing can
    rebalance), and returns the results in input order. [?chunk]
    overrides the computed chunk size (floored at 1). The first
    exception raised by any [f] is re-raised after all items finish. A
    pool is reusable across [map] calls but runs a single [map] at a
    time. *)
val map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list

(** [submit pool f] enqueues fire-and-forget work, round-robin across
    the worker deques; the submitter never drains its own deque outside
    [map], so the pool must have at least one spawned worker (see
    [min_workers]) — a workerless or closed pool raises
    [Invalid_argument]. [f] delivers its own result (e.g. onto a
    caller-provided channel) and must not let exceptions escape; the
    daemon in [Wr_serve] is the intended client. Tasks already queued
    when [close] is called still run before the workers exit. *)
val submit : t -> (unit -> unit) -> unit

(** [close pool] shuts the workers down after they drain every queued
    task, and joins them; idempotent. *)
val close : t -> unit

(** [with_pool ~jobs f] — create, run [f], always close. *)
val with_pool :
  ?min_workers:int -> ?minor_heap_words:int option -> jobs:int -> (t -> 'a) -> 'a

(** [map_jobs ~jobs f xs] is a one-shot [with_pool] + [map]; [~jobs:1]
    costs nothing over [List.map]. *)
val map_jobs : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** The hardware's useful parallelism ([Domain.recommended_domain_count]). *)
val default_jobs : unit -> int

(** Same as [default_jobs] — the machine's recommended domain count,
    exposed under the name the bench/gate layers use. *)
val hardware_domains : unit -> int
