(** A fixed-size fleet of OCaml 5 domains behind a blocking task channel.

    The analysis pipeline is embarrassingly parallel at page granularity:
    every page (or seed, or corpus site) builds its own graph, detector and
    VM, so nothing mutable crosses domains unguarded (the few
    process-global caches, e.g. the JS regex cache, take a mutex). This pool is the one shared
    primitive — a plain [Queue.t] guarded by a mutex/condition pair (no
    work stealing; page analyses are coarse enough that a single channel
    never contends) feeding [jobs] long-lived worker domains.

    [map] is deterministic: results come back in input order, independent
    of completion order, so parallel runs aggregate byte-identically to
    sequential ones. *)

type t

(** Per-domain profile: what one domain of the fleet did. [worker] 0 is
    the submitting domain (which helps drain [map] batches); workers 1..
    are the spawned domains. [dom] is the slot's OCaml domain id (the
    telemetry Chrome-trace tid, and the join key against
    [Wr_telemetry.Runtime_probe] GC rows); [-1] until the worker has
    started. Queue wait is summed enqueue→pop latency
    over this domain's tasks; idle is time blocked on the empty channel;
    GC figures are this domain's [Gc.quick_stat] deltas summed across its
    tasks (minor/major collection counts, promoted and minor-allocated
    words). *)
type domain_stats = {
  worker : int;
  dom : int;
  tasks : int;
  queue_wait_s : float;
  run_s : float;
  idle_s : float;
  gc_minor : int;
  gc_major : int;
  promoted_words : float;
  minor_words : float;
}

(** Fleet profile: per-domain rows plus channel-wide counters.
    [lock_contended] counts channel-mutex acquisitions that found the
    lock held and had to block — the direct measure of task-channel
    contention. *)
type stats = {
  per_domain : domain_stats list;
  lock_contended : int;
  submitted : int;
}

(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs <= 1] spawns
    none and [map] degenerates to [List.map]); the submitting domain
    always works alongside the fleet, so [jobs] bounds total
    parallelism. *)
val create : jobs:int -> t

(** [stats pool] reads the fleet profile. Exact once the writers have
    quiesced (after [close], or between [map] calls); a benign
    point-in-time snapshot while tasks are still running. *)
val stats : t -> stats

(** [render_stats stats] is the profile as an aligned text table (one
    row per domain) plus a summary line (submitted tasks, channel-lock
    contention). *)
val render_stats : stats -> string

(** [stats_json stats] is the same fleet profile as a JSON document
    ([per_domain] rows with the [render_stats] fields, plus
    [lock_contended] and [submitted]) — machine-readable for
    [corpus --profile --json] and the serve [watch] snapshots. *)
val stats_json : stats -> Json.t

(** [set_worker_hook f] installs a process-wide callback run once by
    every domain joining a pool (each spawned worker, and the submitter
    at [create]). [Wr_telemetry.Runtime_probe] uses it to bind GC event
    rings to fleet domains; exceptions from [f] are swallowed. *)
val set_worker_hook : (unit -> unit) -> unit

val jobs : t -> int

(** [map pool f xs] applies [f] to every element, spread across the pool,
    and returns the results in input order. The first exception raised by
    any [f] is re-raised (after all items finish or are abandoned). A
    pool is reusable across [map] calls but a single [map] at a time. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [submit pool f] enqueues fire-and-forget work for the worker
    domains; the submitter never helps, so the pool must have at least
    one worker ([create ~jobs] with [jobs >= 2]) or the task would never
    run — a workerless or closed pool raises [Invalid_argument]. [f]
    delivers its own result (e.g. onto a caller-provided channel) and
    must not let exceptions escape; the daemon in [Wr_serve] is the
    intended client. Tasks already queued when [close] is called still
    run before the workers see their quit signal. *)
val submit : t -> (unit -> unit) -> unit

(** [close pool] shuts the workers down and joins them; idempotent. *)
val close : t -> unit

(** [with_pool ~jobs f] — create, run [f], always close. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [map_jobs ~jobs f xs] is a one-shot [with_pool] + [map]; [~jobs:1]
    costs nothing over [List.map]. *)
val map_jobs : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** The hardware's useful parallelism ([Domain.recommended_domain_count]). *)
val default_jobs : unit -> int
