(** Summary statistics over integer samples (Table 1 reports mean, median
    and max per race type across sites). *)

(** [mean xs] is the arithmetic mean; [0.] on an empty list. *)
val mean : int list -> float

(** [median xs] follows the paper's convention of averaging the two middle
    elements for even-length samples (Table 1 reports 5.5); [0.] on empty. *)
val median : int list -> float

(** [max xs] is the largest sample; [0] on empty. *)
val max : int list -> int

(** [sum xs] totals the samples. *)
val sum : int list -> int

(** {1 Float samples}

    Used by the telemetry histograms (latency, queue depth, span
    durations), which are float-valued. *)

(** [fsum xs] totals float samples. *)
val fsum : float list -> float

(** [fmean xs] is the arithmetic mean; [0.] on an empty list. *)
val fmean : float list -> float

(** [fmax xs] is the largest sample; [0.] on empty. *)
val fmax : float list -> float

(** [fpercentile xs p] is the [p]-th percentile ([p] in [0..100], clamped)
    with linear interpolation between closest ranks; [0.] on empty.
    [fpercentile xs 50.] is the median. *)
val fpercentile : float list -> float -> float

(** [fstddev xs] is the population standard deviation; [0.] on fewer than
    two samples. *)
val fstddev : float list -> float

(** {1 HDR-style histograms}

    Fixed-memory log-bucketed histograms for latency recording on hot
    paths: each power-of-two range is split into 32 linear sub-buckets
    (~1.6% relative error on interior percentiles), with exact min, max
    and sum kept alongside. Unlike the list-based helpers above, [add] is
    O(1) with no allocation, and histograms recorded independently (one
    per domain, one per time window) [merge] losslessly — the merged
    percentiles equal those of a histogram fed the union of samples. *)
module Histo : sig
  type t

  val create : unit -> t

  (** [add t v] records one sample. Non-positive and NaN samples land in
      a dedicated underflow bucket and count toward [count] and rank. *)
  val add : t -> float -> unit

  (** [merge a b] is a fresh histogram holding both inputs' samples;
      neither argument is mutated. *)
  val merge : t -> t -> t

  (** [merge_into ~into t] folds [t]'s samples into [into]. *)
  val merge_into : into:t -> t -> unit

  val count : t -> int
  val sum : t -> float

  (** Exact extremes; [0.] when empty. *)
  val minimum : t -> float

  val maximum : t -> float
  val mean : t -> float

  (** [percentile t p] ([p] in [0..100], clamped) is the bucket-midpoint
      value at the smallest rank covering [p]% of samples, clamped to the
      exact [minimum]/[maximum]; [0.] when empty. *)
  val percentile : t -> float -> float

  (** [summary_json t] is [{"count", "mean", "p50", "p95", "p99",
      "p999", "max"}]. *)
  val summary_json : t -> Json.t
end
