(** Summary statistics over integer samples (Table 1 reports mean, median
    and max per race type across sites). *)

(** [mean xs] is the arithmetic mean; [0.] on an empty list. *)
val mean : int list -> float

(** [median xs] follows the paper's convention of averaging the two middle
    elements for even-length samples (Table 1 reports 5.5); [0.] on empty. *)
val median : int list -> float

(** [max xs] is the largest sample; [0] on empty. *)
val max : int list -> int

(** [sum xs] totals the samples. *)
val sum : int list -> int

(** {1 Float samples}

    Used by the telemetry histograms (latency, queue depth, span
    durations), which are float-valued. *)

(** [fsum xs] totals float samples. *)
val fsum : float list -> float

(** [fmean xs] is the arithmetic mean; [0.] on an empty list. *)
val fmean : float list -> float

(** [fmax xs] is the largest sample; [0.] on empty. *)
val fmax : float list -> float

(** [fpercentile xs p] is the [p]-th percentile ([p] in [0..100], clamped)
    with linear interpolation between closest ranks; [0.] on empty.
    [fpercentile xs 50.] is the median. *)
val fpercentile : float list -> float -> float

(** [fstddev xs] is the population standard deviation; [0.] on fewer than
    two samples. *)
val fstddev : float list -> float
