(* In-memory flight recorder: the last N observability events per
   domain, kept at a cost low enough to leave on in production, paid out
   only when something goes wrong (worker crash, blown deadline,
   SIGUSR2) as a postmortem dump.

   Layout follows the single-writer discipline of [Pool]'s slots: each
   domain owns a private ring (found through domain-local storage, so
   the hot path takes no lock and touches no shared cache line); the
   global registry of rings is only consulted — under a mutex — when a
   domain records its first event or a reader snapshots. Readers may
   race the writers: slots hold immutable event records, so a racing
   read yields either the old or the new event, never a torn one, and a
   postmortem is by nature a point-in-time best effort.

   [configure] bumps a generation counter instead of walking the
   registry: every domain's cached ring self-invalidates on its next
   record. *)

type event = {
  ts : float;
  dom : int;
  kind : string;
  fields : (string * Json.t) list;
  trace : string option;
}

type ring = {
  ring_dom : int;
  buf : event option array;
  mutable next : int;  (* total events ever written; slot = next mod cap *)
}

type config = { gen : int; capacity : int; clock : unit -> float }

let cfg =
  ref { gen = 0; capacity = 256; clock = Clock.now }

let on = Atomic.make false

let registry : ring list ref = ref []

let registry_lock = Mutex.create ()

(* Per-domain cache: the ring this domain writes, tagged with the
   generation it was created under. *)
let my_ring : (int * ring) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_enabled b = Atomic.set on b

let enabled () = Atomic.get on

let configure ?(capacity = 256) ?clock () =
  Mutex.lock registry_lock;
  let clock = match clock with Some c -> c | None -> Clock.now in
  cfg := { gen = !cfg.gen + 1; capacity = max 1 capacity; clock };
  registry := [];
  Mutex.unlock registry_lock

let reset () =
  Mutex.lock registry_lock;
  cfg := { !cfg with gen = !cfg.gen + 1 };
  registry := [];
  Mutex.unlock registry_lock

let fresh_ring c =
  let r =
    {
      ring_dom = (Domain.self () :> int);
      buf = Array.make c.capacity None;
      next = 0;
    }
  in
  Mutex.lock registry_lock;
  registry := r :: !registry;
  Mutex.unlock registry_lock;
  r

let record ~kind ?trace fields =
  if Atomic.get on then begin
    let c = !cfg in
    let cell = Domain.DLS.get my_ring in
    let r =
      match !cell with
      | Some (gen, r) when gen = c.gen -> r
      | _ ->
          let r = fresh_ring c in
          cell := Some (c.gen, r);
          r
    in
    let ev =
      { ts = c.clock (); dom = r.ring_dom; kind; fields; trace }
    in
    r.buf.(r.next mod Array.length r.buf) <- Some ev;
    r.next <- r.next + 1
  end

let ring_events r =
  let cap = Array.length r.buf in
  let n = min r.next cap in
  List.filter_map
    (fun i -> r.buf.((r.next - n + i) mod cap))
    (List.init n Fun.id)

let snapshot () =
  Mutex.lock registry_lock;
  let rings = !registry in
  Mutex.unlock registry_lock;
  List.sort
    (fun a b -> compare (a.ts, a.dom) (b.ts, b.dom))
    (List.concat_map ring_events rings)

let event_json ev =
  Json.Obj
    (("ts", Json.Float ev.ts)
    :: ("dom", Json.Int ev.dom)
    :: ("kind", Json.String ev.kind)
    :: (match ev.trace with
       | Some t -> [ ("trace_id", Json.String t) ]
       | None -> [])
    @ ev.fields)

let to_jsonl events =
  String.concat "" (List.map (fun ev -> Json.to_string (event_json ev) ^ "\n") events)

(* A minimal Chrome trace: one instant event per record, on the
   recording domain's thread row — enough to see the last moments of
   each domain side by side on a timeline. *)
let to_chrome_trace events =
  let t0 = match events with [] -> 0. | ev :: _ -> ev.ts in
  let instant ev =
    Json.Obj
      [
        ("name", Json.String ev.kind);
        ("cat", Json.String "flight");
        ("ph", Json.String "i");
        ("s", Json.String "t");
        ("ts", Json.Float ((ev.ts -. t0) *. 1e6));
        ("pid", Json.Int 1);
        ("tid", Json.Int ev.dom);
        ("args", Json.Obj (match ev.trace with
           | Some t -> ("trace_id", Json.String t) :: ev.fields
           | None -> ev.fields));
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map instant events));
      ("displayTimeUnit", Json.String "ms");
    ]
