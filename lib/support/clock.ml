external monotonic_ns : unit -> (int64[@unboxed])
  = "wr_clock_monotonic_ns_bytecode" "wr_clock_monotonic_ns_native"
[@@noalloc]

let now_ns = monotonic_ns

let now () = Int64.to_float (monotonic_ns ()) *. 1e-9
