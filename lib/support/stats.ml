let mean = function
  | [] -> 0.
  | xs -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let median = function
  | [] -> 0.
  | xs ->
      let arr = Array.of_list xs in
      Array.sort Int.compare arr;
      let n = Array.length arr in
      if n mod 2 = 1 then float_of_int arr.(n / 2)
      else float_of_int (arr.((n / 2) - 1) + arr.(n / 2)) /. 2.

let max = function [] -> 0 | x :: xs -> List.fold_left Stdlib.max x xs

let sum = List.fold_left ( + ) 0

(* --- float samples -------------------------------------------------- *)

let fsum = List.fold_left ( +. ) 0.

let fmean = function [] -> 0. | xs -> fsum xs /. float_of_int (List.length xs)

let fmax = function [] -> 0. | x :: xs -> List.fold_left Float.max x xs

let fpercentile xs p =
  match xs with
  | [] -> 0.
  | xs ->
      let arr = Array.of_list xs in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let p = Float.min 100. (Float.max 0. p) in
      (* Linear interpolation between closest ranks. *)
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then arr.(lo)
      else begin
        let frac = rank -. float_of_int lo in
        (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
      end

let fstddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = fmean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
      Float.sqrt (ss /. n)

(* --- HDR-style histogram -------------------------------------------- *)

module Histo = struct
  (* Log-bucketed: each power-of-two range (octave) is split into
     [sub_buckets] linear sub-buckets, giving a bounded relative error of
     about 1/(2*sub_buckets) for the bucket representative. Exponents are
     clamped to [min_exp, max_exp); everything at or below zero lands in
     the dedicated bucket 0. Exact min/max/sum ride along so the tails and
     the mean stay precise even though samples are bucketed. *)

  let sub_buckets = 32
  let min_exp = -32 (* 2^-32 s ~ a fraction of a nanosecond *)
  let max_exp = 32 (* 2^32 s ~ a century *)
  let octaves = max_exp - min_exp
  let n_buckets = 1 + (octaves * sub_buckets)

  type t = {
    mutable buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    { buckets = Array.make n_buckets 0; count = 0; sum = 0.; vmin = infinity; vmax = neg_infinity }

  let copy t =
    { t with buckets = Array.copy t.buckets }

  let index v =
    if v <= 0. || Float.is_nan v then 0
    else begin
      let m, e = Float.frexp v in
      (* v = m * 2^e with m in [0.5, 1). *)
      let e = Stdlib.min (max_exp - 1) (Stdlib.max min_exp e) in
      let sub = int_of_float ((m -. 0.5) *. 2. *. float_of_int sub_buckets) in
      let sub = Stdlib.min (sub_buckets - 1) (Stdlib.max 0 sub) in
      1 + (((e - min_exp) * sub_buckets) + sub)
    end

  (* Midpoint of the bucket's value range — the resolution-bounded
     representative returned for interior percentiles. *)
  let representative i =
    if i = 0 then 0.
    else begin
      let i = i - 1 in
      let e = (i / sub_buckets) + min_exp in
      let sub = i mod sub_buckets in
      let m_lo = 0.5 +. (float_of_int sub /. (2. *. float_of_int sub_buckets)) in
      Float.ldexp (m_lo +. (1. /. (4. *. float_of_int sub_buckets))) e
    end

  let add t v =
    let i = index v in
    t.buckets.(i) <- t.buckets.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let merge_into ~into t =
    Array.iteri (fun i n -> if n > 0 then into.buckets.(i) <- into.buckets.(i) + n) t.buckets;
    into.count <- into.count + t.count;
    into.sum <- into.sum +. t.sum;
    if t.vmin < into.vmin then into.vmin <- t.vmin;
    if t.vmax > into.vmax then into.vmax <- t.vmax

  let merge a b =
    let t = copy a in
    merge_into ~into:t b;
    t

  let count t = t.count
  let sum t = t.sum
  let minimum t = if t.count = 0 then 0. else t.vmin
  let maximum t = if t.count = 0 then 0. else t.vmax
  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

  let percentile t p =
    if t.count = 0 then 0.
    else begin
      let p = Float.min 100. (Float.max 0. p) in
      (* Smallest rank whose cumulative count covers p% of the samples.
         The epsilon keeps binary rounding (99.9/100 * 1000 =
         999.0000000000001) from bumping the rank past the exact one. *)
      let target =
        Stdlib.max 1
          (int_of_float
             (Float.ceil ((p /. 100. *. float_of_int t.count) -. 1e-9)))
      in
      let rec find i acc =
        if i >= n_buckets then t.vmax
        else begin
          let acc = acc + t.buckets.(i) in
          if acc >= target then representative i else find (i + 1) acc
        end
      in
      let v = find 0 0 in
      (* The exact extremes beat any bucket midpoint. *)
      Float.min t.vmax (Float.max t.vmin v)
    end

  let summary_json t =
    Json.Obj
      [
        ("count", Json.Int t.count);
        ("mean", Json.Float (mean t));
        ("p50", Json.Float (percentile t 50.));
        ("p95", Json.Float (percentile t 95.));
        ("p99", Json.Float (percentile t 99.));
        ("p999", Json.Float (percentile t 99.9));
        ("max", Json.Float (maximum t));
      ]
end
