let mean = function
  | [] -> 0.
  | xs -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let median = function
  | [] -> 0.
  | xs ->
      let arr = Array.of_list xs in
      Array.sort Int.compare arr;
      let n = Array.length arr in
      if n mod 2 = 1 then float_of_int arr.(n / 2)
      else float_of_int (arr.((n / 2) - 1) + arr.(n / 2)) /. 2.

let max = function [] -> 0 | x :: xs -> List.fold_left Stdlib.max x xs

let sum = List.fold_left ( + ) 0

(* --- float samples -------------------------------------------------- *)

let fsum = List.fold_left ( +. ) 0.

let fmean = function [] -> 0. | xs -> fsum xs /. float_of_int (List.length xs)

let fmax = function [] -> 0. | x :: xs -> List.fold_left Float.max x xs

let fpercentile xs p =
  match xs with
  | [] -> 0.
  | xs ->
      let arr = Array.of_list xs in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let p = Float.min 100. (Float.max 0. p) in
      (* Linear interpolation between closest ranks. *)
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then arr.(lo)
      else begin
        let frac = rank -. float_of_int lo in
        (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
      end

let fstddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = fmean xs in
      let n = float_of_int (List.length xs) in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
      Float.sqrt (ss /. n)
