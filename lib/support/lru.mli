(** A string-keyed LRU cache with a fixed capacity.

    Backing store for the [webracer serve] result cache: [find] refreshes
    an entry's recency, [add] evicts the least-recently-used entry once
    [cap] entries are live. Not domain-safe — the daemon does all cache
    traffic on its accept loop; wrap in a mutex for any other use. *)

type 'a t

(** [create ~cap] — [cap <= 0] is a valid always-empty cache (every
    [add] is dropped), so callers can disable caching uniformly. *)
val create : cap:int -> 'a t

val cap : 'a t -> int

(** Live entries, [<= cap]. *)
val length : 'a t -> int

(** [find t k] returns the cached value and marks [k] most recently
    used. *)
val find : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

(** [add t k v] inserts or overwrites [k] as most recently used,
    evicting the least-recently-used entry if the cache is full. *)
val add : 'a t -> string -> 'a -> unit

(** [remove t k] — absent keys are fine. *)
val remove : 'a t -> string -> unit

val clear : 'a t -> unit
