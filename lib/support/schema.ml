let version = 1
let field = "schema_version"
let tag = (field, Json.Int version)
