let version = 1
let v2 = 2
let supported = [ version; v2 ]
let is_supported v = List.mem v supported
let field = "schema_version"
let tag = (field, Json.Int version)
let tag_of v = (field, Json.Int v)

let supported_names () =
  String.concat " and " (List.map string_of_int supported)
