(** Flight recorder: a fixed-size, per-domain ring of recent
    observability events, cheap enough to leave on while a daemon
    serves, paid out as a postmortem dump when something goes wrong
    (worker crash, blown deadline, SIGUSR2).

    Recording is lock-free on the hot path: each domain owns a private
    ring reached through domain-local storage, single-writer like a
    [Pool] slot. Readers ({!snapshot}) may race writers and get a
    benign point-in-time view. {!Log} tees every emitted line in here
    whenever the recorder is enabled — even lines below the log level —
    so a postmortem has context the live log stream dropped. *)

type event = {
  ts : float;  (** recorder clock (wall seconds unless overridden) *)
  dom : int;  (** recording domain id *)
  kind : string;  (** e.g. ["request.admit"], ["log.error"] *)
  fields : (string * Json.t) list;
  trace : string option;  (** request trace id, when known *)
}

(** [configure ?capacity ?clock ()] sets ring capacity per domain
    (default 256, min 1) and the timestamp source (default
    [Unix.gettimeofday]; tests inject a virtual clock for deterministic
    dumps). Discards all previously recorded events. *)
val configure : ?capacity:int -> ?clock:(unit -> float) -> unit -> unit

(** Recording is off until enabled; {!record} is a single atomic read
    when disabled. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [record ~kind ?trace fields] appends one event to the calling
    domain's ring, overwriting the oldest once the ring is full. No-op
    while disabled. *)
val record : kind:string -> ?trace:string -> (string * Json.t) list -> unit

(** All retained events across domains, oldest first (sorted by
    timestamp). *)
val snapshot : unit -> event list

(** Drop all retained events (capacity and clock keep their values). *)
val reset : unit -> unit

val event_json : event -> Json.t

(** One JSON object per line, trailing newline included. *)
val to_jsonl : event list -> string

(** A minimal Chrome trace: one instant event per record on the
    recording domain's thread row, timestamps relative to the first
    event. *)
val to_chrome_trace : event list -> Json.t
