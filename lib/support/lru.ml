(* Classic Hashtbl + doubly-linked list: O(1) find/add/remove, with the
   list kept in recency order (head = most recent, tail = eviction
   candidate). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
}

let create ~cap = { cap; table = Hashtbl.create (max 16 cap); head = None; tail = None }
let cap t = t.cap
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k

let add t k v =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.table k with
    | Some n ->
        n.value <- v;
        unlink t n;
        push_front t n
    | None ->
        if Hashtbl.length t.table >= t.cap then (
          match t.tail with
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.key
          | None -> ());
        let n = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.table k n;
        push_front t n)
  end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
