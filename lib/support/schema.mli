(** The version of every machine-readable document WebRacer emits.

    One number covers the report JSON ([Webracer.report_to_json]), the
    witness/explain JSON ([Wr_explain.to_json]) and the [webracer serve]
    wire protocol ([Wr_serve]); they evolve together, and consumers can
    dispatch on a single ["schema_version"] field wherever it appears.
    Bump on any breaking change to field names, shapes or semantics —
    additive fields do not bump it. The full schema is documented in
    DESIGN.md ("Report schema").

    The serve wire protocol negotiates per request: a request declaring
    {!version} (or nothing) gets a byte-identical v1 response; one
    declaring {!v2} gets the v2 envelope (shard id, HTTP-parity error
    objects). The HTTP surface is v2-native. DESIGN.md §7 records the
    deprecation path. *)

(** The default wire generation (1): what untagged requests speak. *)
val version : int

(** The v2 wire generation: v1 plus the answering shard id and
    ["http_status"] inside error objects. *)
val v2 : int

(** Every generation this build speaks, oldest first. *)
val supported : int list

val is_supported : int -> bool

(** ["schema_version"] — the canonical field name. *)
val field : string

(** [tag] is [(field, Int version)], ready to cons onto an [Obj]. *)
val tag : string * Json.t

(** [tag_of v] is [(field, Int v)] for an explicitly negotiated
    generation. *)
val tag_of : int -> string * Json.t

(** ["1 and 2"] — for error messages naming what this build speaks. *)
val supported_names : unit -> string
