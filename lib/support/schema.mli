(** The version of every machine-readable document WebRacer emits.

    One number covers the report JSON ([Webracer.report_to_json]), the
    witness/explain JSON ([Wr_explain.to_json]) and the [webracer serve]
    wire protocol ([Wr_serve]); they evolve together, and consumers can
    dispatch on a single ["schema_version"] field wherever it appears.
    Bump on any breaking change to field names, shapes or semantics —
    additive fields do not bump it. The full schema is documented in
    DESIGN.md ("Report schema"). *)

val version : int

(** ["schema_version"] — the canonical field name. *)
val field : string

(** [tag] is [(field, Int version)], ready to cons onto an [Obj]. *)
val tag : string * Json.t
