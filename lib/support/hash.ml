let hex s = Digest.to_hex (Digest.string s)

let of_parts parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  hex (Buffer.contents buf)
