type task = Run of { f : unit -> unit; enq : float } | Quit

(* Per-domain accumulator. Each slot is written by exactly one domain
   (slot 0 by the submitter, slot i by spawned worker i), so recording
   needs no lock; readers get exact values once the writers quiesce
   ([close], or the end of a [map]) and a benign point-in-time snapshot
   before that. *)
type slot = {
  mutable dom : int;  (* OCaml domain id of the slot's writer; -1 until known *)
  mutable tasks : int;
  mutable queue_wait_s : float;
  mutable run_s : float;
  mutable idle_s : float;
  mutable gc_minor : int;
  mutable gc_major : int;
  mutable promoted_words : float;
  mutable minor_words : float;
}

type domain_stats = {
  worker : int;
  dom : int;
  tasks : int;
  queue_wait_s : float;
  run_s : float;
  idle_s : float;
  gc_minor : int;
  gc_major : int;
  promoted_words : float;
  minor_words : float;
}

type stats = {
  per_domain : domain_stats list;
  lock_contended : int;
  submitted : int;
}

type t = {
  jobs : int;
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
  slots : slot array;
  contended : int Atomic.t;
  n_submitted : int Atomic.t;
}

let default_jobs () = Domain.recommended_domain_count ()

let new_slot () =
  {
    dom = -1; tasks = 0; queue_wait_s = 0.; run_s = 0.; idle_s = 0.;
    gc_minor = 0; gc_major = 0; promoted_words = 0.; minor_words = 0.;
  }

let now = Unix.gettimeofday

(* Called by every domain joining a fleet (workers at spawn, the
   submitter at [create]) so an external observer — the GC runtime
   probe — can bind its event stream to the fleet's domains. Installed
   process-wide because worker domains cannot see layers above
   [Wr_support]. *)
let worker_hook : (unit -> unit) ref = ref (fun () -> ())

let set_worker_hook f = worker_hook := f

let announce_domain (slot : slot) =
  slot.dom <- (Domain.self () :> int);
  try !worker_hook () with _ -> ()

(* Counting acquisitions that would block is how the profile names
   channel contention; the fast path costs one [try_lock]. *)
let lock_channel t =
  if not (Mutex.try_lock t.lock) then begin
    Atomic.incr t.contended;
    Mutex.lock t.lock
  end

(* Run one task on behalf of [slot], charging queue wait, run time and
   this domain's GC delta to it. *)
let run_task (slot : slot) ~enq ~popped f =
  slot.queue_wait_s <- slot.queue_wait_s +. Float.max 0. (popped -. enq);
  let gc0 = Gc.quick_stat () in
  f ();
  let gc1 = Gc.quick_stat () in
  slot.run_s <- slot.run_s +. (now () -. popped);
  slot.tasks <- slot.tasks + 1;
  slot.gc_minor <- slot.gc_minor + (gc1.Gc.minor_collections - gc0.Gc.minor_collections);
  slot.gc_major <- slot.gc_major + (gc1.Gc.major_collections - gc0.Gc.major_collections);
  slot.promoted_words <- slot.promoted_words +. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words);
  slot.minor_words <- slot.minor_words +. (gc1.Gc.minor_words -. gc0.Gc.minor_words)

let pop_blocking t =
  lock_channel t;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.lock
  done;
  let task = Queue.pop t.queue in
  Mutex.unlock t.lock;
  task

let rec worker_loop t (slot : slot) =
  let waited = now () in
  match pop_blocking t with
  | Run { f; enq } ->
      let popped = now () in
      slot.idle_s <- slot.idle_s +. (popped -. waited);
      run_task slot ~enq ~popped f;
      worker_loop t slot
  | Quit -> slot.idle_s <- slot.idle_s +. (now () -. waited)

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
      slots = Array.init jobs (fun _ -> new_slot ());
      contended = Atomic.make 0;
      n_submitted = Atomic.make 0;
    }
  in
  announce_domain t.slots.(0);
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            let slot = t.slots.(i + 1) in
            announce_domain slot;
            worker_loop t slot));
  t

let jobs t = t.jobs

let stats t =
  {
    per_domain =
      Array.to_list
        (Array.mapi
           (fun i (s : slot) ->
             {
               worker = i;
               dom = s.dom;
               tasks = s.tasks;
               queue_wait_s = s.queue_wait_s;
               run_s = s.run_s;
               idle_s = s.idle_s;
               gc_minor = s.gc_minor;
               gc_major = s.gc_major;
               promoted_words = s.promoted_words;
               minor_words = s.minor_words;
             })
           t.slots);
    lock_contended = Atomic.get t.contended;
    submitted = Atomic.get t.n_submitted;
  }

let push t task =
  lock_channel t;
  Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let run_of f = Run { f; enq = now () }

let submit t f =
  lock_channel t;
  let ok = (not t.closed) && t.workers <> [] in
  if ok then begin
    Queue.push (run_of f) t.queue;
    Atomic.incr t.n_submitted;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  if not ok then invalid_arg "Pool.submit: pool is closed or has no workers"

(* The submitting domain drains the same channel until the batch counter
   hits zero, so a [jobs:1] pool (no workers) still completes every task
   and an n-job pool runs n tasks at once. Tasks never block on each
   other, so running them on the submitter cannot deadlock. *)
let map t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if t.jobs = 1 || n = 1 then
    (* Degenerate sequential path: still charge the work to slot 0 so a
       one-job profile reads as the baseline, with zero queue wait. *)
    List.map
      (fun x ->
        let popped = now () in
        let result = ref None in
        run_task t.slots.(0) ~enq:popped ~popped (fun () ->
            result := Some (f x));
        Atomic.incr t.n_submitted;
        match !result with Some r -> r | None -> assert false)
      xs
  else begin
    lock_channel t;
    let closed = t.closed in
    Mutex.unlock t.lock;
    if closed then invalid_arg "Pool.map: pool is closed";
    let results = Array.make n None in
    let batch = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let error = ref None in
    (* Result publication and the countdown share [batch], which also
       gives the submitter's final reads of [results] their
       happens-before edge from every worker's writes. *)
    let step i =
      let outcome = match f items.(i) with r -> Ok r | exception e -> Error e in
      Mutex.lock batch;
      (match outcome with
      | Ok r -> results.(i) <- Some r
      | Error e -> ( match !error with None -> error := Some e | Some _ -> ()));
      decr remaining;
      if !remaining = 0 then Condition.signal all_done;
      Mutex.unlock batch
    in
    for i = 0 to n - 1 do
      push t (run_of (fun () -> step i));
      Atomic.incr t.n_submitted
    done;
    (* Help out: drain our own channel, then sleep until the workers'
       in-flight tasks finish. *)
    let rec help () =
      let task =
        lock_channel t;
        let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
        Mutex.unlock t.lock;
        task
      in
      match task with
      | Some (Run { f; enq }) ->
          run_task t.slots.(0) ~enq ~popped:(now ()) f;
          help ()
      | Some Quit ->
          (* Not ours: a racing [close] pushed it for a worker. Put it
             back so that worker still gets its shutdown signal, and stop
             helping. *)
          push t Quit
      | None -> ()
    in
    help ();
    Mutex.lock batch;
    while !remaining > 0 do
      Condition.wait all_done batch
    done;
    Mutex.unlock batch;
    (match !error with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let close t =
  lock_channel t;
  let was_closed = t.closed in
  t.closed <- true;
  Mutex.unlock t.lock;
  if not was_closed then begin
    List.iter (fun _ -> push t Quit) t.workers;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let map_jobs ~jobs f xs =
  if jobs <= 1 then List.map f xs else with_pool ~jobs (fun t -> map t f xs)

let stats_rows stats =
  let mwords w = w /. 1e6 in
  let header =
    [ "domain"; "dom-id"; "tasks"; "queue-wait(ms)"; "run(ms)"; "idle(ms)";
      "gc-minor"; "gc-major"; "promoted(Mw)"; "alloc(Mw)" ]
  in
  let row d =
    [
      (if d.worker = 0 then "submitter" else Printf.sprintf "worker-%d" d.worker);
      (if d.dom < 0 then "-" else string_of_int d.dom);
      string_of_int d.tasks;
      Printf.sprintf "%.1f" (d.queue_wait_s *. 1e3);
      Printf.sprintf "%.1f" (d.run_s *. 1e3);
      Printf.sprintf "%.1f" (d.idle_s *. 1e3);
      string_of_int d.gc_minor;
      string_of_int d.gc_major;
      Printf.sprintf "%.2f" (mwords d.promoted_words);
      Printf.sprintf "%.2f" (mwords d.minor_words);
    ]
  in
  (header, List.map row stats.per_domain)

let stats_json stats =
  Json.Obj
    [
      ( "per_domain",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [
                   ("worker", Json.Int d.worker);
                   ("dom", Json.Int d.dom);
                   ("tasks", Json.Int d.tasks);
                   ("queue_wait_s", Json.Float d.queue_wait_s);
                   ("run_s", Json.Float d.run_s);
                   ("idle_s", Json.Float d.idle_s);
                   ("gc_minor", Json.Int d.gc_minor);
                   ("gc_major", Json.Int d.gc_major);
                   ("promoted_words", Json.Float d.promoted_words);
                   ("minor_words", Json.Float d.minor_words);
                 ])
             stats.per_domain) );
      ("lock_contended", Json.Int stats.lock_contended);
      ("submitted", Json.Int stats.submitted);
    ]

let render_stats stats =
  let header, rows = stats_rows stats in
  let total =
    List.fold_left
      (fun acc d -> acc +. d.queue_wait_s +. d.run_s) 0. stats.per_domain
  in
  Table.render ~header rows
  ^ Printf.sprintf
      "tasks submitted: %d   channel-lock contention: %d   queue+run total: %.1f ms\n"
      stats.submitted stats.lock_contended (total *. 1e3)
