type task = Run of (unit -> unit) | Quit

type t = {
  jobs : int;
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

let pop_blocking t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue do
    Condition.wait t.nonempty t.lock
  done;
  let task = Queue.pop t.queue in
  Mutex.unlock t.lock;
  task

let rec worker_loop t =
  match pop_blocking t with
  | Run f ->
      f ();
      worker_loop t
  | Quit -> ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let push t task =
  Mutex.lock t.lock;
  Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let submit t f =
  Mutex.lock t.lock;
  let ok = (not t.closed) && t.workers <> [] in
  if ok then begin
    Queue.push (Run f) t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  if not ok then invalid_arg "Pool.submit: pool is closed or has no workers"

(* The submitting domain drains the same channel until the batch counter
   hits zero, so a [jobs:1] pool (no workers) still completes every task
   and an n-job pool runs n tasks at once. Tasks never block on each
   other, so running them on the submitter cannot deadlock. *)
let map t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if t.jobs = 1 || n = 1 then List.map f xs
  else begin
    Mutex.lock t.lock;
    let closed = t.closed in
    Mutex.unlock t.lock;
    if closed then invalid_arg "Pool.map: pool is closed";
    let results = Array.make n None in
    let batch = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let error = ref None in
    (* Result publication and the countdown share [batch], which also
       gives the submitter's final reads of [results] their
       happens-before edge from every worker's writes. *)
    let step i =
      let outcome = match f items.(i) with r -> Ok r | exception e -> Error e in
      Mutex.lock batch;
      (match outcome with
      | Ok r -> results.(i) <- Some r
      | Error e -> ( match !error with None -> error := Some e | Some _ -> ()));
      decr remaining;
      if !remaining = 0 then Condition.signal all_done;
      Mutex.unlock batch
    in
    for i = 0 to n - 1 do
      push t (Run (fun () -> step i))
    done;
    (* Help out: drain our own channel, then sleep until the workers'
       in-flight tasks finish. *)
    let rec help () =
      let task =
        Mutex.lock t.lock;
        let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
        Mutex.unlock t.lock;
        task
      in
      match task with
      | Some (Run f) ->
          f ();
          help ()
      | Some Quit ->
          (* Not ours: a racing [close] pushed it for a worker. Put it
             back so that worker still gets its shutdown signal, and stop
             helping. *)
          push t Quit
      | None -> ()
    in
    help ();
    Mutex.lock batch;
    while !remaining > 0 do
      Condition.wait all_done batch
    done;
    Mutex.unlock batch;
    (match !error with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let close t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Mutex.unlock t.lock;
  if not was_closed then begin
    List.iter (fun _ -> push t Quit) t.workers;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let map_jobs ~jobs f xs =
  if jobs <= 1 then List.map f xs else with_pool ~jobs (fun t -> map t f xs)
