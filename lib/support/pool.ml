(* A work-stealing fleet of OCaml 5 domains.

   v1 was a single mutex/condition task channel: every task paid one
   lock + wakeup, the submitter and every worker hammered the same
   mutex, and fine-grained tasks (one per corpus site) turned the
   channel into the bottleneck. v2 moves the hot path off any shared
   lock: each slot owns a private deque (guarded by its own mutex —
   uncontended in steady state, so acquisition is a couple of atomic
   instructions), [map] coarsens work into chunks distributed round-
   robin across the deques, and an idle domain steals half of a random
   victim's queue. The only shared state touched per *chunk* is one
   atomic counter; nothing is shared per *item*. *)

(* Per-domain accumulator. Each slot is written by exactly one domain
   (slot 0 by the submitter, slot i by spawned worker i), so recording
   needs no lock; readers get exact values once the writers quiesce
   ([close], or the end of a [map]) and a benign point-in-time snapshot
   before that. Tasks migrate between deques when stolen, but they are
   always *charged* to the slot of the domain that executed them, so
   the per-slot sums remain a partition of the real work. *)
type slot = {
  mutable dom : int;  (* OCaml domain id of the slot's writer; -1 until known *)
  mutable tasks : int;
  mutable queue_wait_s : float;
  mutable run_s : float;
  mutable idle_s : float;
  mutable steals : int;  (* steal operations this domain performed *)
  mutable gc_minor : int;
  mutable gc_major : int;
  mutable promoted_words : float;
  mutable minor_words : float;
}

type domain_stats = {
  worker : int;
  dom : int;
  tasks : int;
  queue_wait_s : float;
  run_s : float;
  idle_s : float;
  steals : int;
  gc_minor : int;
  gc_major : int;
  promoted_words : float;
  minor_words : float;
}

type stats = {
  per_domain : domain_stats list;
  lock_contended : int;
  submitted : int;
  stolen : int;
}

(* A task knows how to run itself against the executing slot: [map]
   chunks account per item inside [exec]; [submit] wraps a single
   closure. [enq] is the monotonic enqueue time ({!Clock.now}), carried
   so queue wait is charged wherever the task ends up running. *)
type task = { enq : float; exec : slot -> enq:float -> unit }

type deque = { dq_lock : Mutex.t; dq : task Queue.t }

type t = {
  jobs : int;
  deques : deque array;  (* one per slot; slot 0 is the submitter's *)
  pending : int Atomic.t;  (* tasks sitting in deques, not yet popped *)
  idle_lock : Mutex.t;
  wake : Condition.t;
  mutable sleepers : int;  (* guarded by idle_lock *)
  mutable closed : bool;  (* guarded by idle_lock *)
  mutable workers : unit Domain.t list;
  n_workers : int;  (* spawned domains; <= jobs - 1 after hardware capping *)
  slots : slot array;
  contended : int Atomic.t;
  n_submitted : int Atomic.t;
  rr : int Atomic.t;  (* round-robin cursor for [submit] *)
  minor_heap_words : int option;
}

let hardware_domains () = Domain.recommended_domain_count ()

let default_jobs = hardware_domains

(* Worker domains get a larger minor heap than the runtime default
   (256k words): in OCaml 5 every minor collection is a stop-the-world
   barrier across *all* domains, so an allocation-heavy fleet with
   default-sized nurseries spends most of its wall clock rendezvousing
   (perf4 measured ~49% GC share at jobs:8 before tuning). 4M words per
   worker cuts minor collections ~16x for the corpus workload at a cost
   of 32MB per domain. Override with WEBRACER_MINOR_HEAP_WORDS=<words>
   (0 disables tuning). *)
let default_minor_heap_words =
  match Sys.getenv_opt "WEBRACER_MINOR_HEAP_WORDS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> None
      | Some w when w > 0 -> Some w
      | Some _ | None -> Some (1 lsl 22))
  | None -> Some (1 lsl 22)

let new_slot () =
  {
    dom = -1; tasks = 0; queue_wait_s = 0.; run_s = 0.; idle_s = 0.; steals = 0;
    gc_minor = 0; gc_major = 0; promoted_words = 0.; minor_words = 0.;
  }

let now = Clock.now

(* Called by every domain joining a fleet (workers at spawn, the
   submitter at [create]) so an external observer — the GC runtime
   probe — can bind its event stream to the fleet's domains. Installed
   process-wide because worker domains cannot see layers above
   [Wr_support]. *)
let worker_hook : (unit -> unit) ref = ref (fun () -> ())

let set_worker_hook f = worker_hook := f

let announce_domain (slot : slot) =
  slot.dom <- (Domain.self () :> int);
  try !worker_hook () with _ -> ()

(* Counting acquisitions that would block is how the profile names
   contention; the fast path costs one [try_lock]. With per-deque locks
   this stays ~0 in steady state — the counter is kept wired so
   [--profile] can prove that, and flag it if stealing ever reintroduces
   a hot lock. *)
let lock_counted t m =
  if not (Mutex.try_lock m) then begin
    Atomic.incr t.contended;
    Mutex.lock m
  end

(* Run one task on behalf of [slot], charging queue wait, run time and
   this domain's GC delta to it. [popped] and [enq] are monotonic, so
   the deltas need no clamping. *)
let charge_item (slot : slot) ~enq ~popped ~finished =
  slot.queue_wait_s <- slot.queue_wait_s +. (popped -. enq);
  slot.run_s <- slot.run_s +. (finished -. popped);
  slot.tasks <- slot.tasks + 1

let charge_gc (slot : slot) (gc0 : Gc.stat) (gc1 : Gc.stat) =
  slot.gc_minor <- slot.gc_minor + (gc1.Gc.minor_collections - gc0.Gc.minor_collections);
  slot.gc_major <- slot.gc_major + (gc1.Gc.major_collections - gc0.Gc.major_collections);
  slot.promoted_words <- slot.promoted_words +. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words);
  slot.minor_words <- slot.minor_words +. (gc1.Gc.minor_words -. gc0.Gc.minor_words)

let run_task (slot : slot) ~enq f =
  let popped = now () in
  let gc0 = Gc.quick_stat () in
  f ();
  let gc1 = Gc.quick_stat () in
  charge_item slot ~enq ~popped ~finished:(now ());
  charge_gc slot gc0 gc1

(* --- deque operations ------------------------------------------------- *)

let push_tasks t i tasks =
  let n = List.length tasks in
  if n > 0 then begin
    let d = t.deques.(i) in
    lock_counted t d.dq_lock;
    List.iter (fun task -> Queue.push task d.dq) tasks;
    Mutex.unlock d.dq_lock;
    ignore (Atomic.fetch_and_add t.pending n);
    (* Wake sleepers only when there are any: the uncontended case costs
       one lock round-trip per *batch*, not per task. *)
    Mutex.lock t.idle_lock;
    if t.sleepers > 0 then Condition.broadcast t.wake;
    Mutex.unlock t.idle_lock
  end

let pop_own t i =
  let d = t.deques.(i) in
  lock_counted t d.dq_lock;
  let task = if Queue.is_empty d.dq then None else Some (Queue.pop d.dq) in
  Mutex.unlock d.dq_lock;
  (match task with Some _ -> Atomic.decr t.pending | None -> ());
  task

(* Steal from [victim]: take half of its queue (rounded up), run the
   first stolen task, move the rest into [i]'s own deque. Uses
   [Mutex.try_lock] only — a busy victim deque means its owner is
   active there, so move on rather than serialize behind it. *)
let steal_from t i victim =
  let d = t.deques.(victim) in
  if not (Mutex.try_lock d.dq_lock) then begin
    Atomic.incr t.contended;
    None
  end
  else begin
    let n = Queue.length d.dq in
    if n = 0 then begin
      Mutex.unlock d.dq_lock;
      None
    end
    else begin
      let k = (n + 1) / 2 in
      let first = Queue.pop d.dq in
      let rest = ref [] in
      for _ = 2 to k do
        rest := Queue.pop d.dq :: !rest
      done;
      Mutex.unlock d.dq_lock;
      Atomic.decr t.pending;
      (* The re-queued remainder stays [pending]; only [first], which we
         are about to execute, leaves the queues. *)
      (match !rest with
      | [] -> ()
      | rest ->
          let own = t.deques.(i) in
          lock_counted t own.dq_lock;
          List.iter (fun task -> Queue.push task own.dq) (List.rev rest);
          Mutex.unlock own.dq_lock);
      Some first
    end
  end

(* Victim scan order: start from a per-call pseudo-random slot so thieves
   spread out instead of all mobbing slot 0. A multiplicative hash of a
   per-slot counter is plenty — victim choice affects only load balance,
   never results. *)
let steal t i nonce =
  let n = Array.length t.deques in
  if n <= 1 then None
  else begin
    let start = (i + 1 + ((nonce * 0x9E3779B1) land max_int) mod (n - 1)) mod n in
    let rec scan tried j =
      if tried >= n then None
      else if j = i then scan tried ((j + 1) mod n)
      else
        match steal_from t i j with
        | Some task -> Some task
        | None -> scan (tried + 1) ((j + 1) mod n)
    in
    scan 0 start
  end

(* --- worker loop ------------------------------------------------------ *)

let worker_loop t i =
  let slot = t.slots.(i) in
  let nonce = ref i in
  let rec loop searching_since =
    match pop_own t i with
    | Some { enq; exec } ->
        slot.idle_s <- slot.idle_s +. (now () -. searching_since);
        exec slot ~enq;
        loop (now ())
    | None -> (
        incr nonce;
        match steal t i !nonce with
        | Some { enq; exec } ->
            slot.steals <- slot.steals + 1;
            slot.idle_s <- slot.idle_s +. (now () -. searching_since);
            exec slot ~enq;
            loop (now ())
        | None ->
            (* Nothing anywhere: sleep until new work or shutdown. The
               pending re-check under the lock closes the race against a
               concurrent push (pushes broadcast under the same lock). *)
            Mutex.lock t.idle_lock;
            if t.closed && Atomic.get t.pending = 0 then begin
              Mutex.unlock t.idle_lock;
              slot.idle_s <- slot.idle_s +. (now () -. searching_since)
            end
            else if Atomic.get t.pending > 0 then begin
              Mutex.unlock t.idle_lock;
              loop searching_since
            end
            else begin
              t.sleepers <- t.sleepers + 1;
              Condition.wait t.wake t.idle_lock;
              t.sleepers <- t.sleepers - 1;
              Mutex.unlock t.idle_lock;
              loop searching_since
            end)
  in
  loop (now ())

let create ?min_workers ?minor_heap_words ~jobs () =
  let jobs = max 1 jobs in
  (* Oversubscription is pure loss for CPU-bound work: more domains than
     cores just multiplies stop-the-world rendezvous cost (the v1 pool
     ran the corpus 3.7x *slower* at jobs:8 on small hardware). [jobs]
     is therefore a ceiling: we spawn at most hardware-1 workers, the
     submitter being the remaining lane. [min_workers] lets clients that
     *require* spawned domains (the serve daemon: [submit] tasks never
     run on the submitter) keep at least that many. *)
  let min_workers = max 0 (Option.value min_workers ~default:0) in
  let capped = min (jobs - 1) (hardware_domains () - 1) in
  let n_workers = min (jobs - 1) (max capped min_workers) in
  let minor_heap_words =
    match minor_heap_words with Some w -> w | None -> default_minor_heap_words
  in
  let t =
    {
      jobs;
      deques =
        Array.init jobs (fun _ -> { dq_lock = Mutex.create (); dq = Queue.create () });
      pending = Atomic.make 0;
      idle_lock = Mutex.create ();
      wake = Condition.create ();
      sleepers = 0;
      closed = false;
      workers = [];
      n_workers;
      slots = Array.init jobs (fun _ -> new_slot ());
      contended = Atomic.make 0;
      n_submitted = Atomic.make 0;
      rr = Atomic.make 0;
      minor_heap_words;
    }
  in
  announce_domain t.slots.(0);
  t.workers <-
    List.init n_workers (fun i ->
        Domain.spawn (fun () ->
            (* Per-domain GC tuning must happen on the worker itself:
               minor heaps are domain-local in OCaml 5. *)
            (match t.minor_heap_words with
            | Some w -> ( try Gc.set { (Gc.get ()) with Gc.minor_heap_size = w } with _ -> ())
            | None -> ());
            announce_domain t.slots.(i + 1);
            worker_loop t (i + 1)));
  t

let jobs t = t.jobs

let workers t = t.n_workers

let stats t =
  let per_domain =
    Array.to_list
      (Array.mapi
         (fun i (s : slot) ->
           {
             worker = i;
             dom = s.dom;
             tasks = s.tasks;
             queue_wait_s = s.queue_wait_s;
             run_s = s.run_s;
             idle_s = s.idle_s;
             steals = s.steals;
             gc_minor = s.gc_minor;
             gc_major = s.gc_major;
             promoted_words = s.promoted_words;
             minor_words = s.minor_words;
           })
         t.slots)
  in
  {
    per_domain;
    lock_contended = Atomic.get t.contended;
    submitted = Atomic.get t.n_submitted;
    stolen = List.fold_left (fun acc d -> acc + d.steals) 0 per_domain;
  }

let closed t =
  Mutex.lock t.idle_lock;
  let c = t.closed in
  Mutex.unlock t.idle_lock;
  c

let submit t f =
  if closed t || t.workers = [] then
    invalid_arg "Pool.submit: pool is closed or has no workers";
  (* Round-robin across the *worker* deques (slots 1..): the submitter
     never drains its own deque outside [map], so fire-and-forget work
     parked on slot 0 would wait for a steal. *)
  let k = 1 + Atomic.fetch_and_add t.rr 1 mod t.n_workers in
  Atomic.incr t.n_submitted;
  push_tasks t k [ { enq = now (); exec = (fun slot ~enq -> run_task slot ~enq f) } ]

(* Work units for [map]: contiguous chunks of the input, sized so every
   lane gets several chunks (steals can then rebalance a slow chunk's
   tail). Each chunk accounts its items individually — [tasks], queue
   wait and the GC deltas are all per *item*, so fleet stats are
   independent of the chunking. *)
let chunks_per_lane = 4

let chunk_size ~lanes n = max 1 ((n + (lanes * chunks_per_lane) - 1) / (lanes * chunks_per_lane))

(* The submitting domain drains the deques like any worker (its own
   first, then stealing) until the batch counter hits zero, so a pool
   with no spawned workers still completes every task and an n-lane pool
   runs n chunks at once. Tasks never block on each other, so running
   them on the submitter cannot deadlock. *)
let map ?chunk t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    if closed t then invalid_arg "Pool.map: pool is closed";
    let slot0 = t.slots.(0) in
    ignore (Atomic.fetch_and_add t.n_submitted n);
    if t.n_workers = 0 || n = 1 then begin
      (* Degenerate sequential path: still charge the work to slot 0 so a
         one-lane profile reads as the baseline, with exactly zero queue
         wait. *)
      List.map
        (fun x ->
          let popped = now () in
          let gc0 = Gc.quick_stat () in
          let r = f x in
          let gc1 = Gc.quick_stat () in
          charge_item slot0 ~enq:popped ~popped ~finished:(now ());
          charge_gc slot0 gc0 gc1;
          r)
        xs
    end
    else begin
      let lanes = t.n_workers + 1 in
      let chunk =
        match chunk with Some c -> max 1 c | None -> chunk_size ~lanes n
      in
      let results = Array.make n None in
      let batch = Mutex.create () in
      let all_done = Condition.create () in
      let remaining = ref n in
      let error = ref None in
      (* Result publication and the countdown share [batch], which also
         gives the submitter's final reads of [results] their
         happens-before edge from every worker's writes. *)
      let finish k outcome =
        Mutex.lock batch;
        (match outcome with
        | Ok r -> results.(k) <- Some r
        | Error e -> ( match !error with None -> error := Some e | Some _ -> ()));
        decr remaining;
        if !remaining = 0 then Condition.signal all_done;
        Mutex.unlock batch
      in
      let exec_chunk lo hi slot ~enq =
        (* Charge each item separately: queue wait runs from the chunk's
           enqueue to the moment *this item* starts, which prices waiting
           behind chunk siblings honestly. *)
        let enq = ref enq in
        for k = lo to hi - 1 do
          let popped = now () in
          let gc0 = Gc.quick_stat () in
          let outcome = match f items.(k) with r -> Ok r | exception e -> Error e in
          let gc1 = Gc.quick_stat () in
          charge_item slot ~enq:!enq ~popped ~finished:(now ());
          charge_gc slot gc0 gc1;
          enq := popped;
          finish k outcome
        done
      in
      (* Distribute chunks round-robin over every lane's deque, the
         submitter's included: lanes start on local work and stealing
         only moves the imbalance. *)
      let chunk_tasks = Array.make lanes [] in
      let lane = ref 0 in
      let enq0 = now () in
      let lo = ref 0 in
      while !lo < n do
        let hi = min n (!lo + chunk) in
        let lo' = !lo in
        chunk_tasks.(!lane) <-
          { enq = enq0; exec = exec_chunk lo' hi } :: chunk_tasks.(!lane);
        lane := (!lane + 1) mod lanes;
        lo := hi
      done;
      for i = 0 to lanes - 1 do
        push_tasks t i (List.rev chunk_tasks.(i))
      done;
      (* Help out: drain our own deque, then steal, until the batch is
         done. The submitter never sleeps — if it finds no task, the
         remaining chunks are in flight on workers and the condition
         below is about to flip. *)
      let nonce = ref 0 in
      let rec help () =
        let task =
          match pop_own t 0 with
          | Some task -> Some task
          | None ->
              incr nonce;
              (match steal t 0 !nonce with
              | Some task ->
                  slot0.steals <- slot0.steals + 1;
                  Some task
              | None -> None)
        in
        match task with
        | Some { enq; exec } ->
            exec slot0 ~enq;
            help ()
        | None -> ()
      in
      help ();
      Mutex.lock batch;
      while !remaining > 0 do
        Condition.wait all_done batch
      done;
      Mutex.unlock batch;
      (match !error with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) results)
    end
  end

let close t =
  Mutex.lock t.idle_lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.idle_lock;
  if not was_closed then begin
    (* Workers drain every queued task (their own deques, then steals)
       before they see [closed && pending = 0] and exit. *)
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?min_workers ?minor_heap_words ~jobs f =
  let t = create ?min_workers ?minor_heap_words ~jobs () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let map_jobs ?chunk ~jobs f xs =
  if jobs <= 1 then List.map f xs
  else with_pool ~jobs (fun t -> map ?chunk t f xs)

let stats_rows stats =
  let mwords w = w /. 1e6 in
  let header =
    [ "domain"; "dom-id"; "tasks"; "queue-wait(ms)"; "run(ms)"; "idle(ms)"; "steals";
      "gc-minor"; "gc-major"; "promoted(Mw)"; "alloc(Mw)" ]
  in
  let row d =
    [
      (if d.worker = 0 then "submitter" else Printf.sprintf "worker-%d" d.worker);
      (if d.dom < 0 then "-" else string_of_int d.dom);
      string_of_int d.tasks;
      Printf.sprintf "%.1f" (d.queue_wait_s *. 1e3);
      Printf.sprintf "%.1f" (d.run_s *. 1e3);
      Printf.sprintf "%.1f" (d.idle_s *. 1e3);
      string_of_int d.steals;
      string_of_int d.gc_minor;
      string_of_int d.gc_major;
      Printf.sprintf "%.2f" (mwords d.promoted_words);
      Printf.sprintf "%.2f" (mwords d.minor_words);
    ]
  in
  (header, List.map row stats.per_domain)

let stats_json stats =
  Json.Obj
    [
      ( "per_domain",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [
                   ("worker", Json.Int d.worker);
                   ("dom", Json.Int d.dom);
                   ("tasks", Json.Int d.tasks);
                   ("queue_wait_s", Json.Float d.queue_wait_s);
                   ("run_s", Json.Float d.run_s);
                   ("idle_s", Json.Float d.idle_s);
                   ("steals", Json.Int d.steals);
                   ("gc_minor", Json.Int d.gc_minor);
                   ("gc_major", Json.Int d.gc_major);
                   ("promoted_words", Json.Float d.promoted_words);
                   ("minor_words", Json.Float d.minor_words);
                 ])
             stats.per_domain) );
      ("lock_contended", Json.Int stats.lock_contended);
      ("submitted", Json.Int stats.submitted);
      ("stolen", Json.Int stats.stolen);
    ]

let render_stats stats =
  let header, rows = stats_rows stats in
  let total =
    List.fold_left
      (fun acc d -> acc +. d.queue_wait_s +. d.run_s) 0. stats.per_domain
  in
  Table.render ~header rows
  ^ Printf.sprintf
      "tasks submitted: %d   steals: %d   lock contention: %d   queue+run total: %.1f ms\n"
      stats.submitted stats.stolen stats.lock_contended (total *. 1e3)
