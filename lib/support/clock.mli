(** Monotonic time for interval arithmetic.

    [Unix.gettimeofday] can step backwards (NTP, manual clock changes),
    which used to force [Float.max 0.] clamps around every duration
    subtraction in the pool and the serve daemon. This clock only moves
    forward; its epoch is unspecified (boot-relative on Linux), so use it
    exclusively for differences between two readings, never as a wall
    timestamp. *)

(** Raw monotonic reading in nanoseconds. Allocation-free on the native
    fast path. *)
val now_ns : unit -> int64

(** Monotonic seconds as a float — the unit every timing accumulator in
    the codebase already uses. Nanosecond resolution survives the float
    conversion for any realistic process lifetime (2^53 ns > 100 days). *)
val now : unit -> float
