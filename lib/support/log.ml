type level = Error | Warn | Info | Debug

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let rank = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

(* Global state: one page under analysis per process, so a process-wide
   level and sink keep every call site plumbing-free. *)
let threshold : level option ref = ref None

let sink : out_channel option ref = ref None

let sink_owned = ref false  (* close on replacement iff we opened it *)

let started = Clock.now ()

let set_level l = threshold := l

let current_level () = !threshold

let enabled l = match !threshold with None -> false | Some t -> rank l <= rank t

let close_sink () =
  (match !sink with
  | Some oc ->
      flush oc;
      if !sink_owned then close_out_noerr oc
  | None -> ());
  sink := None;
  sink_owned := false

let set_sink oc =
  close_sink ();
  sink := oc

let open_sink_file path =
  close_sink ();
  sink := Some (open_out path);
  sink_owned := true

let init_from_env () =
  (match Sys.getenv_opt "WEBRACER_LOG" with
  | Some s -> set_level (level_of_string s)
  | None -> ());
  match Sys.getenv_opt "WEBRACER_LOG_FILE" with
  | Some path when path <> "" -> open_sink_file path
  | _ -> ()

let () = init_from_env ()

let () = at_exit (fun () -> match !sink with Some oc -> flush oc | None -> ())

(* Ambient per-domain trace context: when a request handler wraps its
   work in [with_trace], every line emitted underneath — from any layer,
   with no plumbing — carries the request's trace id, correlating the
   JSONL log with the wire response and the telemetry spans. Domain-local
   storage keeps concurrent requests on different worker domains from
   leaking ids into each other's lines. *)
let trace_ctx : (string option * string option) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (None, None))

let with_trace ~trace_id ?span_id f =
  let cell = Domain.DLS.get trace_ctx in
  let saved = !cell in
  cell := (Some trace_id, span_id);
  Fun.protect ~finally:(fun () -> cell := saved) f

let current_trace () = !(Domain.DLS.get trace_ctx)

let trace_fields () =
  match current_trace () with
  | None, _ -> []
  | Some trace_id, span_id ->
      ("trace_id", Json.String trace_id)
      :: (match span_id with
         | Some s -> [ ("span_id", Json.String s) ]
         | None -> [])

let emit level event fields =
  if enabled level then begin
    let ts = Clock.now () -. started in
    let fields = fields @ trace_fields () in
    match !sink with
    | Some oc ->
        let obj =
          Json.Obj
            (("ts", Json.Float ts)
            :: ("level", Json.String (level_name level))
            :: ("event", Json.String event)
            :: fields)
        in
        (* One channel op per line: the runtime lock makes a single
           [output_string] atomic across domains, so concurrent emitters
           never interleave inside a JSONL record. *)
        output_string oc (Json.to_string obj ^ "\n")
    | None ->
        let field (k, v) =
          Printf.sprintf " %s=%s" k
            (match v with Json.String s -> s | v -> Json.to_string v)
        in
        Printf.eprintf "[webracer %7.3f] %-5s %s%s\n%!" ts (level_name level) event
          (String.concat "" (List.map field fields))
  end

(* Tee every line into the flight recorder whenever it is armed — even
   lines below the live log level: a postmortem wants the debug-grade
   context the stream dropped. *)
let tee level event fields =
  if Flight.enabled () then
    Flight.record
      ~kind:("log." ^ level_name level)
      ?trace:(match current_trace () with Some t, _ -> Some t | _ -> None)
      (("event", Json.String event) :: fields)

let error event fields = tee Error event fields; emit Error event fields

let warn event fields = tee Warn event fields; emit Warn event fields

let info event fields = tee Info event fields; emit Info event fields

let debug event fields = tee Debug event fields; emit Debug event fields
