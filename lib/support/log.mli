(** Leveled structured event log for the detection pipeline.

    Every layer (browser, detector, filters, top-level driver) reports
    what it is doing as {e events}: a severity, a dotted event name
    ([page.load], [filter.suppress], [detect.batch]) and a list of
    structured fields. Two outputs exist:

    - a human-readable line on [stderr], enabled by setting a level
      (default: disabled, so library users and tests see nothing);
    - a JSONL sink — one JSON object per line — for tooling
      ([webracer run --log-out FILE]).

    Control is global (the process analyzes one page at a time) and
    environment-driven so no plumbing is needed:

    - [WEBRACER_LOG=error|warn|info|debug|off] sets the level;
    - [WEBRACER_LOG_FILE=path] opens a JSONL sink at startup.

    Emission is cheap when disabled: {!enabled} is one comparison, and
    callers building expensive fields should guard on it. *)

type level = Error | Warn | Info | Debug

val level_name : level -> string

(** [level_of_string s] parses ["error"], ["warn"], ["info"], ["debug"]
    (case-insensitive); ["off"], ["none"] and [""] mean disabled. Unknown
    strings are [None] (treated as disabled by {!init_from_env}). *)
val level_of_string : string -> level option

(** [set_level l] sets the threshold; [None] disables all output. *)
val set_level : level option -> unit

val current_level : unit -> level option

(** [enabled l] — would an event at level [l] be recorded? *)
val enabled : level -> bool

(** [set_sink oc] directs events to [oc] as JSONL (one object per line:
    [{"ts":…,"level":…,"event":…,…fields}]). [None] reverts to the
    stderr text renderer. The channel is not closed by this module unless
    it was opened by {!open_sink_file}. *)
val set_sink : out_channel option -> unit

(** [open_sink_file path] opens (truncates) [path] and installs it as the
    JSONL sink, closing any sink previously opened by this function. *)
val open_sink_file : string -> unit

(** [close_sink ()] flushes and detaches the sink, closing it if this
    module opened it. *)
val close_sink : unit -> unit

(** [init_from_env ()] applies [WEBRACER_LOG] / [WEBRACER_LOG_FILE]. The
    module runs it once at load time; the CLI may call it again after
    overriding defaults. *)
val init_from_env : unit -> unit

(** [with_trace ~trace_id ?span_id f] runs [f] with an ambient trace
    context on the calling domain: every event emitted inside [f] — from
    any layer, with no plumbing — gains [trace_id] (and [span_id], when
    given) fields, correlating log lines with the serve wire protocol's
    trace ids and the telemetry spans. Contexts nest (the innermost
    wins) and are restored on exception. *)
val with_trace : trace_id:string -> ?span_id:string -> (unit -> 'a) -> 'a

(** [current_trace ()] is the calling domain's ambient
    [(trace_id, span_id)], both [None] outside {!with_trace}. *)
val current_trace : unit -> string option * string option

(** [emit level event fields] records one event if [level] is enabled.
    [event] is a stable dotted name; fields are structured JSON. *)
val emit : level -> string -> (string * Json.t) list -> unit

(** The level wrappers below additionally tee every event into the
    {!Flight} recorder whenever it is enabled — independent of the log
    level, so a postmortem dump retains context the live stream
    dropped. *)

val error : string -> (string * Json.t) list -> unit

val warn : string -> (string * Json.t) list -> unit

val info : string -> (string * Json.t) list -> unit

val debug : string -> (string * Json.t) list -> unit
