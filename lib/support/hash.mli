(** Content hashing for cache keys.

    A thin wrapper over the stdlib [Digest] (MD5) — not cryptographic,
    but stable across runs and processes, which is what a result cache
    keyed by page content needs. *)

(** [hex s] is the 32-character lowercase hex digest of [s]. *)
val hex : string -> string

(** [of_parts parts] hashes a list of strings unambiguously: each part
    is length-prefixed before hashing, so [["ab"; "c"]] and
    [["a"; "bc"]] digest differently (plain concatenation would not). *)
val of_parts : string list -> string
