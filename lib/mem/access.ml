type kind = [ `Read | `Write ]

type flag =
  | Function_decl
  | Call_position
  | Form_field
  | Observed_miss
  | User_input
  | Checked_read_first

type t = {
  loc : Location.t;
  kind : kind;
  op : Wr_hb.Op.id;
  flags : flag list;
  context : string;
}

let make ?(flags = []) ?(context = "") loc kind op = { loc; kind; op; flags; context }

let has_flag t f = List.mem f t.flags

(* Emission sites build flags and context deterministically, so a repeat of
   the same source-level access produces a structurally equal record; list
   order is stable per site and needs no normalization. *)
let same_shape a b =
  a.op = b.op && a.kind = b.kind && a.flags = b.flags && a.context = b.context
  && Location.equal a.loc b.loc

let add_flag t f = if has_flag t f then t else { t with flags = f :: t.flags }

let flag_name = function
  | Function_decl -> "function-decl"
  | Call_position -> "call"
  | Form_field -> "form-field"
  | Observed_miss -> "miss"
  | User_input -> "user-input"
  | Checked_read_first -> "checked-read-first"

let pp ppf t =
  let kind = match t.kind with `Read -> "R" | `Write -> "W" in
  Format.fprintf ppf "%s %a by op#%d" kind Location.pp t.loc t.op;
  if t.flags <> [] then
    Format.fprintf ppf " [%s]" (String.concat "," (List.map flag_name t.flags));
  if t.context <> "" then Format.fprintf ppf " (%s)" t.context
