(** Memory-access records flowing from instrumentation to the detector.

    Every instrumented point in the simulated browser (variable reads,
    property writes, DOM insertion, handler registration, event dispatch,
    ...) emits one [t]. Flags carry the side-channel information the race
    classifier (§6.1) and the report filters (§5.3) need. *)

type kind = [ `Read | `Write ]

type flag =
  | Function_decl
      (** a hoisted function-declaration write (§4.1 "Functions"); a race
          whose write carries this flag is a {e function race} *)
  | Call_position  (** a variable read used directly as a call target *)
  | Form_field  (** the value/checked slot of a form field (filter §5.3) *)
  | Observed_miss
      (** the read observed absence: [getElementById] returned null, the
          variable was undefined — evidence for harmfulness classification *)
  | User_input  (** a write performed on behalf of (simulated) user input *)
  | Checked_read_first
      (** detector-added: the writing operation read this location before
          writing it — the §5.3 form-filter refinement treats such races as
          harmless *)

type t = {
  loc : Location.t;
  kind : kind;
  op : Wr_hb.Op.id;  (** the operation performing the access *)
  flags : flag list;
  context : string;  (** human-readable source context for reports *)
}

val make : ?flags:flag list -> ?context:string -> Location.t -> kind -> Wr_hb.Op.id -> t

val has_flag : t -> flag -> bool

(** [same_shape a b] — the two records are indistinguishable to a detector:
    same location, kind, operation, flags and context. A repeat execution of
    one source-level access inside one operation (a read in a loop body)
    satisfies this; the dedup front-end uses it to swallow such repeats. *)
val same_shape : t -> t -> bool

(** [add_flag t f] is [t] with [f] recorded (idempotent). *)
val add_flag : t -> flag -> t

val pp : Format.formatter -> t -> unit
