(* The adversarial precision pack: pages engineered so the static
   predictor's recall-oriented widening (computed member names,
   wildcard ids, dynamic eval, flow-insensitive dead branches) produces
   predictions a single baseline schedule cannot confirm — some
   realizable only under a directed schedule, some genuinely
   unrealizable. This is what makes `predict --corpus` precision
   non-trivial and gives the triage pipeline real false positives to
   refute. Every scenario carries ground truth for the tests. *)

module Html = Wr_html.Html

type scenario = {
  name : string;
  page : string;
  resources : (string * string) list;
  baseline_gap : bool;
      (** some prediction must NOT confirm on the baseline schedule *)
  guided_confirms : bool;
      (** a directed schedule should confirm a prediction the baseline
          missed *)
  refutable : bool;  (** triage should refute at least one prediction *)
}

let script code = Html.el "script" [ Html.text code ]

let page_of nodes = Html.to_string nodes

(* A data-dependent guard flips under network/parse inversion: the
   async library writes [adv_deg] only when it beats the parser to the
   flag element. Baseline (instant parse) never takes the branch, so
   the Variable prediction on [adv_deg] sits unconfirmed until the
   net:fast+parse:slow directive realizes it. *)
let late_async =
  let nodes =
    [
      Html.el "script" ~attrs:[ ("async", "true"); ("src", "adv_late.js") ] [];
      Html.el "div" ~attrs:[ ("id", "adv_flag") ] [ Html.text "." ];
      script
        "var adv_deg = 0;\n\
         setTimeout(function () { adv_seen = adv_deg; }, 10);";
    ]
  in
  {
    name = "adv_late_async";
    page = page_of nodes;
    resources =
      [
        ( "adv_late.js",
          "if (document.getElementById(\"adv_flag\") == null) { adv_deg = 1; }" );
      ];
    baseline_gap = true;
    guided_confirms = true;
    refutable = false;
  }

(* Computed member names: the async library writes [el["tmp_" + n]]
   (widened to the prefix [tmp_]), a timer reads [el.tmp_final]. The
   prefix matches statically, but the concrete cells are disjoint in
   every schedule — a certified false positive. *)
let computed_member =
  let nodes =
    [
      Html.el "div" ~attrs:[ ("id", "adv_box") ] [ Html.text "." ];
      Html.el "script" ~attrs:[ ("async", "true"); ("src", "adv_comp.js") ] [];
      script
        "setTimeout(function () {\n\
         \  var el2 = document.getElementById(\"adv_box\");\n\
         \  if (el2 != null) { adv_r = el2.tmp_final; }\n\
         }, 15);";
    ]
  in
  {
    name = "adv_computed";
    page = page_of nodes;
    resources =
      [
        ( "adv_comp.js",
          "var n = 2;\n\
           var el = document.getElementById(\"adv_box\");\n\
           if (el != null) { el[\"tmp_\" + n] = 1; }" );
      ];
    baseline_gap = true;
    guided_confirms = false;
    refutable = true;
  }

(* Dead-branch registration: the flow-insensitive effect pass sees the
   write to [adv_dead] inside a branch that never executes. No schedule
   can observe that side — the Side_never_observed certificate. *)
let dead_branch =
  let nodes =
    [
      Html.el "script" ~attrs:[ ("async", "true"); ("src", "adv_dead.js") ] [];
      script
        "setTimeout(function () {\n\
         \  if (typeof adv_dead != \"undefined\") { adv_chk = 1; }\n\
         }, 12);";
    ]
  in
  {
    name = "adv_dead_branch";
    page = page_of nodes;
    resources =
      [ ("adv_dead.js", "var adv_en = 0;\nif (adv_en > 0) { adv_dead = 1; }") ];
    baseline_gap = true;
    guided_confirms = false;
    refutable = true;
  }

(* Data-dependent wiring: the element id flows through an array, so the
   lookup widens to the wildcard id — yet the race is real and fires on
   the baseline schedule. Keeps recall honest while exercising
   [Any_str]. *)
let data_wired =
  let nodes =
    [
      script
        "var adv_ids = [\"adv_d0\"];\n\
         setTimeout(function () {\n\
         \  var el = document.getElementById(adv_ids[0]);\n\
         \  if (el != null) { el.className = \"wired\"; }\n\
         }, 8);";
      Html.el "div" ~attrs:[ ("id", "adv_d0") ] [ Html.text "." ];
    ]
  in
  {
    name = "adv_data_wired";
    page = page_of nodes;
    resources = [];
    baseline_gap = false;
    guided_confirms = false;
    refutable = false;
  }

(* Dynamic eval: the evaluated string is built at runtime, so the unit
   widens to S_top — it may touch anything. The simulated interpreter
   does not execute dynamic eval, so every S_top-vs-everything
   prediction is a false positive for the directed search to refute
   (the typeof guard keeps the reader from crashing either way). *)
let eval_dyn =
  let nodes =
    [
      Html.el "script" ~attrs:[ ("async", "true"); ("src", "adv_eval.js") ] [];
      script
        "setTimeout(function () {\n\
         \  if (typeof adv_mark != \"undefined\") { adv_obs = 1; }\n\
         }, 9);";
    ]
  in
  {
    name = "adv_eval_dyn";
    page = page_of nodes;
    resources =
      [ ("adv_eval.js", "var c = \"adv_mark\";\neval(c + \" = 1;\");") ];
    baseline_gap = true;
    guided_confirms = false;
    refutable = true;
  }

let pack () = [ late_async; computed_member; dead_branch; data_wired; eval_dyn ]
