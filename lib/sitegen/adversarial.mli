(** The adversarial precision pack: hand-built pages where the static
    predictor's recall-oriented widening over-approximates — computed
    member names, wildcard ids from data-dependent wiring, dynamic
    [eval], dead-branch handler registration — so corpus precision
    drops below 100% and the triage pipeline has genuine false
    positives to refute. Ground truth per scenario drives the unit
    tests and the triage gate. *)

type scenario = {
  name : string;
  page : string;
  resources : (string * string) list;
  baseline_gap : bool;
      (** some prediction must NOT confirm on the baseline schedule *)
  guided_confirms : bool;
      (** a directed schedule should confirm a prediction the baseline
          missed *)
  refutable : bool;  (** triage should refute at least one prediction *)
}

(** The five scenarios, stable order: late async guard, computed member
    names, dead-branch registration, data-dependent wiring, dynamic
    eval. *)
val pack : unit -> scenario list
