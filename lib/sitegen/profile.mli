(** Per-site race profiles for the synthetic Fortune-100 corpus.

    The 41 sites with non-zero filtered counts in the paper's Table 2 are
    reproduced row-for-row as ground truth (name, per-type filtered counts,
    harmful subsets); the remaining 59 sites carry only raw-level noise.
    Raw variable and event-dispatch volumes are drawn from fixed pools
    calibrated so the corpus-wide statistics land on Table 1's
    mean/median/max (variable 22.4/5.5/269, dispatch 22.3/7/198; HTML and
    function races pass the filters unchanged, so their raw counts equal
    Table 2's column sums). A unit test asserts the calibration. *)

type counts = { html : int; func : int; var : int; disp : int }

val zero : counts

val add : counts -> counts -> counts

val total : counts -> int

type t = {
  name : string;
  html_harmful : int;
  html_benign : int;
  func_harmful : int;
  func_benign : int;
  var_harmful : int;  (** Fig. 2-style form races (survive filters) *)
  var_benign : int;  (** two-writer form races (survive filters) *)
  var_checked : int;  (** §5.3-refinement races (raw only) *)
  disp_harmful : int;  (** Gomez image count *)
  disp_benign : int;  (** delayed single-dispatch listeners *)
  bulk_var : int;  (** raw-only plain variable races *)
  bulk_disp : int;  (** raw-only multi-dispatch races *)
  ajax : int;  (** raw-only AJAX shared-global races *)
}

(** [base name] is the all-zero profile: no planted races. Standalone
    pages (the adversarial pack) use it as their ground-truth carrier. *)
val base : string -> t

(** [corpus ()] is the full 100-site profile list, paper rows first. *)
val corpus : unit -> t list

(** [expected_raw p] / [expected_filtered p] / [expected_harmful p] are the
    ground-truth race counts the generated site plants. *)
val expected_raw : t -> counts

val expected_filtered : t -> counts

val expected_harmful : t -> counts
