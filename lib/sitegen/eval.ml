module Race = Wr_detect.Race

type outcome = {
  profile : Profile.t;
  raw : Profile.counts;
  filtered : Profile.counts;
  expected_raw : Profile.counts;
  expected_filtered : Profile.counts;
  harmful : Profile.counts;
  ops : int;
  accesses : int;
  detector_records : int;
  crashes : int;
  wall_clock_s : float;
}

let counts_of races =
  let h, f, v, d = Webracer.count_by_type races in
  { Profile.html = h; func = f; var = v; disp = d }

let run_site ?(seed = 42) ?(dedup = true) ?telemetry profile =
  let site = Gen.generate profile in
  let report =
    Webracer.analyze
      (Webracer.config ~page:site.Gen.page ~resources:site.Gen.resources ~seed ~explore:true
         ~dedup ?telemetry ())
  in
  {
    profile;
    raw = counts_of report.Webracer.races;
    filtered = counts_of report.Webracer.filtered;
    expected_raw = Profile.expected_raw profile;
    expected_filtered = Profile.expected_filtered profile;
    harmful = Profile.expected_harmful profile;
    ops = report.Webracer.ops;
    accesses = report.Webracer.accesses;
    detector_records = report.Webracer.detector_records;
    crashes = List.length report.Webracer.crashes;
    wall_clock_s = report.Webracer.wall_clock_s;
  }

let corpus_profiles limit =
  let profiles = Profile.corpus () in
  match limit with
  | Some n -> List.filteri (fun i _ -> i < n) profiles
  | None -> profiles

(* Per-site seeds are fixed by corpus position before the fan-out, so the
   outcome list is independent of [jobs] (site generation and analysis are
   self-contained per item; the pool returns results in input order). *)
let run_corpus_stats ?(seed = 42) ?limit ?(jobs = 1) ?(dedup = true) ?telemetry
    () =
  let profiles = corpus_profiles limit in
  let pool = Wr_support.Pool.create ~jobs () in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Wr_support.Pool.close pool)
      (fun () ->
        Wr_support.Pool.map pool
          (fun (i, p) -> run_site ~seed:(seed + i) ~dedup ?telemetry p)
          (List.mapi (fun i p -> (i, p)) profiles))
  in
  (* Read the profile after [close]: joining the workers makes every
     per-domain accumulator exact (a task's accounting lands just after
     its result is published, so a pre-close snapshot could miss the
     final task of a domain). *)
  (outcomes, Wr_support.Pool.stats pool)

let run_corpus ?seed ?limit ?jobs ?dedup () =
  fst (run_corpus_stats ?seed ?limit ?jobs ?dedup ())

let fidelity o = o.filtered = o.expected_filtered

(* Table 1: mean / median / max of raw (unfiltered) counts per type. *)
let render_table1 outcomes =
  let stat f =
    let xs = List.map f outcomes in
    [
      Printf.sprintf "%.1f" (Wr_support.Stats.mean xs);
      Printf.sprintf "%.1f" (Wr_support.Stats.median xs);
      string_of_int (Wr_support.Stats.max xs);
    ]
  in
  let rows =
    [
      "HTML" :: stat (fun o -> o.raw.Profile.html);
      "Function" :: stat (fun o -> o.raw.Profile.func);
      "Variable" :: stat (fun o -> o.raw.Profile.var);
      "Event Dispatch" :: stat (fun o -> o.raw.Profile.disp);
      "All" :: stat (fun o -> Profile.total o.raw);
    ]
  in
  Wr_support.Table.render ~header:[ "Race type"; "Mean"; "Median"; "Max" ] rows

let cell count harmful = if count = 0 then "0" else Printf.sprintf "%d (%d)" count harmful

let render_table2 outcomes =
  let visible = List.filter (fun o -> Profile.total o.filtered > 0) outcomes in
  let row o =
    let f = o.filtered and h = o.harmful in
    let mark = if fidelity o then "" else " !" in
    [
      o.profile.Profile.name ^ mark;
      cell f.Profile.html h.Profile.html;
      cell f.Profile.func h.Profile.func;
      cell f.Profile.var h.Profile.var;
      cell f.Profile.disp h.Profile.disp;
    ]
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 visible in
  let totals =
    [
      "Total";
      cell (sum (fun o -> o.filtered.Profile.html)) (sum (fun o -> o.harmful.Profile.html));
      cell (sum (fun o -> o.filtered.Profile.func)) (sum (fun o -> o.harmful.Profile.func));
      cell (sum (fun o -> o.filtered.Profile.var)) (sum (fun o -> o.harmful.Profile.var));
      cell (sum (fun o -> o.filtered.Profile.disp)) (sum (fun o -> o.harmful.Profile.disp));
    ]
  in
  Wr_support.Table.render
    ~header:[ "Website"; "HTML"; "Function"; "Variable"; "EventDisp" ]
    (List.map row visible @ [ totals ])

(* --- static-prediction validation (DESIGN.md §8) ---------------------- *)

type predict_outcome = {
  p_profile : Profile.t;
  comparison : Wr_static.Compare.comparison;
}

let predict_site ?(seed = 42) profile =
  let site = Gen.generate profile in
  let result =
    Wr_static.Predict.predict ~page:site.Gen.page ~resources:site.Gen.resources
      ()
  in
  let comparison =
    Wr_static.Compare.run ~seed ~page:site.Gen.page
      ~resources:site.Gen.resources result
  in
  { p_profile = profile; comparison }

let predict_corpus ?(seed = 42) ?limit ?(jobs = 1) () =
  let profiles = corpus_profiles limit in
  Wr_support.Pool.map_jobs ~jobs
    (fun (i, p) -> predict_site ~seed:(seed + i) p)
    (List.mapi (fun i p -> (i, p)) profiles)

let render_predict outcomes =
  let sum f = List.fold_left (fun acc o -> acc + f o.comparison) 0 outcomes in
  let dyn = sum (fun c -> c.Wr_static.Compare.dynamic_races) in
  let matched = sum (fun c -> c.Wr_static.Compare.matched_dynamic) in
  let predicted = sum (fun c -> c.Wr_static.Compare.predicted) in
  let confirmed = sum (fun c -> c.Wr_static.Compare.confirmed) in
  let imperfect =
    List.filter
      (fun o ->
        o.comparison.Wr_static.Compare.missed <> []
        || o.comparison.Wr_static.Compare.unconfirmed <> [])
      outcomes
  in
  let row o =
    let c = o.comparison in
    [
      o.p_profile.Profile.name;
      string_of_int c.Wr_static.Compare.dynamic_races;
      string_of_int c.Wr_static.Compare.matched_dynamic;
      string_of_int c.Wr_static.Compare.predicted;
      string_of_int c.Wr_static.Compare.confirmed;
      string_of_int (List.length c.Wr_static.Compare.missed);
    ]
  in
  let table =
    if imperfect = [] then "all sites fully matched\n"
    else
      Wr_support.Table.render
        ~header:[ "Website"; "Dyn"; "Matched"; "Pred"; "Conf"; "Missed" ]
        (List.map row imperfect)
  in
  let pct a b = if b = 0 then 100. else 100. *. float_of_int a /. float_of_int b in
  Printf.sprintf
    "%ssites: %d  dynamic races: %d  predicted: %d\nrecall: %d/%d (%.1f%%)  \
     precision: %d/%d (%.1f%%)\n"
    table (List.length outcomes) dyn predicted matched dyn (pct matched dyn)
    confirmed predicted (pct confirmed predicted)
