module Race = Wr_detect.Race

type outcome = {
  profile : Profile.t;
  raw : Profile.counts;
  filtered : Profile.counts;
  expected_raw : Profile.counts;
  expected_filtered : Profile.counts;
  harmful : Profile.counts;
  ops : int;
  accesses : int;
  detector_records : int;
  crashes : int;
  wall_clock_s : float;
}

let counts_of races =
  let h, f, v, d = Webracer.count_by_type races in
  { Profile.html = h; func = f; var = v; disp = d }

let run_site ?(seed = 42) ?(dedup = true) ?telemetry profile =
  let site = Gen.generate profile in
  let report =
    Webracer.analyze
      (Webracer.config ~page:site.Gen.page ~resources:site.Gen.resources ~seed ~explore:true
         ~dedup ?telemetry ())
  in
  {
    profile;
    raw = counts_of report.Webracer.races;
    filtered = counts_of report.Webracer.filtered;
    expected_raw = Profile.expected_raw profile;
    expected_filtered = Profile.expected_filtered profile;
    harmful = Profile.expected_harmful profile;
    ops = report.Webracer.ops;
    accesses = report.Webracer.accesses;
    detector_records = report.Webracer.detector_records;
    crashes = List.length report.Webracer.crashes;
    wall_clock_s = report.Webracer.wall_clock_s;
  }

let corpus_profiles limit =
  let profiles = Profile.corpus () in
  match limit with
  | Some n -> List.filteri (fun i _ -> i < n) profiles
  | None -> profiles

(* Per-site seeds are fixed by corpus position before the fan-out, so the
   outcome list is independent of [jobs] (site generation and analysis are
   self-contained per item; the pool returns results in input order). *)
let run_corpus_stats ?(seed = 42) ?limit ?(jobs = 1) ?(dedup = true) ?telemetry
    () =
  let profiles = corpus_profiles limit in
  let pool = Wr_support.Pool.create ~jobs () in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Wr_support.Pool.close pool)
      (fun () ->
        Wr_support.Pool.map pool
          (fun (i, p) -> run_site ~seed:(seed + i) ~dedup ?telemetry p)
          (List.mapi (fun i p -> (i, p)) profiles))
  in
  (* Read the profile after [close]: joining the workers makes every
     per-domain accumulator exact (a task's accounting lands just after
     its result is published, so a pre-close snapshot could miss the
     final task of a domain). *)
  (outcomes, Wr_support.Pool.stats pool)

let run_corpus ?seed ?limit ?jobs ?dedup () =
  fst (run_corpus_stats ?seed ?limit ?jobs ?dedup ())

let fidelity o = o.filtered = o.expected_filtered

(* Table 1: mean / median / max of raw (unfiltered) counts per type. *)
let render_table1 outcomes =
  let stat f =
    let xs = List.map f outcomes in
    [
      Printf.sprintf "%.1f" (Wr_support.Stats.mean xs);
      Printf.sprintf "%.1f" (Wr_support.Stats.median xs);
      string_of_int (Wr_support.Stats.max xs);
    ]
  in
  let rows =
    [
      "HTML" :: stat (fun o -> o.raw.Profile.html);
      "Function" :: stat (fun o -> o.raw.Profile.func);
      "Variable" :: stat (fun o -> o.raw.Profile.var);
      "Event Dispatch" :: stat (fun o -> o.raw.Profile.disp);
      "All" :: stat (fun o -> Profile.total o.raw);
    ]
  in
  Wr_support.Table.render ~header:[ "Race type"; "Mean"; "Median"; "Max" ] rows

let cell count harmful = if count = 0 then "0" else Printf.sprintf "%d (%d)" count harmful

let render_table2 outcomes =
  let visible = List.filter (fun o -> Profile.total o.filtered > 0) outcomes in
  let row o =
    let f = o.filtered and h = o.harmful in
    let mark = if fidelity o then "" else " !" in
    [
      o.profile.Profile.name ^ mark;
      cell f.Profile.html h.Profile.html;
      cell f.Profile.func h.Profile.func;
      cell f.Profile.var h.Profile.var;
      cell f.Profile.disp h.Profile.disp;
    ]
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 visible in
  let totals =
    [
      "Total";
      cell (sum (fun o -> o.filtered.Profile.html)) (sum (fun o -> o.harmful.Profile.html));
      cell (sum (fun o -> o.filtered.Profile.func)) (sum (fun o -> o.harmful.Profile.func));
      cell (sum (fun o -> o.filtered.Profile.var)) (sum (fun o -> o.harmful.Profile.var));
      cell (sum (fun o -> o.filtered.Profile.disp)) (sum (fun o -> o.harmful.Profile.disp));
    ]
  in
  Wr_support.Table.render
    ~header:[ "Website"; "HTML"; "Function"; "Variable"; "EventDisp" ]
    (List.map row visible @ [ totals ])

(* --- static-prediction validation (DESIGN.md §8) ---------------------- *)

type predict_breakdown = {
  conf_harmful : int;
  conf_benign : int;
  conf_filtered : int;
}

let breakdown_zero = { conf_harmful = 0; conf_benign = 0; conf_filtered = 0 }

let breakdown_add a b =
  {
    conf_harmful = a.conf_harmful + b.conf_harmful;
    conf_benign = a.conf_benign + b.conf_benign;
    conf_filtered = a.conf_filtered + b.conf_filtered;
  }

type predict_outcome = {
  p_profile : Profile.t;
  comparison : Wr_static.Compare.comparison;
  breakdown : predict_breakdown;
}

(* Classify each confirmed prediction by the strongest dynamic race it
   covers: harmful (kept by the filters and heuristically harmful),
   benign (kept), or filtered (covers only races the §5.3 filters
   suppressed). The filter keeps the physical race values, so [memq]
   decides membership. *)
let classify_confirmed (result : Wr_static.Predict.result)
    (report : Webracer.report) =
  let kept r = List.memq r report.Webracer.filtered in
  List.fold_left
    (fun acc p ->
      match List.filter (fun r -> Wr_static.Compare.covers p r) report.Webracer.races with
      | [] -> acc
      | covered ->
          if List.exists (fun r -> kept r && Race.heuristic_harmful r) covered then
            { acc with conf_harmful = acc.conf_harmful + 1 }
          else if List.exists kept covered then
            { acc with conf_benign = acc.conf_benign + 1 }
          else { acc with conf_filtered = acc.conf_filtered + 1 })
    breakdown_zero result.Wr_static.Predict.predictions

(* Shared predict-and-score path: the dynamic run uses the same config
   [Wr_static.Compare.run] would (exploration on), reused for both the
   comparison and the per-class breakdown. *)
let predict_page ?(seed = 42) ~name ~page ~resources () =
  let result = Wr_static.Predict.predict ~page ~resources () in
  let report = Webracer.analyze (Webracer.config ~page ~resources ~seed ()) in
  {
    p_profile = Profile.base name;
    comparison = Wr_static.Compare.against_report result report;
    breakdown = classify_confirmed result report;
  }

let predict_site ?(seed = 42) profile =
  let site = Gen.generate profile in
  {
    (predict_page ~seed ~name:profile.Profile.name ~page:site.Gen.page
       ~resources:site.Gen.resources ())
    with
    p_profile = profile;
  }

(* The adversarial pack rides along after the 100 profile sites, with
   position-fixed seeds of its own, so the result is independent of
   [jobs] and [--limit] never hides the precision signal. *)
let predict_corpus ?(seed = 42) ?limit ?(jobs = 1) () =
  let profiles = corpus_profiles limit in
  let work =
    List.mapi (fun i p -> `Site (seed + i, p)) profiles
    @ List.mapi
        (fun i (s : Adversarial.scenario) -> `Adv (seed + 100 + i, s))
        (Adversarial.pack ())
  in
  Wr_support.Pool.map_jobs ~jobs
    (function
      | `Site (seed, p) -> predict_site ~seed p
      | `Adv (seed, s) ->
          predict_page ~seed ~name:s.Adversarial.name ~page:s.Adversarial.page
            ~resources:s.Adversarial.resources ())
    work

(* --- prediction-guided triage over the corpus ------------------------- *)

type triage_outcome = {
  t_name : string;
  t_page : string;
  t_resources : (string * string) list;
  t_report : Wr_static.Triage.t;
}

let triage_page ?(seed = 42) ?budget ~name ~page ~resources () =
  {
    t_name = name;
    t_page = page;
    t_resources = resources;
    t_report = Wr_static.Triage.run ~seed ?budget ~page ~resources ();
  }

(* Same layout as [predict_corpus]: profile sites first, the adversarial
   pack after, position-fixed seeds; per-site triage runs sequentially
   inside its pool slot so the reports are independent of [jobs]. *)
let triage_corpus ?(seed = 42) ?limit ?(jobs = 1) ?budget () =
  let profiles = corpus_profiles limit in
  let work =
    List.mapi (fun i p -> `Site (seed + i, p)) profiles
    @ List.mapi
        (fun i (s : Adversarial.scenario) -> `Adv (seed + 100 + i, s))
        (Adversarial.pack ())
  in
  Wr_support.Pool.map_jobs ~jobs
    (function
      | `Site (seed, p) ->
          let site = Gen.generate p in
          triage_page ~seed ?budget ~name:p.Profile.name ~page:site.Gen.page
            ~resources:site.Gen.resources ()
      | `Adv (seed, s) ->
          triage_page ~seed ?budget ~name:s.Adversarial.name
            ~page:s.Adversarial.page ~resources:s.Adversarial.resources ())
    work

let triage_sound outcomes =
  List.for_all (fun o -> Wr_static.Triage.sound o.t_report) outcomes

let render_triage outcomes =
  let module T = Wr_static.Triage in
  let interesting =
    (* Every row would be 100 lines of "1 prediction, confirmed at
       baseline"; show only sites where the guided search had work to
       do (a refutation, an unconfirmed leftover, or a soundness
       violation). *)
    List.filter
      (fun o ->
        T.count `Refuted o.t_report > 0
        || T.count `Unconfirmed o.t_report > 0
        || not (T.sound o.t_report))
      outcomes
  in
  let row o =
    let r = o.t_report in
    [
      (o.t_name ^ if T.sound r then "" else " !");
      string_of_int (List.length r.T.items);
      string_of_int (T.count `Confirmed r);
      string_of_int (T.count `Refuted r);
      string_of_int (T.count `Unconfirmed r);
      string_of_int r.T.schedules_run;
    ]
  in
  let table =
    if interesting = [] then "every prediction confirmed at baseline\n"
    else
      Wr_support.Table.render
        ~header:[ "Website"; "Pred"; "Conf"; "Ref"; "Unconf"; "Sched" ]
        (List.map row interesting)
  in
  let sum f = List.fold_left (fun acc o -> acc + f o.t_report) 0 outcomes in
  let unsound =
    List.filter (fun o -> not (T.sound o.t_report)) outcomes |> List.length
  in
  Printf.sprintf
    "%ssites: %d  predictions: %d  confirmed: %d  refuted: %d  unconfirmed: \
     %d\nschedules: %d run  soundness violations: %d\n"
    table (List.length outcomes)
    (sum (fun r -> List.length r.T.items))
    (sum (T.count `Confirmed))
    (sum (T.count `Refuted))
    (sum (T.count `Unconfirmed))
    (sum (fun r -> r.T.schedules_run))
    unsound

let render_predict outcomes =
  let sum f = List.fold_left (fun acc o -> acc + f o.comparison) 0 outcomes in
  let dyn = sum (fun c -> c.Wr_static.Compare.dynamic_races) in
  let matched = sum (fun c -> c.Wr_static.Compare.matched_dynamic) in
  let predicted = sum (fun c -> c.Wr_static.Compare.predicted) in
  let confirmed = sum (fun c -> c.Wr_static.Compare.confirmed) in
  let imperfect =
    List.filter
      (fun o ->
        o.comparison.Wr_static.Compare.missed <> []
        || o.comparison.Wr_static.Compare.unconfirmed <> [])
      outcomes
  in
  let row o =
    let c = o.comparison in
    [
      o.p_profile.Profile.name;
      string_of_int c.Wr_static.Compare.dynamic_races;
      string_of_int c.Wr_static.Compare.matched_dynamic;
      string_of_int c.Wr_static.Compare.predicted;
      string_of_int c.Wr_static.Compare.confirmed;
      string_of_int (List.length c.Wr_static.Compare.missed);
    ]
  in
  let table =
    if imperfect = [] then "all sites fully matched\n"
    else
      Wr_support.Table.render
        ~header:[ "Website"; "Dyn"; "Matched"; "Pred"; "Conf"; "Missed" ]
        (List.map row imperfect)
  in
  let pct a b = if b = 0 then 100. else 100. *. float_of_int a /. float_of_int b in
  let bd =
    List.fold_left (fun acc o -> breakdown_add acc o.breakdown) breakdown_zero outcomes
  in
  Printf.sprintf
    "%ssites: %d  dynamic races: %d  predicted: %d\nrecall: %d/%d (%.1f%%)  \
     precision: %d/%d (%.1f%%)\nconfirmed by class: harmful %d  benign %d  \
     filtered-only %d  unconfirmed %d\n"
    table (List.length outcomes) dyn predicted matched dyn (pct matched dyn)
    confirmed predicted
    (pct confirmed predicted)
    bd.conf_harmful bd.conf_benign bd.conf_filtered (predicted - confirmed)
