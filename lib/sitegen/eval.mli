(** Evaluation harness: run WebRacer over the synthetic corpus and
    regenerate the paper's Tables 1 and 2.

    Ground truth comes from the profiles; the harness reports both the
    detected counts (what WebRacer actually found) and the planted counts,
    and flags any site where they disagree — the fidelity check replacing
    the paper's manual inspection. *)

type outcome = {
  profile : Profile.t;
  raw : Profile.counts;  (** detected, unfiltered *)
  filtered : Profile.counts;  (** detected, after the §5.3 filters *)
  expected_raw : Profile.counts;
  expected_filtered : Profile.counts;
  harmful : Profile.counts;  (** ground truth for the filtered races *)
  ops : int;
  accesses : int;
  detector_records : int;  (** accesses reaching the detector after dedup *)
  crashes : int;
  wall_clock_s : float;
}

(** [run_site ?seed ?dedup ?telemetry profile] generates the site and
    analyzes it with exploration on ([dedup] defaults to on, matching
    production). [telemetry] may be shared across sites and domains —
    the context is domain-safe. *)
val run_site :
  ?seed:int -> ?dedup:bool -> ?telemetry:Wr_telemetry.Telemetry.t ->
  Profile.t -> outcome

(** [run_corpus ?seed ?limit ?jobs ?dedup ()] runs the whole corpus (or its
    first [limit] sites), in profile order. [jobs > 1] spreads sites over
    that many domains; per-site seeds are position-fixed, so the outcomes
    are identical to the sequential run — only the wall clock changes. *)
val run_corpus :
  ?seed:int -> ?limit:int -> ?jobs:int -> ?dedup:bool -> unit -> outcome list

(** [run_corpus_stats] is {!run_corpus} plus the fleet profile of the
    pool that ran it ({!Wr_support.Pool.stats}: per-domain queue-wait /
    run / idle / GC figures and channel-lock contention) — the
    [corpus --profile] breakdown. An optional shared [telemetry]
    context records spans and counters from every domain. *)
val run_corpus_stats :
  ?seed:int -> ?limit:int -> ?jobs:int -> ?dedup:bool ->
  ?telemetry:Wr_telemetry.Telemetry.t -> unit ->
  outcome list * Wr_support.Pool.stats

(** [fidelity outcome] — detected filtered counts match the planted
    ground truth exactly. *)
val fidelity : outcome -> bool

(** [render_table1 outcomes] formats the Table 1 analogue: mean, median
    and max of detected raw races per type across sites. *)
val render_table1 : outcome list -> string

(** [render_table2 outcomes] formats the Table 2 analogue: per-site
    filtered counts with harmful counts in parentheses; sites with no
    filtered races are elided, totals appended, mismatch-flagged rows
    marked with [!]. *)
val render_table2 : outcome list -> string

(** {2 Static-prediction validation} (DESIGN.md §8)

    Score the ahead-of-time predictor ([Wr_static]) against the dynamic
    detector over the corpus: every dynamically detected raw race should
    be statically predicted (recall), and the prediction sets should not
    drown in unconfirmed noise (precision). *)

(** Confirmed predictions classified by the strongest dynamic race each
    covers: harmful (kept and heuristically harmful), benign (kept),
    or filtered-only (covers only §5.3-suppressed races). *)
type predict_breakdown = {
  conf_harmful : int;
  conf_benign : int;
  conf_filtered : int;
}

type predict_outcome = {
  p_profile : Profile.t;
  comparison : Wr_static.Compare.comparison;
  breakdown : predict_breakdown;
}

(** [predict_page ?seed ~name ~page ~resources ()] predicts statically
    and scores against a dynamic run — the standalone-page path the
    adversarial pack uses. *)
val predict_page :
  ?seed:int ->
  name:string ->
  page:string ->
  resources:(string * string) list ->
  unit ->
  predict_outcome

(** [predict_site ?seed profile] generates the site, predicts statically,
    and scores against a dynamic run with the same seed. *)
val predict_site : ?seed:int -> Profile.t -> predict_outcome

(** [predict_corpus ?seed ?limit ?jobs ()] — {!predict_site} over the
    corpus, then {!predict_page} over the adversarial pack
    ([Adversarial.pack], appended whatever [limit] is); position-fixed
    seeds make the outcome independent of [jobs]. *)
val predict_corpus :
  ?seed:int -> ?limit:int -> ?jobs:int -> unit -> predict_outcome list

(** [render_predict outcomes] — per-site rows for imperfect sites plus
    aggregate recall/precision and the per-class confirmation
    breakdown. *)
val render_predict : predict_outcome list -> string

(** {2 Prediction-guided triage over the corpus}

    The [webracer triage --corpus] path and the CI soundness gate: run
    {!Wr_static.Triage.run} over every site plus the adversarial pack
    and aggregate the classifications. *)

type triage_outcome = {
  t_name : string;
  t_page : string;
  t_resources : (string * string) list;  (** kept for blind comparison *)
  t_report : Wr_static.Triage.t;
}

val triage_page :
  ?seed:int ->
  ?budget:int ->
  name:string ->
  page:string ->
  resources:(string * string) list ->
  unit ->
  triage_outcome

(** [triage_corpus ?seed ?limit ?jobs ?budget ()] — {!triage_page} over
    the corpus then the adversarial pack (same layout and position-fixed
    seeds as {!predict_corpus}); the reports are independent of
    [jobs]. *)
val triage_corpus :
  ?seed:int -> ?limit:int -> ?jobs:int -> ?budget:int -> unit ->
  triage_outcome list

(** [triage_sound outcomes] — no site surfaced a dynamic race outside
    its prediction set (the CI-gate condition). *)
val triage_sound : triage_outcome list -> bool

(** [render_triage outcomes] — rows for sites where the guided search
    refuted, exhausted or missed something, plus aggregate counts. *)
val render_triage : triage_outcome list -> string
