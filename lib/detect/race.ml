open Wr_mem

type race_type = Variable | Html | Function_race | Event_dispatch

type t = {
  loc : Location.t;
  first : Access.t;
  second : Access.t;
  race_type : race_type;
}

let classify ~loc ~first ~second =
  match loc with
  | Location.Event_handler _ -> Event_dispatch
  | Location.Html_elem _ -> Html
  | Location.Js_var _ ->
      let is_decl_write (a : Access.t) =
        a.kind = `Write && Access.has_flag a Function_decl
      in
      if is_decl_write first || is_decl_write second then Function_race else Variable

let make ~first ~second =
  let loc = first.Access.loc in
  { loc; first; second; race_type = classify ~loc ~first ~second }

let type_name = function
  | Variable -> "variable"
  | Html -> "html"
  | Function_race -> "function"
  | Event_dispatch -> "event-dispatch"

let heuristic_harmful t =
  let miss = Access.has_flag t.first Observed_miss || Access.has_flag t.second Observed_miss in
  let lost_input =
    (Access.has_flag t.first User_input || Access.has_flag t.second User_input)
    && not
         (Access.has_flag t.first Checked_read_first
         || Access.has_flag t.second Checked_read_first)
  in
  miss || lost_input

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s race on %a:@,%a@,%a@]" (type_name t.race_type) Location.pp
    t.loc Access.pp t.first Access.pp t.second

let to_json ?(extra = []) t =
  let open Wr_support.Json in
  let access (a : Access.t) =
    Obj
      [
        ("kind", String (match a.kind with `Read -> "read" | `Write -> "write"));
        ("op", Int a.op);
        ("context", String a.context);
      ]
  in
  Obj
    ([
       ("type", String (type_name t.race_type));
       ("location", String (Location.to_string t.loc));
       ("first", access t.first);
       ("second", access t.second);
       ("harmful_hint", Bool (heuristic_harmful t));
     ]
    @ extra)
