(** Post-processing report filters (paper §5.3).

    Running on production sites produces many benign reports; the paper
    found two filters effective for surfacing harmful races:

    - {!form_field} suppresses variable races not involving an HTML form
      field's value, and further drops form races whose writing operation
      read the field first (such reads check that the user has not modified
      the field, making the race harmless);
    - {!single_dispatch} retains only event-dispatch races on events that
      dispatch at most once in the run (e.g. [load]) — missing a handler
      for a repeating event like [click] merely loses one occurrence.

    HTML and function races pass through both filters untouched. *)

(** Facts about the finished run that filters consult. *)
type run_info = {
  dispatch_count : target:int -> event:string -> int;
      (** how many times [event] was dispatched on node [target] *)
}

val form_field : Race.t list -> Race.t list

val single_dispatch : run_info -> Race.t list -> Race.t list

(** Filter names used in {!outcome.counts}, suppression attributions,
    [filter.suppress] log events and the JSON report. *)
val form_field_name : string

val single_dispatch_name : string

(** The result of running the filter chain with attribution: which filter
    suppressed which race (invisible in the plain filtered list), plus a
    per-filter suppression tally in chain order. *)
type outcome = {
  kept : Race.t list;  (** races surviving every filter, input order *)
  suppressed : (string * Race.t) list;
      (** (filter name, race) for each suppression, in chain order *)
  counts : (string * int) list;  (** suppression tally per filter *)
}

(** [apply info races] runs the §6.3 filter chain, recording which filter
    suppressed which race and emitting one [filter.suppress] log event
    per suppression ({!Wr_support.Log}). *)
val apply : run_info -> Race.t list -> outcome

(** [paper_filters info races] is [(apply info races).kept] — the §6.3
    configuration. *)
val paper_filters : run_info -> Race.t list -> Race.t list
