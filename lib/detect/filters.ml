open Wr_mem

type run_info = { dispatch_count : target:int -> event:string -> int }

type outcome = {
  kept : Race.t list;
  suppressed : (string * Race.t) list;
  counts : (string * int) list;
}

let form_field_name = "form-field"

let single_dispatch_name = "single-dispatch"

let involves_form_field (r : Race.t) =
  Access.has_flag r.first Form_field || Access.has_flag r.second Form_field

let writer_checked_first (r : Race.t) =
  let checked (a : Access.t) = a.kind = `Write && Access.has_flag a Checked_read_first in
  checked r.first || checked r.second

let form_field_keeps (r : Race.t) =
  match r.race_type with
  | Variable -> involves_form_field r && not (writer_checked_first r)
  | Html | Function_race | Event_dispatch -> true

let single_dispatch_keeps info (r : Race.t) =
  match r.race_type, r.loc with
  | Event_dispatch, Location.Event_handler { target; event; _ } ->
      info.dispatch_count ~target ~event <= 1
  | Event_dispatch, (Location.Js_var _ | Location.Html_elem _) ->
      (* Unreachable by classification, but keep such reports visible. *)
      true
  | (Variable | Html | Function_race), _ -> true

let form_field races = List.filter form_field_keeps races

let single_dispatch info races = List.filter (single_dispatch_keeps info) races

(* Each suppression is logged with the responsible filter so a developer
   can see *why* a race vanished from the report — previously filter
   outcomes were invisible. *)
let log_suppression filter (r : Race.t) =
  if Wr_support.Log.enabled Wr_support.Log.Info then
    Wr_support.Log.info "filter.suppress"
      [
        ("filter", Wr_support.Json.String filter);
        ("race_type", Wr_support.Json.String (Race.type_name r.race_type));
        ("location", Wr_support.Json.String (Location.to_string r.loc));
        ("first_op", Wr_support.Json.Int r.first.Access.op);
        ("second_op", Wr_support.Json.Int r.second.Access.op);
      ]

let apply info races =
  let stage name keeps (kept, suppressed) =
    List.fold_left
      (fun (kept, suppressed) r ->
        if keeps r then (r :: kept, suppressed)
        else begin
          log_suppression name r;
          (kept, (name, r) :: suppressed)
        end)
      ([], suppressed) kept
    |> fun (kept, suppressed) -> (List.rev kept, suppressed)
  in
  let kept, suppressed =
    (races, [])
    |> stage form_field_name form_field_keeps
    |> stage single_dispatch_name (single_dispatch_keeps info)
  in
  let suppressed = List.rev suppressed in
  let count name =
    List.length (List.filter (fun (f, _) -> f = name) suppressed)
  in
  {
    kept;
    suppressed;
    counts =
      [
        (form_field_name, count form_field_name);
        (single_dispatch_name, count single_dispatch_name);
      ];
  }

let paper_filters info races = (apply info races).kept
