(** Race reports and their classification (paper §2, §6.1).

    The paper distinguishes four race types by what the racing accesses
    touch: ordinary JavaScript locations (variable races), DOM nodes (HTML
    races), invocations of not-yet-parsed functions (function races), and
    event-handler registration vs. dispatch (event dispatch races). *)

type race_type = Variable | Html | Function_race | Event_dispatch

type t = {
  loc : Wr_mem.Location.t;
  first : Wr_mem.Access.t;  (** the access observed earlier in this run *)
  second : Wr_mem.Access.t;  (** the access whose recording triggered the report *)
  race_type : race_type;
}

(** [classify ~loc ~first ~second] follows §6.1: event-handler locations are
    event-dispatch races, element locations are HTML races, and a variable
    race whose racing write is a hoisted function declaration is a function
    race. *)
val classify :
  loc:Wr_mem.Location.t -> first:Wr_mem.Access.t -> second:Wr_mem.Access.t -> race_type

val make : first:Wr_mem.Access.t -> second:Wr_mem.Access.t -> t

val type_name : race_type -> string

(** [heuristic_harmful t] is the tool-side severity hint: a race is flagged
    when the run produced direct evidence of harm — a lookup or call that
    observed absence (potential exception, §2.3/§2.4), or user input
    overwritten without the §5.3 read-before-write check (§2.2). The
    evaluation harness uses planted ground truth instead; this hint is what
    the CLI surfaces to a developer. *)
val heuristic_harmful : t -> bool

val pp : Format.formatter -> t -> unit

(** [to_json ?extra t] renders the race; [extra] fields (e.g. a witness
    from [Wr_explain], which this library cannot depend on) are appended
    to the object. *)
val to_json : ?extra:(string * Wr_support.Json.t) list -> t -> Wr_support.Json.t
