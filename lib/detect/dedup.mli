(** Per-operation access deduplication — a front-end for any {!Detector.t}.

    Race verdicts are operation-granular: the detectors compare the
    {e operations} behind two accesses, never the access count, so a loop
    that reads [a[i]] 500 times inside one [Script] operation feeds the
    detector 500 identical CHC-triggering lookups where one suffices. This
    wrapper swallows an access when the {e same operation} already
    forwarded a same-shape access ({!Wr_mem.Access.same_shape}: same
    location, kind, flags, context) of the same kind to the same location.
    The cache flushes on operation switch, implemented as a per-location
    epoch: an interleaved operation (a nested dispatch segment) only
    invalidates the locations it actually touches, so returning to the
    outer operation keeps its still-valid entries.

    Two rules keep the wrapped detector's state machine bit-identical to
    the unwrapped one:

    - a write is only a duplicate of the {e most recent} forwarded write
      with no intervening read of that location by the operation — an
      intervening read makes the next write [Checked_read_first]-flagged
      ({!Last_access}, {!Full_track}), so the cache's write slot is
      invalidated on every read;
    - an access whose flags or context differ from the cached one (say a
      later read that observed a miss) is forwarded, not swallowed.

    Under those rules a duplicate's detector transition is provably a
    no-op: the CHC check it would trigger compares the same pair of
    operations the first occurrence already compared, and the slot it
    would overwrite receives a same-shape record. *)

type stats = {
  seen : int;  (** raw accesses entering the wrapper *)
  forwarded : int;  (** accesses that reached the wrapped detector *)
}

(** [swallowed s] and [ratio s] summarize a run: [ratio] is raw accesses
    per forwarded access (1.0 = nothing deduplicated). *)
val swallowed : stats -> int

val ratio : stats -> float

(** [wrap d] is [d] behind the dedup cache plus a live stats reader. The
    wrapper's [accesses_seen] reports {e raw} accesses (what the page did),
    keeping reports comparable with dedup off; [races] is untouched. *)
val wrap : Detector.t -> Detector.t * (unit -> stats)
