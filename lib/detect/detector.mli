(** The detector interface the instrumented browser feeds.

    The paper notes its framework "allows us to plug in any dynamic race
    detector" (§5.2); this record is that plug point. {!Last_access} is the
    paper's detector, {!Full_track} the ablation variant, [null] the
    uninstrumented baseline for overhead measurements. *)

type t = {
  name : string;
  record : Wr_mem.Access.t -> unit;  (** called on every instrumented access *)
  races : unit -> Race.t list;
      (** reported races so far, in discovery order; at most one per
          location per run (paper footnote 13) *)
  accesses_seen : unit -> int;
}

(** [null] discards every access and reports nothing — the "instrumentation
    disabled" baseline of the §6.3 performance comparison. *)
val null : t

(** [with_logging d] wraps [d] to emit a [detect.batch] debug event
    every 1024 accesses and a [detect.races] debug event on report — the
    structured-log view of detector progress. Near-free when the log
    level is below debug (one increment and mask per access). *)
val with_logging : t -> t

(** [with_telemetry tm d] wraps [d] ({!with_logging} included) so each
    [record] call is counted and its cost accumulated under the
    ["detect"] phase; just the logging wrapper when [tm] is disabled. *)
val with_telemetry : Wr_telemetry.Telemetry.t -> t -> t
