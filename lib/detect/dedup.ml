open Wr_mem

type stats = { seen : int; forwarded : int }

let swallowed s = s.seen - s.forwarded

let ratio s = if s.forwarded = 0 then 1.0 else float_of_int s.seen /. float_of_int s.forwarded

(* One cache line per location, valid only for the operation in [epoch]:
   a slot whose epoch differs from the incoming access's op is logically
   empty. Epochs make the op-switch flush free (an interleaved operation
   only invalidates the locations it actually touches) and make the
   duplicate test cheap — a cache hit already proves same location, same
   kind slot and same operation, leaving flags and context. *)
type slots = {
  mutable epoch : Wr_hb.Op.id;
  mutable read : Access.t option;
  mutable wrote : Access.t option;
}

type state = {
  cache : slots Location.Tbl.t;
  mutable seen : int;
  mutable forwarded : int;
}

let slots_for st loc =
  match Location.Tbl.find_opt st.cache loc with
  | Some s -> s
  | None ->
      let s = { epoch = -1; read = None; wrote = None } in
      Location.Tbl.add st.cache loc s;
      s

(* [p] comes from the same epoch (same op) and the same location/kind slot
   as [a], so only flags and context can distinguish them. Context strings
   are shared per operation by the emitters, so the physical check almost
   always decides. *)
let same_record (p : Access.t) (a : Access.t) =
  p.Access.flags = a.Access.flags
  && (p.Access.context == a.Access.context || String.equal p.Access.context a.Access.context)

let record st (inner : Detector.t) (a : Access.t) =
  st.seen <- st.seen + 1;
  let s = slots_for st a.Access.loc in
  if s.epoch <> a.Access.op then begin
    s.epoch <- a.Access.op;
    s.read <- None;
    s.wrote <- None
  end;
  let duplicate =
    match a.Access.kind with
    | `Read -> (
        (* A read arms the Checked_read_first transition for the op's next
           write, so the cached write is no longer a faithful duplicate. *)
        s.wrote <- None;
        match s.read with
        | Some p when same_record p a -> true
        | Some _ | None ->
            s.read <- Some a;
            false)
    | `Write -> (
        match s.wrote with
        | Some p when same_record p a -> true
        | Some _ | None ->
            s.wrote <- Some a;
            false)
  in
  if not duplicate then begin
    st.forwarded <- st.forwarded + 1;
    inner.Detector.record a
  end

(* Domain-local high-water mark for the location-cache size: sites on one
   corpus domain are alike, so pre-sizing each wrap's table to the largest
   seen on this domain avoids the rehash-and-copy churn of growing from
   256 on every site — minor-GC pressure that is pure waste on the fleet
   hot path. A size *hint* is deliberately all we share: reusing the
   table itself across wraps could alias stale epoch slots into the next
   site's detector, and no verdict is worth that risk. *)
let cache_size_hint : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 256)

let wrap (inner : Detector.t) =
  let hint = Domain.DLS.get cache_size_hint in
  let st = { cache = Location.Tbl.create !hint; seen = 0; forwarded = 0 } in
  ( {
      inner with
      Detector.name = inner.Detector.name ^ "+dedup";
      record = record st inner;
      accesses_seen = (fun () -> st.seen);
    },
    fun () ->
      (* Reading the stats marks the end of a site's useful life, so fold
         the observed table size into this domain's hint. *)
      hint := max !hint (Location.Tbl.length st.cache);
      { seen = st.seen; forwarded = st.forwarded } )
