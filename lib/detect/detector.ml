type t = {
  name : string;
  record : Wr_mem.Access.t -> unit;
  races : unit -> Race.t list;
  accesses_seen : unit -> int;
}

let null = { name = "null"; record = ignore; races = (fun () -> []); accesses_seen = (fun () -> 0) }

(* Per-access span allocation would dominate the hot path; accounted time
   plus counters keep detector bookkeeping visible in the phase table at a
   bounded cost, and only when telemetry is on. *)
let with_telemetry tm d =
  let module T = Wr_telemetry.Telemetry in
  if not (T.enabled tm) then d
  else
    {
      d with
      record =
        (fun a ->
          T.incr tm "detect.accesses";
          T.account tm ~cat:"detect" ~name:"record" (fun () -> d.record a));
      races =
        (fun () ->
          let rs = T.account tm ~cat:"detect" ~name:"races" (fun () -> d.races ()) in
          T.set_counter tm "detect.races" (List.length rs);
          rs);
    }
