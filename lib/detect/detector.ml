type t = {
  name : string;
  record : Wr_mem.Access.t -> unit;
  races : unit -> Race.t list;
  accesses_seen : unit -> int;
}

let null = { name = "null"; record = ignore; races = (fun () -> []); accesses_seen = (fun () -> 0) }

(* The record path is far too hot for per-access events; a power-of-two
   batch counter keeps the disabled-path cost at one increment and mask. *)
let batch_mask = 1024 - 1

let with_logging d =
  let module L = Wr_support.Log in
  let seen = ref 0 in
  {
    d with
    record =
      (fun a ->
        incr seen;
        if !seen land batch_mask = 0 && L.enabled L.Debug then
          L.debug "detect.batch"
            [
              ("detector", Wr_support.Json.String d.name);
              ("accesses", Wr_support.Json.Int !seen);
            ];
        d.record a);
    races =
      (fun () ->
        let rs = d.races () in
        if L.enabled L.Debug then
          L.debug "detect.races"
            [
              ("detector", Wr_support.Json.String d.name);
              ("races", Wr_support.Json.Int (List.length rs));
            ];
        rs);
  }

(* Per-access span allocation would dominate the hot path; accounted time
   plus counters keep detector bookkeeping visible in the phase table at a
   bounded cost, and only when telemetry is on. *)
let with_telemetry tm d =
  let module T = Wr_telemetry.Telemetry in
  let d = with_logging d in
  if not (T.enabled tm) then d
  else
    {
      d with
      record =
        (fun a ->
          T.incr tm "detect.accesses";
          T.account tm ~cat:"detect" ~name:"record" (fun () -> d.record a));
      races =
        (fun () ->
          let rs = T.account tm ~cat:"detect" ~name:"races" (fun () -> d.races ()) in
          T.set_counter tm "detect.races" (List.length rs);
          rs);
    }
