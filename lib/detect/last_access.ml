open Wr_mem

type slots = { mutable last_read : Access.t option; mutable last_write : Access.t option }

type state = {
  graph : Wr_hb.Graph.t;
  table : slots Location.Tbl.t;
  reported : unit Location.Tbl.t;  (* footnote 13: one race per location per run *)
  mutable races : Race.t list;
  mutable seen : int;
}

let chc graph (prev : Access.t option) (cur : Access.t) =
  match prev with None -> None | Some p ->
    if Wr_hb.Graph.chc graph p.Access.op cur.Access.op then Some p else None

let report st ~first ~second =
  let key = Location.report_key second.Access.loc in
  if not (Location.Tbl.mem st.reported key) then begin
    Location.Tbl.add st.reported key ();
    st.races <- Race.make ~first ~second :: st.races
  end

let slots_for st loc =
  match Location.Tbl.find_opt st.table loc with
  | Some s -> s
  | None ->
      let s = { last_read = None; last_write = None } in
      Location.Tbl.add st.table loc s;
      s

let record st (a : Access.t) =
  st.seen <- st.seen + 1;
  let s = slots_for st a.loc in
  match a.kind with
  | `Read ->
      (match chc st.graph s.last_write a with
      | Some w -> report st ~first:w ~second:a
      | None -> ());
      s.last_read <- Some a
  | `Write ->
      let a =
        match s.last_read with
        | Some r when r.Access.op = a.op -> Access.add_flag a Checked_read_first
        | Some _ | None -> a
      in
      let ww_relevant = Location.conflict_relevant a.loc ~kind:`Write ~kind':`Write in
      (match (if ww_relevant then chc st.graph s.last_write a else None) with
      | Some w -> report st ~first:w ~second:a
      | None -> (
          match chc st.graph s.last_read a with
          | Some r -> report st ~first:r ~second:a
          | None -> ()));
      s.last_write <- Some a

(* Same domain-local pre-sizing trick as [Dedup.cache_size_hint]: sites
   analysed on one fleet domain have similar location counts, so seed
   each new detector's table at this domain's high-water mark instead of
   rehash-growing from 1024 every site. Only the *size* is shared —
   sharing tables would alias one site's accesses into the next. *)
let table_size_hint : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 1024)

let create graph =
  let hint = Domain.DLS.get table_size_hint in
  let st =
    {
      graph;
      table = Location.Tbl.create !hint;
      reported = Location.Tbl.create 64;
      races = [];
      seen = 0;
    }
  in
  {
    Detector.name = "last-access";
    record = record st;
    races =
      (fun () ->
        hint := max !hint (Location.Tbl.length st.table);
        List.rev st.races);
    accesses_seen = (fun () -> st.seen);
  }
