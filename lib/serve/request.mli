(** The first-class request side of the WebRacer service API.

    Every entry point — the [webracer serve] daemon, the [webracer call]
    client, the HTTP surface, and the one-shot CLI subcommands —
    constructs these values through {!make} and the typed builders
    below; {!of_line} is the single decode path from the
    newline-delimited JSON wire protocol, and [Api.dispatch] the single
    dispatch path. The builders and the decoder share one set of
    validation checks, so a request a client can construct is exactly a
    request the daemon will accept.

    Wire shape (one object per line, no raw newlines inside):

    {v
    {"schema_version":1, "id":<any>, "verb":"analyze", "params":{...}}
    v}

    ["schema_version"] defaults to {!Wr_support.Schema.version} when
    absent and is rejected when it names a version this build does not
    speak ({!Wr_support.Schema.supported} lists what it does). ["id"] is
    any JSON value, echoed verbatim on the response so clients can
    pipeline requests over one connection. ["trace"] is an optional
    non-empty string: a client-chosen trace id for end-to-end request
    tracing, echoed on the response and stamped on the daemon's log
    lines, telemetry spans and latency histograms (the daemon mints an
    internal id when absent). *)

module Config = Wr_browser.Config

(** Parameters shared by every page-analyzing verb; the JSON shape
    mirrors the [webracer run] flags. Only [page] is required on the
    wire. *)
type analyze_params = {
  page : string;  (** HTML of the main page *)
  resources : (string * string) list;
      (** URL -> body, wire shape [{"url": "body", ...}] *)
  seed : int;
  explore : bool;
  detector : Config.detector_kind;
      (** ["last-access"] (default), ["full-track"] or ["none"] *)
  hb : Wr_hb.Graph.strategy;  (** ["closure"] (default), ["chain-vc"], ["dfs"] *)
  time_limit : float;  (** virtual-ms horizon; servers may clamp it *)
  dedup : bool;
}

type explain_params = {
  target : analyze_params;
  race : int option;  (** 1-based selection, [None] = all races *)
}

type replay_params = {
  target : analyze_params;
  schedules : int;
  parse_delay : float;
  jobs : int;  (** parallelism for the schedule sweep, verdict-invariant *)
}

type predict_params = {
  target : analyze_params;
      (** only [page]/[resources]/[seed] matter unless [compare] *)
  compare : bool;  (** also run the dynamic detector and score recall *)
  lint : bool;  (** answer with the lint findings only *)
}

(** Parameters of the prediction-guided triage verb
    ([Wr_static.Triage.run]): predict, then run the baseline plus
    directed schedules until every prediction is confirmed, refuted
    (with a certificate) or the [budget] is exhausted. *)
type triage_params = {
  target : analyze_params;  (** only [page]/[resources]/[seed] matter *)
  budget : int;  (** max schedules, baseline included; must be >= 1 *)
  jobs : int;  (** server-side schedule parallelism, report-invariant *)
}

(** Parameters of the streaming [watch] verb (daemon-only, raw socket
    only): the daemon answers with one metrics-snapshot response per
    [interval_s] on the same connection, [count] times ([None] = until
    the connection closes). [webracer top] is the rendering client. *)
type watch_params = {
  interval_s : float;  (** must be positive; the daemon may clamp it *)
  count : int option;
}

type verb =
  | Ping
  | Stats
  | Metrics  (** latency histograms + Prometheus text; daemon-only *)
  | Watch of watch_params  (** periodic metrics snapshots; daemon-only *)
  | Analyze of analyze_params
  | Explain of explain_params
  | Replay of replay_params
  | Predict of predict_params
  | Triage of triage_params

type t = {
  id : Wr_support.Json.t;
  trace : string option;
  schema : int;  (** negotiated wire generation; responses mirror it *)
  verb : verb;
}

(** [make ?schema ?trace ~id verb] — the one request constructor.
    [schema] defaults to {!Wr_support.Schema.version} (v1);
    @raise Invalid_argument on an unsupported generation. *)
val make : ?schema:int -> ?trace:string -> id:Wr_support.Json.t -> verb -> t

(** {2 Typed builders}

    The programmatic mirror of the wire decoder: each builder runs the
    same validation the daemon applies when decoding, raising
    [Invalid_argument] where the decoder would answer [bad_request]. *)

(** [analyze_params ~page ()] with the same defaults as
    [Webracer.config]. *)
val analyze_params :
  page:string ->
  ?resources:(string * string) list ->
  ?seed:int ->
  ?explore:bool ->
  ?detector:Config.detector_kind ->
  ?hb:Wr_hb.Graph.strategy ->
  ?time_limit:float ->
  ?dedup:bool ->
  unit ->
  analyze_params

val analyze : analyze_params -> verb
val explain : ?race:int -> analyze_params -> verb
val replay : ?schedules:int -> ?parse_delay:float -> ?jobs:int -> analyze_params -> verb
val predict : ?compare:bool -> ?lint:bool -> analyze_params -> verb

(** [budget] defaults to {!Wr_static.Triage.default_budget}. *)
val triage : ?budget:int -> ?jobs:int -> analyze_params -> verb

val watch : ?interval_s:float -> ?count:int -> unit -> verb

val verb_name : verb -> string

(** Canonical JSON of the params (every field explicit, fixed order) —
    the wire encoding, and the [Cache] key material. *)
val analyze_params_to_json : analyze_params -> Wr_support.Json.t

(** [to_json t] is the wire document ({!of_json} round-trips it). *)
val to_json : t -> Wr_support.Json.t

val to_line : t -> string

(** {2 The HTTP surface mapping}

    Each verb's home on the HTTP endpoint; [Http] and the [--http]
    client derive routes from these so the two stay in lockstep. *)

(** ["GET"] for the side-effect-free status verbs, ["POST"] otherwise. *)
val http_method : verb -> string

(** [/v1/<verb>]; [None] for verbs with no HTTP mapping ([watch]). *)
val http_path : verb -> string option

(** The POST body: the request's ["params"] object ([None] when the verb
    takes no params — GET routes send no body). *)
val http_body : verb -> Wr_support.Json.t option

(** [of_json j] validates and decodes one request. [Error (id, msg)]
    carries the request's ["id"] when one was present, so the error
    response can still be correlated. *)
val of_json : Wr_support.Json.t -> (t, Wr_support.Json.t * string) result

(** [of_line s] parses one wire line then decodes it; JSON syntax errors
    come back as [Error (Null, msg)]. *)
val of_line : string -> (t, Wr_support.Json.t * string) result
