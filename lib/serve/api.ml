module Json = Wr_support.Json
module Schema = Wr_support.Schema
module Race = Wr_detect.Race

let config_of_params ?(trace = false) ?telemetry (p : Request.analyze_params) =
  Webracer.config ~page:p.Request.page ~resources:p.Request.resources
    ~seed:p.Request.seed ~explore:p.Request.explore ~detector:p.Request.detector
    ~hb_strategy:p.Request.hb ~time_limit:p.Request.time_limit
    ~dedup:p.Request.dedup ~trace ?telemetry ()

let analyze ?trace ?telemetry p =
  Webracer.analyze (config_of_params ?trace ?telemetry p)

let select_witnesses (report : Webracer.report) ~race =
  let races = report.Webracer.races in
  match race with
  | None ->
      Ok
        (List.mapi
           (fun i r -> (i + 1, r, Wr_explain.of_race report.Webracer.hb_graph r))
           races)
  | Some n ->
      if n < 1 || n > List.length races then
        Error
          (Printf.sprintf "race %d out of range (page has %d races)" n
             (List.length races))
      else
        let r = List.nth races (n - 1) in
        Ok [ (n, r, Wr_explain.of_race report.Webracer.hb_graph r) ]

let explain_json (report : Webracer.report) selection =
  let g = report.Webracer.hb_graph in
  Json.Obj
    [
      Schema.tag;
      ("races", Json.Int (List.length report.Webracer.races));
      ("filtered", Json.Int (List.length report.Webracer.filtered));
      ( "witnesses",
        Json.List
          (List.map
             (fun (i, race, w) ->
               Json.Obj
                 [
                   ("index", Json.Int i);
                   ( "race",
                     Race.to_json ~extra:[ ("witness", Wr_explain.to_json g w) ] race
                   );
                 ])
             selection) );
    ]

let replay (p : Request.replay_params) =
  Webracer.Replay.explore_schedules ~jobs:p.Request.jobs
    (config_of_params p.Request.target)
    ~seeds:(List.init p.Request.schedules (fun i -> i))
    ~parse_delay:p.Request.parse_delay ()

let predict_json ?telemetry (p : Request.predict_params) =
  let tm = Option.value ~default:Wr_telemetry.Telemetry.disabled telemetry in
  let t = p.Request.target in
  let result =
    Wr_static.Predict.predict ~tm ~page:t.Request.page
      ~resources:t.Request.resources ()
  in
  if p.Request.lint then
    Json.Obj
      [
        Schema.tag;
        ( "lint",
          Json.List
            (List.map Wr_static.Predict.lint_to_json
               result.Wr_static.Predict.lint) );
      ]
  else
    let compare =
      if p.Request.compare then
        Some
          (Wr_static.Compare.to_json result.Wr_static.Predict.model
             (Wr_static.Compare.against_report result (analyze t)))
      else None
    in
    Wr_static.Predict.to_json ?compare result

let triage_json ?telemetry (p : Request.triage_params) =
  let t = p.Request.target in
  Wr_static.Triage.to_json
    (Wr_static.Triage.run ?tm:telemetry ~seed:t.Request.seed
       ~jobs:p.Request.jobs ~budget:p.Request.budget ~page:t.Request.page
       ~resources:t.Request.resources ())

let ping_result = Json.Obj [ ("pong", Json.Bool true) ]

let no_stats () =
  failwith "stats is only served by a running daemon, not a one-shot dispatch"

let no_metrics () =
  failwith "metrics is only served by a running daemon, not a one-shot dispatch"

let dispatch ?(stats = no_stats) ?(metrics = no_metrics) (req : Request.t) =
  let id = req.Request.id in
  let trace = req.Request.trace in
  let schema = req.Request.schema in
  let ok result = Response.ok ~schema ~id ?trace result in
  match
    match req.Request.verb with
    | Request.Ping -> ok ping_result
    | Request.Stats -> ok (stats ())
    | Request.Metrics -> ok (metrics ())
    | Request.Watch _ ->
        Response.error ~schema ~id ?trace Response.Bad_request
          "watch streams from a running daemon, not a one-shot dispatch"
    | Request.Analyze p -> ok (Webracer.report_to_json (analyze p))
    | Request.Explain { target; race } -> (
        let report = analyze target in
        match select_witnesses report ~race with
        | Ok selection -> ok (explain_json report selection)
        | Error msg -> Response.error ~schema ~id ?trace Response.Bad_request msg)
    | Request.Replay p -> ok (Webracer.Replay.verdict_to_json (replay p))
    | Request.Predict p -> ok (predict_json p)
    | Request.Triage p -> ok (triage_json p)
  with
  | resp -> resp
  | exception e ->
      (* Crash isolation: a pathological page must answer, not abort the
         worker (let alone the daemon). *)
      Response.error ~schema ~id ?trace Response.Internal (Printexc.to_string e)
