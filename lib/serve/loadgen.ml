module Json = Wr_support.Json
module Histo = Wr_support.Stats.Histo
module Clock = Wr_support.Clock

type surface = Raw | Http

type config = {
  address : Daemon.address;
  conns : int;
  pipeline : int;
  duration : float;
  verb : Request.verb;
  surface : surface;
  schema : int;
}

let default_config address =
  {
    address;
    conns = 4;
    pipeline = 8;
    duration = 2.;
    verb = Request.Ping;
    surface = Raw;
    schema = Wr_support.Schema.version;
  }

type result = {
  duration_s : float;
  conns_run : int;
  pipeline_run : int;
  sent : int;
  received : int;
  throughput_rps : float;
  classes : (string * int) list;  (** response outcome -> count, sorted *)
  latency : Histo.t;  (** per-request round trip, seconds *)
}

let outcome = function
  | Response.Ok _ -> "ok"
  | Response.Error { code; _ } -> Response.code_name code

(* What one client thread brings home. *)
type tally = {
  mutable t_sent : int;
  mutable t_received : int;
  t_classes : (string, int) Hashtbl.t;
  t_lat : Histo.t;
}

let bump tally cls =
  tally.t_received <- tally.t_received + 1;
  Hashtbl.replace tally.t_classes cls
    (1 + Option.value ~default:0 (Hashtbl.find_opt tally.t_classes cls))

let classify_body tally ~status body ~t_send =
  Histo.add tally.t_lat (Clock.now () -. t_send);
  match Response.of_line body with
  | Ok resp -> bump tally (outcome resp)
  | Error _ -> bump tally (Printf.sprintf "http_%d" status)

(* One connection's raw-protocol loop: keep [pipeline] requests
   outstanding until the deadline, matching responses back to their
   send timestamps by id (async completions may overtake inline
   answers, so arrival order proves nothing). *)
let run_raw cfg tally deadline client =
  let line_of seq =
    Request.to_line
      (Request.make ~schema:cfg.schema ~id:(Json.Int seq) cfg.verb)
  in
  let in_flight = Hashtbl.create 16 in
  let seq = ref 0 in
  let recv_one () =
    match Client.recv client with
    | Error _ ->
        (* connection gone: abandon whatever was outstanding *)
        Hashtbl.reset in_flight;
        false
    | Ok resp ->
        (match Response.id resp with
        | Json.Int n -> (
            match Hashtbl.find_opt in_flight n with
            | Some t_send ->
                Hashtbl.remove in_flight n;
                Histo.add tally.t_lat (Clock.now () -. t_send)
            | None -> ())
        | _ -> ());
        bump tally (outcome resp);
        true
  in
  (try
     while Clock.now () < deadline do
       while Hashtbl.length in_flight < cfg.pipeline && Clock.now () < deadline do
         let n = !seq in
         incr seq;
         Hashtbl.replace in_flight n (Clock.now ());
         Client.send_line client (line_of n);
         tally.t_sent <- tally.t_sent + 1
       done;
       if Hashtbl.length in_flight > 0 then ignore (recv_one ())
     done;
     (* Drain what is still outstanding, but never hang on a wedged
        server: a 5 s receive timeout bounds the tail. *)
     Client.set_recv_timeout client 5.;
     while Hashtbl.length in_flight > 0 && recv_one () do
       ()
     done
   with Unix.Unix_error _ | Sys_error _ -> ())

(* The HTTP loop is sequential by construction (one request, one
   response per round trip — the daemon serializes per-connection
   anyway), so [pipeline] does not apply. *)
let run_http cfg tally deadline client =
  let meth = Request.http_method cfg.verb in
  let path =
    match Request.http_path cfg.verb with
    | Some p -> p
    | None -> invalid_arg "verb has no HTTP endpoint"
  in
  let body =
    match Request.http_body cfg.verb with
    | Some j -> Json.to_string j
    | None -> ""
  in
  (try
     while Clock.now () < deadline do
       let t_send = Clock.now () in
       tally.t_sent <- tally.t_sent + 1;
       match Client.http_request client ~meth ~path ~body () with
       | Ok (status, resp_body) -> classify_body tally ~status resp_body ~t_send
       | Error _ -> raise Exit
     done
   with Exit | Unix.Unix_error _ | Sys_error _ -> ())

let run cfg =
  let conns = max 1 cfg.conns in
  let pipeline = max 1 cfg.pipeline in
  let cfg = { cfg with conns; pipeline } in
  let tallies =
    Array.init conns (fun _ ->
        {
          t_sent = 0;
          t_received = 0;
          t_classes = Hashtbl.create 8;
          t_lat = Histo.create ();
        })
  in
  (* Barrier: every thread connects first, then all start blasting at
     the same instant — the measured window contains only load, not
     connection setup. *)
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref 0 in
  let released = ref false in
  let deadline = ref 0. in
  let worker i =
    match Client.connect ~retry_for:5. cfg.address with
    | exception (Unix.Unix_error _ | Sys_error _) ->
        Mutex.lock lock;
        incr ready;
        Condition.broadcast cond;
        Mutex.unlock lock
    | client ->
        Mutex.lock lock;
        incr ready;
        Condition.broadcast cond;
        while not !released do
          Condition.wait cond lock
        done;
        let stop_at = !deadline in
        Mutex.unlock lock;
        (match cfg.surface with
        | Raw -> run_raw cfg tallies.(i) stop_at client
        | Http -> run_http cfg tallies.(i) stop_at client);
        Client.close client
  in
  let threads = Array.init conns (fun i -> Thread.create worker i) in
  Mutex.lock lock;
  while !ready < conns do
    Condition.wait cond lock
  done;
  let t0 = Clock.now () in
  deadline := t0 +. cfg.duration;
  released := true;
  Condition.broadcast cond;
  Mutex.unlock lock;
  Array.iter Thread.join threads;
  let elapsed = Clock.now () -. t0 in
  let latency = Histo.create () in
  let classes = Hashtbl.create 8 in
  let sent = ref 0 and received = ref 0 in
  Array.iter
    (fun t ->
      sent := !sent + t.t_sent;
      received := !received + t.t_received;
      Histo.merge_into ~into:latency t.t_lat;
      Hashtbl.iter
        (fun cls n ->
          Hashtbl.replace classes cls
            (n + Option.value ~default:0 (Hashtbl.find_opt classes cls)))
        t.t_classes)
    tallies;
  {
    duration_s = elapsed;
    conns_run = conns;
    pipeline_run = (match cfg.surface with Raw -> pipeline | Http -> 1);
    sent = !sent;
    received = !received;
    throughput_rps =
      (if elapsed > 0. then float_of_int !received /. elapsed else 0.);
    classes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) classes []
      |> List.sort compare;
    latency;
  }

let to_json r =
  Json.Obj
    [
      ("duration_s", Json.Float r.duration_s);
      ("conns", Json.Int r.conns_run);
      ("pipeline", Json.Int r.pipeline_run);
      ("sent", Json.Int r.sent);
      ("received", Json.Int r.received);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("latency", Histo.summary_json r.latency);
      ( "classes",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.classes) );
    ]
