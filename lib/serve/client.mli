(** A minimal blocking client for the serve wire protocol.

    One connection, synchronous I/O: [send] as many requests as you
    like (they pipeline), then [recv] one response per request.
    [webracer call], the cram tests and the CI smoke step are the
    consumers. *)

type t

(** [connect addr] — [retry_for] (default 0) keeps retrying
    connection-refused / socket-not-there errors for that many seconds,
    which papers over the daemon's startup window in scripts that
    launch it in the background. Raises [Unix.Unix_error] once the
    budget is spent. *)
val connect : ?retry_for:float -> Daemon.address -> t

val send : t -> Request.t -> unit

(** [send_line t s] ships a raw line verbatim (protocol testing:
    malformed requests). *)
val send_line : t -> string -> unit

(** [recv t] blocks for the next response line; [Error] is an EOF or a
    line that does not decode as a response. *)
val recv : t -> (Response.t, string) result

(** [recv_line t] — the raw line, [None] on EOF or a reset connection. *)
val recv_line : t -> string option

(** [request t req] = [send] then [recv]. *)
val request : t -> Request.t -> (Response.t, string) result

(** [http_request t ~meth ~path ()] speaks the daemon's HTTP surface on
    the same connection: one keep-alive HTTP/1.1 request, one
    [(status, body)] response (the body is the response document —
    always schema v2). [Error] is a closed connection or an unparsable
    response. [webracer call --http] and the load generator's HTTP mode
    are the consumers. *)
val http_request :
  t ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * string, string) result

(** [set_recv_timeout t sec] arms [SO_RCVTIMEO]: a blocked [recv]
    gives up after [sec] seconds (surfacing as a closed connection).
    Best effort — ignored where the socket option is unsupported. The
    load generator uses it to bound its post-deadline drain. *)
val set_recv_timeout : t -> float -> unit

val close : t -> unit
