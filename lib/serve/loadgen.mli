(** Barrier-synchronized load generation against a running daemon —
    the [webracer bench-serve] engine and Perf-7's measuring stick.

    [run cfg] opens [conns] connections (one OS thread each — the
    clients spend their lives blocked in socket I/O, so threads beat
    domains here), holds every thread at a barrier until all are
    connected, then releases them simultaneously for [duration]
    seconds of sustained load. The measured window therefore contains
    only request traffic, never connection setup.

    On the raw surface each connection keeps up to [pipeline] requests
    outstanding, matching responses back to their send timestamps by
    request id (async completions overtake inline answers, so arrival
    order proves nothing). On the HTTP surface requests are sequential
    round trips ([pipeline] is ignored — the daemon serializes
    responses per connection).

    The result merges every thread's tallies: sustained throughput,
    the full round-trip latency histogram (p50/p95/p99/p999 via
    [Wr_support.Stats.Histo.summary_json]), and the response-class
    distribution ([ok], [overload], [timeout], ...) — the interesting
    part under deliberate overload. *)

type surface = Raw | Http

type config = {
  address : Daemon.address;
  conns : int;  (** concurrent connections, one thread each *)
  pipeline : int;  (** outstanding requests per connection (raw only) *)
  duration : float;  (** seconds of sustained load *)
  verb : Request.verb;  (** sent repeatedly; must have an HTTP endpoint
                            when [surface = Http] *)
  surface : surface;
  schema : int;  (** wire generation for raw requests *)
}

(** 4 connections, pipeline 8, 2 s, raw [ping], schema v1. *)
val default_config : Daemon.address -> config

type result = {
  duration_s : float;  (** measured window (barrier release to join) *)
  conns_run : int;
  pipeline_run : int;
  sent : int;
  received : int;
  throughput_rps : float;  (** received / duration *)
  classes : (string * int) list;  (** outcome -> count, sorted by name *)
  latency : Wr_support.Stats.Histo.t;  (** round trip, seconds *)
}

val run : config -> result

(** The Perf-7 / [--json-out] document: duration, counts, throughput,
    latency summary and the class distribution. *)
val to_json : result -> Wr_support.Json.t
