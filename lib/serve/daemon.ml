module Json = Wr_support.Json
module Schema = Wr_support.Schema
module Pool = Wr_support.Pool
module Histo = Wr_support.Stats.Histo
module Telemetry = Wr_telemetry.Telemetry
module Runtime_probe = Wr_telemetry.Runtime_probe
module Log = Wr_support.Log
module Flight = Wr_support.Flight
module Clock = Wr_support.Clock

type address = Unix_socket of string | Tcp of int

type config = {
  address : address;
  jobs : int;
  shards : int;  (** event-loop shards; 1 = the classic single loop *)
  queue_cap : int;
  cache_cap : int;
  wall_limit : float;
  max_time_limit : float;
  postmortem_dir : string option;
      (** arms the flight recorder; postmortems dump here *)
}

let default_config address =
  {
    address;
    jobs = 4;
    shards = 1;
    queue_cap = 128;
    cache_cap = 64;
    wall_limit = 60.;
    max_time_limit = 600_000.;
    postmortem_dir = None;
  }

(* A request line larger than this is rejected outright: it is almost
   certainly a protocol error, and buffering it unbounded would let one
   client exhaust the daemon. *)
let max_request_bytes = 16 * 1024 * 1024

(* Which protocol a connection speaks, decided by sniffing its first
   bytes: an HTTP method keyword selects the HTTP surface, anything
   else is the newline-delimited JSON line protocol. One port, two
   surfaces. *)
type proto = P_unknown | P_line | P_http

type conn = {
  cid : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  out : Buffer.t;  (** bytes not yet written; [out_ofs] already sent *)
  mutable out_ofs : int;
  mutable alive : bool;  (** peer still readable; dead conns drop replies *)
  mutable proto : proto;
  mutable http_busy : bool;
      (** an HTTP request is in flight; responses are serialized per
          connection, so parsing pauses until it is answered *)
}

type job = {
  jid : int;
  job_cid : int;
  verb : string;
  trace : string;  (** supplied or minted; on logs, spans, histograms *)
  wire_trace : string option;  (** echoed on the response iff supplied *)
  schema : int;  (** negotiated generation; stamps the response *)
  t_admit : float;  (** admission time; queue-wait/total latency basis *)
  cache_key : string option;
  deadline : float option;
  mutable answered : bool;  (** timeout already replied; drop the result *)
}

(* One streaming [watch] subscription: the daemon answers with a
   metrics snapshot on the subscriber's connection every [w_interval]
   seconds, [w_left] more times ([None] = until the connection dies). *)
type watcher = {
  w_cid : int;
  w_id : Json.t;
  w_trace : string option;
  w_schema : int;
  w_interval : float;
  mutable w_left : int option;
  mutable w_next : float;
  mutable w_seq : int;
}

(* Fixed counter slots: plain int arrays with a single writer (the
   owning shard's loop); other shards read them racily when merging a
   stats/metrics view, which is memory-safe in OCaml and exact whenever
   one shard runs. *)
let verb_slots =
  [| "ping"; "stats"; "metrics"; "watch"; "analyze"; "explain"; "predict";
     "triage"; "replay"; "invalid" |]

let resp_slots = [| "ok"; "bad_request"; "timeout"; "overload"; "internal" |]

let slot_of slots name =
  let rec go i =
    if i >= Array.length slots then invalid_arg ("unknown counter " ^ name)
    else if slots.(i) = name then i
    else go (i + 1)
  in
  go 0

(* One event-loop shard: a full copy of the old daemon's accept-loop
   state. Everything here is owned by the shard's domain; the only
   cross-domain traffic is (a) workers pushing completions under
   [completions_lock], (b) shard 0 handing accepted fds over under
   [intake_lock] when SO_REUSEPORT is unavailable, (c) [jobs_lock]-
   guarded mutation of [jobs_live] so postmortems can snapshot every
   shard's in-flight requests, and (d) racy read-only counter/histogram
   merges for stats views. *)
type shard = {
  sid : int;
  stride : int;  (** = shard count; cid/jid/trace ids step by it *)
  mutable listen : Unix.file_descr option;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  intake : Unix.file_descr Queue.t;
  intake_lock : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  jobs_live : (int, job) Hashtbl.t;
  jobs_lock : Mutex.t;
  (* (jid, response, worker start, worker end) *)
  completions : (int * Response.t * float * float) Queue.t;
  completions_lock : Mutex.t;
  mutable next_cid : int;  (** strides by the shard count: globally unique *)
  mutable next_jid : int;
  mutable next_trace : int;
  req_counts : int array;  (** indexed by [verb_slots] *)
  resp_counts : int array;  (** indexed by [resp_slots] *)
  mutable analyses_run : int;
  mutable timeouts : int;
  mutable watchers : watcher list;
  (* per-stage latency histograms, shard-loop-only writers: workers ship
     raw timestamps with each completion and the owning loop records
     them; merged views read across shards *)
  lat_decode : Histo.t;
  lat_queue : Histo.t;
  lat_run : Histo.t;
  lat_encode : Histo.t;
  lat_total : Histo.t;
}

type state = {
  cfg : config;
  nshards : int;
  fanout : bool;  (** shard 0 accepts and round-robins fds to the others *)
  cache : Cache.t;
  pool : Pool.t;
  tm : Telemetry.t;
  started : float;
  shards : shard array;
  stopping : bool Atomic.t;
  in_flight : int Atomic.t;  (** global admission gauge across shards *)
  queue_hwm : int Atomic.t;
  pm_seq : int Atomic.t;
  mutable handoff_rr : int;  (** fanout cursor; shard 0 only *)
  stop_fn : unit -> bool;  (** polled by shard 0 only *)
  dump_fn : unit -> bool;  (** polled by shard 0 only *)
}

let mint_trace sh =
  let n = sh.next_trace in
  sh.next_trace <- n + sh.stride;
  Printf.sprintf "t-%d" n

let bump_verb sh name =
  let i = slot_of verb_slots name in
  sh.req_counts.(i) <- sh.req_counts.(i) + 1

let bump_resp sh name =
  let i = slot_of resp_slots name in
  sh.resp_counts.(i) <- sh.resp_counts.(i) + 1

let resp_outcome = function
  | Response.Ok _ -> "ok"
  | Response.Error { code; _ } -> Response.code_name code

(* Merged (cross-shard) readings. Remote shards' counters are read
   without synchronization: each slot is a single machine word with a
   single writer, so the merge is approximate under concurrency and
   exact with one shard (or a quiesced daemon). *)
let sum_slot st counts slot =
  let i = slot_of counts slot in
  Array.fold_left
    (fun acc sh ->
      acc + (if counts == verb_slots then sh.req_counts.(i) else sh.resp_counts.(i)))
    0 st.shards

let req_count st name = sum_slot st verb_slots name
let resp_count st name = sum_slot st resp_slots name

let requests_total st =
  Array.fold_left
    (fun acc sh -> Array.fold_left ( + ) acc sh.req_counts)
    0 st.shards

let analyses_run st =
  Array.fold_left (fun acc sh -> acc + sh.analyses_run) 0 st.shards

let timeouts st = Array.fold_left (fun acc sh -> acc + sh.timeouts) 0 st.shards

let merged_histo st f =
  let into = Histo.create () in
  Array.iter (fun sh -> Histo.merge_into ~into (f sh)) st.shards;
  into

let latency_stages st =
  [
    ("decode", merged_histo st (fun sh -> sh.lat_decode));
    ("queue", merged_histo st (fun sh -> sh.lat_queue));
    ("run", merged_histo st (fun sh -> sh.lat_run));
    ("encode", merged_histo st (fun sh -> sh.lat_encode));
    ("total", merged_histo st (fun sh -> sh.lat_total));
  ]

let sync_telemetry st =
  let tm = st.tm in
  if Telemetry.enabled tm then begin
    Telemetry.set_counter tm "serve.cache.hits" (Cache.hits st.cache);
    Telemetry.set_counter tm "serve.cache.misses" (Cache.misses st.cache);
    Telemetry.set_counter tm "serve.cache.entries" (Cache.length st.cache);
    Telemetry.set_counter tm "serve.analyses" (analyses_run st);
    Telemetry.set_counter tm "serve.timeouts" (timeouts st);
    Telemetry.set_counter tm "serve.in_flight" (Atomic.get st.in_flight);
    Array.iter
      (fun verb ->
        let n = req_count st verb in
        if n > 0 then Telemetry.set_counter tm ("serve.requests." ^ verb) n)
      verb_slots;
    Array.iter
      (fun code ->
        let n = resp_count st code in
        if n > 0 then Telemetry.set_counter tm ("serve.responses." ^ code) n)
      resp_slots
  end

let cache_hit_ratio st =
  let hits = Cache.hits st.cache and misses = Cache.misses st.cache in
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)

let stats_json st =
  let verbs =
    [ "ping"; "stats"; "metrics"; "watch"; "analyze"; "explain"; "predict";
      "triage"; "replay" ]
  in
  let total = List.fold_left (fun acc v -> acc + req_count st v) 0 verbs in
  Json.Obj
    [
      Schema.tag;
      ("uptime_s", Json.Float (Clock.now () -. st.started));
      ("jobs", Json.Int st.cfg.jobs);
      ("shards", Json.Int st.nshards);
      ( "queue",
        Json.Obj
          [
            ("cap", Json.Int st.cfg.queue_cap);
            ("in_flight", Json.Int (Atomic.get st.in_flight));
            ("high_water", Json.Int (Atomic.get st.queue_hwm));
          ] );
      ( "requests",
        Json.Obj
          (("total", Json.Int total)
          :: List.map (fun v -> (v, Json.Int (req_count st v))) verbs) );
      ( "responses",
        Json.Obj
          (("ok", Json.Int (resp_count st "ok"))
          :: List.map
               (fun c ->
                 let name = Response.code_name c in
                 (name, Json.Int (resp_count st name)))
               [ Response.Bad_request; Response.Timeout; Response.Overload;
                 Response.Internal ]) );
      ( "cache",
        Json.Obj
          [
            ("cap", Json.Int (Cache.cap st.cache));
            ("entries", Json.Int (Cache.length st.cache));
            ("hits", Json.Int (Cache.hits st.cache));
            ("misses", Json.Int (Cache.misses st.cache));
            ("hit_ratio", Json.Float (cache_hit_ratio st));
          ] );
      ("analyses_run", Json.Int (analyses_run st));
      ("timeouts", Json.Int (timeouts st));
      ( "telemetry",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Telemetry.counters st.tm)) );
    ]

(* --- metrics exposition ------------------------------------------------ *)

(* Prometheus text exposition: one flat document scrapeable by anything
   that speaks the format; quantiles are the HDR-histogram readings at
   export time, merged across shards. *)
let prometheus_text st =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let typ name kind = line "# TYPE %s %s" name kind in
  typ "webracer_uptime_seconds" "gauge";
  line "webracer_uptime_seconds %.3f" (Clock.now () -. st.started);
  typ "webracer_shards" "gauge";
  line "webracer_shards %d" st.nshards;
  typ "webracer_requests_total" "counter";
  Array.to_list verb_slots
  |> List.filter_map (fun v ->
         let n = req_count st v in
         if n > 0 then Some (v, n) else None)
  |> List.sort compare
  |> List.iter (fun (verb, n) -> line "webracer_requests_total{verb=%S} %d" verb n);
  typ "webracer_responses_total" "counter";
  Array.to_list resp_slots
  |> List.filter_map (fun c ->
         let n = resp_count st c in
         if n > 0 then Some (c, n) else None)
  |> List.sort compare
  |> List.iter (fun (code, n) ->
         line "webracer_responses_total{outcome=%S} %d" code n);
  typ "webracer_queue_depth" "gauge";
  line "webracer_queue_depth %d" (Atomic.get st.in_flight);
  typ "webracer_queue_depth_high_water" "gauge";
  line "webracer_queue_depth_high_water %d" (Atomic.get st.queue_hwm);
  typ "webracer_queue_cap" "gauge";
  line "webracer_queue_cap %d" st.cfg.queue_cap;
  typ "webracer_cache_hit_ratio" "gauge";
  line "webracer_cache_hit_ratio %.4f" (cache_hit_ratio st);
  typ "webracer_cache_entries" "gauge";
  line "webracer_cache_entries %d" (Cache.length st.cache);
  typ "webracer_analyses_total" "counter";
  line "webracer_analyses_total %d" (analyses_run st);
  typ "webracer_timeouts_total" "counter";
  line "webracer_timeouts_total %d" (timeouts st);
  typ "webracer_shed_total" "counter";
  line "webracer_shed_total %d" (resp_count st "overload");
  typ "webracer_request_latency_seconds" "summary";
  List.iter
    (fun (stage, h) ->
      List.iter
        (fun (q, p) ->
          line "webracer_request_latency_seconds{stage=%S,quantile=%S} %.6f"
            stage q (Histo.percentile h p))
        [ ("0.5", 50.); ("0.95", 95.); ("0.99", 99.); ("0.999", 99.9) ];
      line "webracer_request_latency_seconds_count{stage=%S} %d" stage
        (Histo.count h);
      line "webracer_request_latency_seconds_sum{stage=%S} %.6f" stage
        (Histo.sum h))
    (latency_stages st);
  Buffer.contents b

(* One [watch] tick: everything [webracer top] renders, in one object.
   [fleet] is a benign point-in-time read of the pool slots; [gc] comes
   from the process's running GC probe, [Json.Null] when none is on. *)
let watch_snapshot st seq =
  let now = Clock.now () in
  Json.Obj
    [
      Schema.tag;
      ("seq", Json.Int seq);
      ("ts", Json.Float now);
      ("uptime_s", Json.Float (now -. st.started));
      ("requests_total", Json.Int (requests_total st));
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Atomic.get st.in_flight));
            ("high_water", Json.Int (Atomic.get st.queue_hwm));
            ("cap", Json.Int st.cfg.queue_cap);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hit_ratio", Json.Float (cache_hit_ratio st));
            ("hits", Json.Int (Cache.hits st.cache));
            ("misses", Json.Int (Cache.misses st.cache));
            ("entries", Json.Int (Cache.length st.cache));
          ] );
      ( "latency",
        Json.Obj
          (List.map (fun (stage, h) -> (stage, Histo.summary_json h))
             (latency_stages st)) );
      ("timeouts", Json.Int (timeouts st));
      ("shed", Json.Int (resp_count st "overload"));
      ("analyses_run", Json.Int (analyses_run st));
      ("fleet", Pool.stats_json (Pool.stats st.pool));
      ( "gc",
        match Runtime_probe.current () with
        | Some p -> Runtime_probe.stats_json p
        | None -> Json.Null );
    ]

let per_shard_json st =
  Json.List
    (Array.to_list
       (Array.map
          (fun sh ->
            Json.Obj
              [
                ("shard", Json.Int sh.sid);
                ("requests_total", Json.Int (Array.fold_left ( + ) 0 sh.req_counts));
                ("responses_total", Json.Int (Array.fold_left ( + ) 0 sh.resp_counts));
                ("analyses_run", Json.Int sh.analyses_run);
              ])
          st.shards))

let metrics_json st =
  Json.Obj
    [
      Schema.tag;
      ("uptime_s", Json.Float (Clock.now () -. st.started));
      ("shards", Json.Int st.nshards);
      ( "latency",
        Json.Obj
          (List.map (fun (stage, h) -> (stage, Histo.summary_json h))
             (latency_stages st)) );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Atomic.get st.in_flight));
            ("high_water", Json.Int (Atomic.get st.queue_hwm));
            ("cap", Json.Int st.cfg.queue_cap);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hit_ratio", Json.Float (cache_hit_ratio st));
            ("hits", Json.Int (Cache.hits st.cache));
            ("misses", Json.Int (Cache.misses st.cache));
            ("entries", Json.Int (Cache.length st.cache));
          ] );
      ("timeouts", Json.Int (timeouts st));
      ("shed", Json.Int (resp_count st "overload"));
      ("analyses_run", Json.Int (analyses_run st));
      ("per_shard", per_shard_json st);
      ("prometheus", Json.String (prometheus_text st));
    ]

(* --- postmortems ------------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Dump the flight recorder: a JSONL file (header object — reason,
   uptime, the in-flight requests of EVERY shard with their trace ids —
   then one line per retained event) plus a mini Chrome trace of the
   same events. Best effort by design: a postmortem failing must not
   take the daemon with it. *)
let write_postmortem st ~reason =
  match st.cfg.postmortem_dir with
  | None -> ()
  | Some dir -> (
      let seq = Atomic.fetch_and_add st.pm_seq 1 in
      let base =
        Filename.concat dir (Printf.sprintf "postmortem-%d-%s" seq reason)
      in
      try
        mkdir_p dir;
        let now = Clock.now () in
        let events = Flight.snapshot () in
        let in_flight =
          Array.fold_left
            (fun acc sh ->
              Mutex.lock sh.jobs_lock;
              let acc =
                Hashtbl.fold
                  (fun _ job acc ->
                    Json.Obj
                      [
                        ("jid", Json.Int job.jid);
                        ("shard", Json.Int sh.sid);
                        ("verb", Json.String job.verb);
                        ("trace_id", Json.String job.trace);
                        ("age_s", Json.Float (now -. job.t_admit));
                      ]
                    :: acc)
                  sh.jobs_live acc
              in
              Mutex.unlock sh.jobs_lock;
              acc)
            [] st.shards
        in
        let header =
          Json.Obj
            [
              Schema.tag;
              ("postmortem", Json.String reason);
              ("ts", Json.Float now);
              ("uptime_s", Json.Float (now -. st.started));
              ("events", Json.Int (List.length events));
              ("in_flight", Json.List in_flight);
            ]
        in
        let oc = open_out (base ^ ".jsonl") in
        output_string oc (Json.to_string header ^ "\n");
        output_string oc (Flight.to_jsonl events);
        close_out oc;
        let oc = open_out (base ^ ".trace.json") in
        output_string oc (Json.to_string (Flight.to_chrome_trace events));
        close_out oc;
        Log.warn "serve.postmortem"
          [
            ("reason", Json.String reason);
            ("file", Json.String (base ^ ".jsonl"));
            ("events", Json.Int (List.length events));
          ]
      with e ->
        Log.error "serve.postmortem_failed"
          [
            ("reason", Json.String reason);
            ("error", Json.String (Printexc.to_string e));
          ])

(* --- replies ----------------------------------------------------------- *)

(* The single respond choke point for both surfaces. [http_status]
   overrides the response-derived status for HTTP routing errors
   (404/405) that have no slot in the closed taxonomy. *)
let respond ?http_status st sh conn (resp : Response.t) =
  bump_resp sh (resp_outcome resp);
  if conn.alive then begin
    let t0 = Clock.now () in
    (match conn.proto with
    | P_http ->
        let body = Response.to_line resp in
        let status = Option.value ~default:(Response.status resp) http_status in
        Buffer.add_string conn.out (Http.response ~status ~body);
        conn.http_busy <- false
    | P_line | P_unknown ->
        let line = Response.to_line resp in
        Buffer.add_string conn.out line;
        Buffer.add_char conn.out '\n');
    Histo.add sh.lat_encode (Clock.now () -. t0)
  end;
  sync_telemetry st

let respond_cid st sh cid resp =
  match Hashtbl.find_opt sh.conns cid with
  | Some conn -> respond st sh conn resp
  | None ->
      (* The client vanished before its answer; still tally the outcome. *)
      bump_resp sh (resp_outcome resp)

(* --- job submission ---------------------------------------------------- *)

let bump_hwm st cur =
  let rec go () =
    let old = Atomic.get st.queue_hwm in
    if cur > old && not (Atomic.compare_and_set st.queue_hwm old cur) then go ()
  in
  go ()

let submit_job st sh conn ~verb ~trace ~wire_trace ~schema ~cache_key
    (work : unit -> Response.t) =
  let jid = sh.next_jid in
  sh.next_jid <- jid + sh.stride;
  let t_admit = Clock.now () in
  let deadline =
    if st.cfg.wall_limit > 0. then Some (t_admit +. st.cfg.wall_limit) else None
  in
  Mutex.lock sh.jobs_lock;
  Hashtbl.replace sh.jobs_live jid
    {
      jid;
      job_cid = conn.cid;
      verb;
      trace;
      wire_trace;
      schema;
      t_admit;
      cache_key;
      deadline;
      answered = false;
    };
  Mutex.unlock sh.jobs_lock;
  bump_hwm st (Atomic.fetch_and_add st.in_flight 1 + 1);
  let tm = st.tm in
  (* Test hook: [WEBRACER_FAULT_INJECT=<verb>] makes matching requests
     blow up inside the worker — the way to rehearse a worker crash
     (and its postmortem) on demand, since a domain cannot be killed
     from outside. *)
  let work =
    match Sys.getenv_opt "WEBRACER_FAULT_INJECT" with
    | Some v when v = verb ->
        fun () -> failwith "injected worker fault (WEBRACER_FAULT_INJECT)"
    | _ -> work
  in
  Pool.submit st.pool (fun () ->
      let t_start = Clock.now () in
      Flight.record ~kind:"request.start" ~trace
        [ ("jid", Json.Int jid); ("verb", Json.String verb) ];
      let resp =
        (* The trace id rides on every log line and telemetry span the
           request produces, on whichever domain picked it up. [work]
           normally converts its own failures into [Internal] responses
           ([Api.dispatch]); the guard here keeps even a crash in that
           plumbing — or an injected fault — from killing the domain. *)
        try
          Log.with_trace ~trace_id:trace ~span_id:(string_of_int jid) (fun () ->
              Telemetry.with_span tm ~cat:"serve"
                ~name:(Printf.sprintf "%s [%s]" verb trace)
                work)
        with e ->
          Response.error ~id:Json.Null ?trace:wire_trace Response.Internal
            (Printexc.to_string e)
      in
      Flight.record ~kind:"request.end" ~trace
        [ ("jid", Json.Int jid); ("outcome", Json.String (resp_outcome resp)) ];
      let t_end = Clock.now () in
      Mutex.lock sh.completions_lock;
      Queue.push (jid, resp, t_start, t_end) sh.completions;
      Mutex.unlock sh.completions_lock;
      (* Wake the owning shard; EAGAIN just means it is already awake,
         and EBADF/EPIPE that the daemon is already past draining. *)
      try ignore (Unix.write sh.pipe_w (Bytes.make 1 '!') 0 1)
      with
      | Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
      -> ())

let drain_completions st sh =
  let batch =
    Mutex.lock sh.completions_lock;
    let xs = List.of_seq (Queue.to_seq sh.completions) in
    Queue.clear sh.completions;
    Mutex.unlock sh.completions_lock;
    xs
  in
  List.iter
    (fun (jid, resp, t_start, t_end) ->
      match Hashtbl.find_opt sh.jobs_live jid with
      | None -> ()
      | Some job ->
          (match resp with
          | Response.Error { code = Response.Internal; _ } ->
              (* A worker "crashed" (its failure became an Internal
                 response via the crash isolation): dump what the fleet
                 was doing, while this job still counts as in flight. *)
              Flight.record ~kind:"request.crash" ~trace:job.trace
                [ ("jid", Json.Int jid); ("verb", Json.String job.verb) ];
              write_postmortem st ~reason:"worker-crash"
          | _ -> ());
          Mutex.lock sh.jobs_lock;
          Hashtbl.remove sh.jobs_live jid;
          Mutex.unlock sh.jobs_lock;
          Atomic.decr st.in_flight;
          (* Stage latencies: the worker ships raw timestamps so only the
             owning loop ever touches the histograms (single writer). *)
          let queue_wait = t_start -. job.t_admit in
          let run_time = t_end -. t_start in
          let total = Clock.now () -. job.t_admit in
          Histo.add sh.lat_queue queue_wait;
          Histo.add sh.lat_run run_time;
          Histo.add sh.lat_total total;
          if Log.enabled Log.Debug then
            Log.with_trace ~trace_id:job.trace ~span_id:(string_of_int jid)
              (fun () ->
                Log.debug "serve.response"
                  [
                    ("verb", Json.String job.verb);
                    ("queue_s", Json.Float queue_wait);
                    ("run_s", Json.Float run_time);
                    ("total_s", Json.Float total);
                  ]);
          (match (job.cache_key, resp) with
          | Some key, Response.Ok { result; _ } ->
              sh.analyses_run <- sh.analyses_run + 1;
              Cache.store st.cache key result
          | Some _, Response.Error _ | None, _ -> ());
          let resp = Response.stamp ~schema:job.schema ~shard:sh.sid resp in
          if not job.answered then respond_cid st sh job.job_cid resp
          else sync_telemetry st)
    batch

let sweep_deadlines st sh now =
  Hashtbl.iter
    (fun _ job ->
      match job.deadline with
      | Some d when (not job.answered) && d <= now ->
          job.answered <- true;
          sh.timeouts <- sh.timeouts + 1;
          Flight.record ~kind:"request.deadline" ~trace:job.trace
            [ ("jid", Json.Int job.jid); ("verb", Json.String job.verb) ];
          write_postmortem st ~reason:"deadline";
          respond_cid st sh job.job_cid
            (Response.stamp ~schema:job.schema ~shard:sh.sid
               (Response.error ?trace:job.wire_trace ~id:Json.Null
                  Response.Timeout
                  (Printf.sprintf "request exceeded the %.0f s wall-clock limit"
                     st.cfg.wall_limit)))
      | _ -> ())
    sh.jobs_live

(* Emit due watch snapshots; drop subscriptions whose connection died or
   whose count ran out. *)
let tick_watchers st sh now =
  sh.watchers <-
    List.filter
      (fun w ->
        match Hashtbl.find_opt sh.conns w.w_cid with
        | None -> false
        | Some conn when not conn.alive -> false
        | Some conn ->
            if w.w_next <= now then begin
              respond st sh conn
                (Response.stamp ~schema:w.w_schema ~shard:sh.sid
                   (Response.ok ?trace:w.w_trace ~id:w.w_id
                      (watch_snapshot st w.w_seq)));
              w.w_seq <- w.w_seq + 1;
              w.w_next <- now +. w.w_interval;
              match w.w_left with
              | Some n -> w.w_left <- Some (n - 1)
              | None -> ()
            end;
            (match w.w_left with Some n when n <= 0 -> false | _ -> true))
      sh.watchers

(* --- request handling -------------------------------------------------- *)

let clamp_target st (p : Request.analyze_params) =
  { p with Request.time_limit = Float.min p.Request.time_limit st.cfg.max_time_limit }

let handle_request st sh conn (req : Request.t) =
  let id = req.Request.id in
  bump_verb sh (Request.verb_name req.Request.verb);
  (* [wire_trace] is echoed on the wire iff the client supplied one;
     [trace] (supplied or minted) tags logs, spans and debug output
     either way, so every request is traceable server-side. *)
  let wire_trace = req.Request.trace in
  let schema = req.Request.schema in
  let trace =
    match wire_trace with Some t -> t | None -> mint_trace sh
  in
  (* Every inline answer leaves through [reply], which stamps the
     negotiated generation and this shard's id (v2+ only) on the way
     out; worker completions get the same stamp in [drain_completions]. *)
  let reply resp = respond st sh conn (Response.stamp ~schema ~shard:sh.sid resp) in
  let admit ~verb ~cache_key work =
    Flight.record ~kind:"request.admit" ~trace
      [ ("verb", Json.String verb); ("conn", Json.Int conn.cid) ];
    if Atomic.get st.in_flight >= st.cfg.queue_cap then
      reply
        (Response.error ?trace:wire_trace ~id Response.Overload
           (Printf.sprintf "queue full (%d requests in flight); retry later"
              st.cfg.queue_cap))
    else submit_job st sh conn ~verb ~trace ~wire_trace ~schema ~cache_key work
  in
  match req.Request.verb with
  | Request.Ping -> reply (Response.ok ?trace:wire_trace ~id Api.ping_result)
  | Request.Stats -> reply (Response.ok ?trace:wire_trace ~id (stats_json st))
  | Request.Metrics ->
      reply (Response.ok ?trace:wire_trace ~id (metrics_json st))
  | Request.Watch { interval_s; count } ->
      (* Subscribe; the first snapshot goes out on the next loop pass
         (immediately), then every [interval_s]. No response here. *)
      sh.watchers <-
        {
          w_cid = conn.cid;
          w_id = id;
          w_trace = wire_trace;
          w_schema = schema;
          w_interval = Float.max 0.05 interval_s;
          w_left = count;
          w_next = Clock.now ();
          w_seq = 0;
        }
        :: sh.watchers
  | Request.Analyze p -> (
      let p = clamp_target st p in
      let key = Cache.key p in
      match Cache.find st.cache key with
      | Some result -> reply (Response.ok ?trace:wire_trace ~id result)
      | None ->
          admit ~verb:"analyze" ~cache_key:(Some key) (fun () ->
              Api.dispatch { req with Request.verb = Request.Analyze p }))
  | Request.Explain e ->
      let e = { e with Request.target = clamp_target st e.Request.target } in
      admit ~verb:"explain" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Explain e })
  | Request.Replay r ->
      (* A replay fans out inside one worker; clamp its parallelism so a
         single request cannot oversubscribe the fleet. *)
      let r =
        {
          r with
          Request.target = clamp_target st r.Request.target;
          jobs = max 1 (min r.Request.jobs st.cfg.jobs);
        }
      in
      admit ~verb:"replay" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Replay r })
  | Request.Predict p ->
      let p = { p with Request.target = clamp_target st p.Request.target } in
      admit ~verb:"predict" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Predict p })
  | Request.Triage t ->
      (* Same fan-in story as replay: the directed schedules run inside
         one worker, so clamp the requested parallelism to the fleet. *)
      let t =
        {
          t with
          Request.target = clamp_target st t.Request.target;
          jobs = max 1 (min t.Request.jobs st.cfg.jobs);
        }
      in
      admit ~verb:"triage" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Triage t })

let handle_line st sh conn line =
  if String.trim line <> "" then begin
    if Log.enabled Log.Debug then
      Log.debug "serve.request"
        [ ("conn", Json.Int conn.cid); ("bytes", Json.Int (String.length line)) ];
    let t0 = Clock.now () in
    let decoded = Request.of_line line in
    Histo.add sh.lat_decode (Clock.now () -. t0);
    match decoded with
    | Ok req -> handle_request st sh conn req
    | Error (id, msg) ->
        bump_verb sh "invalid";
        respond st sh conn (Response.error ~id Response.Bad_request msg)
  end

let handle_http st sh conn (r : Http.req) =
  let t0 = Clock.now () in
  match Http.route r with
  | Error (status, msg) ->
      Histo.add sh.lat_decode (Clock.now () -. t0);
      bump_verb sh "invalid";
      respond ~http_status:status st sh conn
        (Response.error ~schema:Schema.v2 ~shard:sh.sid ~id:Json.Null
           Response.Bad_request msg)
  | Ok wire -> (
      let decoded = Request.of_json wire in
      Histo.add sh.lat_decode (Clock.now () -. t0);
      match decoded with
      | Error (id, msg) ->
          bump_verb sh "invalid";
          respond st sh conn
            (Response.error ~schema:Schema.v2 ~shard:sh.sid ~id
               Response.Bad_request msg)
      | Ok req ->
          (* The HTTP surface is v2-native: responses carry the shard id
             and HTTP-parity error objects even for untagged bodies. *)
          let req =
            { req with Request.schema = max req.Request.schema Schema.v2 }
          in
          handle_request st sh conn req)

(* Split complete requests out of the connection's input buffer. The
   first bytes decide the protocol; HTTP connections parse at most one
   request ahead of the unanswered one (responses are serialized), and
   the shard loop re-enters here when an async answer unblocks them. *)
let rec process_input st sh conn =
  match conn.proto with
  | P_unknown -> (
      match Http.sniff (Buffer.contents conn.inbuf) with
      | `Undecided -> ()  (* a prefix of an HTTP method; need more bytes *)
      | `Http ->
          conn.proto <- P_http;
          process_input st sh conn
      | `Line ->
          conn.proto <- P_line;
          process_input st sh conn)
  | P_line ->
      let data = Buffer.contents conn.inbuf in
      let n = String.length data in
      let pos = ref 0 in
      (try
         while !pos < n do
           match String.index_from data !pos '\n' with
           | nl ->
               handle_line st sh conn (String.sub data !pos (nl - !pos));
               pos := nl + 1
           | exception Not_found -> raise Exit
         done
       with Exit -> ());
      Buffer.clear conn.inbuf;
      Buffer.add_substring conn.inbuf data !pos (n - !pos);
      if Buffer.length conn.inbuf > max_request_bytes then begin
        respond st sh conn
          (Response.error ~id:Json.Null Response.Bad_request
             (Printf.sprintf "request line exceeds %d bytes" max_request_bytes));
        conn.alive <- false;
        Buffer.clear conn.inbuf
      end
  | P_http ->
      let data = Buffer.contents conn.inbuf in
      let n = String.length data in
      let pos = ref 0 in
      let parsing = ref true in
      while !parsing && (not conn.http_busy) && conn.alive && !pos < n do
        match Http.parse ~max_body:max_request_bytes data ~pos:!pos with
        | `More -> parsing := false
        | `Bad msg ->
            bump_verb sh "invalid";
            respond ~http_status:400 st sh conn
              (Response.error ~schema:Schema.v2 ~shard:sh.sid ~id:Json.Null
                 Response.Bad_request msg);
            conn.alive <- false;
            pos := n
        | `Req (r, pos') ->
            pos := pos';
            conn.http_busy <- true;
            (* An inline answer clears [http_busy] via [respond], letting
               the loop continue with the next pipelined request; an
               admitted job leaves it set and parsing pauses here. *)
            handle_http st sh conn r
      done;
      Buffer.clear conn.inbuf;
      Buffer.add_substring conn.inbuf data !pos (n - !pos)

(* --- sockets ----------------------------------------------------------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listen_on address =
  match address with
  | Unix_socket path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, address)
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Tcp p
        | _ -> address
      in
      (fd, bound)

(* The per-shard accept paths. TCP with [SO_REUSEPORT]: every shard
   binds its own listening socket to the one port and the kernel spreads
   connections across them — no accept lock, no hand-off. Unix sockets
   (no port to share) and platforms without the option fall back to
   fan-out: shard 0 owns the single listening socket and round-robins
   accepted fds to its peers, which also keeps request decode off the
   accept path. *)
let bind_shards address nshards =
  let fanout_single () =
    let fd, bound = listen_on address in
    let listens = Array.make nshards None in
    listens.(0) <- Some fd;
    (listens, bound, nshards > 1)
  in
  match address with
  | Unix_socket _ -> fanout_single ()
  | Tcp _ when nshards = 1 -> fanout_single ()
  | Tcp port -> (
      let listens = Array.make nshards None in
      let mk p =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.setsockopt fd Unix.SO_REUSEPORT true;
           Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
           Unix.listen fd 64
         with e ->
           close_quietly fd;
           raise e);
        fd
      in
      try
        let fd0 = mk port in
        listens.(0) <- Some fd0;
        let bound_port =
          match Unix.getsockname fd0 with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        for i = 1 to nshards - 1 do
          listens.(i) <- Some (mk bound_port)
        done;
        (listens, Tcp bound_port, false)
      with Unix.Unix_error _ | Invalid_argument _ ->
        Array.iter (Option.iter close_quietly) listens;
        Array.fill listens 0 nshards None;
        fanout_single ())

let add_conn sh fd =
  Unix.set_nonblock fd;
  let cid = sh.next_cid in
  sh.next_cid <- cid + sh.stride;
  Hashtbl.replace sh.conns cid
    {
      cid;
      fd;
      inbuf = Buffer.create 1024;
      out = Buffer.create 1024;
      out_ofs = 0;
      alive = true;
      proto = P_unknown;
      http_busy = false;
    }

let wake sh =
  try ignore (Unix.write sh.pipe_w (Bytes.make 1 '!') 0 1)
  with
  | Unix.Unix_error
      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
  -> ()

let accept_conn st sh listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
      if st.fanout then begin
        let target = st.handoff_rr mod st.nshards in
        st.handoff_rr <- st.handoff_rr + 1;
        if target = sh.sid then add_conn sh fd
        else begin
          let peer = st.shards.(target) in
          Mutex.lock peer.intake_lock;
          Queue.push fd peer.intake;
          Mutex.unlock peer.intake_lock;
          wake peer
        end
      end
      else add_conn sh fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()

(* Adopt fds handed over by shard 0 (fan-out mode). During drain no new
   connections are welcome on any shard; close them instead. *)
let adopt_intake sh ~draining =
  Mutex.lock sh.intake_lock;
  let fds = List.of_seq (Queue.to_seq sh.intake) in
  Queue.clear sh.intake;
  Mutex.unlock sh.intake_lock;
  List.iter (fun fd -> if draining then close_quietly fd else add_conn sh fd) fds

let read_conn st sh conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.alive <- false
  | n ->
      Buffer.add_subbytes conn.inbuf chunk 0 n;
      process_input st sh conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error _ -> conn.alive <- false

let flush_conn conn =
  let pending = Buffer.length conn.out - conn.out_ofs in
  if pending > 0 then begin
    match
      Unix.write_substring conn.fd (Buffer.contents conn.out) conn.out_ofs pending
    with
    | n ->
        conn.out_ofs <- conn.out_ofs + n;
        if conn.out_ofs = Buffer.length conn.out then begin
          Buffer.clear conn.out;
          conn.out_ofs <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ ->
        conn.alive <- false;
        Buffer.clear conn.out;
        conn.out_ofs <- 0
  end

let has_output conn = Buffer.length conn.out - conn.out_ofs > 0

(* --- the shard loop ---------------------------------------------------- *)

(* One shard's event loop: the old daemon's accept loop, N of which now
   run on their own domains against per-shard connection tables. Shard 0
   additionally polls the user's [stop]/[dump] hooks (they are plain
   closures, not necessarily domain-safe) and, in fan-out mode, owns the
   accept path. *)
let shard_loop st sh =
  let draining = ref false in
  let drain_started = ref 0. in
  let running = ref true in
  while !running do
    if sh.sid = 0 && (not (Atomic.get st.stopping)) && st.stop_fn () then begin
      (* Graceful shutdown: no new connections or requests anywhere;
         in-flight jobs finish and their responses flush before exit. *)
      Atomic.set st.stopping true;
      Array.iter wake st.shards
    end;
    if (not !draining) && Atomic.get st.stopping then begin
      draining := true;
      drain_started := Clock.now ();
      (match sh.listen with Some fd -> close_quietly fd | None -> ());
      sh.listen <- None
    end;
    let now = Clock.now () in
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) sh.conns [] in
    let listen_fds =
      if !draining then []
      else match sh.listen with Some fd -> [ fd ] | None -> []
    in
    let read_fds =
      (sh.pipe_r :: listen_fds)
      @ (if !draining then []
         else List.filter_map (fun c -> if c.alive then Some c.fd else None) conns)
    in
    let write_fds = List.filter_map (fun c -> if has_output c then Some c.fd else None) conns in
    let timeout =
      Hashtbl.fold
        (fun _ job acc ->
          match job.deadline with
          | Some d when not job.answered -> Float.min acc (Float.max 0.01 (d -. now))
          | _ -> acc)
        sh.jobs_live 0.25
    in
    (* Watch ticks also bound the sleep, so snapshots go out on time. *)
    let timeout =
      List.fold_left
        (fun acc w -> Float.min acc (Float.max 0.01 (w.w_next -. now)))
        timeout sh.watchers
    in
    (match Unix.select read_fds write_fds [] timeout with
    | readable, writable, _ ->
        if List.mem sh.pipe_r readable then begin
          let buf = Bytes.create 512 in
          try
            while Unix.read sh.pipe_r buf 0 512 > 0 do
              ()
            done
          with
          | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | Unix.Unix_error _ -> ()
        end;
        adopt_intake sh ~draining:!draining;
        (match sh.listen with
        | Some fd when (not !draining) && List.mem fd readable ->
            accept_conn st sh fd
        | _ -> ());
        List.iter
          (fun c -> if c.alive && List.mem c.fd readable then read_conn st sh c)
          conns;
        drain_completions st sh;
        (* An async answer may have unblocked an HTTP connection with
           pipelined requests already buffered; resume parsing them. *)
        Hashtbl.iter
          (fun _ c ->
            if
              c.alive && c.proto = P_http && (not c.http_busy)
              && Buffer.length c.inbuf > 0
            then process_input st sh c)
          sh.conns;
        sweep_deadlines st sh (Clock.now ());
        tick_watchers st sh (Clock.now ());
        List.iter (fun c -> if List.mem c.fd writable then flush_conn c) conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* Operator-requested dump (the CLI wires SIGUSR2 here). *)
    if sh.sid = 0 && st.dump_fn () then write_postmortem st ~reason:"signal";
    (* Reap connections that are gone and fully flushed. *)
    Hashtbl.iter
      (fun _ c ->
        if (not c.alive) && not (has_output c) then close_quietly c.fd)
      sh.conns;
    Hashtbl.filter_map_inplace
      (fun _ c -> if (not c.alive) && not (has_output c) then None else Some c)
      sh.conns;
    if !draining then begin
      adopt_intake sh ~draining:true;
      drain_completions st sh;
      if Hashtbl.length sh.jobs_live = 0 then begin
        (* Give the flushed responses one last write pass, then stop. *)
        Hashtbl.iter (fun _ c -> flush_conn c) sh.conns;
        let unflushed =
          Hashtbl.fold (fun _ c acc -> acc || has_output c) sh.conns false
        in
        (* A peer that stopped reading must not wedge shutdown: give the
           flush five seconds, then abandon its bytes. *)
        if (not unflushed) || Clock.now () -. !drain_started > 5. then
          running := false
      end
    end
  done;
  Hashtbl.iter (fun _ c -> close_quietly c.fd) sh.conns

(* --- assembly ---------------------------------------------------------- *)

let make_shard ~nshards ~listen sid =
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  {
    sid;
    stride = nshards;
    listen;
    pipe_r;
    pipe_w;
    intake = Queue.create ();
    intake_lock = Mutex.create ();
    conns = Hashtbl.create 16;
    jobs_live = Hashtbl.create 64;
    jobs_lock = Mutex.create ();
    completions = Queue.create ();
    completions_lock = Mutex.create ();
    next_cid = sid;
    next_jid = sid;
    next_trace = sid;
    req_counts = Array.make (Array.length verb_slots) 0;
    resp_counts = Array.make (Array.length resp_slots) 0;
    analyses_run = 0;
    timeouts = 0;
    watchers = [];
    lat_decode = Histo.create ();
    lat_queue = Histo.create ();
    lat_run = Histo.create ();
    lat_encode = Histo.create ();
    lat_total = Histo.create ();
  }

let run ?(stop = fun () -> false) ?(dump = fun () -> false) ?on_ready ?on_stop
    ?(telemetry = Telemetry.disabled) cfg =
  let jobs = max 1 cfg.jobs in
  let nshards = max 1 cfg.shards in
  (* A postmortem dir arms the flight recorder for the daemon's
     lifetime; every request milestone and teed log line lands in the
     per-domain rings from here on. *)
  if cfg.postmortem_dir <> None then begin
    Flight.configure ();
    Flight.set_enabled true
  end;
  (* [jobs + 1] because the shard loops never help the pool: the +1
     "submitter slot" stays idle, leaving [jobs] worker domains.
     [min_workers] overrides the hardware cap — [submit] tasks only run
     on spawned workers, so the daemon must keep at least [jobs] of them
     even on small machines. The shard loops are additional domains on
     top; they only block in [select], so oversubscription is benign. *)
  let pool = Pool.create ~min_workers:jobs ~jobs:(jobs + 1) () in
  let listens, bound, fanout = bind_shards cfg.address nshards in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let shards =
    Array.init nshards (fun sid -> make_shard ~nshards ~listen:listens.(sid) sid)
  in
  let st =
    {
      cfg = { cfg with jobs; shards = nshards };
      nshards;
      fanout;
      cache = Cache.create ~shards:nshards ~cap:cfg.cache_cap ();
      pool;
      tm = telemetry;
      started = Clock.now ();
      shards;
      stopping = Atomic.make false;
      in_flight = Atomic.make 0;
      queue_hwm = Atomic.make 0;
      pm_seq = Atomic.make 0;
      handoff_rr = 0;
      stop_fn = stop;
      dump_fn = dump;
    }
  in
  (match on_ready with Some f -> f bound | None -> ());
  if Log.enabled Log.Info then
    Log.info "serve.listening"
      [
        ( "address",
          Json.String
            (match bound with
            | Unix_socket p -> "unix:" ^ p
            | Tcp p -> Printf.sprintf "tcp:127.0.0.1:%d" p) );
        ("jobs", Json.Int jobs);
        ("shards", Json.Int nshards);
        ( "accept",
          Json.String (if fanout && nshards > 1 then "fanout" else "per-shard") );
        ("queue_cap", Json.Int cfg.queue_cap);
      ];
  let peers =
    Array.init (nshards - 1) (fun i ->
        Domain.spawn (fun () -> shard_loop st st.shards.(i + 1)))
  in
  shard_loop st st.shards.(0);
  Array.iter Domain.join peers;
  (* Join the fleet BEFORE closing the wake pipes: a worker's completion
     becomes visible (and lets the drain loop exit) just before its
     wake-up write, so closing [pipe_w] first raced that write into
     EBADF, killing the worker and surfacing at [Pool.close]'s join. *)
  Pool.close pool;
  Array.iter
    (fun sh ->
      close_quietly sh.pipe_r;
      close_quietly sh.pipe_w;
      match sh.listen with Some fd -> close_quietly fd | None -> ())
    st.shards;
  (match bound with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  if cfg.postmortem_dir <> None then Flight.set_enabled false;
  (match on_stop with Some f -> f (metrics_json st) | None -> ());
  let final = stats_json st in
  if Log.enabled Log.Info then Log.info "serve.stopped" [ ("stats", final) ];
  final
