module Json = Wr_support.Json
module Schema = Wr_support.Schema
module Pool = Wr_support.Pool
module Histo = Wr_support.Stats.Histo
module Telemetry = Wr_telemetry.Telemetry
module Runtime_probe = Wr_telemetry.Runtime_probe
module Log = Wr_support.Log
module Flight = Wr_support.Flight
module Clock = Wr_support.Clock

type address = Unix_socket of string | Tcp of int

type config = {
  address : address;
  jobs : int;
  queue_cap : int;
  cache_cap : int;
  wall_limit : float;
  max_time_limit : float;
  postmortem_dir : string option;
      (** arms the flight recorder; postmortems dump here *)
}

let default_config address =
  {
    address;
    jobs = 4;
    queue_cap = 128;
    cache_cap = 64;
    wall_limit = 60.;
    max_time_limit = 600_000.;
    postmortem_dir = None;
  }

(* A request line larger than this is rejected outright: it is almost
   certainly a protocol error, and buffering it unbounded would let one
   client exhaust the daemon. *)
let max_request_bytes = 16 * 1024 * 1024

type conn = {
  cid : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  out : Buffer.t;  (** bytes not yet written; [out_ofs] already sent *)
  mutable out_ofs : int;
  mutable alive : bool;  (** peer still readable; dead conns drop replies *)
}

type job = {
  jid : int;
  job_cid : int;
  verb : string;
  trace : string;  (** supplied or minted; on logs, spans, histograms *)
  wire_trace : string option;  (** echoed on the response iff supplied *)
  t_admit : float;  (** admission time; queue-wait/total latency basis *)
  cache_key : string option;
  deadline : float option;
  mutable answered : bool;  (** timeout already replied; drop the result *)
}

(* One streaming [watch] subscription: the daemon answers with a
   metrics snapshot on the subscriber's connection every [w_interval]
   seconds, [w_left] more times ([None] = until the connection dies). *)
type watcher = {
  w_cid : int;
  w_id : Json.t;
  w_trace : string option;
  w_interval : float;
  mutable w_left : int option;
  mutable w_next : float;
  mutable w_seq : int;
}

type state = {
  cfg : config;
  cache : Cache.t;
  pool : Pool.t;
  tm : Telemetry.t;
  started : float;
  conns : (int, conn) Hashtbl.t;
  jobs_live : (int, job) Hashtbl.t;
  (* (jid, response, worker start, worker end) *)
  completions : (int * Response.t * float * float) Queue.t;
  completions_lock : Mutex.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable next_cid : int;
  mutable next_jid : int;
  mutable next_trace : int;
  (* counters, accept-loop-only *)
  requests : (string, int) Hashtbl.t;  (** by verb *)
  responses : (string, int) Hashtbl.t;  (** by "ok" / error code *)
  mutable analyses_run : int;
  mutable timeouts : int;
  mutable queue_hwm : int;  (** most requests ever in flight at once *)
  mutable watchers : watcher list;
  mutable pm_seq : int;  (** postmortem file sequence number *)
  (* per-stage latency histograms, accept-loop-only: workers ship raw
     timestamps with each completion and the accept loop records them *)
  lat_decode : Histo.t;
  lat_queue : Histo.t;
  lat_run : Histo.t;
  lat_encode : Histo.t;
  lat_total : Histo.t;
}

let mint_trace st =
  let n = st.next_trace in
  st.next_trace <- n + 1;
  Printf.sprintf "t-%d" n

let bump table key =
  Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let count table key = Option.value ~default:0 (Hashtbl.find_opt table key)

let sync_telemetry st =
  let tm = st.tm in
  if Telemetry.enabled tm then begin
    Telemetry.set_counter tm "serve.cache.hits" (Cache.hits st.cache);
    Telemetry.set_counter tm "serve.cache.misses" (Cache.misses st.cache);
    Telemetry.set_counter tm "serve.cache.entries" (Cache.length st.cache);
    Telemetry.set_counter tm "serve.analyses" st.analyses_run;
    Telemetry.set_counter tm "serve.timeouts" st.timeouts;
    Telemetry.set_counter tm "serve.in_flight" (Hashtbl.length st.jobs_live);
    Hashtbl.iter
      (fun verb n -> Telemetry.set_counter tm ("serve.requests." ^ verb) n)
      st.requests;
    Hashtbl.iter
      (fun code n -> Telemetry.set_counter tm ("serve.responses." ^ code) n)
      st.responses
  end

let cache_hit_ratio st =
  let hits = Cache.hits st.cache and misses = Cache.misses st.cache in
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)

let stats_json st =
  let verbs =
    [ "ping"; "stats"; "metrics"; "watch"; "analyze"; "explain"; "predict";
      "replay" ]
  in
  let total = List.fold_left (fun acc v -> acc + count st.requests v) 0 verbs in
  Json.Obj
    [
      Schema.tag;
      ("uptime_s", Json.Float (Clock.now () -. st.started));
      ("jobs", Json.Int st.cfg.jobs);
      ( "queue",
        Json.Obj
          [
            ("cap", Json.Int st.cfg.queue_cap);
            ("in_flight", Json.Int (Hashtbl.length st.jobs_live));
            ("high_water", Json.Int st.queue_hwm);
          ] );
      ( "requests",
        Json.Obj
          (("total", Json.Int total)
          :: List.map (fun v -> (v, Json.Int (count st.requests v))) verbs) );
      ( "responses",
        Json.Obj
          (("ok", Json.Int (count st.responses "ok"))
          :: List.map
               (fun c ->
                 let name = Response.code_name c in
                 (name, Json.Int (count st.responses name)))
               [ Response.Bad_request; Response.Timeout; Response.Overload;
                 Response.Internal ]) );
      ( "cache",
        Json.Obj
          [
            ("cap", Json.Int (Cache.cap st.cache));
            ("entries", Json.Int (Cache.length st.cache));
            ("hits", Json.Int (Cache.hits st.cache));
            ("misses", Json.Int (Cache.misses st.cache));
            ("hit_ratio", Json.Float (cache_hit_ratio st));
          ] );
      ("analyses_run", Json.Int st.analyses_run);
      ("timeouts", Json.Int st.timeouts);
      ( "telemetry",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Telemetry.counters st.tm)) );
    ]

(* --- metrics exposition ------------------------------------------------ *)

let latency_stages st =
  [
    ("decode", st.lat_decode);
    ("queue", st.lat_queue);
    ("run", st.lat_run);
    ("encode", st.lat_encode);
    ("total", st.lat_total);
  ]

(* Prometheus text exposition: one flat document scrapeable by anything
   that speaks the format; quantiles are the HDR-histogram readings at
   export time. *)
let prometheus_text st =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let typ name kind = line "# TYPE %s %s" name kind in
  typ "webracer_uptime_seconds" "gauge";
  line "webracer_uptime_seconds %.3f" (Clock.now () -. st.started);
  typ "webracer_requests_total" "counter";
  Hashtbl.fold (fun verb n acc -> (verb, n) :: acc) st.requests []
  |> List.sort compare
  |> List.iter (fun (verb, n) -> line "webracer_requests_total{verb=%S} %d" verb n);
  typ "webracer_responses_total" "counter";
  Hashtbl.fold (fun code n acc -> (code, n) :: acc) st.responses []
  |> List.sort compare
  |> List.iter (fun (code, n) ->
         line "webracer_responses_total{outcome=%S} %d" code n);
  typ "webracer_queue_depth" "gauge";
  line "webracer_queue_depth %d" (Hashtbl.length st.jobs_live);
  typ "webracer_queue_depth_high_water" "gauge";
  line "webracer_queue_depth_high_water %d" st.queue_hwm;
  typ "webracer_queue_cap" "gauge";
  line "webracer_queue_cap %d" st.cfg.queue_cap;
  typ "webracer_cache_hit_ratio" "gauge";
  line "webracer_cache_hit_ratio %.4f" (cache_hit_ratio st);
  typ "webracer_cache_entries" "gauge";
  line "webracer_cache_entries %d" (Cache.length st.cache);
  typ "webracer_analyses_total" "counter";
  line "webracer_analyses_total %d" st.analyses_run;
  typ "webracer_timeouts_total" "counter";
  line "webracer_timeouts_total %d" st.timeouts;
  typ "webracer_shed_total" "counter";
  line "webracer_shed_total %d" (count st.responses "overload");
  typ "webracer_request_latency_seconds" "summary";
  List.iter
    (fun (stage, h) ->
      List.iter
        (fun (q, p) ->
          line "webracer_request_latency_seconds{stage=%S,quantile=%S} %.6f"
            stage q (Histo.percentile h p))
        [ ("0.5", 50.); ("0.95", 95.); ("0.99", 99.); ("0.999", 99.9) ];
      line "webracer_request_latency_seconds_count{stage=%S} %d" stage
        (Histo.count h);
      line "webracer_request_latency_seconds_sum{stage=%S} %.6f" stage
        (Histo.sum h))
    (latency_stages st);
  Buffer.contents b

(* One [watch] tick: everything [webracer top] renders, in one object.
   [fleet] is a benign point-in-time read of the pool slots; [gc] comes
   from the process's running GC probe, [Json.Null] when none is on. *)
let watch_snapshot st seq =
  let now = Clock.now () in
  Json.Obj
    [
      Schema.tag;
      ("seq", Json.Int seq);
      ("ts", Json.Float now);
      ("uptime_s", Json.Float (now -. st.started));
      ( "requests_total",
        Json.Int (Hashtbl.fold (fun _ n acc -> acc + n) st.requests 0) );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Hashtbl.length st.jobs_live));
            ("high_water", Json.Int st.queue_hwm);
            ("cap", Json.Int st.cfg.queue_cap);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hit_ratio", Json.Float (cache_hit_ratio st));
            ("hits", Json.Int (Cache.hits st.cache));
            ("misses", Json.Int (Cache.misses st.cache));
            ("entries", Json.Int (Cache.length st.cache));
          ] );
      ( "latency",
        Json.Obj
          (List.map (fun (stage, h) -> (stage, Histo.summary_json h))
             (latency_stages st)) );
      ("timeouts", Json.Int st.timeouts);
      ("shed", Json.Int (count st.responses "overload"));
      ("analyses_run", Json.Int st.analyses_run);
      ("fleet", Pool.stats_json (Pool.stats st.pool));
      ( "gc",
        match Runtime_probe.current () with
        | Some p -> Runtime_probe.stats_json p
        | None -> Json.Null );
    ]

let metrics_json st =
  Json.Obj
    [
      Schema.tag;
      ("uptime_s", Json.Float (Clock.now () -. st.started));
      ( "latency",
        Json.Obj
          (List.map (fun (stage, h) -> (stage, Histo.summary_json h))
             (latency_stages st)) );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Hashtbl.length st.jobs_live));
            ("high_water", Json.Int st.queue_hwm);
            ("cap", Json.Int st.cfg.queue_cap);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hit_ratio", Json.Float (cache_hit_ratio st));
            ("hits", Json.Int (Cache.hits st.cache));
            ("misses", Json.Int (Cache.misses st.cache));
            ("entries", Json.Int (Cache.length st.cache));
          ] );
      ("timeouts", Json.Int st.timeouts);
      ("shed", Json.Int (count st.responses "overload"));
      ("analyses_run", Json.Int st.analyses_run);
      ("prometheus", Json.String (prometheus_text st));
    ]

(* --- postmortems ------------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Dump the flight recorder: a JSONL file (header object — reason,
   uptime, the in-flight requests with their trace ids — then one line
   per retained event) plus a mini Chrome trace of the same events.
   Best effort by design: a postmortem failing must not take the daemon
   with it. *)
let write_postmortem st ~reason =
  match st.cfg.postmortem_dir with
  | None -> ()
  | Some dir -> (
      let seq = st.pm_seq in
      st.pm_seq <- seq + 1;
      let base =
        Filename.concat dir (Printf.sprintf "postmortem-%d-%s" seq reason)
      in
      try
        mkdir_p dir;
        let now = Clock.now () in
        let events = Flight.snapshot () in
        let in_flight =
          Hashtbl.fold
            (fun _ job acc ->
              Json.Obj
                [
                  ("jid", Json.Int job.jid);
                  ("verb", Json.String job.verb);
                  ("trace_id", Json.String job.trace);
                  ("age_s", Json.Float (now -. job.t_admit));
                ]
              :: acc)
            st.jobs_live []
        in
        let header =
          Json.Obj
            [
              Schema.tag;
              ("postmortem", Json.String reason);
              ("ts", Json.Float now);
              ("uptime_s", Json.Float (now -. st.started));
              ("events", Json.Int (List.length events));
              ("in_flight", Json.List in_flight);
            ]
        in
        let oc = open_out (base ^ ".jsonl") in
        output_string oc (Json.to_string header ^ "\n");
        output_string oc (Flight.to_jsonl events);
        close_out oc;
        let oc = open_out (base ^ ".trace.json") in
        output_string oc (Json.to_string (Flight.to_chrome_trace events));
        close_out oc;
        Log.warn "serve.postmortem"
          [
            ("reason", Json.String reason);
            ("file", Json.String (base ^ ".jsonl"));
            ("events", Json.Int (List.length events));
          ]
      with e ->
        Log.error "serve.postmortem_failed"
          [
            ("reason", Json.String reason);
            ("error", Json.String (Printexc.to_string e));
          ])

(* --- replies ----------------------------------------------------------- *)

let respond st conn (resp : Response.t) =
  bump st.responses
    (match resp with
    | Response.Ok _ -> "ok"
    | Response.Error { code; _ } -> Response.code_name code);
  if conn.alive then begin
    let t0 = Clock.now () in
    let line = Response.to_line resp in
    Histo.add st.lat_encode (Clock.now () -. t0);
    Buffer.add_string conn.out line;
    Buffer.add_char conn.out '\n'
  end;
  sync_telemetry st

let respond_cid st cid resp =
  match Hashtbl.find_opt st.conns cid with
  | Some conn -> respond st conn resp
  | None ->
      (* The client vanished before its answer; still tally the outcome. *)
      bump st.responses
        (match resp with
        | Response.Ok _ -> "ok"
        | Response.Error { code; _ } -> Response.code_name code)

(* --- job submission ---------------------------------------------------- *)

let submit_job st conn ~verb ~trace ~wire_trace ~cache_key
    (work : unit -> Response.t) =
  let jid = st.next_jid in
  st.next_jid <- jid + 1;
  let t_admit = Clock.now () in
  let deadline =
    if st.cfg.wall_limit > 0. then Some (t_admit +. st.cfg.wall_limit) else None
  in
  Hashtbl.replace st.jobs_live jid
    {
      jid;
      job_cid = conn.cid;
      verb;
      trace;
      wire_trace;
      t_admit;
      cache_key;
      deadline;
      answered = false;
    };
  st.queue_hwm <- max st.queue_hwm (Hashtbl.length st.jobs_live);
  let tm = st.tm in
  (* Test hook: [WEBRACER_FAULT_INJECT=<verb>] makes matching requests
     blow up inside the worker — the way to rehearse a worker crash
     (and its postmortem) on demand, since a domain cannot be killed
     from outside. *)
  let work =
    match Sys.getenv_opt "WEBRACER_FAULT_INJECT" with
    | Some v when v = verb ->
        fun () -> failwith "injected worker fault (WEBRACER_FAULT_INJECT)"
    | _ -> work
  in
  Pool.submit st.pool (fun () ->
      let t_start = Clock.now () in
      Flight.record ~kind:"request.start" ~trace
        [ ("jid", Json.Int jid); ("verb", Json.String verb) ];
      let resp =
        (* The trace id rides on every log line and telemetry span the
           request produces, on whichever domain picked it up. [work]
           normally converts its own failures into [Internal] responses
           ([Api.dispatch]); the guard here keeps even a crash in that
           plumbing — or an injected fault — from killing the domain. *)
        try
          Log.with_trace ~trace_id:trace ~span_id:(string_of_int jid) (fun () ->
              Telemetry.with_span tm ~cat:"serve"
                ~name:(Printf.sprintf "%s [%s]" verb trace)
                work)
        with e ->
          Response.error ~id:Json.Null ?trace:wire_trace Response.Internal
            (Printexc.to_string e)
      in
      Flight.record ~kind:"request.end" ~trace
        [
          ("jid", Json.Int jid);
          ( "outcome",
            Json.String
              (match resp with
              | Response.Ok _ -> "ok"
              | Response.Error { code; _ } -> Response.code_name code) );
        ];
      let t_end = Clock.now () in
      Mutex.lock st.completions_lock;
      Queue.push (jid, resp, t_start, t_end) st.completions;
      Mutex.unlock st.completions_lock;
      (* Wake the accept loop; EAGAIN just means it is already awake, and
         EBADF/EPIPE that the daemon is already past draining. *)
      try ignore (Unix.write st.pipe_w (Bytes.make 1 '!') 0 1)
      with
      | Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
      -> ())

let drain_completions st =
  let batch =
    Mutex.lock st.completions_lock;
    let xs = List.of_seq (Queue.to_seq st.completions) in
    Queue.clear st.completions;
    Mutex.unlock st.completions_lock;
    xs
  in
  List.iter
    (fun (jid, resp, t_start, t_end) ->
      match Hashtbl.find_opt st.jobs_live jid with
      | None -> ()
      | Some job ->
          (match resp with
          | Response.Error { code = Response.Internal; _ } ->
              (* A worker "crashed" (its failure became an Internal
                 response via the crash isolation): dump what the fleet
                 was doing, while this job still counts as in flight. *)
              Flight.record ~kind:"request.crash" ~trace:job.trace
                [ ("jid", Json.Int jid); ("verb", Json.String job.verb) ];
              write_postmortem st ~reason:"worker-crash"
          | _ -> ());
          Hashtbl.remove st.jobs_live jid;
          (* Stage latencies: the worker ships raw timestamps so only the
             accept loop ever touches the histograms (single writer). *)
          let queue_wait = t_start -. job.t_admit in
          let run_time = t_end -. t_start in
          let total = Clock.now () -. job.t_admit in
          Histo.add st.lat_queue queue_wait;
          Histo.add st.lat_run run_time;
          Histo.add st.lat_total total;
          if Log.enabled Log.Debug then
            Log.with_trace ~trace_id:job.trace ~span_id:(string_of_int jid)
              (fun () ->
                Log.debug "serve.response"
                  [
                    ("verb", Json.String job.verb);
                    ("queue_s", Json.Float queue_wait);
                    ("run_s", Json.Float run_time);
                    ("total_s", Json.Float total);
                  ]);
          (match (job.cache_key, resp) with
          | Some key, Response.Ok { result; _ } ->
              st.analyses_run <- st.analyses_run + 1;
              Cache.store st.cache key result
          | Some _, Response.Error _ | None, _ -> ());
          if not job.answered then respond_cid st job.job_cid resp
          else sync_telemetry st)
    batch

let sweep_deadlines st now =
  Hashtbl.iter
    (fun _ job ->
      match job.deadline with
      | Some d when (not job.answered) && d <= now ->
          job.answered <- true;
          st.timeouts <- st.timeouts + 1;
          Flight.record ~kind:"request.deadline" ~trace:job.trace
            [ ("jid", Json.Int job.jid); ("verb", Json.String job.verb) ];
          write_postmortem st ~reason:"deadline";
          respond_cid st job.job_cid
            (Response.error ?trace:job.wire_trace ~id:Json.Null Response.Timeout
               (Printf.sprintf "request exceeded the %.0f s wall-clock limit"
                  st.cfg.wall_limit))
      | _ -> ())
    st.jobs_live

(* Emit due watch snapshots; drop subscriptions whose connection died or
   whose count ran out. *)
let tick_watchers st now =
  st.watchers <-
    List.filter
      (fun w ->
        match Hashtbl.find_opt st.conns w.w_cid with
        | None -> false
        | Some conn when not conn.alive -> false
        | Some conn ->
            if w.w_next <= now then begin
              respond st conn
                (Response.ok ?trace:w.w_trace ~id:w.w_id
                   (watch_snapshot st w.w_seq));
              w.w_seq <- w.w_seq + 1;
              w.w_next <- now +. w.w_interval;
              match w.w_left with
              | Some n -> w.w_left <- Some (n - 1)
              | None -> ()
            end;
            (match w.w_left with Some n when n <= 0 -> false | _ -> true))
      st.watchers

(* --- request handling -------------------------------------------------- *)

let clamp_target st (p : Request.analyze_params) =
  { p with Request.time_limit = Float.min p.Request.time_limit st.cfg.max_time_limit }

let handle_request st conn (req : Request.t) =
  let id = req.Request.id in
  bump st.requests (Request.verb_name req.Request.verb);
  (* [wire_trace] is echoed on the wire iff the client supplied one;
     [trace] (supplied or minted) tags logs, spans and debug output
     either way, so every request is traceable server-side. *)
  let wire_trace = req.Request.trace in
  let trace =
    match wire_trace with Some t -> t | None -> mint_trace st
  in
  let admit ~verb ~cache_key work =
    Flight.record ~kind:"request.admit" ~trace
      [ ("verb", Json.String verb); ("conn", Json.Int conn.cid) ];
    if Hashtbl.length st.jobs_live >= st.cfg.queue_cap then
      respond st conn
        (Response.error ?trace:wire_trace ~id Response.Overload
           (Printf.sprintf "queue full (%d requests in flight); retry later"
              st.cfg.queue_cap))
    else submit_job st conn ~verb ~trace ~wire_trace ~cache_key work
  in
  match req.Request.verb with
  | Request.Ping ->
      respond st conn (Response.ok ?trace:wire_trace ~id Api.ping_result)
  | Request.Stats ->
      respond st conn (Response.ok ?trace:wire_trace ~id (stats_json st))
  | Request.Metrics ->
      respond st conn (Response.ok ?trace:wire_trace ~id (metrics_json st))
  | Request.Watch { interval_s; count } ->
      (* Subscribe; the first snapshot goes out on the next loop pass
         (immediately), then every [interval_s]. No response here. *)
      st.watchers <-
        {
          w_cid = conn.cid;
          w_id = id;
          w_trace = wire_trace;
          w_interval = Float.max 0.05 interval_s;
          w_left = count;
          w_next = Clock.now ();
          w_seq = 0;
        }
        :: st.watchers
  | Request.Analyze p -> (
      let p = clamp_target st p in
      let key = Cache.key p in
      match Cache.find st.cache key with
      | Some result -> respond st conn (Response.ok ?trace:wire_trace ~id result)
      | None ->
          admit ~verb:"analyze" ~cache_key:(Some key) (fun () ->
              Api.dispatch { req with Request.verb = Request.Analyze p }))
  | Request.Explain e ->
      let e = { e with Request.target = clamp_target st e.Request.target } in
      admit ~verb:"explain" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Explain e })
  | Request.Replay r ->
      (* A replay fans out inside one worker; clamp its parallelism so a
         single request cannot oversubscribe the fleet. *)
      let r =
        {
          r with
          Request.target = clamp_target st r.Request.target;
          jobs = max 1 (min r.Request.jobs st.cfg.jobs);
        }
      in
      admit ~verb:"replay" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Replay r })
  | Request.Predict p ->
      let p = { p with Request.target = clamp_target st p.Request.target } in
      admit ~verb:"predict" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Predict p })

let handle_line st conn line =
  if String.trim line <> "" then begin
    if Log.enabled Log.Debug then
      Log.debug "serve.request"
        [ ("conn", Json.Int conn.cid); ("bytes", Json.Int (String.length line)) ];
    let t0 = Clock.now () in
    let decoded = Request.of_line line in
    Histo.add st.lat_decode (Clock.now () -. t0);
    match decoded with
    | Ok req -> handle_request st conn req
    | Error (id, msg) ->
        bump st.requests "invalid";
        respond st conn (Response.error ~id Response.Bad_request msg)
  end

(* Split complete lines out of the connection's input buffer. *)
let process_input st conn =
  let data = Buffer.contents conn.inbuf in
  let n = String.length data in
  let pos = ref 0 in
  (try
     while !pos < n do
       match String.index_from data !pos '\n' with
       | nl ->
           handle_line st conn (String.sub data !pos (nl - !pos));
           pos := nl + 1
       | exception Not_found -> raise Exit
     done
   with Exit -> ());
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf data !pos (n - !pos);
  if Buffer.length conn.inbuf > max_request_bytes then begin
    respond st conn
      (Response.error ~id:Json.Null Response.Bad_request
         (Printf.sprintf "request line exceeds %d bytes" max_request_bytes));
    conn.alive <- false;
    Buffer.clear conn.inbuf
  end

(* --- sockets ----------------------------------------------------------- *)

let listen_on address =
  match address with
  | Unix_socket path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, address)
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Tcp p
        | _ -> address
      in
      (fd, bound)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let accept_conn st listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      let cid = st.next_cid in
      st.next_cid <- cid + 1;
      Hashtbl.replace st.conns cid
        {
          cid;
          fd;
          inbuf = Buffer.create 1024;
          out = Buffer.create 1024;
          out_ofs = 0;
          alive = true;
        }
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()

let read_conn st conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.alive <- false
  | n ->
      Buffer.add_subbytes conn.inbuf chunk 0 n;
      process_input st conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error _ -> conn.alive <- false

let flush_conn conn =
  let pending = Buffer.length conn.out - conn.out_ofs in
  if pending > 0 then begin
    match
      Unix.write_substring conn.fd (Buffer.contents conn.out) conn.out_ofs pending
    with
    | n ->
        conn.out_ofs <- conn.out_ofs + n;
        if conn.out_ofs = Buffer.length conn.out then begin
          Buffer.clear conn.out;
          conn.out_ofs <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ ->
        conn.alive <- false;
        Buffer.clear conn.out;
        conn.out_ofs <- 0
  end

let has_output conn = Buffer.length conn.out - conn.out_ofs > 0

(* --- the accept loop --------------------------------------------------- *)

let run ?(stop = fun () -> false) ?(dump = fun () -> false) ?on_ready ?on_stop
    ?(telemetry = Telemetry.disabled) cfg =
  let jobs = max 1 cfg.jobs in
  (* A postmortem dir arms the flight recorder for the daemon's
     lifetime; every request milestone and teed log line lands in the
     per-domain rings from here on. *)
  if cfg.postmortem_dir <> None then begin
    Flight.configure ();
    Flight.set_enabled true
  end;
  (* [jobs + 1] because the accept loop never helps the pool: the +1
     "submitter slot" stays idle, leaving [jobs] worker domains.
     [min_workers] overrides the hardware cap — [submit] tasks only run
     on spawned workers, so the daemon must keep at least [jobs] of them
     even on small machines. *)
  let pool = Pool.create ~min_workers:jobs ~jobs:(jobs + 1) () in
  let listen_fd, bound = listen_on cfg.address in
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let st =
    {
      cfg = { cfg with jobs };
      cache = Cache.create ~cap:cfg.cache_cap;
      pool;
      tm = telemetry;
      started = Clock.now ();
      conns = Hashtbl.create 16;
      jobs_live = Hashtbl.create 64;
      completions = Queue.create ();
      completions_lock = Mutex.create ();
      pipe_r;
      pipe_w;
      next_cid = 0;
      next_jid = 0;
      next_trace = 0;
      requests = Hashtbl.create 8;
      responses = Hashtbl.create 8;
      analyses_run = 0;
      timeouts = 0;
      queue_hwm = 0;
      watchers = [];
      pm_seq = 0;
      lat_decode = Histo.create ();
      lat_queue = Histo.create ();
      lat_run = Histo.create ();
      lat_encode = Histo.create ();
      lat_total = Histo.create ();
    }
  in
  (match on_ready with Some f -> f bound | None -> ());
  if Log.enabled Log.Info then
    Log.info "serve.listening"
      [
        ( "address",
          Json.String
            (match bound with
            | Unix_socket p -> "unix:" ^ p
            | Tcp p -> Printf.sprintf "tcp:127.0.0.1:%d" p) );
        ("jobs", Json.Int jobs);
        ("queue_cap", Json.Int cfg.queue_cap);
      ];
  let draining = ref false in
  let drain_started = ref 0. in
  let running = ref true in
  while !running do
    if (not !draining) && stop () then begin
      (* Graceful shutdown: no new connections or requests; in-flight
         jobs finish and their responses flush before we exit. *)
      draining := true;
      drain_started := Clock.now ();
      close_quietly listen_fd
    end;
    let now = Clock.now () in
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [] in
    let read_fds =
      st.pipe_r
      :: (if !draining then []
          else listen_fd :: List.filter_map (fun c -> if c.alive then Some c.fd else None) conns)
    in
    let write_fds = List.filter_map (fun c -> if has_output c then Some c.fd else None) conns in
    let timeout =
      Hashtbl.fold
        (fun _ job acc ->
          match job.deadline with
          | Some d when not job.answered -> Float.min acc (Float.max 0.01 (d -. now))
          | _ -> acc)
        st.jobs_live 0.25
    in
    (* Watch ticks also bound the sleep, so snapshots go out on time. *)
    let timeout =
      List.fold_left
        (fun acc w -> Float.min acc (Float.max 0.01 (w.w_next -. now)))
        timeout st.watchers
    in
    (match Unix.select read_fds write_fds [] timeout with
    | readable, writable, _ ->
        if List.mem st.pipe_r readable then begin
          let buf = Bytes.create 512 in
          try
            while Unix.read st.pipe_r buf 0 512 > 0 do
              ()
            done
          with
          | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | Unix.Unix_error _ -> ()
        end;
        if (not !draining) && List.mem listen_fd readable then accept_conn st listen_fd;
        List.iter
          (fun c -> if c.alive && List.mem c.fd readable then read_conn st c)
          conns;
        drain_completions st;
        sweep_deadlines st (Clock.now ());
        tick_watchers st (Clock.now ());
        List.iter (fun c -> if List.mem c.fd writable then flush_conn c) conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* Operator-requested dump (the CLI wires SIGUSR2 here). *)
    if dump () then write_postmortem st ~reason:"signal";
    (* Reap connections that are gone and fully flushed. *)
    Hashtbl.iter
      (fun _ c ->
        if (not c.alive) && not (has_output c) then close_quietly c.fd)
      st.conns;
    Hashtbl.filter_map_inplace
      (fun _ c -> if (not c.alive) && not (has_output c) then None else Some c)
      st.conns;
    if !draining then begin
      drain_completions st;
      if Hashtbl.length st.jobs_live = 0 then begin
        (* Give the flushed responses one last write pass, then stop. *)
        Hashtbl.iter (fun _ c -> flush_conn c) st.conns;
        let unflushed =
          Hashtbl.fold (fun _ c acc -> acc || has_output c) st.conns false
        in
        (* A peer that stopped reading must not wedge shutdown: give the
           flush five seconds, then abandon its bytes. *)
        if (not unflushed) || Clock.now () -. !drain_started > 5. then
          running := false
      end
    end
  done;
  Hashtbl.iter (fun _ c -> close_quietly c.fd) st.conns;
  (* Join the fleet BEFORE closing the wake pipe: a worker's completion
     becomes visible (and lets the drain loop exit) just before its
     wake-up write, so closing [pipe_w] first raced that write into
     EBADF, killing the worker and surfacing at [Pool.close]'s join. *)
  Pool.close pool;
  close_quietly pipe_r;
  close_quietly pipe_w;
  (match bound with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  if cfg.postmortem_dir <> None then Flight.set_enabled false;
  (match on_stop with Some f -> f (metrics_json st) | None -> ());
  let final = stats_json st in
  if Log.enabled Log.Info then Log.info "serve.stopped" [ ("stats", final) ];
  final
