module Json = Wr_support.Json
module Schema = Wr_support.Schema
module Pool = Wr_support.Pool
module Telemetry = Wr_telemetry.Telemetry
module Log = Wr_support.Log

type address = Unix_socket of string | Tcp of int

type config = {
  address : address;
  jobs : int;
  queue_cap : int;
  cache_cap : int;
  wall_limit : float;
  max_time_limit : float;
}

let default_config address =
  {
    address;
    jobs = 4;
    queue_cap = 128;
    cache_cap = 64;
    wall_limit = 60.;
    max_time_limit = 600_000.;
  }

(* A request line larger than this is rejected outright: it is almost
   certainly a protocol error, and buffering it unbounded would let one
   client exhaust the daemon. *)
let max_request_bytes = 16 * 1024 * 1024

type conn = {
  cid : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  out : Buffer.t;  (** bytes not yet written; [out_ofs] already sent *)
  mutable out_ofs : int;
  mutable alive : bool;  (** peer still readable; dead conns drop replies *)
}

type job = {
  jid : int;
  job_cid : int;
  verb : string;
  cache_key : string option;
  deadline : float option;
  mutable answered : bool;  (** timeout already replied; drop the result *)
}

type state = {
  cfg : config;
  cache : Cache.t;
  pool : Pool.t;
  tm : Telemetry.t;
  started : float;
  conns : (int, conn) Hashtbl.t;
  jobs_live : (int, job) Hashtbl.t;
  completions : (int * Response.t) Queue.t;
  completions_lock : Mutex.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable next_cid : int;
  mutable next_jid : int;
  (* counters, accept-loop-only *)
  requests : (string, int) Hashtbl.t;  (** by verb *)
  responses : (string, int) Hashtbl.t;  (** by "ok" / error code *)
  mutable analyses_run : int;
  mutable timeouts : int;
}

let bump table key =
  Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let count table key = Option.value ~default:0 (Hashtbl.find_opt table key)

let sync_telemetry st =
  let tm = st.tm in
  if Telemetry.enabled tm then begin
    Telemetry.set_counter tm "serve.cache.hits" (Cache.hits st.cache);
    Telemetry.set_counter tm "serve.cache.misses" (Cache.misses st.cache);
    Telemetry.set_counter tm "serve.cache.entries" (Cache.length st.cache);
    Telemetry.set_counter tm "serve.analyses" st.analyses_run;
    Telemetry.set_counter tm "serve.timeouts" st.timeouts;
    Telemetry.set_counter tm "serve.in_flight" (Hashtbl.length st.jobs_live);
    Hashtbl.iter
      (fun verb n -> Telemetry.set_counter tm ("serve.requests." ^ verb) n)
      st.requests;
    Hashtbl.iter
      (fun code n -> Telemetry.set_counter tm ("serve.responses." ^ code) n)
      st.responses
  end

let stats_json st =
  let verbs = [ "ping"; "stats"; "analyze"; "explain"; "predict"; "replay" ] in
  let total = List.fold_left (fun acc v -> acc + count st.requests v) 0 verbs in
  Json.Obj
    [
      Schema.tag;
      ("uptime_s", Json.Float (Unix.gettimeofday () -. st.started));
      ("jobs", Json.Int st.cfg.jobs);
      ( "queue",
        Json.Obj
          [
            ("cap", Json.Int st.cfg.queue_cap);
            ("in_flight", Json.Int (Hashtbl.length st.jobs_live));
          ] );
      ( "requests",
        Json.Obj
          (("total", Json.Int total)
          :: List.map (fun v -> (v, Json.Int (count st.requests v))) verbs) );
      ( "responses",
        Json.Obj
          (("ok", Json.Int (count st.responses "ok"))
          :: List.map
               (fun c ->
                 let name = Response.code_name c in
                 (name, Json.Int (count st.responses name)))
               [ Response.Bad_request; Response.Timeout; Response.Overload;
                 Response.Internal ]) );
      ( "cache",
        Json.Obj
          [
            ("cap", Json.Int (Cache.cap st.cache));
            ("entries", Json.Int (Cache.length st.cache));
            ("hits", Json.Int (Cache.hits st.cache));
            ("misses", Json.Int (Cache.misses st.cache));
          ] );
      ("analyses_run", Json.Int st.analyses_run);
      ("timeouts", Json.Int st.timeouts);
      ( "telemetry",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Telemetry.counters st.tm)) );
    ]

(* --- replies ----------------------------------------------------------- *)

let respond st conn (resp : Response.t) =
  bump st.responses
    (match resp with
    | Response.Ok _ -> "ok"
    | Response.Error { code; _ } -> Response.code_name code);
  if conn.alive then begin
    Buffer.add_string conn.out (Response.to_line resp);
    Buffer.add_char conn.out '\n'
  end;
  sync_telemetry st

let respond_cid st cid resp =
  match Hashtbl.find_opt st.conns cid with
  | Some conn -> respond st conn resp
  | None ->
      (* The client vanished before its answer; still tally the outcome. *)
      bump st.responses
        (match resp with
        | Response.Ok _ -> "ok"
        | Response.Error { code; _ } -> Response.code_name code)

(* --- job submission ---------------------------------------------------- *)

let submit_job st conn ~verb ~cache_key (work : unit -> Response.t) =
  let jid = st.next_jid in
  st.next_jid <- jid + 1;
  let deadline =
    if st.cfg.wall_limit > 0. then Some (Unix.gettimeofday () +. st.cfg.wall_limit)
    else None
  in
  Hashtbl.replace st.jobs_live jid
    { jid; job_cid = conn.cid; verb; cache_key; deadline; answered = false };
  Pool.submit st.pool (fun () ->
      let resp = work () in
      Mutex.lock st.completions_lock;
      Queue.push (jid, resp) st.completions;
      Mutex.unlock st.completions_lock;
      (* Wake the accept loop; EAGAIN just means it is already awake. *)
      try ignore (Unix.write st.pipe_w (Bytes.make 1 '!') 0 1)
      with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ())

let drain_completions st =
  let batch =
    Mutex.lock st.completions_lock;
    let xs = List.of_seq (Queue.to_seq st.completions) in
    Queue.clear st.completions;
    Mutex.unlock st.completions_lock;
    xs
  in
  List.iter
    (fun (jid, resp) ->
      match Hashtbl.find_opt st.jobs_live jid with
      | None -> ()
      | Some job ->
          Hashtbl.remove st.jobs_live jid;
          (match (job.cache_key, resp) with
          | Some key, Response.Ok { result; _ } ->
              st.analyses_run <- st.analyses_run + 1;
              Cache.store st.cache key result
          | Some _, Response.Error _ | None, _ -> ());
          if not job.answered then respond_cid st job.job_cid resp
          else sync_telemetry st)
    batch

let sweep_deadlines st now =
  Hashtbl.iter
    (fun _ job ->
      match job.deadline with
      | Some d when (not job.answered) && d <= now ->
          job.answered <- true;
          st.timeouts <- st.timeouts + 1;
          respond_cid st job.job_cid
            (Response.error ~id:Json.Null Response.Timeout
               (Printf.sprintf "request exceeded the %.0f s wall-clock limit"
                  st.cfg.wall_limit))
      | _ -> ())
    st.jobs_live

(* --- request handling -------------------------------------------------- *)

let clamp_target st (p : Request.analyze_params) =
  { p with Request.time_limit = Float.min p.Request.time_limit st.cfg.max_time_limit }

let handle_request st conn (req : Request.t) =
  let id = req.Request.id in
  bump st.requests (Request.verb_name req.Request.verb);
  let admit ~verb ~cache_key work =
    if Hashtbl.length st.jobs_live >= st.cfg.queue_cap then
      respond st conn
        (Response.error ~id Response.Overload
           (Printf.sprintf "queue full (%d requests in flight); retry later"
              st.cfg.queue_cap))
    else submit_job st conn ~verb ~cache_key work
  in
  match req.Request.verb with
  | Request.Ping -> respond st conn (Response.ok ~id Api.ping_result)
  | Request.Stats -> respond st conn (Response.ok ~id (stats_json st))
  | Request.Analyze p -> (
      let p = clamp_target st p in
      let key = Cache.key p in
      match Cache.find st.cache key with
      | Some result -> respond st conn (Response.ok ~id result)
      | None ->
          admit ~verb:"analyze" ~cache_key:(Some key) (fun () ->
              Api.dispatch { req with Request.verb = Request.Analyze p }))
  | Request.Explain e ->
      let e = { e with Request.target = clamp_target st e.Request.target } in
      admit ~verb:"explain" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Explain e })
  | Request.Replay r ->
      (* A replay fans out inside one worker; clamp its parallelism so a
         single request cannot oversubscribe the fleet. *)
      let r =
        {
          r with
          Request.target = clamp_target st r.Request.target;
          jobs = max 1 (min r.Request.jobs st.cfg.jobs);
        }
      in
      admit ~verb:"replay" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Replay r })
  | Request.Predict p ->
      let p = { p with Request.target = clamp_target st p.Request.target } in
      admit ~verb:"predict" ~cache_key:None (fun () ->
          Api.dispatch { req with Request.verb = Request.Predict p })

let handle_line st conn line =
  if String.trim line <> "" then begin
    if Log.enabled Log.Debug then
      Log.debug "serve.request"
        [ ("conn", Json.Int conn.cid); ("bytes", Json.Int (String.length line)) ];
    match Request.of_line line with
    | Ok req -> handle_request st conn req
    | Error (id, msg) ->
        bump st.requests "invalid";
        respond st conn (Response.error ~id Response.Bad_request msg)
  end

(* Split complete lines out of the connection's input buffer. *)
let process_input st conn =
  let data = Buffer.contents conn.inbuf in
  let n = String.length data in
  let pos = ref 0 in
  (try
     while !pos < n do
       match String.index_from data !pos '\n' with
       | nl ->
           handle_line st conn (String.sub data !pos (nl - !pos));
           pos := nl + 1
       | exception Not_found -> raise Exit
     done
   with Exit -> ());
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf data !pos (n - !pos);
  if Buffer.length conn.inbuf > max_request_bytes then begin
    respond st conn
      (Response.error ~id:Json.Null Response.Bad_request
         (Printf.sprintf "request line exceeds %d bytes" max_request_bytes));
    conn.alive <- false;
    Buffer.clear conn.inbuf
  end

(* --- sockets ----------------------------------------------------------- *)

let listen_on address =
  match address with
  | Unix_socket path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, address)
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Tcp p
        | _ -> address
      in
      (fd, bound)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let accept_conn st listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      let cid = st.next_cid in
      st.next_cid <- cid + 1;
      Hashtbl.replace st.conns cid
        {
          cid;
          fd;
          inbuf = Buffer.create 1024;
          out = Buffer.create 1024;
          out_ofs = 0;
          alive = true;
        }
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()

let read_conn st conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.alive <- false
  | n ->
      Buffer.add_subbytes conn.inbuf chunk 0 n;
      process_input st conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error _ -> conn.alive <- false

let flush_conn conn =
  let pending = Buffer.length conn.out - conn.out_ofs in
  if pending > 0 then begin
    match
      Unix.write_substring conn.fd (Buffer.contents conn.out) conn.out_ofs pending
    with
    | n ->
        conn.out_ofs <- conn.out_ofs + n;
        if conn.out_ofs = Buffer.length conn.out then begin
          Buffer.clear conn.out;
          conn.out_ofs <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ ->
        conn.alive <- false;
        Buffer.clear conn.out;
        conn.out_ofs <- 0
  end

let has_output conn = Buffer.length conn.out - conn.out_ofs > 0

(* --- the accept loop --------------------------------------------------- *)

let run ?(stop = fun () -> false) ?on_ready ?(telemetry = Telemetry.disabled) cfg =
  let jobs = max 1 cfg.jobs in
  (* [jobs + 1] because the accept loop never helps the pool: the +1
     "submitter slot" stays idle, leaving [jobs] worker domains. *)
  let pool = Pool.create ~jobs:(jobs + 1) in
  let listen_fd, bound = listen_on cfg.address in
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let st =
    {
      cfg = { cfg with jobs };
      cache = Cache.create ~cap:cfg.cache_cap;
      pool;
      tm = telemetry;
      started = Unix.gettimeofday ();
      conns = Hashtbl.create 16;
      jobs_live = Hashtbl.create 64;
      completions = Queue.create ();
      completions_lock = Mutex.create ();
      pipe_r;
      pipe_w;
      next_cid = 0;
      next_jid = 0;
      requests = Hashtbl.create 8;
      responses = Hashtbl.create 8;
      analyses_run = 0;
      timeouts = 0;
    }
  in
  (match on_ready with Some f -> f bound | None -> ());
  if Log.enabled Log.Info then
    Log.info "serve.listening"
      [
        ( "address",
          Json.String
            (match bound with
            | Unix_socket p -> "unix:" ^ p
            | Tcp p -> Printf.sprintf "tcp:127.0.0.1:%d" p) );
        ("jobs", Json.Int jobs);
        ("queue_cap", Json.Int cfg.queue_cap);
      ];
  let draining = ref false in
  let drain_started = ref 0. in
  let running = ref true in
  while !running do
    if (not !draining) && stop () then begin
      (* Graceful shutdown: no new connections or requests; in-flight
         jobs finish and their responses flush before we exit. *)
      draining := true;
      drain_started := Unix.gettimeofday ();
      close_quietly listen_fd
    end;
    let now = Unix.gettimeofday () in
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [] in
    let read_fds =
      st.pipe_r
      :: (if !draining then []
          else listen_fd :: List.filter_map (fun c -> if c.alive then Some c.fd else None) conns)
    in
    let write_fds = List.filter_map (fun c -> if has_output c then Some c.fd else None) conns in
    let timeout =
      Hashtbl.fold
        (fun _ job acc ->
          match job.deadline with
          | Some d when not job.answered -> Float.min acc (Float.max 0.01 (d -. now))
          | _ -> acc)
        st.jobs_live 0.25
    in
    (match Unix.select read_fds write_fds [] timeout with
    | readable, writable, _ ->
        if List.mem st.pipe_r readable then begin
          let buf = Bytes.create 512 in
          try
            while Unix.read st.pipe_r buf 0 512 > 0 do
              ()
            done
          with
          | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | Unix.Unix_error _ -> ()
        end;
        if (not !draining) && List.mem listen_fd readable then accept_conn st listen_fd;
        List.iter
          (fun c -> if c.alive && List.mem c.fd readable then read_conn st c)
          conns;
        drain_completions st;
        sweep_deadlines st (Unix.gettimeofday ());
        List.iter (fun c -> if List.mem c.fd writable then flush_conn c) conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* Reap connections that are gone and fully flushed. *)
    Hashtbl.iter
      (fun _ c ->
        if (not c.alive) && not (has_output c) then close_quietly c.fd)
      st.conns;
    Hashtbl.filter_map_inplace
      (fun _ c -> if (not c.alive) && not (has_output c) then None else Some c)
      st.conns;
    if !draining then begin
      drain_completions st;
      if Hashtbl.length st.jobs_live = 0 then begin
        (* Give the flushed responses one last write pass, then stop. *)
        Hashtbl.iter (fun _ c -> flush_conn c) st.conns;
        let unflushed =
          Hashtbl.fold (fun _ c acc -> acc || has_output c) st.conns false
        in
        (* A peer that stopped reading must not wedge shutdown: give the
           flush five seconds, then abandon its bytes. *)
        if (not unflushed) || Unix.gettimeofday () -. !drain_started > 5. then
          running := false
      end
    end
  done;
  Hashtbl.iter (fun _ c -> close_quietly c.fd) st.conns;
  close_quietly pipe_r;
  close_quietly pipe_w;
  Pool.close pool;
  (match bound with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  let final = stats_json st in
  if Log.enabled Log.Info then Log.info "serve.stopped" [ ("stats", final) ];
  final
