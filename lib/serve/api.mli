(** The single dispatch path from {!Request.t} values to results.

    Both the daemon's worker domains and the one-shot CLI subcommands go
    through this module, so a page analyzed over the socket and one
    analyzed by [webracer run --json] produce byte-identical documents
    (modulo [wall_clock_s]). *)

module Race = Wr_detect.Race

(** [config_of_params p] is the one params -> [Config.t] mapping.
    [trace] and [telemetry] are process-local concerns (trace dumps,
    profiling) that never travel on the wire, so they ride alongside. *)
val config_of_params :
  ?trace:bool ->
  ?telemetry:Wr_telemetry.Telemetry.t ->
  Request.analyze_params ->
  Webracer.Config.t

val analyze :
  ?trace:bool ->
  ?telemetry:Wr_telemetry.Telemetry.t ->
  Request.analyze_params ->
  Webracer.report

(** [select_witnesses report ~race] builds the explain selection:
    every race, or the 1-based [race] only. [Error] is the out-of-range
    message (a bad request, not an internal error). *)
val select_witnesses :
  Webracer.report ->
  race:int option ->
  ((int * Race.t * Wr_explain.witness) list, string) result

(** [explain_json report selection] — the explain document:
    [{"schema_version":1, "races":n, "filtered":n, "witnesses":[...]}];
    [webracer explain --json] writes exactly this. *)
val explain_json :
  Webracer.report -> (int * Race.t * Wr_explain.witness) list -> Wr_support.Json.t

val replay : Request.replay_params -> Webracer.Replay.verdict

(** [predict_json p] — the static predictor's document
    ([Wr_static.Predict.to_json]): lint-only when [p.lint], with a
    ["compare"] section scored against a fresh dynamic run when
    [p.compare]. [webracer predict --json] writes exactly this. *)
val predict_json :
  ?telemetry:Wr_telemetry.Telemetry.t ->
  Request.predict_params ->
  Wr_support.Json.t

(** [triage_json p] — the guided-triage document
    ([Wr_static.Triage.to_json]): every prediction classified confirmed
    / refuted (with certificate) / unconfirmed, schema v2.
    [webracer triage --json] writes exactly this. *)
val triage_json :
  ?telemetry:Wr_telemetry.Telemetry.t ->
  Request.triage_params ->
  Wr_support.Json.t

(** [ping_result] is the constant [{"pong":true}]. *)
val ping_result : Wr_support.Json.t

(** [dispatch ?stats ?metrics req] runs the request to completion on the
    calling domain and never raises: analysis exceptions become
    [Internal] error responses (crash isolation), explain selection
    errors [Bad_request]. The request's trace id (when present) is
    echoed on every response. [stats] and [metrics] supply those verbs'
    results — the daemon passes its live counters and latency
    histograms; the defaults answer with an [Internal] error since a
    one-shot process has no service state. *)
val dispatch :
  ?stats:(unit -> Wr_support.Json.t) ->
  ?metrics:(unit -> Wr_support.Json.t) ->
  Request.t ->
  Response.t
