(** The daemon's minimal HTTP/1.1 surface.

    One small parser and encoder, just enough for a JSON API behind
    [curl] or any stock HTTP client: request line + headers +
    [Content-Length]-framed body, keep-alive connections, no chunked
    encoding, no TLS. The daemon sniffs the first bytes of each
    connection ({!sniff}), so the HTTP and raw line protocols share a
    single listening socket.

    Routing ({!route}) maps

    {v
    GET  /v1/ping | /v1/stats | /v1/metrics
    POST /v1/analyze | /v1/explain | /v1/replay | /v1/predict
    v}

    onto the line protocol's wire documents — [Request.of_json] remains
    the single decode path and [Api.dispatch] the single dispatch path.
    A POST body is the verb's ["params"] object; a body with a
    ["params"] member is taken as a full request envelope (its
    [id]/[trace]/[schema_version] ride along; the verb always comes from
    the path). An [x-webracer-trace] header seeds the trace id when the
    body carries none. Responses are always schema v2 ({!Response})
    with the closed error taxonomy mapped onto status codes
    (400/429/504/500; 404/405 for routing errors). *)

type req = {
  meth : string;
  path : string;
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

(** [sniff data] classifies the first bytes of a connection: [`Http]
    when they start with an HTTP method keyword, [`Undecided] when
    [data] is still a proper prefix of one, [`Line] otherwise. *)
val sniff : string -> [ `Http | `Line | `Undecided ]

(** [parse data ~pos] parses one request starting at byte [pos]:
    [`Req (r, pos')] consumes up to [pos'], [`More] needs more bytes,
    [`Bad] is a protocol error (the connection should be closed after
    answering 400). [max_body] bounds the declared [Content-Length]
    (default 16 MiB, matching the line protocol's request cap). *)
val parse :
  ?max_body:int -> string -> pos:int -> [ `Req of req * int | `More | `Bad of string ]

val header : string -> req -> string option
val status_reason : int -> string

(** [response ~status ~body] is a complete keep-alive HTTP/1.1 response
    with a JSON content type. *)
val response : status:int -> body:string -> string

(** [route r] is the wire-protocol document for [r], or
    [Error (status, message)] — 404 for unknown paths, 405 for a method
    mismatch, 400 for an unusable body. *)
val route : req -> (Wr_support.Json.t, int * string) result
