module Config = Wr_browser.Config
module Json = Wr_support.Json
module Schema = Wr_support.Schema

type analyze_params = {
  page : string;
  resources : (string * string) list;
  seed : int;
  explore : bool;
  detector : Config.detector_kind;
  hb : Wr_hb.Graph.strategy;
  time_limit : float;
  dedup : bool;
}

type explain_params = { target : analyze_params; race : int option }

type replay_params = {
  target : analyze_params;
  schedules : int;
  parse_delay : float;
  jobs : int;
}

type predict_params = { target : analyze_params; compare : bool; lint : bool }

type triage_params = { target : analyze_params; budget : int; jobs : int }

type watch_params = { interval_s : float; count : int option }

type verb =
  | Ping
  | Stats
  | Metrics
  | Watch of watch_params
  | Analyze of analyze_params
  | Explain of explain_params
  | Replay of replay_params
  | Predict of predict_params
  | Triage of triage_params

type t = { id : Json.t; trace : string option; schema : int; verb : verb }

(* --- validation (shared by the wire decoder and the typed builders) ---- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let check_analyze p =
  if p.time_limit <= 0. then bad "\"time_limit\" must be positive";
  p

let check_watch w =
  if w.interval_s <= 0. then bad "\"interval_s\" must be positive";
  (match w.count with
  | Some n when n < 1 -> bad "\"count\" must be a positive integer"
  | _ -> ());
  w

let check_explain e =
  (match e.race with
  | Some n when n < 1 -> bad "\"race\" must be a positive integer"
  | _ -> ());
  e

let check_replay r =
  if r.schedules < 1 then bad "\"schedules\" must be at least 1";
  if r.parse_delay < 0. then bad "\"parse_delay\" must be non-negative";
  if r.jobs < 1 then bad "\"jobs\" must be at least 1";
  r

let check_triage (t : triage_params) =
  if t.budget < 1 then bad "\"budget\" must be at least 1";
  if t.jobs < 1 then bad "\"jobs\" must be at least 1";
  t

(* --- the typed builders ------------------------------------------------ *)

let make ?(schema = Schema.version) ?trace ~id verb =
  if not (Schema.is_supported schema) then
    invalid_arg
      (Printf.sprintf "Request.make: unsupported schema_version %d" schema);
  { id; trace; schema; verb }

(* Builders are the programmatic mirror of the wire decoder: the same
   checks run on both paths, so a request the CLI or HTTP client can
   construct is exactly a request the daemon would accept. Misuse raises
   [Invalid_argument] (the decoder turns the same condition into a
   [bad_request] wire error). *)
let building check v = try check v with Bad m -> invalid_arg m

let analyze_params ~page ?(resources = []) ?(seed = 0) ?(explore = true)
    ?(detector = Config.Last_access) ?(hb = Wr_hb.Graph.Closure)
    ?(time_limit = 60_000.) ?(dedup = true) () =
  building check_analyze
    { page; resources; seed; explore; detector; hb; time_limit; dedup }

let analyze p = Analyze p

let explain ?race target =
  Explain (building check_explain { target; race })

let replay ?(schedules = 25) ?(parse_delay = 2.) ?(jobs = 1) target =
  Replay (building check_replay { target; schedules; parse_delay; jobs })

let predict ?(compare = false) ?(lint = false) target =
  Predict { target; compare; lint }

let triage ?(budget = Wr_static.Triage.default_budget) ?(jobs = 1) target =
  Triage (building check_triage { target; budget; jobs })

let watch ?(interval_s = 1.) ?count () =
  Watch (building check_watch { interval_s; count })

let verb_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Watch _ -> "watch"
  | Analyze _ -> "analyze"
  | Explain _ -> "explain"
  | Replay _ -> "replay"
  | Predict _ -> "predict"
  | Triage _ -> "triage"

let detector_names =
  [ ("last-access", Config.Last_access); ("full-track", Config.Full_track);
    ("none", Config.No_detector) ]

let hb_names =
  [ ("closure", Wr_hb.Graph.Closure); ("chain-vc", Wr_hb.Graph.Chain_vc);
    ("dfs", Wr_hb.Graph.Dfs) ]

let name_of assoc v = fst (List.find (fun (_, x) -> x = v) assoc)

(* --- encoding ---------------------------------------------------------- *)

let analyze_params_to_json p =
  Json.Obj
    [
      ("page", Json.String p.page);
      ("resources", Json.Obj (List.map (fun (u, b) -> (u, Json.String b)) p.resources));
      ("seed", Json.Int p.seed);
      ("explore", Json.Bool p.explore);
      ("detector", Json.String (name_of detector_names p.detector));
      ("hb", Json.String (name_of hb_names p.hb));
      ("time_limit", Json.Float p.time_limit);
      ("dedup", Json.Bool p.dedup);
    ]

let params_to_json = function
  | Ping | Stats | Metrics -> []
  | Watch { interval_s; count } ->
      [
        ( "params",
          Json.Obj
            (("interval_s", Json.Float interval_s)
            :: (match count with
               | Some n -> [ ("count", Json.Int n) ]
               | None -> [])) );
      ]
  | Analyze p -> [ ("params", analyze_params_to_json p) ]
  | Explain { target; race } ->
      let extra =
        match race with None -> [] | Some n -> [ ("race", Json.Int n) ]
      in
      let fields =
        match analyze_params_to_json target with
        | Json.Obj fields -> fields @ extra
        | _ -> assert false
      in
      [ ("params", Json.Obj fields) ]
  | Replay { target; schedules; parse_delay; jobs } ->
      let fields =
        match analyze_params_to_json target with
        | Json.Obj fields ->
            fields
            @ [
                ("schedules", Json.Int schedules);
                ("parse_delay", Json.Float parse_delay);
                ("jobs", Json.Int jobs);
              ]
        | _ -> assert false
      in
      [ ("params", Json.Obj fields) ]
  | Predict { target; compare; lint } ->
      let fields =
        match analyze_params_to_json target with
        | Json.Obj fields ->
            fields
            @ [ ("compare", Json.Bool compare); ("lint", Json.Bool lint) ]
        | _ -> assert false
      in
      [ ("params", Json.Obj fields) ]
  | Triage { target; budget; jobs } ->
      let fields =
        match analyze_params_to_json target with
        | Json.Obj fields ->
            fields @ [ ("budget", Json.Int budget); ("jobs", Json.Int jobs) ]
        | _ -> assert false
      in
      [ ("params", Json.Obj fields) ]

let to_json t =
  Json.Obj
    ((Schema.tag_of t.schema
     :: (if t.id = Json.Null then [] else [ ("id", t.id) ]))
    @ (match t.trace with
      | Some tr -> [ ("trace", Json.String tr) ]
      | None -> [])
    @ (("verb", Json.String (verb_name t.verb)) :: params_to_json t.verb))

let to_line t = Json.to_string (to_json t)

(* --- the HTTP surface mapping ------------------------------------------ *)

let http_method = function
  | Ping | Stats | Metrics -> "GET"
  | Watch _ | Analyze _ | Explain _ | Replay _ | Predict _ | Triage _ -> "POST"

let http_path = function
  | Ping -> Some "/v1/ping"
  | Stats -> Some "/v1/stats"
  | Metrics -> Some "/v1/metrics"
  | Analyze _ -> Some "/v1/analyze"
  | Explain _ -> Some "/v1/explain"
  | Replay _ -> Some "/v1/replay"
  | Predict _ -> Some "/v1/predict"
  | Triage _ -> Some "/v1/triage"
  | Watch _ -> None (* streaming: raw-socket only *)

let http_body verb =
  match params_to_json verb with [ ("params", p) ] -> Some p | _ -> None

(* --- decoding ---------------------------------------------------------- *)

let field name fields = List.assoc_opt name fields

let get_int name fields ~default =
  match field name fields with
  | None -> default
  | Some (Json.Int i) -> i
  | Some _ -> bad "%S must be an integer" name

let get_bool name fields ~default =
  match field name fields with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "%S must be a boolean" name

let get_float name fields ~default =
  match field name fields with
  | None -> default
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | Some _ -> bad "%S must be a number" name

let get_enum name assoc fields ~default =
  match field name fields with
  | None -> default
  | Some (Json.String s) -> (
      match List.assoc_opt s assoc with
      | Some v -> v
      | None ->
          bad "%S must be one of %s" name
            (String.concat ", " (List.map (fun (k, _) -> Printf.sprintf "%S" k) assoc)))
  | Some _ -> bad "%S must be a string" name

let decode_analyze fields =
  let page =
    match field "page" fields with
    | Some (Json.String s) -> s
    | Some _ -> bad "\"page\" must be a string"
    | None -> bad "\"params\" needs a \"page\" field"
  in
  let resources =
    match field "resources" fields with
    | None -> []
    | Some (Json.Obj entries) ->
        List.map
          (function
            | (url, Json.String body) -> (url, body)
            | (url, _) -> bad "resource %S must map to a string body" url)
          entries
    | Some _ -> bad "\"resources\" must be an object of url -> body"
  in
  check_analyze
    {
      page;
      resources;
      seed = get_int "seed" fields ~default:0;
      explore = get_bool "explore" fields ~default:true;
      detector = get_enum "detector" detector_names fields ~default:Config.Last_access;
      hb = get_enum "hb" hb_names fields ~default:Wr_hb.Graph.Closure;
      time_limit = get_float "time_limit" fields ~default:60_000.;
      dedup = get_bool "dedup" fields ~default:true;
    }

let decode_verb verb params =
  let params_fields =
    match params with
    | None -> []
    | Some (Json.Obj fields) -> fields
    | Some _ -> bad "\"params\" must be an object"
  in
  match verb with
  | "ping" -> Ping
  | "stats" -> Stats
  | "metrics" -> Metrics
  | "watch" ->
      let interval_s = get_float "interval_s" params_fields ~default:1. in
      let count =
        match field "count" params_fields with
        | None -> None
        | Some (Json.Int n) -> Some n
        | Some _ -> bad "\"count\" must be a positive integer"
      in
      Watch (check_watch { interval_s; count })
  | "analyze" -> Analyze (decode_analyze params_fields)
  | "explain" ->
      let race =
        match field "race" params_fields with
        | None -> None
        | Some (Json.Int n) -> Some n
        | Some _ -> bad "\"race\" must be a positive integer"
      in
      Explain (check_explain { target = decode_analyze params_fields; race })
  | "replay" ->
      Replay
        (check_replay
           {
             target = decode_analyze params_fields;
             schedules = get_int "schedules" params_fields ~default:25;
             parse_delay = get_float "parse_delay" params_fields ~default:2.;
             jobs = get_int "jobs" params_fields ~default:1;
           })
  | "predict" ->
      Predict
        {
          target = decode_analyze params_fields;
          compare = get_bool "compare" params_fields ~default:false;
          lint = get_bool "lint" params_fields ~default:false;
        }
  | "triage" ->
      Triage
        (check_triage
           {
             target = decode_analyze params_fields;
             budget =
               get_int "budget" params_fields
                 ~default:Wr_static.Triage.default_budget;
             jobs = get_int "jobs" params_fields ~default:1;
           })
  | other ->
      bad
        "unknown verb %S (expected ping, stats, metrics, watch, analyze, \
         explain, predict, triage or replay)"
        other

let of_json j =
  let id = ref Json.Null in
  let trace = ref None in
  let schema = ref Schema.version in
  match
    match j with
    | Json.Obj fields ->
        (match field "id" fields with Some v -> id := v | None -> ());
        (match field Schema.field fields with
        | None -> ()
        | Some (Json.Int v) when Schema.is_supported v -> schema := v
        | Some (Json.Int v) ->
            bad "unsupported schema_version %d (this server speaks %s)" v
              (Schema.supported_names ())
        | Some _ -> bad "%S must be an integer" Schema.field);
        (match field "trace" fields with
        | None -> ()
        | Some (Json.String s) when s <> "" -> trace := Some s
        | Some _ -> bad "\"trace\" must be a non-empty string");
        let verb =
          match field "verb" fields with
          | Some (Json.String s) -> s
          | Some _ -> bad "\"verb\" must be a string"
          | None -> bad "request needs a \"verb\" field"
        in
        decode_verb verb (field "params" fields)
    | _ -> bad "request must be a JSON object"
  with
  | verb -> Ok { id = !id; trace = !trace; schema = !schema; verb }
  | exception Bad msg -> Error (!id, msg)

let of_line s =
  match Json.of_string s with
  | j -> of_json j
  | exception Json.Parse_error msg -> Error (Json.Null, "invalid JSON: " ^ msg)
