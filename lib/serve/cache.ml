module Json = Wr_support.Json
module Lru = Wr_support.Lru

type shard = {
  lock : Mutex.t;
  lru : Json.t Lru.t;
  mutable s_hits : int;
  mutable s_misses : int;
}

type t = { sh : shard array }

let create ?(shards = 1) ~cap () =
  let n = max 1 shards in
  (* Split the budget so the totals add up to (at least) [cap]; a
     disabled cache (cap = 0) stays disabled on every shard. *)
  let per = if cap <= 0 then 0 else (cap + n - 1) / n in
  {
    sh =
      Array.init n (fun _ ->
          { lock = Mutex.create (); lru = Lru.create ~cap:per;
            s_hits = 0; s_misses = 0 });
  }

let key p = Wr_support.Hash.hex (Json.to_string (Request.analyze_params_to_json p))

let shards t = Array.length t.sh
let shard_of t k = Hashtbl.hash k mod Array.length t.sh

let with_shard t k f =
  let s = t.sh.(shard_of t k) in
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s)

let find t k =
  with_shard t k (fun s ->
      match Lru.find s.lru k with
      | Some _ as hit ->
          s.s_hits <- s.s_hits + 1;
          hit
      | None ->
          s.s_misses <- s.s_misses + 1;
          None)

let store t k v = with_shard t k (fun s -> Lru.add s.lru k v)

let sum f t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let v = f s in
      Mutex.unlock s.lock;
      acc + v)
    0 t.sh

let hits t = sum (fun s -> s.s_hits) t
let misses t = sum (fun s -> s.s_misses) t
let length t = sum (fun s -> Lru.length s.lru) t
let cap t = Array.fold_left (fun acc s -> acc + Lru.cap s.lru) 0 t.sh

let shard_stats t =
  Array.map
    (fun s ->
      Mutex.lock s.lock;
      let v = (s.s_hits, s.s_misses, Lru.length s.lru) in
      Mutex.unlock s.lock;
      v)
    t.sh
