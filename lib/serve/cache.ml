module Json = Wr_support.Json

type t = {
  lru : Json.t Wr_support.Lru.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~cap = { lru = Wr_support.Lru.create ~cap; hits = 0; misses = 0 }

let key p = Wr_support.Hash.hex (Json.to_string (Request.analyze_params_to_json p))

let find t k =
  match Wr_support.Lru.find t.lru k with
  | Some _ as hit ->
      t.hits <- t.hits + 1;
      hit
  | None ->
      t.misses <- t.misses + 1;
      None

let store t k v = Wr_support.Lru.add t.lru k v
let hits t = t.hits
let misses t = t.misses
let length t = Wr_support.Lru.length t.lru
let cap t = Wr_support.Lru.cap t.lru
