(** The [webracer serve] daemon: a long-lived, sharded analysis
    service.

    The event loop is sharded across [shards] domains. Each shard runs
    the classic accept loop — [select] over its own connection table —
    and owns its requests end to end: decode, admission, caching,
    watch subscriptions, latency histograms. With one shard (the
    default) the daemon behaves exactly as it always has, on the
    calling domain.

    Two accept paths feed the shards:

    - TCP with [SO_REUSEPORT]: every shard binds its own listening
      socket to the one port and the kernel spreads connections across
      them — no accept lock, no hand-off;
    - Unix sockets (and platforms without the option): shard 0 owns the
      single listening socket and round-robins accepted fds to its
      peers, keeping request decode off the accept path.

    Each connection speaks one of two surfaces, decided by sniffing its
    first bytes: the newline-delimited JSON line protocol ({!Request}
    in, {!Response} out, many requests pipelined per connection), or
    minimal HTTP/1.1 ({!Http}) mapping [GET /v1/ping|stats|metrics] and
    [POST /v1/analyze|explain|replay|predict] onto the same dispatch,
    with the error taxonomy as status codes (400/429/504/500). HTTP
    responses are always schema v2 (they carry the answering shard and
    HTTP-parity error objects); line-protocol responses speak the
    generation the request negotiated (v1 default, byte-stable).

    Work is fed to one shared {!Wr_support.Pool} of worker domains
    through a bounded global admission queue:

    - [ping], [stats] and [metrics] answer inline from the shard loop
      (stats and metrics merge counters and histograms across shards);
    - [analyze] first consults the sharded LRU result {!Cache} — a hit
      answers without touching a worker — then claims a queue slot;
    - a request arriving while [queue_cap] jobs are in flight across
      all shards gets an [overload] error immediately (backpressure,
      never a crash);
    - a job still unfinished [wall_limit] seconds after admission is
      answered with a [timeout] error; its worker keeps the slot until
      the analysis actually returns, so abandoned work still counts
      against the queue. Requested virtual horizons are clamped to
      [max_time_limit];
    - a worker exception answers [internal] and the daemon carries on
      (crash isolation is {!Api.dispatch}'s contract);
    - [watch] subscribes the connection to a periodic metrics-snapshot
      stream (one [ok] response per tick: queue, cache, per-stage
      latency, fleet profile and GC rows) — what [webracer top]
      renders. Snapshots are merged views; the subscription lives on
      the shard that owns the connection.

    With [postmortem_dir] set, the {!Wr_support.Flight} recorder is
    armed for the daemon's lifetime: request milestones and teed log
    lines accumulate in per-domain rings, and a worker crash, a blown
    deadline, or [dump] reading true (the CLI wires SIGUSR2 to it)
    dumps the rings as [postmortem-<n>-<reason>.jsonl] (header line
    with every shard's in-flight requests and their trace ids, then one
    line per event) plus a [.trace.json] mini Chrome trace.

    Shutdown is graceful: once [stop] reads true (the CLI wires
    SIGINT/SIGTERM to it, polled by shard 0) every shard stops
    accepting and reading, drains its in-flight jobs, flushes every
    pending response; the daemon then joins the shards and the fleet,
    closes and returns its final stats document. *)

type address = Unix_socket of string | Tcp of int

type config = {
  address : address;
  jobs : int;  (** worker domains (the shard loops are extra) *)
  shards : int;  (** event-loop shards; 1 = the classic single loop *)
  queue_cap : int;  (** max in-flight jobs before [overload] *)
  cache_cap : int;  (** LRU entries; 0 disables the result cache *)
  wall_limit : float;  (** seconds per request; 0 = unlimited *)
  max_time_limit : float;  (** clamp on requested virtual horizons (ms) *)
  postmortem_dir : string option;
      (** arm the flight recorder; dump postmortems here *)
}

(** jobs 4, shards 1, queue 128, cache 64, wall limit 60 s, virtual
    clamp 600 000 ms, no postmortem dir. *)
val default_config : address -> config

(** [run config] blocks until [stop] reads true, then drains and
    returns the final [stats] document. [stop] is polled at least every
    0.25 s. [on_ready] fires once listening, with the bound address
    ([Tcp 0] resolves to the kernel-chosen port; all shards share it).
    [on_stop] fires after the drain with the final [metrics] document
    (per-stage latency histograms, queue high-water, cache hit ratio,
    per-shard rows, Prometheus text) — the CLI's [--metrics-out] hook.
    [telemetry] receives the serve counters ([serve.requests],
    [serve.cache.hits], ...); they are also embedded in every [stats]
    response.

    Merged multi-shard counter and histogram views are approximate
    while shards are actively mutating them (single-writer cells read
    without synchronization — memory-safe, possibly a tick stale) and
    exact with one shard or a quiesced daemon.

    Every request is traced: a client-supplied ["trace"] id is echoed
    on the response and used verbatim; otherwise a [t-<n>] id is
    minted (ids stride by the shard count, so they are globally unique
    and dense at one shard). Either way the id tags the request's JSONL
    log lines (via {!Wr_support.Log.with_trace}) and its telemetry
    span, so one id follows a request across the wire, the logs and the
    Chrome trace. SIGPIPE is ignored for the process (clients may
    vanish mid-response). *)
val run :
  ?stop:(unit -> bool) ->
  ?dump:(unit -> bool) ->
  ?on_ready:(address -> unit) ->
  ?on_stop:(Wr_support.Json.t -> unit) ->
  ?telemetry:Wr_telemetry.Telemetry.t ->
  config ->
  Wr_support.Json.t
