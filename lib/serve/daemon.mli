(** The [webracer serve] daemon: a long-lived analysis service.

    One accept loop (the calling domain) multiplexes every connection
    with [select], speaking newline-delimited JSON ({!Request} in,
    {!Response} out, many requests pipelined per connection). Work is
    fed to a {!Wr_support.Pool} of worker domains through a bounded
    admission queue:

    - [ping], [stats] and [metrics] answer inline from the accept loop;
    - [analyze] first consults the LRU result {!Cache} — a hit answers
      without touching a worker — then claims a queue slot;
    - a request arriving while [queue_cap] jobs are in flight gets an
      [overload] error immediately (backpressure, never a crash);
    - a job still unfinished [wall_limit] seconds after admission is
      answered with a [timeout] error; its worker keeps the slot until
      the analysis actually returns, so abandoned work still counts
      against the queue. Requested virtual horizons are clamped to
      [max_time_limit];
    - a worker exception answers [internal] and the daemon carries on
      (crash isolation is {!Api.dispatch}'s contract);
    - [watch] subscribes the connection to a periodic metrics-snapshot
      stream (one [ok] response per tick: queue, cache, per-stage
      latency, fleet profile and GC rows) — what [webracer top]
      renders.

    With [postmortem_dir] set, the {!Wr_support.Flight} recorder is
    armed for the daemon's lifetime: request milestones and teed log
    lines accumulate in per-domain rings, and a worker crash, a blown
    deadline, or [dump] reading true (the CLI wires SIGUSR2 to it)
    dumps the rings as [postmortem-<n>-<reason>.jsonl] (header line
    with the in-flight requests and their trace ids, then one line per
    event) plus a [.trace.json] mini Chrome trace.

    Shutdown is graceful: once [stop] reads true (the CLI wires
    SIGINT/SIGTERM to it) the daemon stops accepting and reading,
    drains in-flight jobs, flushes every pending response, closes and
    returns its final stats document. *)

type address = Unix_socket of string | Tcp of int

type config = {
  address : address;
  jobs : int;  (** worker domains (the accept loop is extra) *)
  queue_cap : int;  (** max in-flight jobs before [overload] *)
  cache_cap : int;  (** LRU entries; 0 disables the result cache *)
  wall_limit : float;  (** seconds per request; 0 = unlimited *)
  max_time_limit : float;  (** clamp on requested virtual horizons (ms) *)
  postmortem_dir : string option;
      (** arm the flight recorder; dump postmortems here *)
}

(** jobs 4, queue 128, cache 64, wall limit 60 s, virtual clamp
    600 000 ms, no postmortem dir. *)
val default_config : address -> config

(** [run config] blocks until [stop] reads true, then drains and
    returns the final [stats] document. [stop] is polled at least every
    0.25 s. [on_ready] fires once listening, with the bound address
    ([Tcp 0] resolves to the kernel-chosen port). [on_stop] fires after
    the drain with the final [metrics] document (per-stage latency
    histograms, queue high-water, cache hit ratio, Prometheus text) —
    the CLI's [--metrics-out] hook. [telemetry] receives the serve
    counters ([serve.requests], [serve.cache.hits], ...); they are also
    embedded in every [stats] response.

    Every request is traced: a client-supplied ["trace"] id is echoed
    on the response and used verbatim; otherwise a [t-<n>] id is
    minted. Either way the id tags the request's JSONL log lines (via
    {!Wr_support.Log.with_trace}) and its telemetry span, so one id
    follows a request across the wire, the logs and the Chrome trace.
    SIGPIPE is ignored for the process (clients may vanish
    mid-response). *)
val run :
  ?stop:(unit -> bool) ->
  ?dump:(unit -> bool) ->
  ?on_ready:(address -> unit) ->
  ?on_stop:(Wr_support.Json.t -> unit) ->
  ?telemetry:Wr_telemetry.Telemetry.t ->
  config ->
  Wr_support.Json.t
