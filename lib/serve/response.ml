module Json = Wr_support.Json
module Schema = Wr_support.Schema

type code = Bad_request | Timeout | Overload | Internal

let code_name = function
  | Bad_request -> "bad_request"
  | Timeout -> "timeout"
  | Overload -> "overload"
  | Internal -> "internal"

let codes = [ Bad_request; Timeout; Overload; Internal ]
let code_of_name s = List.find_opt (fun c -> code_name c = s) codes

(* The HTTP surface maps the closed taxonomy onto status codes; the raw
   protocol's v2 error objects carry the same number so a client behind
   either surface retries on the same signal. *)
let http_status = function
  | Bad_request -> 400
  | Timeout -> 504
  | Overload -> 429
  | Internal -> 500

type t =
  | Ok of {
      id : Json.t;
      trace : string option;
      result : Json.t;
      schema : int;
      shard : int option;
    }
  | Error of {
      id : Json.t;
      trace : string option;
      code : code;
      message : string;
      schema : int;
      shard : int option;
    }

let ok ?(schema = Schema.version) ?shard ?trace ~id result =
  Ok { id; trace; result; schema; shard }

let error ?(schema = Schema.version) ?shard ?trace ~id code message =
  Error { id; trace; code; message; schema; shard }

let is_ok = function Ok _ -> true | Error _ -> false
let id = function Ok { id; _ } | Error { id; _ } -> id
let trace = function Ok { trace; _ } | Error { trace; _ } -> trace
let schema = function Ok { schema; _ } | Error { schema; _ } -> schema
let shard = function Ok { shard; _ } | Error { shard; _ } -> shard

let status = function
  | Ok _ -> 200
  | Error { code; _ } -> http_status code

(* The daemon stamps the negotiated generation (and, from v2 on, the
   answering shard) at the single respond choke point, so inline answers,
   worker completions and timeout errors all agree. *)
let stamp ~schema ~shard t =
  let shard = if schema >= Schema.v2 then Some shard else None in
  match t with
  | Ok r -> Ok { r with schema; shard }
  | Error r -> Error { r with schema; shard }

(* The "trace" field appears on the wire only when the request carried
   one, so untraced traffic is byte-identical to the pre-tracing
   protocol. *)
let trace_field = function
  | None -> []
  | Some tr -> [ ("trace", Json.String tr) ]

let shard_field schema = function
  | Some s when schema >= Schema.v2 -> [ ("shard", Json.Int s) ]
  | _ -> []

let error_obj ~schema code message =
  let http =
    if schema >= Schema.v2 then
      [ ("http_status", Json.Int (http_status code)) ]
    else []
  in
  Json.Obj
    (("code", Json.String (code_name code))
    :: http
    @ [ ("message", Json.String message) ])

let to_json = function
  | Ok { id; trace; result; schema; shard } ->
      Json.Obj
        ((Schema.tag_of schema :: ("id", id) :: trace_field trace)
        @ shard_field schema shard
        @ [ ("ok", Json.Bool true); ("result", result) ])
  | Error { id; trace; code; message; schema; shard } ->
      Json.Obj
        ((Schema.tag_of schema :: ("id", id) :: trace_field trace)
        @ shard_field schema shard
        @ [ ("ok", Json.Bool false); ("error", error_obj ~schema code message) ])

let to_line t = Json.to_string (to_json t)

let of_json j =
  match j with
  | Json.Obj fields -> (
      let id = Option.value ~default:Json.Null (List.assoc_opt "id" fields) in
      let trace =
        match List.assoc_opt "trace" fields with
        | Some (Json.String s) when s <> "" -> Some s
        | _ -> None
      in
      let schema =
        match List.assoc_opt Schema.field fields with
        | Some (Json.Int v) -> v
        | _ -> Schema.version
      in
      let shard =
        match List.assoc_opt "shard" fields with
        | Some (Json.Int s) -> Some s
        | _ -> None
      in
      match List.assoc_opt "ok" fields with
      | Some (Json.Bool true) -> (
          match List.assoc_opt "result" fields with
          | Some result -> Stdlib.Ok (ok ~schema ?shard ~id ?trace result)
          | None -> Stdlib.Error "ok response without \"result\"")
      | Some (Json.Bool false) -> (
          match List.assoc_opt "error" fields with
          | Some (Json.Obj err) -> (
              let message =
                match List.assoc_opt "message" err with
                | Some (Json.String m) -> m
                | _ -> ""
              in
              match List.assoc_opt "code" err with
              | Some (Json.String c) -> (
                  match code_of_name c with
                  | Some code ->
                      Stdlib.Ok (error ~schema ?shard ~id ?trace code message)
                  | None -> Stdlib.Error (Printf.sprintf "unknown error code %S" c))
              | _ -> Stdlib.Error "error response without a string \"code\"")
          | _ -> Stdlib.Error "error response without an \"error\" object")
      | _ -> Stdlib.Error "response needs a boolean \"ok\" field")
  | _ -> Stdlib.Error "response must be a JSON object"

let of_line s =
  match Json.of_string s with
  | j -> of_json j
  | exception Json.Parse_error msg -> Stdlib.Error ("invalid JSON: " ^ msg)
