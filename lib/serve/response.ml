module Json = Wr_support.Json
module Schema = Wr_support.Schema

type code = Bad_request | Timeout | Overload | Internal

let code_name = function
  | Bad_request -> "bad_request"
  | Timeout -> "timeout"
  | Overload -> "overload"
  | Internal -> "internal"

let codes = [ Bad_request; Timeout; Overload; Internal ]
let code_of_name s = List.find_opt (fun c -> code_name c = s) codes

type t =
  | Ok of { id : Json.t; trace : string option; result : Json.t }
  | Error of { id : Json.t; trace : string option; code : code; message : string }

let ok ?trace ~id result = Ok { id; trace; result }
let error ?trace ~id code message = Error { id; trace; code; message }
let is_ok = function Ok _ -> true | Error _ -> false
let id = function Ok { id; _ } | Error { id; _ } -> id
let trace = function Ok { trace; _ } | Error { trace; _ } -> trace

(* The "trace" field appears on the wire only when the request carried
   one, so untraced traffic is byte-identical to the pre-tracing
   protocol. *)
let trace_field = function
  | None -> []
  | Some tr -> [ ("trace", Json.String tr) ]

let to_json = function
  | Ok { id; trace; result } ->
      Json.Obj
        ((Schema.tag :: ("id", id) :: trace_field trace)
        @ [ ("ok", Json.Bool true); ("result", result) ])
  | Error { id; trace; code; message } ->
      Json.Obj
        ((Schema.tag :: ("id", id) :: trace_field trace)
        @ [
            ("ok", Json.Bool false);
            ( "error",
              Json.Obj
                [
                  ("code", Json.String (code_name code));
                  ("message", Json.String message);
                ] );
          ])

let to_line t = Json.to_string (to_json t)

let of_json j =
  match j with
  | Json.Obj fields -> (
      let id = Option.value ~default:Json.Null (List.assoc_opt "id" fields) in
      let trace =
        match List.assoc_opt "trace" fields with
        | Some (Json.String s) when s <> "" -> Some s
        | _ -> None
      in
      match List.assoc_opt "ok" fields with
      | Some (Json.Bool true) -> (
          match List.assoc_opt "result" fields with
          | Some result -> Stdlib.Ok (ok ~id ?trace result)
          | None -> Stdlib.Error "ok response without \"result\"")
      | Some (Json.Bool false) -> (
          match List.assoc_opt "error" fields with
          | Some (Json.Obj err) -> (
              let message =
                match List.assoc_opt "message" err with
                | Some (Json.String m) -> m
                | _ -> ""
              in
              match List.assoc_opt "code" err with
              | Some (Json.String c) -> (
                  match code_of_name c with
                  | Some code -> Stdlib.Ok (error ~id ?trace code message)
                  | None -> Stdlib.Error (Printf.sprintf "unknown error code %S" c))
              | _ -> Stdlib.Error "error response without a string \"code\"")
          | _ -> Stdlib.Error "error response without an \"error\" object")
      | _ -> Stdlib.Error "response needs a boolean \"ok\" field")
  | _ -> Stdlib.Error "response must be a JSON object"

let of_line s =
  match Json.of_string s with
  | j -> of_json j
  | exception Json.Parse_error msg -> Stdlib.Error ("invalid JSON: " ^ msg)
