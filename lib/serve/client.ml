type t = { fd : Unix.file_descr; ic : in_channel; mutable closed : bool }

let sockaddr_of = function
  | Daemon.Unix_socket path -> Unix.ADDR_UNIX path
  | Daemon.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let retriable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EAGAIN -> true
  | _ -> false

let connect ?(retry_for = 0.) address =
  let deadline = Wr_support.Clock.now () +. retry_for in
  let rec attempt () =
    let fd =
      Unix.socket
        (match address with Daemon.Unix_socket _ -> Unix.PF_UNIX | Daemon.Tcp _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd (sockaddr_of address) with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) when retriable e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Wr_support.Clock.now () >= deadline then raise (Unix.Unix_error (e, "connect", ""));
        Unix.sleepf 0.05;
        attempt ()
  in
  let fd = attempt () in
  { fd; ic = Unix.in_channel_of_descr fd; closed = false }

let write_all fd s =
  let len = String.length s in
  let rec go ofs =
    if ofs < len then
      match Unix.write_substring fd s ofs (len - ofs) with
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
  in
  go 0

let send_line t s = write_all t.fd (s ^ "\n")
let send t req = send_line t (Request.to_line req)

(* A peer that resets the connection (e.g. a daemon closing with unread
   input) surfaces as [Sys_error], not end-of-file; both mean "no more
   responses" to a client. *)
let recv_line t = try In_channel.input_line t.ic with Sys_error _ -> None

let recv t =
  match recv_line t with
  | None -> Error "connection closed by server"
  | Some line -> Response.of_line line

let request t req =
  send t req;
  recv t

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* closes the underlying fd too *)
    try In_channel.close t.ic with Sys_error _ -> ()
  end
