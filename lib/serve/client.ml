type t = { fd : Unix.file_descr; ic : in_channel; mutable closed : bool }

let sockaddr_of = function
  | Daemon.Unix_socket path -> Unix.ADDR_UNIX path
  | Daemon.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let retriable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EAGAIN -> true
  | _ -> false

let connect ?(retry_for = 0.) address =
  let deadline = Wr_support.Clock.now () +. retry_for in
  let rec attempt () =
    let fd =
      Unix.socket
        (match address with Daemon.Unix_socket _ -> Unix.PF_UNIX | Daemon.Tcp _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd (sockaddr_of address) with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) when retriable e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Wr_support.Clock.now () >= deadline then raise (Unix.Unix_error (e, "connect", ""));
        Unix.sleepf 0.05;
        attempt ()
  in
  let fd = attempt () in
  { fd; ic = Unix.in_channel_of_descr fd; closed = false }

let write_all fd s =
  let len = String.length s in
  let rec go ofs =
    if ofs < len then
      match Unix.write_substring fd s ofs (len - ofs) with
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
  in
  go 0

let send_line t s = write_all t.fd (s ^ "\n")
let send t req = send_line t (Request.to_line req)

(* A peer that resets the connection (e.g. a daemon closing with unread
   input) surfaces as [Sys_error], not end-of-file; both mean "no more
   responses" to a client. *)
let recv_line t = try In_channel.input_line t.ic with Sys_error _ -> None

let recv t =
  match recv_line t with
  | None -> Error "connection closed by server"
  | Some line -> Response.of_line line

let request t req =
  send t req;
  recv t

(* --- the HTTP surface -------------------------------------------------- *)

(* Read one HTTP/1.1 response off the same channel: status line,
   headers, then exactly Content-Length body bytes. Enough for the
   daemon's own encoder; not a general HTTP client. *)
let http_recv t =
  match recv_line t with
  | None -> Error "connection closed by server"
  | Some status_line -> (
      match String.split_on_char ' ' (String.trim status_line) with
      | version :: code :: _ when String.length version >= 5
                                  && String.sub version 0 5 = "HTTP/" -> (
          match int_of_string_opt code with
          | None -> Error ("malformed HTTP status line: " ^ status_line)
          | Some status ->
              let content_length = ref 0 in
              let rec headers () =
                match recv_line t with
                | None -> Error "connection closed mid-headers"
                | Some line when String.trim line = "" -> Ok ()
                | Some line ->
                    (match String.index_opt line ':' with
                    | Some i
                      when String.lowercase_ascii
                             (String.trim (String.sub line 0 i))
                           = "content-length" ->
                        content_length :=
                          Option.value ~default:0
                            (int_of_string_opt
                               (String.trim
                                  (String.sub line (i + 1)
                                     (String.length line - i - 1))))
                    | _ -> ());
                    headers ()
              in
              (match headers () with
              | Error _ as e -> e
              | Ok () -> (
                  match
                    In_channel.really_input_string t.ic !content_length
                  with
                  | None -> Error "connection closed mid-body"
                  | Some body -> Ok (status, body)
                  | exception Sys_error _ -> Error "connection closed mid-body")))
      | _ -> Error ("malformed HTTP status line: " ^ status_line))

let http_request t ~meth ~path ?(headers = []) ?(body = "") () =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  Buffer.add_string b "Host: webracer\r\n";
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
  if body <> "" || meth = "POST" then
    Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  write_all t.fd (Buffer.contents b);
  http_recv t

let set_recv_timeout t sec =
  try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO sec
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* closes the underlying fd too *)
    try In_channel.close t.ic with Sys_error _ -> ()
  end
