(** The daemon's sharded LRU result cache.

    Keyed by a content hash of the canonical analyze params — page,
    resources and every config knob that can change the report — so two
    requests share an entry iff they would run the identical analysis.
    Values are the full report documents ([Webracer.report_to_json]); a
    hit replays the original run's JSON verbatim, including its
    [wall_clock_s] (byte-identical output matters more than a
    fresh-looking timer). Analyze results only: explain and replay are
    rare, and their documents dominate the memory a slot is worth.

    The store is an array of [Wr_support.Lru] shards behind a key-hash
    selector, one mutex per shard: daemon shards on different domains
    only contend when they hash to the same cache shard, never on one
    global lock. Hit/miss counters live with their shard (updated under
    its lock) and are merged exactly by the read accessors. *)

type t

(** [create ?shards ~cap ()] splits a total budget of [cap] entries over
    [shards] LRU shards (default 1; per-shard capacity is rounded up, so
    the merged {!cap} may slightly exceed the request). [cap <= 0]
    disables caching entirely. *)
val create : ?shards:int -> cap:int -> unit -> t

(** [key p] — 32 hex chars over the canonical params JSON. *)
val key : Request.analyze_params -> string

(** [find t k] bumps the hit or miss counter on [k]'s shard. *)
val find : t -> string -> Wr_support.Json.t option

val store : t -> string -> Wr_support.Json.t -> unit

(** Number of LRU shards. *)
val shards : t -> int

(** [shard_of t k] — which shard holds [k] (test hook for distribution
    checks). *)
val shard_of : t -> string -> int

(** Merged counters, summed exactly across shards under their locks. *)
val hits : t -> int

val misses : t -> int
val length : t -> int
val cap : t -> int

(** Per-shard [(hits, misses, length)] snapshots, in shard order. *)
val shard_stats : t -> (int * int * int) array
