(** The daemon's LRU result cache.

    Keyed by a content hash of the canonical analyze params — page,
    resources and every config knob that can change the report — so two
    requests share an entry iff they would run the identical analysis.
    Values are the full report documents ([Webracer.report_to_json]); a
    hit replays the original run's JSON verbatim, including its
    [wall_clock_s] (byte-identical output matters more than a
    fresh-looking timer). Analyze results only: explain and replay are
    rare, and their documents dominate the memory a slot is worth.

    Not domain-safe by design — the daemon does every lookup and store
    on its accept loop, which also keeps the hit/miss counters exact. *)

type t

val create : cap:int -> t

(** [key p] — 32 hex chars over the canonical params JSON. *)
val key : Request.analyze_params -> string

(** [find t k] bumps the hit or miss counter. *)
val find : t -> string -> Wr_support.Json.t option

val store : t -> string -> Wr_support.Json.t -> unit
val hits : t -> int
val misses : t -> int
val length : t -> int
val cap : t -> int
