module Json = Wr_support.Json
module Schema = Wr_support.Schema

type req = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

(* The daemon sniffs the first bytes of every connection, so both
   surfaces share one port: an HTTP method keyword selects this parser,
   anything else (a '{', typically) stays on the line protocol. *)
let methods = [ "GET "; "POST "; "PUT "; "HEAD "; "DELETE "; "OPTIONS "; "PATCH " ]

let sniff data =
  if List.exists (fun m -> String.starts_with ~prefix:m data) methods then `Http
  else if
    (* a short buffer that is still a prefix of some method keyword
       ("POS", "GE") needs more bytes before we can rule HTTP out *)
    List.exists
      (fun m ->
        String.length data < String.length m
        && String.sub m 0 (String.length data) = data)
      methods
  then `Undecided
  else `Line

let max_head_bytes = 64 * 1024

let find_sub data ~pos ~sub =
  let n = String.length data and k = String.length sub in
  let rec go i =
    if i + k > n then None
    else if String.sub data i k = sub then Some i
    else go (i + 1)
  in
  go pos

let trim = String.trim

let parse_headers block =
  String.split_on_char '\n' block
  |> List.filter_map (fun line ->
         let line =
           if String.length line > 0 && line.[String.length line - 1] = '\r'
           then String.sub line 0 (String.length line - 1)
           else line
         in
         match String.index_opt line ':' with
         | None -> None
         | Some i ->
             Some
               ( String.lowercase_ascii (trim (String.sub line 0 i)),
                 trim (String.sub line (i + 1) (String.length line - i - 1)) ))

let header name r = List.assoc_opt (String.lowercase_ascii name) r.headers

let parse ?(max_body = 16 * 1024 * 1024) data ~pos =
  match find_sub data ~pos ~sub:"\r\n\r\n" with
  | None ->
      if String.length data - pos > max_head_bytes then
        `Bad "request headers exceed 64 KiB"
      else `More
  | Some head_end -> (
      let head = String.sub data pos (head_end - pos) in
      let req_line, header_block =
        match String.index_opt head '\n' with
        | None -> (head, "")
        | Some i ->
            ( trim (String.sub head 0 i),
              String.sub head (i + 1) (String.length head - i - 1) )
      in
      match String.split_on_char ' ' req_line |> List.filter (( <> ) "") with
      | [ meth; path; version ]
        when String.starts_with ~prefix:"HTTP/1." version -> (
          let headers = parse_headers header_block in
          let content_length =
            match List.assoc_opt "content-length" headers with
            | None -> Some 0
            | Some v -> int_of_string_opt (trim v)
          in
          match content_length with
          | None -> `Bad "invalid Content-Length"
          | Some n when n < 0 -> `Bad "invalid Content-Length"
          | Some n when n > max_body ->
              `Bad (Printf.sprintf "request body exceeds %d bytes" max_body)
          | Some n ->
              let body_start = head_end + 4 in
              if String.length data - body_start < n then `More
              else
                `Req
                  ( { meth; path; headers; body = String.sub data body_start n },
                    body_start + n ))
      | _ -> `Bad (Printf.sprintf "malformed HTTP request line %S" req_line))

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

let response ~status ~body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: application/json\r\nContent-Length: \
     %d\r\nConnection: keep-alive\r\n\r\n%s"
    status (status_reason status) (String.length body) body

(* --- routing ----------------------------------------------------------- *)

let routes =
  [
    ("/v1/ping", ("GET", "ping"));
    ("/v1/stats", ("GET", "stats"));
    ("/v1/metrics", ("GET", "metrics"));
    ("/v1/analyze", ("POST", "analyze"));
    ("/v1/explain", ("POST", "explain"));
    ("/v1/replay", ("POST", "replay"));
    ("/v1/predict", ("POST", "predict"));
    ("/v1/triage", ("POST", "triage"));
  ]

(* [route r] maps an HTTP request onto the line protocol's wire
   document, so [Request.of_json] stays the single decode path. The POST
   body is the params object; a body carrying a "params" member is
   treated as a full request envelope (its id/trace/schema_version ride
   along, the verb always comes from the path). *)
let route r =
  let path =
    match String.index_opt r.path '?' with
    | None -> r.path
    | Some i -> String.sub r.path 0 i
  in
  match List.assoc_opt path routes with
  | None -> Error (404, Printf.sprintf "no such endpoint %s" path)
  | Some (meth, _) when meth <> r.meth ->
      Error (405, Printf.sprintf "%s does not accept %s (use %s)" path r.meth meth)
  | Some (_, verb) -> (
      let envelope fields =
        let keep = [ "id"; "trace"; Schema.field ] in
        let kept = List.filter (fun (k, _) -> List.mem k keep) fields in
        let params =
          match List.assoc_opt "params" fields with
          | Some p -> [ ("params", p) ]
          | None -> []
        in
        let trace_hdr =
          match (List.assoc_opt "trace" kept, header "x-webracer-trace" r) with
          | None, Some tr when tr <> "" -> [ ("trace", Json.String tr) ]
          | _ -> []
        in
        Ok (Json.Obj (kept @ trace_hdr @ (("verb", Json.String verb) :: params)))
      in
      if trim r.body = "" then envelope []
      else
        match Json.of_string r.body with
        | exception Json.Parse_error m -> Error (400, "invalid JSON body: " ^ m)
        | Json.Obj fields when List.mem_assoc "params" fields -> envelope fields
        | Json.Obj _ as params ->
            envelope [ ("params", params) ]
        | _ -> Error (400, "request body must be a JSON object"))
