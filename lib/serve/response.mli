(** The response side of the WebRacer service API.

    Wire shape (one object per line), by negotiated generation:

    {v
    v1 (default, byte-stable):
    {"schema_version":1, "id":<echoed>, "ok":true,  "result":{...}}
    {"schema_version":1, "id":<echoed>, "ok":false,
     "error":{"code":"overload", "message":"..."}}

    v2 (opt-in; HTTP surface is v2-native):
    {"schema_version":2, "id":<echoed>, "shard":0, "ok":true, "result":{...}}
    {"schema_version":2, "id":<echoed>, "shard":0, "ok":false,
     "error":{"code":"overload", "http_status":429, "message":"..."}}
    v}

    The error taxonomy is closed and machine-readable: clients dispatch
    on ["error"]["code"] (or, over HTTP, the status line — the mapping is
    fixed), never on the human-oriented message. *)

(** - [Bad_request]: the request line failed to parse, validate or
      decode; retrying unchanged cannot succeed.
    - [Timeout]: the per-request wall-clock or virtual-time budget
      expired; the partial work is discarded.
    - [Overload]: the daemon's bounded queue was full when the request
      arrived — backpressure, not failure; retry later.
    - [Internal]: the analysis raised; the daemon survives (crash
      isolation) and other requests are unaffected. *)
type code = Bad_request | Timeout | Overload | Internal

val code_name : code -> string
val code_of_name : string -> code option

(** The fixed taxonomy-to-HTTP mapping: 400 / 504 / 429 / 500. *)
val http_status : code -> int

type t =
  | Ok of {
      id : Wr_support.Json.t;
      trace : string option;
      result : Wr_support.Json.t;
      schema : int;
      shard : int option;
    }
  | Error of {
      id : Wr_support.Json.t;
      trace : string option;
      code : code;
      message : string;
      schema : int;
      shard : int option;
    }

val ok :
  ?schema:int -> ?shard:int -> ?trace:string -> id:Wr_support.Json.t ->
  Wr_support.Json.t -> t

val error :
  ?schema:int -> ?shard:int -> ?trace:string -> id:Wr_support.Json.t ->
  code -> string -> t

val is_ok : t -> bool
val id : t -> Wr_support.Json.t

(** [trace t] is the echoed trace id: present exactly when the request
    carried a ["trace"] field, making untraced traffic byte-identical to
    the pre-tracing wire protocol. *)
val trace : t -> string option

(** The wire generation this response is encoded at. *)
val schema : t -> int

(** The shard that answered, when the response speaks v2 or later. *)
val shard : t -> int option

(** [status t] is the HTTP status line for [t]: 200 for [Ok], the
    {!http_status} of the code otherwise. *)
val status : t -> int

(** [stamp ~schema ~shard t] rewrites the envelope metadata to the
    request's negotiated generation; the shard id is kept only from v2
    on, so v1 responses stay byte-identical. *)
val stamp : schema:int -> shard:int -> t -> t

val to_json : t -> Wr_support.Json.t

(** [to_line t] is the compact one-line wire encoding (JSON string
    escaping guarantees no embedded newline). *)
val to_line : t -> string

(** [of_json j] decodes a response (the client side). *)
val of_json : Wr_support.Json.t -> (t, string) result

val of_line : string -> (t, string) result
