(** The response side of the WebRacer service API.

    Wire shape (one object per line):

    {v
    {"schema_version":1, "id":<echoed>, "ok":true,  "result":{...}}
    {"schema_version":1, "id":<echoed>, "ok":false,
     "error":{"code":"overload", "message":"..."}}
    v}

    The error taxonomy is closed and machine-readable: clients dispatch
    on ["error"]["code"], never on the human-oriented message. *)

(** - [Bad_request]: the request line failed to parse, validate or
      decode; retrying unchanged cannot succeed.
    - [Timeout]: the per-request wall-clock or virtual-time budget
      expired; the partial work is discarded.
    - [Overload]: the daemon's bounded queue was full when the request
      arrived — backpressure, not failure; retry later.
    - [Internal]: the analysis raised; the daemon survives (crash
      isolation) and other requests are unaffected. *)
type code = Bad_request | Timeout | Overload | Internal

val code_name : code -> string
val code_of_name : string -> code option

type t =
  | Ok of { id : Wr_support.Json.t; trace : string option; result : Wr_support.Json.t }
  | Error of {
      id : Wr_support.Json.t;
      trace : string option;
      code : code;
      message : string;
    }

val ok : ?trace:string -> id:Wr_support.Json.t -> Wr_support.Json.t -> t
val error : ?trace:string -> id:Wr_support.Json.t -> code -> string -> t

val is_ok : t -> bool
val id : t -> Wr_support.Json.t

(** [trace t] is the echoed trace id: present exactly when the request
    carried a ["trace"] field, making untraced traffic byte-identical to
    the pre-tracing wire protocol. *)
val trace : t -> string option

val to_json : t -> Wr_support.Json.t

(** [to_line t] is the compact one-line wire encoding (JSON string
    escaping guarantees no embedded newline). *)
val to_line : t -> string

(** [of_json j] decodes a response (the client side). *)
val of_json : Wr_support.Json.t -> (t, string) result

val of_line : string -> (t, string) result
