function viewPhoto() {
  var panel = document.getElementById("viewer");
  if (panel != null) {
    panel.style.display = "block";
  }
}
