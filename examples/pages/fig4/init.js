var box = document.getElementById("q");
if (box != null) {
  box.value = "Search...";
}
