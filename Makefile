# Convenience targets; `make check` is the CI gate.

.PHONY: all build test bench fmt check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerates every table/figure and writes BENCH_results.json
# ({section: {benchmark: value}}, see README "Benchmarks").
bench:
	dune exec bench/main.exe

# Formatting is checked only when ocamlformat is available (the CI/dev
# container may not ship it); the build and the tests always run.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt || exit 1; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

check: build fmt test
	@echo "check OK"

clean:
	dune clean
