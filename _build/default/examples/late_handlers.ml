(* Event dispatch races (paper Fig. 5 and the Gomez pattern, §2.5, §6.3).

   Page 1 installs an iframe load handler from a separate script: if the
   frame loads quickly the handler is never run (Fig. 5).

   Page 2 is the Gomez performance monitor: a setInterval poll attaches
   onload handlers to images after the fact, racing every image's load
   event. These were ALL the harmful event-dispatch races in the paper's
   evaluation.

   Page 3 shows why the single-dispatch filter exists: a delayed menu
   script attaches hover handlers — a race too, but hovers repeat, so
   missing one is benign and the filter drops it.

   Run with: dune exec examples/late_handlers.exe *)

let fig5_page =
  {|<iframe id="frame" src="nested.html"></iframe>
<script>document.getElementById("frame").onload = function () { return 1; };</script>|}

let gomez_page =
  {|<img id="banner" src="banner.png">
<img id="promo" src="promo.png">
<script>
var ticks = 0;
var timer = setInterval(function () {
  ticks = ticks + 1;
  if (ticks > 30) { clearInterval(timer); return 0; }
  var imgs = document.images;
  var i = 0;
  for (i = 0; i < imgs.length; i++) {
    if (!imgs[i].__monitored) {
      imgs[i].__monitored = true;
      imgs[i].onload = function () { return 1; };
    }
  }
}, 10);
</script>|}

let menu_page =
  {|<a id="nav1" href="#">products</a>
<a id="nav2" href="#">support</a>
<script>setTimeout(function () {
  document.getElementById("nav1").onmouseover = function () { return 1; };
  document.getElementById("nav2").onmouseover = function () { return 1; };
}, 25);</script>|}

let analyze name ?(resources = []) page =
  let report = Webracer.analyze (Webracer.config ~page ~resources ~seed:7 ~explore:true ()) in
  let dispatch_races =
    List.filter
      (fun (r : Wr_detect.Race.t) -> r.Wr_detect.Race.race_type = Wr_detect.Race.Event_dispatch)
      report.Webracer.races
  in
  let kept =
    List.filter
      (fun (r : Wr_detect.Race.t) -> r.Wr_detect.Race.race_type = Wr_detect.Race.Event_dispatch)
      report.Webracer.filtered
  in
  Format.printf "--- %s ---@." name;
  Format.printf "dispatch races: %d raw, %d after the single-dispatch filter@.@."
    (List.length dispatch_races) (List.length kept);
  List.iter (fun r -> Format.printf "%a@.@." Wr_detect.Race.pp r) kept

let () =
  analyze "Fig 5: handler installed from a separate script"
    ~resources:[ ("nested.html", "<p>nested</p>") ]
    fig5_page;
  analyze "Gomez image monitor (harmful: load fires once)"
    ~resources:[ ("banner.png", "png"); ("promo.png", "png") ]
    gomez_page;
  analyze "delayed hover menu (benign: hover repeats, filtered)" menu_page
