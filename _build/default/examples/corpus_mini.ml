(* A slice of the paper's evaluation (§6): analyze a handful of the
   synthetic Fortune-100 sites and print their Table-2 rows next to the
   planted ground truth.

   Run with: dune exec examples/corpus_mini.exe
   (The full corpus lives in bench/main.exe and `webracer corpus`.) *)

module Profile = Wr_sitegen.Profile
module Eval = Wr_sitegen.Eval

let picks = [ "Allstate"; "Ford"; "Humana"; "ValeroEnergy"; "MetLife"; "Company01" ]

let () =
  let profiles =
    List.filter (fun p -> List.mem p.Profile.name picks) (Profile.corpus ())
  in
  let cell (c : Profile.counts) (h : Profile.counts) =
    Printf.sprintf "%d(%d) %d(%d) %d(%d) %d(%d)" c.Profile.html h.Profile.html c.Profile.func
      h.Profile.func c.Profile.var h.Profile.var c.Profile.disp h.Profile.disp
  in
  let rows =
    List.map
      (fun p ->
        let o = Eval.run_site ~seed:11 p in
        [
          p.Profile.name;
          cell o.Eval.filtered o.Eval.harmful;
          cell o.Eval.expected_filtered o.Eval.harmful;
          (if Eval.fidelity o then "yes" else "NO");
          string_of_int o.Eval.ops;
          Printf.sprintf "%.0f ms" (o.Eval.wall_clock_s *. 1000.);
        ])
      profiles
  in
  Wr_support.Table.print
    ~header:
      [ "site"; "detected h/f/v/d"; "planted h/f/v/d"; "faithful"; "ops"; "wall" ]
    rows;
  print_endline "\n(counts are filtered races; harmful ground truth in parentheses)"
