(* The §5.1 detector limitation, end to end.

   The paper's detector keeps only the last read and last write per
   location, so with accesses 1:read, 2:write, 3:read (1 -> 2 ordered) and
   observed schedule 3 . 1 . 2, the 2-3 race is missed: when 2 executes,
   the slot only remembers read 1.

   This example builds that schedule with real page machinery — two timer
   callbacks and an inline script — and runs both detectors over the same
   page. The full-track extension pays memory for complete recall.

   Run with: dune exec examples/detector_comparison.exe *)

(* op 3 = the early timer callback (reads e at ~5ms)
   op 1 = the inline script's read of e... but reads from the parse chain
   are ordered with everything that follows them, so instead we stage the
   paper's abstract example exactly: three timer callbacks where the
   first two run back-to-back from one scheduling site (giving 1 -> 2 via
   nesting) and the third fires first. *)
let page =
  {|<script>
var e = 0;
// op 3: fires first, reads e.
setTimeout(function () { var r3 = e; }, 5);
// op 1: reads e, then schedules op 2 (so op1 happens-before op2).
setTimeout(function () {
  var r1 = e;
  setTimeout(function () { e = 42; }, 5);
}, 10);
</script>|}

let run detector =
  let report = Webracer.analyze (Webracer.config ~page ~seed:1 ~explore:false ~detector ()) in
  List.filter
    (fun (r : Wr_detect.Race.t) ->
      match r.Wr_detect.Race.loc with
      | Wr_mem.Location.Js_var { name = "e"; _ } -> true
      | _ -> false)
    report.Webracer.races

let () =
  let last_access = run Webracer.Config.Last_access in
  let full_track = run Webracer.Config.Full_track in
  Format.printf "schedule: read(op3) . read(op1) . write(op2), with op1 -> op2@.@.";
  Format.printf "last-access detector (paper §5.1): %d race(s) on e@."
    (List.length last_access);
  Format.printf "full-track detector (extension):   %d race(s) on e@.@."
    (List.length full_track);
  List.iter (fun r -> Format.printf "%a@.@." Wr_detect.Race.pp r) full_track;
  if last_access = [] && full_track <> [] then
    print_endline "The single-slot detector missed the race; the full history caught it."
