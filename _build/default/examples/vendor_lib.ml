(* Analyzing a page built on a vendored utility library.

   The paper notes that reported races on production sites were hard to
   inspect because the code went through "complex JavaScript libraries like
   jQuery" (§6.2). This example ships a small jQuery-flavoured library in
   MiniJS — selector, ready(), AJAX get(), hover() — loads it
   asynchronously like real sites do, and lets page code race with it:

   - the inline page script calls [$] before the async library may have
     defined it (a function race on [$], and a real crash on bad
     schedules);
   - the AJAX config fetch races with the DOM it decorates.

   Run with: dune exec examples/vendor_lib.exe *)

let library =
  {|var $ = (function () {
  function select(q) {
    if (q.charAt(0) === "#") { return document.getElementById(q.substring(1)); }
    return document.getElementsByTagName(q);
  }
  select.ready = function (fn) {
    if (document.readyState === "complete") { fn(); }
    else { document.addEventListener("DOMContentLoaded", fn); }
  };
  select.get = function (url, cb) {
    var r = new XMLHttpRequest();
    r.onreadystatechange = function () {
      if (r.readyState === 4) { cb(r.responseText); }
    };
    r.open("GET", url);
    r.send();
  };
  select.hover = function (el, fn) { el.onmouseover = fn; };
  select.each = function (list, fn) {
    var i = 0;
    for (i = 0; i < list.length; i++) { fn(list[i]); }
  };
  return select;
})();|}

let page =
  {|<div id="menu">Products</div>
<div id="promo">...</div>
<script async="true" src="lib.js"></script>
<script>
  // Page enhancement: uses $ from the async library -- a function/variable
  // race, and a crash when the library loses the race.
  setTimeout(function () {
    $.hover($("#menu"), function () { return 1; });
    $.get("promo.json", function (body) {
      var cfg = JSON.parse(body);
      $("#promo").innerHTML = cfg.text;
    });
  }, 10);
</script>|}

let resources =
  [ ("lib.js", library); ("promo.json", {|{"text": "Big <b>sale</b> today"}|}) ]

let () =
  let report = Webracer.analyze (Webracer.config ~page ~resources ~seed:4 ~explore:true ()) in
  Format.printf "%a@.@." Webracer.pp_report report;
  List.iter
    (fun r -> Format.printf "%a@.@." Wr_detect.Race.pp r)
    report.Webracer.races;
  (* Replay: does the $-before-library race actually crash? *)
  let verdict =
    Webracer.Replay.explore_schedules
      (Webracer.config ~page ~resources ~explore:false ())
      ~seeds:(List.init 25 (fun i -> i))
      ()
  in
  Format.printf "%a@." Webracer.Replay.pp_verdict verdict
