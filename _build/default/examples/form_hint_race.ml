(* The Southwest form race (paper Fig. 2, §2.2).

   A script fills a "hint" into the departure-city box. If the user starts
   typing before the script runs, the hint overwrites their input. The
   simulated user types during automatic exploration; the detector reports
   a form-field variable race flagged as likely harmful (lost input).

   The second page shows the §5.3 refinement: a script that checks the
   field before writing is harmless, and the form filter suppresses it.

   Run with: dune exec examples/form_hint_race.exe *)

let racy_page =
  {|<input type="text" id="depart" />
<script>
  // Add a hint to the box -- and silently erase anything the user typed.
  document.getElementById("depart").value = "City of Departure";
</script>|}

let careful_page =
  {|<input type="text" id="depart" />
<script>
  var box = document.getElementById("depart");
  if (box.value === "") { box.value = "City of Departure"; }
</script>|}

let analyze name page =
  let report = Webracer.analyze (Webracer.config ~page ~seed:3 ~explore:true ()) in
  Format.printf "--- %s ---@." name;
  Format.printf "raw races: %d, after filters: %d@."
    (List.length report.Webracer.races)
    (List.length report.Webracer.filtered);
  List.iter
    (fun race ->
      Format.printf "%a%s@.@." Wr_detect.Race.pp race
        (if Wr_detect.Race.heuristic_harmful race then "  [likely harmful]" else ""))
    report.Webracer.filtered;
  Format.printf "@."

let () =
  analyze "hint without checking (Southwest bug)" racy_page;
  analyze "hint with a read-first check (filtered as harmless)" careful_page
