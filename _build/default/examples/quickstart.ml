(* Quickstart: detect the paper's Fig. 1 race.

   A page sets x = 1, then two iframes race: a.html writes x = 2 while
   b.html reads x. The happens-before relation orders the main script
   before both frames (rules 1b and 6), but leaves the frames unordered —
   so WebRacer reports exactly one variable race, between the frames.

   Run with: dune exec examples/quickstart.exe *)

let page =
  {|<script>x = 1;</script>
<iframe src="a.html"></iframe>
<iframe src="b.html"></iframe>|}

let resources =
  [ ("a.html", "<script>x = 2;</script>"); ("b.html", "<script>alert(x);</script>") ]

let () =
  let report = Webracer.analyze (Webracer.config ~page ~resources ~seed:1 ()) in
  Format.printf "%a@.@." Webracer.pp_report report;
  List.iter (fun race -> Format.printf "%a@.@." Wr_detect.Race.pp race) report.Webracer.races;
  (* The console shows which value b.html observed in this schedule; under
     another network timing it could be the other one — that is the race. *)
  List.iter (fun line -> Format.printf "console: %s@." line) report.Webracer.console
