(* Atomicity checking on top of the same models (paper footnote 2).

   The Ford pattern (§6.3) polls for a sentinel node from timer callbacks:
   a check-then-act transaction spread over operations. The race detector
   classifies its reports as benign; the atomicity checker shows *why the
   pattern works at all* is delicate — the sentinel's insertion interleaves
   the polling transaction (read-write-read), which is exactly what the
   pattern deliberately exploits, and what would be a bug anywhere else.

   This example records a trace of the page, replays it offline, and runs
   both analyses.

   Run with: dune exec examples/atomicity_check.exe *)

let page =
  {|<div id="host"></div>
<script>
function decorate() {
  var i = 0;
  for (i = 0; i < 3; i++) {
    var el = document.getElementById("card_" + i);
    el.className = "ready";
  }
}
function poll() {
  if (document.getElementById("cards_done") != null) { decorate(); }
  else { setTimeout(poll, 20); }
}
setTimeout(poll, 1);
// A "deferred content" script adds the cards later, from another timer.
setTimeout(function () {
  var host = document.getElementById("host");
  var i = 0;
  for (i = 0; i < 3; i++) {
    var card = document.createElement("div");
    card.id = "card_" + i;
    host.appendChild(card);
  }
  var done = document.createElement("div");
  done.id = "cards_done";
  host.appendChild(done);
}, 60);
</script>|}

let () =
  let report =
    Webracer.analyze (Webracer.config ~page ~seed:2 ~explore:false ~trace:true ())
  in
  Format.printf "races reported: %d (all benign HTML races from the polling reads)@.@."
    (List.length report.Webracer.races);
  let trace = Option.get report.Webracer.trace in
  Format.printf "trace: %d ops, %d edges, %d accesses@.@."
    (List.length trace.Wr_detect.Trace.ops)
    (List.length trace.Wr_detect.Trace.edges)
    (List.length trace.Wr_detect.Trace.accesses);
  let violations = Wr_detect.Atomicity.check_trace trace in
  Format.printf "atomicity violations: %d@.@." (List.length violations);
  List.iter
    (fun v -> Format.printf "%a@.@." Wr_detect.Atomicity.pp_violation v)
    violations
