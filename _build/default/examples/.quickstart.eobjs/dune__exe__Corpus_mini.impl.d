examples/corpus_mini.ml: List Printf Wr_sitegen Wr_support
