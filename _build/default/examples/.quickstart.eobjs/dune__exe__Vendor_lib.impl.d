examples/vendor_lib.ml: Format List Webracer Wr_detect
