examples/late_handlers.mli:
