examples/atomicity_check.ml: Format List Option Webracer Wr_detect
