examples/detector_comparison.ml: Format List Webracer Wr_detect Wr_mem
