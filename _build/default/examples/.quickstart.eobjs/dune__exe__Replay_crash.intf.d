examples/replay_crash.mli:
