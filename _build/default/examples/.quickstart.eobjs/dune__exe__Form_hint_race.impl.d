examples/form_hint_race.ml: Format List Webracer Wr_detect
