examples/vendor_lib.mli:
