examples/quickstart.ml: Format List Webracer Wr_detect
