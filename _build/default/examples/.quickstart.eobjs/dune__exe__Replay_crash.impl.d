examples/replay_crash.ml: Format List Webracer Wr_detect
