examples/async_menu.ml: Format List Webracer Wr_detect
