examples/async_menu.mli:
