examples/quickstart.mli:
