examples/atomicity_check.mli:
