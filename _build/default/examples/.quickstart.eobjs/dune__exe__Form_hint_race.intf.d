examples/form_hint_race.mli:
