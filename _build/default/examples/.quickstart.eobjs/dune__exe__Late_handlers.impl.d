examples/late_handlers.ml: Format List Webracer Wr_detect
