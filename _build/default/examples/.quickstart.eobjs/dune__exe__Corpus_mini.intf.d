examples/corpus_mini.mli:
