examples/detector_comparison.mli:
