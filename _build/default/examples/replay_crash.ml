(* Adversarial replay: from a race *report* to an observed *crash*.

   The Mozilla function race (paper Fig. 4): an iframe's onload handler
   calls doNextStep(), declared in a later script. WebRacer reports the
   race from any single run via happens-before; replay then re-runs the
   page under many schedules — with parsing given a small virtual cost so
   network arrivals can beat it — until the bad interleaving actually
   fires the handler before the declaration and the hidden ReferenceError
   appears.

   Run with: dune exec examples/replay_crash.exe *)

let page =
  {|<iframe id="i" src="sub.html" onload="doNextStep();"></iframe>
<div>lots</div><div>of</div><div>content</div><div>between</div><div>them</div>
<script>function doNextStep() { return 1; }</script>|}

let resources = [ ("sub.html", "<p>sub</p>") ]

let () =
  (* Step 1: detect the race (any schedule will do). *)
  let report = Webracer.analyze (Webracer.config ~page ~resources ~seed:1 ()) in
  let fraces =
    List.filter
      (fun (r : Wr_detect.Race.t) ->
        r.Wr_detect.Race.race_type = Wr_detect.Race.Function_race)
      report.Webracer.races
  in
  Format.printf "detection run: %d function race(s), %d crash(es) observed@.@."
    (List.length fraces)
    (List.length report.Webracer.crashes);
  List.iter (fun r -> Format.printf "%a@.@." Wr_detect.Race.pp r) fraces;
  (* Step 2: replay under alternative schedules to make it bite. *)
  let cfg = Webracer.config ~page ~resources ~explore:false () in
  let verdict =
    Webracer.Replay.explore_schedules cfg ~seeds:(List.init 20 (fun i -> i)) ~parse_delay:2. ()
  in
  Format.printf "%a@." Webracer.Replay.pp_verdict verdict
