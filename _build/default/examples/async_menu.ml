(* HTML and function races around page load (paper Figs. 3-4, §2.3-2.4).

   A "Send Email" link whose handler dereferences a panel parsed later
   (the Valero bug): clicking before the panel is parsed throws, and the
   browser hides the crash. The same page also carries a hover menu whose
   handler calls a function a later script declares (the Mozilla function
   race). Automatic exploration clicks and hovers to expose both.

   The fixed page moves the declarations first; the happens-before rules
   then order everything and no race is reported.

   Run with: dune exec examples/async_menu.exe *)

let racy_page =
  {|<script>function show() {
  var panel = document.getElementById("emailPanel");
  panel.style.display = "block";
}</script>
<a href="javascript:show()">Send Email</a>
<div id="menu" onmouseover="initMenu();">Products</div>
<script>function initMenu() { return 1; }</script>
<div id="emailPanel" style="display:none">the form</div>|}

let fixed_page =
  {|<script>function show() {
  var panel = document.getElementById("emailPanel");
  panel.style.display = "block";
}
function initMenu() { return 1; }</script>
<div id="emailPanel" style="display:none">the form</div>
<div id="menu" onmouseover="initMenu();">Products</div>
<a href="javascript:show()">Send Email</a>|}

let analyze name page =
  let report = Webracer.analyze (Webracer.config ~page ~seed:5 ~explore:true ()) in
  let html, func, var, disp = Webracer.count_by_type report.Webracer.races in
  Format.printf "--- %s ---@." name;
  Format.printf "html %d, function %d, variable %d, dispatch %d@." html func var disp;
  List.iter (fun r -> Format.printf "%a@.@." Wr_detect.Race.pp r) report.Webracer.races;
  Format.printf "@."

let () =
  analyze "panel and menu defined after their users (races)" racy_page;
  analyze "declarations first (no races)" fixed_page
