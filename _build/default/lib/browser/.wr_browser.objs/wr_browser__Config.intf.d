lib/browser/config.mli: Wr_hb
