lib/browser/config.ml: Wr_hb
