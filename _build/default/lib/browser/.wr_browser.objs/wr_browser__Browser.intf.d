lib/browser/browser.mli: Config Wr_detect Wr_dom Wr_hb
