lib/browser/browser.ml: Buffer Config Float Hashtbl List Option Printf String Wr_detect Wr_dom Wr_events Wr_hb Wr_html Wr_js Wr_mem Wr_scheduler Wr_support
