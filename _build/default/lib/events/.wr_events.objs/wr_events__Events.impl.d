lib/events/events.ml: Hashtbl List Wr_mem
