lib/events/events.mli: Wr_mem
