lib/sitegen/patterns.mli: Wr_detect Wr_html
