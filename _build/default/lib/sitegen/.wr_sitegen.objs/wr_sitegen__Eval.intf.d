lib/sitegen/eval.mli: Profile
