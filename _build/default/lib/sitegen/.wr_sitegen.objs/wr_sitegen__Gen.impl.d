lib/sitegen/gen.ml: List Patterns Profile String Wr_html
