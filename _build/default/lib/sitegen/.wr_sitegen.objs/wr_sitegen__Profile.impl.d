lib/sitegen/profile.ml: List Printf
