lib/sitegen/eval.ml: Gen List Printf Profile Webracer Wr_detect Wr_support
