lib/sitegen/profile.mli:
