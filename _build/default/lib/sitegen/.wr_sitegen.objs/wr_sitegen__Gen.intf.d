lib/sitegen/gen.mli: Profile
