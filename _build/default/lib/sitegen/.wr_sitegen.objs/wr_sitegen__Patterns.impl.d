lib/sitegen/patterns.ml: List Printf String Wr_detect Wr_html
