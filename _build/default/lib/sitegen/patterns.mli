(** Race-pattern emitters for the synthetic evaluation corpus.

    Each emitter produces a self-contained page fragment that plants a
    known number of races of a known type and harmfulness — the concrete
    patterns the paper reports finding on Fortune-100 pages (§2, §6.3):

    - {!html_unguarded}: Fig. 3 (Valero) — a [javascript:] link whose
      handler dereferences a later-parsed element; harmful (exception).
    - {!html_guarded}: the same with a null check; benign, still a race.
    - {!html_polling}: the Ford pattern — [setTimeout] polling for a
      sentinel node then touching [n] nodes; [n+1] benign HTML races.
    - {!function_hover}: §6.3's harmful function races — a hover handler
      invoking a function declared in a later script; the [guarded]
      variant tests [typeof] first (benign, still a race).
    - {!form_hint}: Fig. 2 (Southwest) — a script overwrites a text box
      the user may have typed into; harmful, survives the filters.
    - {!form_checked}: the §5.3 refinement — the script checks the field
      first; raw race, removed by the form filter.
    - {!form_two_writers}: an async script and a timer both initialize a
      field; benign form race that survives the filters.
    - {!gomez}: §6.3's harmful dispatch races — a [setInterval] monitor
      attaching [onload] to [n] images, racing each image's load.
    - {!late_load_listener}: a timer-delayed [window.addEventListener
      ("load", ...)]; benign single-dispatch race.
    - {!bulk_variable}: [n] plain variable races between an async library
      and a timer callback; raw-only (the form filter removes them).
    - {!bulk_dispatch}: a delayed script attaching hover handlers to [n]
      nav links; raw-only (multi-dispatch events are filtered).
    - {!ajax_shared}: two XHR completion handlers writing one global; one
      raw-only variable race exercising rule 10.

    [idx] namespaces every id/global so instances never interact. Counts
    below are exact: the corpus fidelity test asserts detector reports
    match them one-for-one. *)

type t = {
  nodes : Wr_html.Html.node list;  (** appended to the page in order *)
  resources : (string * string) list;
  raw : Wr_detect.Race.race_type * int;  (** races reported before filters *)
  filtered : int;  (** of those, how many survive the §5.3 filters *)
  harmful : int;  (** ground truth: how many are harmful *)
}

val html_unguarded : idx:int -> t

val html_guarded : idx:int -> t

val html_polling : idx:int -> n:int -> t

val function_hover : idx:int -> guarded:bool -> t

val form_hint : idx:int -> t

val form_checked : idx:int -> t

val form_two_writers : idx:int -> t

val gomez : idx:int -> n:int -> t

val late_load_listener : idx:int -> t

val bulk_variable : idx:int -> n:int -> t

val bulk_dispatch : idx:int -> n:int -> t

val ajax_shared : idx:int -> t

(** [boilerplate ~name] is inert page chrome (header, nav, footer, a logo
    image) giving sites realistic structure and op volume without races. *)
val boilerplate : name:string -> Wr_html.Html.node list * (string * string) list

(** [decoy ~idx ~n] is race-free filler realism: an article grid of [n]
    elements, an image strip, a self-clearing carousel script and a search
    form. Every access it generates is ordered by the parse chain or a
    single interval chain, so it adds operations and accesses — page
    "weight" — but no reports. The corpus fidelity test keeps it honest. *)
val decoy : idx:int -> n:int -> Wr_html.Html.node list * (string * string) list
