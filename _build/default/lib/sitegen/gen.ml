module Html = Wr_html.Html

type site = { profile : Profile.t; page : string; resources : (string * string) list }

let generate (p : Profile.t) =
  let idx = ref 0 in
  let fragments = ref [] in
  let emit (frag : Patterns.t) = fragments := frag :: !fragments in
  let next () =
    incr idx;
    !idx
  in
  let repeat n f = for _ = 1 to n do emit (f ~idx:(next ())) done in
  let chrome, chrome_resources = Patterns.boilerplate ~name:p.Profile.name in
  (* HTML races: harmful ones are unguarded lookups; a large benign count
     becomes one Ford-style polling block, small counts individual guarded
     lookups. *)
  repeat p.Profile.html_harmful Patterns.html_unguarded;
  (if p.Profile.html_benign >= 4 then
     emit (Patterns.html_polling ~idx:(next ()) ~n:(p.Profile.html_benign - 1))
   else repeat p.Profile.html_benign Patterns.html_guarded);
  repeat p.Profile.func_harmful (Patterns.function_hover ~guarded:false);
  repeat p.Profile.func_benign (Patterns.function_hover ~guarded:true);
  repeat p.Profile.var_harmful Patterns.form_hint;
  repeat p.Profile.var_benign Patterns.form_two_writers;
  repeat p.Profile.var_checked Patterns.form_checked;
  if p.Profile.disp_harmful > 0 then
    emit (Patterns.gomez ~idx:(next ()) ~n:p.Profile.disp_harmful);
  repeat p.Profile.disp_benign Patterns.late_load_listener;
  if p.Profile.bulk_var > 0 then
    emit (Patterns.bulk_variable ~idx:(next ()) ~n:p.Profile.bulk_var);
  if p.Profile.bulk_disp > 0 then
    emit (Patterns.bulk_dispatch ~idx:(next ()) ~n:p.Profile.bulk_disp);
  repeat p.Profile.ajax Patterns.ajax_shared;
  let fragments = List.rev !fragments in
  (* Race-free filler scaled to the site's race volume, so page weight is
     realistic for the perf numbers without touching the planted counts. *)
  let volume =
    60 + (2 * Profile.total (Profile.expected_raw p)) + String.length p.Profile.name
  in
  let decoy_nodes, decoy_resources = Patterns.decoy ~idx:(next ()) ~n:volume in
  let nodes =
    chrome
    @ List.concat_map (fun (f : Patterns.t) -> f.Patterns.nodes) fragments
    @ decoy_nodes
  in
  let resources =
    chrome_resources
    @ List.concat_map (fun (f : Patterns.t) -> f.Patterns.resources) fragments
    @ decoy_resources
  in
  { profile = p; page = Html.to_string nodes; resources }

let expected_ops_lower_bound site =
  (* At least one parse op per element plus one per script execution. *)
  let rec count_nodes acc = function
    | Html.Element e -> List.fold_left count_nodes (acc + 1) e.Html.children
    | Html.Text _ -> acc
  in
  List.fold_left count_nodes 0 (Html.parse site.page)
