(** Site generation: realize a {!Profile.t} as a complete page.

    Large benign HTML-race counts are realized with one Ford-style polling
    pattern (n+1 races per instance); small counts use individual guarded
    lookups. Gomez instances carry the profile's harmful-dispatch count as
    their image count. Every pattern instance gets a unique index so
    instances cannot interact. *)

type site = {
  profile : Profile.t;
  page : string;  (** serialized HTML *)
  resources : (string * string) list;
}

(** [generate profile] builds the page and its external resources. *)
val generate : Profile.t -> site

(** [expected_ops_lower_bound site] — a loose structural lower bound on
    operations the page will create (used by the perf narrative). *)
val expected_ops_lower_bound : site -> int
