module Html = Wr_html.Html
module Race = Wr_detect.Race

type t = {
  nodes : Html.node list;
  resources : (string * string) list;
  raw : Race.race_type * int;
  filtered : int;
  harmful : int;
}

let script code = Html.el "script" [ Html.text code ]

(* Fig. 3 (Valero): the click's default action dereferences an element
   parsed later. The function itself is declared first so the only race is
   the HTML one. *)
let html_unguarded ~idx =
  let code =
    Printf.sprintf
      "function open_%d() { var v = document.getElementById(\"panel_%d\"); v.style.display = \
       \"block\"; }"
      idx idx
  in
  {
    nodes =
      [
        script code;
        Html.el "a"
          ~attrs:[ ("id", Printf.sprintf "lnk_%d" idx);
                   ("href", Printf.sprintf "javascript:open_%d()" idx) ]
          [ Html.text "Send Email" ];
        Html.el "div"
          ~attrs:[ ("id", Printf.sprintf "panel_%d" idx); ("style", "display:none") ]
          [ Html.text "panel" ];
      ];
    resources = [];
    raw = (Race.Html, 1);
    filtered = 1;
    harmful = 1;
  }

let html_guarded ~idx =
  let code =
    Printf.sprintf
      "function open_%d() { var v = document.getElementById(\"panel_%d\"); if (v != null) { \
       v.style.display = \"block\"; } }"
      idx idx
  in
  { (html_unguarded ~idx) with
    nodes =
      [
        script code;
        Html.el "a"
          ~attrs:[ ("id", Printf.sprintf "lnk_%d" idx);
                   ("href", Printf.sprintf "javascript:open_%d()" idx) ]
          [ Html.text "Open" ];
        Html.el "div"
          ~attrs:[ ("id", Printf.sprintf "panel_%d" idx); ("style", "display:none") ]
          [ Html.text "panel" ];
      ];
    harmful = 0;
  }

(* The Ford pattern (§6.3): poll for a sentinel via setTimeout, then touch
   n nodes that the page layout guarantees exist. n+1 benign HTML races
   (the sentinel lookup plus one per touched node). *)
let html_polling ~idx ~n =
  let code =
    Printf.sprintf
      "function poll_%d() {\n\
      \  if (document.getElementById(\"sentinel_%d\") != null) {\n\
      \    var i = 0;\n\
      \    for (i = 0; i < %d; i++) {\n\
      \      var el = document.getElementById(\"pn_%d_\" + i);\n\
      \      el.className = \"ready\";\n\
      \    }\n\
      \  } else { setTimeout(poll_%d, 25); }\n\
       }\n\
       poll_%d();"
      idx idx n idx idx idx
  in
  let nodes =
    script code
    :: (List.init n (fun i ->
            Html.el "div" ~attrs:[ ("id", Printf.sprintf "pn_%d_%d" idx i) ] [ Html.text "." ])
       @ [ Html.el "div" ~attrs:[ ("id", Printf.sprintf "sentinel_%d" idx) ] [] ])
  in
  { nodes; resources = []; raw = (Race.Html, n + 1); filtered = n + 1; harmful = 0 }

(* §6.3's harmful function races: a hover handler invoking a function a
   later script declares. *)
let function_hover ~idx ~guarded =
  let call =
    if guarded then
      Printf.sprintf "if (typeof hover_%d != \"undefined\") { hover_%d(); }" idx idx
    else Printf.sprintf "hover_%d();" idx
  in
  {
    nodes =
      [
        Html.el "div"
          ~attrs:[ ("id", Printf.sprintf "menu_%d" idx); ("onmouseover", call) ]
          [ Html.text "Products" ];
        script (Printf.sprintf "function hover_%d() { return %d; }" idx idx);
      ];
    resources = [];
    raw = (Race.Function_race, 1);
    filtered = 1;
    harmful = (if guarded then 0 else 1);
  }

(* Fig. 2 (Southwest): the hint script erases whatever the user typed. *)
let form_hint ~idx =
  {
    nodes =
      [
        Html.el "input"
          ~attrs:[ ("type", "text"); ("id", Printf.sprintf "search_%d" idx) ]
          [];
        script
          (Printf.sprintf
             "document.getElementById(\"search_%d\").value = \"City of Departure\";" idx);
      ];
    resources = [];
    raw = (Race.Variable, 1);
    filtered = 1;
    harmful = 1;
  }

(* §5.3 refinement: checking the field first makes the race harmless, and
   the form filter drops it. *)
let form_checked ~idx =
  {
    nodes =
      [
        Html.el "input"
          ~attrs:[ ("type", "text"); ("id", Printf.sprintf "query_%d" idx) ]
          [];
        script
          (Printf.sprintf
             "var el_%d = document.getElementById(\"query_%d\");\n\
              if (el_%d.value === \"\") { el_%d.value = \"Search\"; }"
             idx idx idx idx);
      ];
    resources = [];
    raw = (Race.Variable, 1);
    filtered = 0;
    harmful = 0;
  }

(* Two initializers (an async library and a timer) write the same field:
   a form race that survives the filters but loses no user input. *)
let form_two_writers ~idx =
  let url = Printf.sprintf "init_%d.js" idx in
  {
    nodes =
      [
        Html.el "input"
          ~attrs:[ ("type", "text"); ("id", Printf.sprintf "field_%d" idx) ]
          [];
        Html.el "script" ~attrs:[ ("async", "true"); ("src", url) ] [];
        script
          (Printf.sprintf
             "setTimeout(function () { document.getElementById(\"field_%d\").value = \"B\"; }, \
              30);"
             idx);
      ];
    resources =
      [ (url, Printf.sprintf "document.getElementById(\"field_%d\").value = \"A\";" idx) ];
    raw = (Race.Variable, 1);
    filtered = 1;
    harmful = 0;
  }

(* §6.3's only harmful dispatch races: the Gomez monitor polls for new
   images every 10ms and attaches onload, racing each image's load. *)
let gomez ~idx ~n =
  let imgs =
    List.init n (fun i ->
        Html.el "img"
          ~attrs:
            [ ("id", Printf.sprintf "gz_%d_%d" idx i);
              ("src", Printf.sprintf "gz_%d_%d.png" idx i) ]
          [])
  in
  (* The monitor clears itself from inside the interval: rule 17 orders the
     iterations, so the clearTimeout-extension location stays race-free and
     the planted count is exactly the per-image dispatch races. *)
  let code =
    Printf.sprintf
      "var gzn_%d = 0;\n\
       var gzt_%d = setInterval(function () {\n\
      \  gzn_%d = gzn_%d + 1;\n\
      \  if (gzn_%d > 40) { clearInterval(gzt_%d); return 0; }\n\
      \  var i = 0;\n\
      \  for (i = 0; i < %d; i++) {\n\
      \    var im = document.getElementById(\"gz_%d_\" + i);\n\
      \    if (im != null && !im.__wr_%d) { im.__wr_%d = true; im.onload = function () { \
       return 1; }; }\n\
      \  }\n\
       }, 10);"
      idx idx idx idx idx idx n idx idx idx
  in
  {
    nodes = imgs @ [ script code ];
    resources = List.init n (fun i -> (Printf.sprintf "gz_%d_%d.png" idx i, "png"));
    raw = (Race.Event_dispatch, n);
    filtered = n;
    harmful = n;
  }

(* A deliberately delayed enhancement attaches an image load handler from a
   timer: a single-dispatch race the paper's manual inspection classified
   benign (degraded functionality during load, by design). *)
let late_load_listener ~idx =
  let img_id = Printf.sprintf "late_img_%d" idx in
  {
    nodes =
      [
        Html.el "img" ~attrs:[ ("id", img_id); ("src", img_id ^ ".png") ] [];
        script
          (Printf.sprintf
             "setTimeout(function () { document.getElementById(\"%s\").onload = function () { \
              return 1; }; }, 5);"
             img_id);
      ];
    resources = [ (img_id ^ ".png", "png") ];
    raw = (Race.Event_dispatch, 1);
    filtered = 1;
    harmful = 0;
  }

(* n plain variable races between an async library and a timer callback:
   the raw-report volume the form filter exists to suppress (§6.2). *)
let bulk_variable ~idx ~n =
  if n = 0 then
    { nodes = []; resources = []; raw = (Race.Variable, 0); filtered = 0; harmful = 0 }
  else begin
    let url = Printf.sprintf "lib_%d.js" idx in
    let lib =
      String.concat "\n" (List.init n (fun i -> Printf.sprintf "g_%d_%d = 1;" idx i))
    in
    let writer =
      String.concat "\n" (List.init n (fun i -> Printf.sprintf "g_%d_%d = 2;" idx i))
    in
    {
      nodes =
        [
          Html.el "script" ~attrs:[ ("async", "true"); ("src", url) ] [];
          script (Printf.sprintf "setTimeout(function () {\n%s\n}, 20);" writer);
        ];
      resources = [ (url, lib) ];
      raw = (Race.Variable, n);
      filtered = 0;
      harmful = 0;
    }
  end

(* n event-dispatch races on repeatable (hover) events: a delayed menu
   script attaches handlers the user may beat. Filtered out as
   multi-dispatch (§5.3). *)
let bulk_dispatch ~idx ~n =
  if n = 0 then
    { nodes = []; resources = []; raw = (Race.Event_dispatch, 0); filtered = 0; harmful = 0 }
  else begin
    let links =
      List.init n (fun i ->
          Html.el "a"
            ~attrs:[ ("id", Printf.sprintf "nav_%d_%d" idx i); ("href", "#") ]
            [ Html.text (Printf.sprintf "item %d" i) ])
    in
    let code =
      Printf.sprintf
        "setTimeout(function () {\n\
        \  var i = 0;\n\
        \  for (i = 0; i < %d; i++) {\n\
        \    var el = document.getElementById(\"nav_%d_\" + i);\n\
        \    el.onmouseover = function () { return 1; };\n\
        \  }\n\
         }, 25);"
        n idx
    in
    {
      nodes = links @ [ script code ];
      resources = [];
      raw = (Race.Event_dispatch, n);
      filtered = 0;
      harmful = 0;
    }
  end

(* Two AJAX completions write one global (rule 10 exercised; handlers of
   different requests stay unordered). *)
let ajax_shared ~idx =
  let code =
    Printf.sprintf
      "function mk_%d(u) {\n\
      \  var r = new XMLHttpRequest();\n\
      \  r.onreadystatechange = function () { if (r.readyState === 4) { shared_%d = u; } };\n\
      \  r.open(\"GET\", u);\n\
      \  r.send();\n\
       }\n\
       mk_%d(\"data_%d_a.txt\");\n\
       mk_%d(\"data_%d_b.txt\");"
      idx idx idx idx idx idx
  in
  {
    nodes = [ script code ];
    resources =
      [
        (Printf.sprintf "data_%d_a.txt" idx, "alpha");
        (Printf.sprintf "data_%d_b.txt" idx, "beta");
      ];
    raw = (Race.Variable, 1);
    filtered = 0;
    harmful = 0;
  }

let decoy ~idx ~n =
  let articles =
    List.init (max 0 n) (fun i ->
        Html.el "div"
          ~attrs:[ ("id", Printf.sprintf "art_%d_%d" idx i); ("class", "article") ]
          [
            Html.el "h3" [ Html.text (Printf.sprintf "Story %d" i) ];
            Html.el "p" [ Html.text "Lorem ipsum dolor sit amet." ];
          ])
  in
  let images =
    List.init (min 6 (max 0 (n / 8))) (fun i ->
        Html.el "img"
          ~attrs:
            [ ("id", Printf.sprintf "strip_%d_%d" idx i); ("src", "decoy.png");
              ("alt", "strip") ]
          [])
  in
  let carousel =
    script
      (Printf.sprintf
         "var slide_%d = 0;
          var ticks_%d = 0;
          var rot_%d = setInterval(function () {
         \  slide_%d = (slide_%d + 1) %% 5;
         \  ticks_%d = ticks_%d + 1;
         \  if (ticks_%d > 8) { clearInterval(rot_%d); }
          }, 40);"
         idx idx idx idx idx idx idx idx idx)
  in
  let search =
    Html.el "form"
      ~attrs:[ ("id", Printf.sprintf "searchform_%d" idx) ]
      [
        Html.el "input"
          ~attrs:[ ("type", "text"); ("id", Printf.sprintf "sq_%d" idx) ]
          [];
        Html.el "button" [ Html.text "Go" ];
      ]
  in
  (articles @ images @ [ carousel; search ], [ ("decoy.png", "png") ])

let boilerplate ~name =
  let nodes =
    [
      Html.el "div"
        ~attrs:[ ("id", "header"); ("class", "site-header") ]
        [
          Html.el "img" ~attrs:[ ("id", "logo"); ("src", "logo.png"); ("alt", name) ] [];
          Html.el "h1" [ Html.text name ];
        ];
      Html.el "div"
        ~attrs:[ ("id", "mainnav") ]
        [
          Html.el "a" ~attrs:[ ("href", "#products") ] [ Html.text "Products" ];
          Html.el "a" ~attrs:[ ("href", "#support") ] [ Html.text "Support" ];
          Html.el "a" ~attrs:[ ("href", "#about") ] [ Html.text "About" ];
        ];
      script
        (Printf.sprintf
           "var siteName = \"%s\"; var pageStart = Date.now(); var sections = [\"products\", \
            \"support\", \"about\"];"
           name);
      Html.el "div" ~attrs:[ ("id", "content"); ("class", "main") ] [ Html.text "welcome" ];
      Html.el "div"
        ~attrs:[ ("id", "footer") ]
        [ Html.text (Printf.sprintf "(c) 2011 %s Inc." name) ];
    ]
  in
  (nodes, [ ("logo.png", "png") ])
