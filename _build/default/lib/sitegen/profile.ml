type counts = { html : int; func : int; var : int; disp : int }

let zero = { html = 0; func = 0; var = 0; disp = 0 }

let add a b =
  { html = a.html + b.html; func = a.func + b.func; var = a.var + b.var; disp = a.disp + b.disp }

let total c = c.html + c.func + c.var + c.disp

type t = {
  name : string;
  html_harmful : int;
  html_benign : int;
  func_harmful : int;
  func_benign : int;
  var_harmful : int;
  var_benign : int;
  var_checked : int;
  disp_harmful : int;
  disp_benign : int;
  bulk_var : int;
  bulk_disp : int;
  ajax : int;
}

let base name =
  {
    name;
    html_harmful = 0;
    html_benign = 0;
    func_harmful = 0;
    func_benign = 0;
    var_harmful = 0;
    var_benign = 0;
    var_checked = 0;
    disp_harmful = 0;
    disp_benign = 0;
    bulk_var = 0;
    bulk_disp = 0;
    ajax = 0;
  }

(* Paper Table 2, row for row: (site, html(filtered, harmful),
   function(f, h), variable(f, h), dispatch(f, h)). *)
let table2_rows =
  [
    ("Allstate", (6, 6), (2, 0), (0, 0), (0, 0));
    ("AmericanExpress", (41, 1), (0, 0), (0, 0), (0, 0));
    ("BankOfAmerica", (4, 0), (1, 1), (0, 0), (0, 0));
    ("BestBuy", (0, 0), (2, 0), (0, 0), (0, 0));
    ("CiscoSystems", (0, 0), (1, 0), (0, 0), (0, 0));
    ("Citigroup", (3, 0), (3, 2), (0, 0), (1, 0));
    ("Comcast", (0, 0), (6, 1), (0, 0), (0, 0));
    ("ConocoPhillips", (0, 0), (2, 1), (0, 0), (0, 0));
    ("Costco", (3, 3), (0, 0), (0, 0), (0, 0));
    ("FedEx", (1, 0), (0, 0), (0, 0), (0, 0));
    ("Ford", (112, 0), (0, 0), (0, 0), (0, 0));
    ("GeneralDynamics", (0, 0), (1, 0), (0, 0), (0, 0));
    ("GeneralMotors", (0, 0), (1, 0), (0, 0), (0, 0));
    ("HartfordFinancial", (1, 1), (0, 0), (0, 0), (0, 0));
    ("HomeDepot", (0, 0), (1, 0), (0, 0), (0, 0));
    ("Humana", (0, 0), (0, 0), (0, 0), (13, 13));
    ("IBM", (16, 0), (0, 0), (1, 1), (0, 0));
    ("Intel", (0, 0), (3, 0), (0, 0), (0, 0));
    ("JPMorganChase", (3, 3), (5, 0), (0, 0), (0, 0));
    ("JohnsonControls", (1, 1), (0, 0), (1, 0), (0, 0));
    ("Kroger", (1, 0), (0, 0), (0, 0), (0, 0));
    ("LibertyMutual", (0, 0), (4, 0), (0, 0), (1, 0));
    ("Lowes", (1, 0), (0, 0), (0, 0), (0, 0));
    ("Macys", (0, 0), (0, 0), (1, 1), (0, 0));
    ("MassMutual", (1, 0), (0, 0), (0, 0), (0, 0));
    ("MerrillLynch", (1, 1), (0, 0), (0, 0), (0, 0));
    ("MetLife", (0, 0), (0, 0), (0, 0), (35, 35));
    ("MorganStanley", (1, 1), (0, 0), (0, 0), (0, 0));
    ("Motorola", (1, 0), (0, 0), (0, 0), (1, 0));
    ("NewsCorporation", (1, 0), (0, 0), (0, 0), (0, 0));
    ("Safeway", (0, 0), (0, 0), (1, 1), (0, 0));
    ("Sunoco", (11, 11), (0, 0), (0, 0), (0, 0));
    ("Target", (2, 2), (0, 0), (1, 1), (0, 0));
    ("UnitedHealthGroup", (0, 0), (0, 0), (0, 0), (1, 0));
    ("UnitedTechnologies", (2, 1), (0, 0), (0, 0), (0, 0));
    ("ValeroEnergy", (5, 1), (4, 1), (2, 0), (0, 0));
    ("Verizon", (0, 0), (1, 1), (0, 0), (0, 0));
    ("WalMart", (0, 0), (0, 0), (1, 1), (0, 0));
    ("Walgreens", (0, 0), (0, 0), (0, 0), (35, 35));
    ("WaltDisney", (1, 0), (0, 0), (0, 0), (0, 0));
    ("WellsFargo", (0, 0), (0, 0), (0, 0), (4, 0));
  ]

let filler_names =
  List.init 59 (fun i -> Printf.sprintf "Company%02d" (i + 1))

(* Per-site (raw variable, raw dispatch) volume pairs, calibrated against
   Table 1. Marginals: variable mean 22.4, median 5.5, max 269; dispatch
   mean 22.3, median 7, max 198. The pairing (not just the marginals) is
   chosen so the emergent "All" row also lands on the paper's median 27:
   exactly 49 pairs sum below 27, 11 sum to exactly 27, and 40 sum well
   above. Sites with filtered HTML+function volume above 10 must take an
   above-median pair so their extra races cannot push a below-median site
   across the midpoint; sites taking a sum-27 pair must have none. *)
let volume_pairs () =
  let rep n p = List.init n (fun _ -> p) in
  List.concat
    [
      rep 20 (0, 0);
      rep 10 (2, 25);  (* sum 27 *)
      rep 5 (2, 90);
      rep 10 (4, 12);
      [ (5, 22) ];  (* sum 27 *)
      rep 4 (5, 7);
      rep 5 (6, 7);
      rep 10 (8, 7);
      rep 8 (15, 50);
      rep 2 (15, 120);
      rep 10 (30, 3);
      rep 4 (60, 5);
      [ (60, 198) ];
      rep 5 (85, 5);
      (* Top pairs arranged so no single site exceeds the paper's All
         maximum of 278. *)
      [ (135, 5); (135, 120); (135, 120); (186, 90); (269, 7) ];
    ]

(* Deterministic matching: each site takes the first (smallest-sum) unused
   pair covering its filtered needs and respecting the median classes. *)
let assign_pairs requirements =
  let pairs =
    List.sort (fun (v1, d1) (v2, d2) -> compare (v1 + d1, v1) (v2 + d2, v2)) (volume_pairs ())
  in
  let available = ref pairs in
  List.map
    (fun (var_req, disp_req, html_func) ->
      let admissible (v, d) =
        v >= var_req && d >= disp_req
        && (html_func <= 10 || v + d > 27)
        && (v + d <> 27 || html_func = 0)
      in
      let rec take acc = function
        | [] ->
            (* Unreachable with the calibrated pairs; degrade gracefully. *)
            ((var_req, disp_req), List.rev acc)
        | p :: rest when admissible p -> (p, List.rev_append acc rest)
        | p :: rest -> take (p :: acc) rest
      in
      let p, rest = take [] !available in
      available := rest;
      p)
    requirements

let expected_raw p =
  {
    html = p.html_harmful + p.html_benign;
    func = p.func_harmful + p.func_benign;
    var = p.var_harmful + p.var_benign + p.var_checked + p.bulk_var + p.ajax;
    disp = p.disp_harmful + p.disp_benign + p.bulk_disp;
  }

let expected_filtered p =
  {
    html = p.html_harmful + p.html_benign;
    func = p.func_harmful + p.func_benign;
    var = p.var_harmful + p.var_benign;
    disp = p.disp_harmful + p.disp_benign;
  }

let expected_harmful p =
  { html = p.html_harmful; func = p.func_harmful; var = p.var_harmful; disp = p.disp_harmful }

let corpus () =
  let named =
    List.map
      (fun (name, (html_f, html_h), (func_f, func_h), (var_f, var_h), (disp_f, disp_h)) ->
        {
          (base name) with
          html_harmful = html_h;
          html_benign = html_f - html_h;
          func_harmful = func_h;
          func_benign = func_f - func_h;
          var_harmful = var_h;
          var_benign = var_f - var_h;
          disp_harmful = disp_h;
          disp_benign = disp_f - disp_h;
        })
      table2_rows
  in
  let profiles = named @ List.map base filler_names in
  let requirements =
    List.map
      (fun p ->
        ( p.var_harmful + p.var_benign,
          p.disp_harmful + p.disp_benign,
          p.html_harmful + p.html_benign + p.func_harmful + p.func_benign ))
      profiles
  in
  let totals = assign_pairs requirements in
  List.map2
    (fun p (var_total, disp_total) ->
      let var_slack = var_total - (p.var_harmful + p.var_benign) in
      (* Flavor the variable noise: bigger sites also get an AJAX race and
         a checked-form race; the rest is bulk library noise. *)
      let ajax = if var_slack >= 6 then 1 else 0 in
      let var_checked = if var_slack - ajax >= 10 then 1 else 0 in
      let bulk_var = var_slack - ajax - var_checked in
      let bulk_disp = disp_total - (p.disp_harmful + p.disp_benign) in
      { p with ajax; var_checked; bulk_var; bulk_disp })
    profiles totals
