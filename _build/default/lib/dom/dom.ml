module Instr = Wr_mem.Instr
module Location = Wr_mem.Location
module Access = Wr_mem.Access

type node = {
  uid : int;
  tag : string;
  doc_uid : int;
  mutable parent : node option;
  mutable rev_children : node list;
  mutable child_count : int;
  attrs : (string, string) Hashtbl.t;
  idl : (string, string) Hashtbl.t;
  mutable text : string;
}

type document = {
  duid : int;
  instr : Instr.t;
  doc_root : node;
  doc_url : string;
  by_id : (string, node) Hashtbl.t;  (* first-inserted wins, as in browsers *)
}

let node_location node = Location.Html_elem (Location.Node node.uid)

let id_location doc id = Location.Html_elem (Location.Id { doc = doc.duid; id })

let collection_location doc name =
  Location.Html_elem (Location.Collection { doc = doc.duid; name })

(* Which named collections a tag belongs to: per-tag, the document.* named
   collections, and one per CSS class (class-based queries read these). *)
let collections_of_tag tag attrs =
  let has name = List.mem_assoc name attrs in
  let named =
    match tag with
    | "img" -> [ "images" ]
    | "form" -> [ "forms" ]
    | "script" -> [ "scripts" ]
    | "a" ->
        (if has "href" then [ "links" ] else []) @ if has "name" then [ "anchors" ] else []
    | _ -> []
  in
  let classes =
    match List.assoc_opt "class" attrs with
    | Some cs ->
        List.filter_map
          (fun c -> if c = "" then None else Some ("class:" ^ c))
          (String.split_on_char ' ' cs)
    | None -> []
  in
  (("tag:" ^ tag) :: named) @ classes

let mk_node instr ~tag ~doc_uid ~attrs =
  {
    uid = instr.Instr.fresh_id ();
    tag;
    doc_uid;
    parent = None;
    rev_children = [];
    child_count = 0;
    attrs =
      (let t = Hashtbl.create 4 in
       List.iter (fun (k, v) -> Hashtbl.replace t (String.lowercase_ascii k) v) attrs;
       t);
    idl = Hashtbl.create 2;
    text = "";
  }

let create_document instr ~url =
  let duid = instr.Instr.fresh_id () in
  {
    duid;
    instr;
    doc_root = mk_node instr ~tag:"#document" ~doc_uid:duid ~attrs:[];
    doc_url = url;
    by_id = Hashtbl.create 32;
  }

let doc_uid doc = doc.duid

let root doc = doc.doc_root

let url doc = doc.doc_url

let create_element doc ~tag ~attrs =
  mk_node doc.instr ~tag:(String.lowercase_ascii tag) ~doc_uid:doc.duid ~attrs

let create_text doc s =
  let n = mk_node doc.instr ~tag:"#text" ~doc_uid:doc.duid ~attrs:[] in
  n.text <- s;
  n

let get_attr node name = Hashtbl.find_opt node.attrs (String.lowercase_ascii name)

let attr_list node = Hashtbl.fold (fun k v acc -> (k, v) :: acc) node.attrs []

let children n = List.rev n.rev_children

let iter_subtree f node =
  let rec go n =
    f n;
    List.iter go (children n)
  in
  go node

let rec is_root_reachable doc n =
  n.uid = doc.doc_root.uid
  || match n.parent with Some p -> is_root_reachable doc p | None -> false

let is_attached doc node = is_root_reachable doc node

let prop_cell doc ~owner name =
  Location.Js_var { cell = doc.instr.Instr.cell_id ~owner name; name }

let emit doc ?flags loc kind = Instr.emit doc.instr ?flags loc kind

(* Writes emitted when an element (sub)tree enters or leaves the document:
   the element location, its id cell, and its collections (§4.2). Collection
   cells have a write-write-tolerant conflict policy, see Location. *)
let emit_presence_writes doc n =
  if n.tag <> "#text" then begin
    emit doc (node_location n) `Write;
    (match get_attr n "id" with Some id when id <> "" -> emit doc (id_location doc id) `Write | _ -> ());
    List.iter
      (fun c -> emit doc (collection_location doc c) `Write)
      (collections_of_tag n.tag (attr_list n))
  end

let index_ids doc n =
  iter_subtree
    (fun n ->
      match get_attr n "id" with
      | Some id when id <> "" -> if not (Hashtbl.mem doc.by_id id) then Hashtbl.add doc.by_id id n
      | Some _ | None -> ())
    n

let unindex_ids doc n =
  iter_subtree
    (fun n ->
      match get_attr n "id" with
      | Some id when id <> "" -> (
          match Hashtbl.find_opt doc.by_id id with
          | Some current when current.uid = n.uid -> Hashtbl.remove doc.by_id id
          | Some _ | None -> ())
      | Some _ | None -> ())
    n

let check_insertable ~parent ~child =
  if child.parent <> None then invalid_arg "Dom: node already has a parent";
  let rec is_ancestor n =
    n.uid = child.uid || match n.parent with Some p -> is_ancestor p | None -> false
  in
  if is_ancestor parent then invalid_arg "Dom: insertion would create a cycle"

let finish_insert doc ~parent ~child ~index =
  child.parent <- Some parent;
  parent.child_count <- parent.child_count + 1;
  (* Structural property writes: parentNode of the child, childNodes.i of
     the parent (§4.1 "additional cases"). *)
  emit doc (prop_cell doc ~owner:child.uid "parentNode") `Write;
  emit doc (prop_cell doc ~owner:parent.uid (Printf.sprintf "childNodes.%d" index)) `Write;
  (* The whole subtree becomes visible. *)
  if is_root_reachable doc parent then begin
    iter_subtree (emit_presence_writes doc) child;
    index_ids doc child
  end

let append doc ~parent ~child =
  check_insertable ~parent ~child;
  let index = parent.child_count in
  parent.rev_children <- child :: parent.rev_children;
  finish_insert doc ~parent ~child ~index

let insert_before doc ~parent ~child ~before =
  check_insertable ~parent ~child;
  let ordered = children parent in
  if not (List.exists (fun c -> c.uid = before.uid) ordered) then
    invalid_arg "Dom.insert_before: reference node is not a child of parent";
  let index =
    let rec find i = function
      | [] -> i
      | c :: rest -> if c.uid = before.uid then i else find (i + 1) rest
    in
    find 0 ordered
  in
  parent.rev_children <-
    List.rev
      (List.concat_map (fun c -> if c.uid = before.uid then [ child; c ] else [ c ]) ordered);
  finish_insert doc ~parent ~child ~index

let remove doc node =
  match node.parent with
  | None -> ()
  | Some parent ->
      let attached = is_root_reachable doc node in
      parent.rev_children <- List.filter (fun c -> c.uid <> node.uid) parent.rev_children;
      parent.child_count <- parent.child_count - 1;
      node.parent <- None;
      emit doc (prop_cell doc ~owner:node.uid "parentNode") `Write;
      if attached then begin
        iter_subtree (emit_presence_writes doc) node;
        unindex_ids doc node
      end

let get_element_by_id doc id =
  match Hashtbl.find_opt doc.by_id id with
  | Some n ->
      (* Only the id cell is read: insertion/removal write it too, so one
         unordered lookup/insertion pair yields exactly one race report. *)
      emit doc (id_location doc id) `Read;
      Some n
  | None ->
      emit doc ~flags:[ Access.Observed_miss ] (id_location doc id) `Read;
      None

let elements_in_order doc =
  let out = ref [] in
  iter_subtree (fun n -> if n.tag <> "#text" && n.uid <> doc.doc_root.uid then out := n :: !out) doc.doc_root;
  List.rev !out

let document_order = elements_in_order

let read_collection doc name pred =
  emit doc (collection_location doc name) `Read;
  let nodes = List.filter pred (elements_in_order doc) in
  List.iter (fun n -> emit doc (node_location n) `Read) nodes;
  nodes

let get_elements_by_tag_name doc tag =
  let tag = String.lowercase_ascii tag in
  read_collection doc ("tag:" ^ tag) (fun n -> n.tag = tag)

let collection doc name =
  let pred n =
    match name with
    | "images" -> n.tag = "img"
    | "forms" -> n.tag = "form"
    | "scripts" -> n.tag = "script"
    | "links" -> n.tag = "a" && get_attr n "href" <> None
    | "anchors" -> n.tag = "a" && get_attr n "name" <> None
    | _ -> false
  in
  read_collection doc name pred

let set_attr doc node name v =
  let name = String.lowercase_ascii name in
  if name = "id" then begin
    (match get_attr node "id" with
    | Some old when old <> "" && Hashtbl.mem doc.by_id old -> (
        match Hashtbl.find_opt doc.by_id old with
        | Some cur when cur.uid = node.uid ->
            Hashtbl.remove doc.by_id old;
            emit doc (id_location doc old) `Write
        | Some _ | None -> ())
    | Some _ | None -> ());
    if v <> "" && is_root_reachable doc node then begin
      if not (Hashtbl.mem doc.by_id v) then Hashtbl.add doc.by_id v node;
      emit doc (id_location doc v) `Write
    end
  end;
  if name = "class" && is_root_reachable doc node then begin
    let classes_of value =
      List.filter (fun c -> c <> "") (String.split_on_char ' ' value)
    in
    let old_classes = match get_attr node "class" with Some v -> classes_of v | None -> [] in
    List.iter
      (fun c -> emit doc (collection_location doc ("class:" ^ c)) `Write)
      (List.sort_uniq compare (old_classes @ classes_of v))
  end;
  Hashtbl.replace node.attrs name v;
  emit doc (prop_cell doc ~owner:node.uid name) `Write

let form_field_tags = [ "input"; "textarea"; "select"; "option"; "button" ]

let idl_flags node name flags =
  if List.mem node.tag form_field_tags && (name = "value" || name = "checked") then
    Access.Form_field :: flags
  else flags

let set_idl doc node ?(flags = []) name v =
  emit doc ~flags:(idl_flags node name flags) (prop_cell doc ~owner:node.uid name) `Write;
  Hashtbl.replace node.idl name v

let get_idl doc node ?(flags = []) name =
  emit doc ~flags:(idl_flags node name flags) (prop_cell doc ~owner:node.uid name) `Read;
  match Hashtbl.find_opt node.idl name with
  | Some v -> Some v
  | None -> get_attr node name (* IDL reflects the content attribute initially *)

let pp_node ppf n =
  match get_attr n "id" with
  | Some id -> Format.fprintf ppf "<%s#%s uid=%d>" n.tag id n.uid
  | None -> Format.fprintf ppf "<%s uid=%d>" n.tag n.uid
