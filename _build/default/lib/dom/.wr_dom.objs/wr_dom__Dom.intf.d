lib/dom/dom.mli: Format Hashtbl Wr_mem
