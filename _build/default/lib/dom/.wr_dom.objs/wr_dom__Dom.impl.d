lib/dom/dom.ml: Format Hashtbl List Printf String Wr_mem
