(** The DOM tree, instrumented per the paper's HTML-element access model.

    §4.2 defines writes to an HTML element as its insertion into or removal
    from a document (recursively including children), and reads as accessor
    calls like [getElementById]. This module emits exactly those logical
    accesses through the shared {!Wr_mem.Instr} context:

    - insertion/removal write the element's [Node] location, its
      [Id] location when it carries an id, and the document [Collection]
      locations its tag participates in;
    - insertion/removal also write the structural [parentNode] /
      [childNodes.i] object properties (§4.1 "additional cases");
    - [get_element_by_id] reads the per-document [Id] cell hit or miss
      (a miss carries [Observed_miss]); insertion and removal write the
      same cell, so one unordered lookup/insertion pair is one race;
    - collection accessors read the [Collection] cell plus every returned
      node's location.

    Event-handler attributes are NOT handled here — the browser's event
    layer owns those (§4.3). *)

type node = {
  uid : int;
  tag : string;  (** "#document" for the root, "#text" for text nodes *)
  doc_uid : int;
  mutable parent : node option;
  mutable rev_children : node list;
      (** newest-first internal storage so appends are O(1); use
          {!children} for document order *)
  mutable child_count : int;
  attrs : (string, string) Hashtbl.t;  (** content attributes (lowercased names) *)
  idl : (string, string) Hashtbl.t;  (** IDL state: value, checked, ... *)
  mutable text : string;  (** text payload for [#text] and raw-text elements *)
}

type document

(** [create_document instr ~url] makes an empty document with a synthetic
    [#document] root node. *)
val create_document : Wr_mem.Instr.t -> url:string -> document

val doc_uid : document -> int

val root : document -> node

val url : document -> string

(** [create_element doc ~tag ~attrs] allocates a detached element. No
    access is emitted — creation only becomes visible on insertion. *)
val create_element : document -> tag:string -> attrs:(string * string) list -> node

(** [create_text doc s] allocates a detached text node. *)
val create_text : document -> string -> node

(** [append doc ~parent ~child] inserts [child] (and its subtree) as
    [parent]'s last child, emitting the §4.2 write accesses. Raises
    [Invalid_argument] if [child] already has a parent or the insertion
    would create a cycle. *)
val append : document -> parent:node -> child:node -> unit

(** [insert_before doc ~parent ~child ~before] inserts before an existing
    child ([before] must be a child of [parent]). *)
val insert_before : document -> parent:node -> child:node -> before:node -> unit

(** [remove doc node] detaches [node] from its parent, emitting removal
    writes for the subtree. No-op on detached nodes. *)
val remove : document -> node -> unit

(** [get_element_by_id doc id] — instrumented read; [None] records a miss
    on the id cell. *)
val get_element_by_id : document -> string -> node option

(** [get_elements_by_tag_name doc tag] — instrumented collection read, in
    document order. *)
val get_elements_by_tag_name : document -> string -> node list

(** [collection doc name] reads one of the named document collections:
    "images", "forms", "links", "anchors", "scripts". *)
val collection : document -> string -> node list

(** [set_attr doc node name v] sets a content attribute (maintaining the id
    index and emitting a property write). *)
val set_attr : document -> node -> string -> string -> unit

(** [get_attr node name] reads a content attribute without instrumentation
    (markup inspection, not a §4 logical access). *)
val get_attr : node -> string -> string option

(** [set_idl doc node ?flags name v] / [get_idl doc node ?flags name]
    access IDL state like an input's [value] — the form-field locations of
    Fig. 2. Flags let the browser mark user-input writes. *)
val set_idl :
  document -> node -> ?flags:Wr_mem.Access.flag list -> string -> string -> unit

val get_idl :
  document -> node -> ?flags:Wr_mem.Access.flag list -> string -> string option

(** [children node] lists the node's children in document order. *)
val children : node -> node list

(** [node_location node] is the element's logical [Node] location. *)
val node_location : node -> Wr_mem.Location.t

(** [iter_subtree f node] applies [f] pre-order to [node] and descendants. *)
val iter_subtree : (node -> unit) -> node -> unit

(** [document_order doc] lists all element nodes in document order. *)
val document_order : document -> node list

(** [is_attached doc node] is true when [node] is reachable from the
    document root. *)
val is_attached : document -> node -> bool

(** [pp_node] shows tag, uid and id for diagnostics. *)
val pp_node : Format.formatter -> node -> unit
