(** Pretty-printer for MiniJS ASTs.

    Emits syntactically valid MiniJS: [parse (program_to_string p)] yields a
    structurally equal program (a qcheck property in the test suite).
    Output is fully parenthesized at expression level, so no precedence
    bookkeeping is needed. *)

(** [number_to_string n] renders a numeric literal the way JavaScript's
    ToString does for the common cases: integers without a decimal point,
    [NaN], [Infinity]. *)
val number_to_string : float -> string

(** [string_literal s] renders [s] as a double-quoted literal with
    escapes. *)
val string_literal : string -> string

val expr_to_string : Ast.expr -> string

val stmt_to_string : Ast.stmt -> string

val program_to_string : Ast.program -> string
