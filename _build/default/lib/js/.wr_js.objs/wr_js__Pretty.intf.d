lib/js/pretty.mli: Ast
