lib/js/interp.ml: Ast Builtins Float Hashtbl Int32 List Option Printf String Value Wr_mem
