lib/js/regex.ml: Array Buffer Char List Option Printf String
