lib/js/lexer.ml: Array Buffer Char Hashtbl List Printf String
