lib/js/builtins.ml: Array Buffer Char Float Hashtbl List Pretty Printf Regex String Value Wr_support
