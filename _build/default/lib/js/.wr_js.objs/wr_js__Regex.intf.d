lib/js/regex.mli:
