lib/js/parser.mli: Ast
