lib/js/lexer.mli:
