lib/js/value.ml: Ast Float Hashtbl Int64 List Pretty Printf String Wr_hb Wr_mem Wr_support
