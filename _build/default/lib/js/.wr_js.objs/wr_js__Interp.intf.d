lib/js/interp.mli: Ast Value Wr_mem
