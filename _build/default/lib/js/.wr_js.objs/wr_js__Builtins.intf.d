lib/js/builtins.mli: Value
