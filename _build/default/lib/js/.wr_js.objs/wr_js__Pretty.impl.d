lib/js/pretty.ml: Ast Buffer Char Float List Option Printf String
