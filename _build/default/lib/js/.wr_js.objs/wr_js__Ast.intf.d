lib/js/ast.mli:
