lib/js/ast.ml:
