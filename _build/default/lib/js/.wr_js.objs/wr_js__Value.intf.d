lib/js/value.mli: Ast Hashtbl Wr_hb Wr_mem Wr_support
