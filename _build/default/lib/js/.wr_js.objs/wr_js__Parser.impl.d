lib/js/parser.ml: Array Ast Lexer List Pretty Printf
