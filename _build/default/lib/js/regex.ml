type node =
  | Char of char
  | Any
  | Class of { negated : bool; ranges : (char * char) list }
  | Seq of node list
  | Alt of node list
  | Group of int option * node  (* [Some i]: capture group i *)
  | Repeat of { node : node; min : int; max : int option; greedy : bool }
  | Bol
  | Eol
  | Word_boundary of bool  (* [true] = \b, [false] = \B *)

type t = {
  root : node;
  n_groups : int;
  src_pattern : string;
  src_flags : string;
  ignore_case : bool;
  is_global : bool;
  multiline : bool;
}

let pattern t = t.src_pattern

let flags t = t.src_flags

let global t = t.is_global

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let digit_ranges = [ ('0', '9') ]

let word_ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ]

let space_ranges = [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r'); ('\012', '\012'); ('\011', '\011') ]

let parse_pattern pat =
  let n = String.length pat in
  let pos = ref 0 in
  let group_counter = ref 0 in
  let peek () = if !pos < n then Some pat.[!pos] else None in
  let advance () = incr pos in
  let eat c =
    if peek () = Some c then advance () else raise (Bad (Printf.sprintf "expected %C" c))
  in
  let escape_node c =
    match c with
    | 'd' -> Class { negated = false; ranges = digit_ranges }
    | 'D' -> Class { negated = true; ranges = digit_ranges }
    | 'w' -> Class { negated = false; ranges = word_ranges }
    | 'W' -> Class { negated = true; ranges = word_ranges }
    | 's' -> Class { negated = false; ranges = space_ranges }
    | 'S' -> Class { negated = true; ranges = space_ranges }
    | 'b' -> Word_boundary true
    | 'B' -> Word_boundary false
    | 'n' -> Char '\n'
    | 't' -> Char '\t'
    | 'r' -> Char '\r'
    | 'f' -> Char '\012'
    | 'v' -> Char '\011'
    | '0' -> Char '\000'
    | c when c >= '1' && c <= '9' -> raise (Bad "backreferences are not supported")
    | c -> Char c
  in
  let parse_class () =
    (* '[' already consumed. *)
    let negated = peek () = Some '^' in
    if negated then advance ();
    let ranges = ref [] in
    let add_escape c =
      match escape_node c with
      | Class { negated = false; ranges = rs } -> ranges := rs @ !ranges
      | Class { negated = true; _ } -> raise (Bad "negated class escape inside [...]")
      | Char c -> ranges := (c, c) :: !ranges
      | _ -> raise (Bad "unsupported escape inside [...]")
    in
    let read_char_or_escape () =
      match peek () with
      | None -> raise (Bad "unterminated character class")
      | Some '\\' ->
          advance ();
          (match peek () with
          | None -> raise (Bad "dangling escape in class")
          | Some ('n' as c) | Some ('t' as c) | Some ('r' as c) ->
              advance ();
              `Char (match c with 'n' -> '\n' | 't' -> '\t' | _ -> '\r')
          | Some ('d' | 'D' | 'w' | 'W' | 's' | 'S') ->
              let c = Option.get (peek ()) in
              advance ();
              `Escape c
          | Some c ->
              advance ();
              `Char c)
      | Some c ->
          advance ();
          `Char c
    in
    let rec loop () =
      match peek () with
      | None -> raise (Bad "unterminated character class")
      | Some ']' -> advance ()
      | Some _ -> (
          match read_char_or_escape () with
          | `Escape c ->
              add_escape c;
              loop ()
          | `Char lo -> (
              (* A range lo-hi, unless '-' is last or next is ']'. *)
              match peek (), !pos + 1 <= n with
              | Some '-', _ when !pos + 1 < n && pat.[!pos + 1] <> ']' ->
                  advance ();
                  (match read_char_or_escape () with
                  | `Char hi ->
                      if Char.code hi < Char.code lo then raise (Bad "inverted range");
                      ranges := (lo, hi) :: !ranges;
                      loop ()
                  | `Escape _ -> raise (Bad "class escape as range bound"))
              | _ ->
                  ranges := (lo, lo) :: !ranges;
                  loop ()))
    in
    loop ();
    Class { negated; ranges = List.rev !ranges }
  in
  let parse_int () =
    let start = !pos in
    while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then None else Some (int_of_string (String.sub pat start (!pos - start)))
  in
  let rec parse_alt () =
    let first = parse_seq () in
    if peek () = Some '|' then begin
      let branches = ref [ first ] in
      while peek () = Some '|' do
        advance ();
        branches := parse_seq () :: !branches
      done;
      Alt (List.rev !branches)
    end
    else first
  and parse_seq () =
    let items = ref [] in
    let rec loop () =
      match peek () with
      | None | Some '|' | Some ')' -> ()
      | Some _ ->
          items := parse_repeat () :: !items;
          loop ()
    in
    loop ();
    match !items with [ one ] -> one | items -> Seq (List.rev items)
  and parse_repeat () =
    let atom = parse_atom () in
    let quantified min max =
      advance ();
      let greedy =
        if peek () = Some '?' then begin
          advance ();
          false
        end
        else true
      in
      Repeat { node = atom; min; max; greedy }
    in
    match peek () with
    | Some '*' -> quantified 0 None
    | Some '+' -> quantified 1 None
    | Some '?' -> quantified 0 (Some 1)
    | Some '{' -> (
        (* {m}, {m,}, {m,n} — anything else is a literal brace. *)
        let save = !pos in
        advance ();
        match parse_int () with
        | Some m -> (
            match peek () with
            | Some '}' ->
                advance ();
                let greedy =
                  if peek () = Some '?' then begin
                    advance ();
                    false
                  end
                  else true
                in
                Repeat { node = atom; min = m; max = Some m; greedy }
            | Some ',' -> (
                advance ();
                let mx = parse_int () in
                match peek () with
                | Some '}' ->
                    advance ();
                    let greedy =
                      if peek () = Some '?' then begin
                        advance ();
                        false
                      end
                      else true
                    in
                    (match mx with
                    | Some x when x < m -> raise (Bad "repeat bounds out of order")
                    | _ -> ());
                    Repeat { node = atom; min = m; max = mx; greedy }
                | _ ->
                    pos := save;
                    atom)
            | _ ->
                pos := save;
                atom)
        | None ->
            pos := save;
            atom)
    | _ -> atom
  and parse_atom () =
    match peek () with
    | None -> raise (Bad "expected an atom")
    | Some '(' ->
        advance ();
        let capture =
          if peek () = Some '?' then begin
            advance ();
            match peek () with
            | Some ':' ->
                advance ();
                None
            | Some ('=' | '!' | '<') -> raise (Bad "lookaround is not supported")
            | _ -> raise (Bad "bad group modifier")
          end
          else begin
            incr group_counter;
            Some !group_counter
          end
        in
        let inner = parse_alt () in
        eat ')';
        Group (capture, inner)
    | Some '[' ->
        advance ();
        parse_class ()
    | Some '.' ->
        advance ();
        Any
    | Some '^' ->
        advance ();
        Bol
    | Some '$' ->
        advance ();
        Eol
    | Some '\\' ->
        advance ();
        (match peek () with
        | None -> raise (Bad "dangling escape")
        | Some c ->
            advance ();
            escape_node c)
    | Some ('*' | '+' | '?') -> raise (Bad "quantifier without atom")
    | Some ')' -> raise (Bad "unbalanced ')'")
    | Some c ->
        advance ();
        Char c
  in
  let root = parse_alt () in
  if !pos <> n then raise (Bad "trailing characters (unbalanced ')')");
  (root, !group_counter)

let compile ~pattern ~flags =
  let ok_flags = String.for_all (fun c -> c = 'i' || c = 'g' || c = 'm') flags in
  if not ok_flags then Error (Printf.sprintf "unsupported regex flags %S" flags)
  else
    match parse_pattern pattern with
    | root, n_groups ->
        Ok
          {
            root;
            n_groups;
            src_pattern = pattern;
            src_flags = flags;
            ignore_case = String.contains flags 'i';
            is_global = String.contains flags 'g';
            multiline = String.contains flags 'm';
          }
    | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Matcher (backtracking CPS)                                          *)
(* ------------------------------------------------------------------ *)

type match_result = {
  start : int;
  stop : int;
  groups : (int * int) option array;
}

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let try_match t s at =
  let n = String.length s in
  let fold_case c = if t.ignore_case then Char.lowercase_ascii c else c in
  let char_eq a b = fold_case a = fold_case b in
  let in_ranges ranges c =
    let c' = fold_case c in
    List.exists
      (fun (lo, hi) ->
        (c >= lo && c <= hi)
        || (t.ignore_case && c' >= fold_case lo && c' <= fold_case hi))
      ranges
  in
  let gstart = Array.make (t.n_groups + 1) (-1) in
  let gstop = Array.make (t.n_groups + 1) (-1) in
  let rec m node pos (k : int -> bool) =
    match node with
    | Char c -> pos < n && char_eq s.[pos] c && k (pos + 1)
    | Any -> pos < n && s.[pos] <> '\n' && k (pos + 1)
    | Class { negated; ranges } ->
        pos < n
        && (let inside = in_ranges ranges s.[pos] in
            if negated then not inside else inside)
        && k (pos + 1)
    | Seq items ->
        let rec chain items pos =
          match items with [] -> k pos | x :: rest -> m x pos (fun p -> chain rest p)
        in
        chain items pos
    | Alt branches -> List.exists (fun b -> m b pos k) branches
    | Group (capture, inner) -> (
        match capture with
        | None -> m inner pos k
        | Some i ->
            let saved_start = gstart.(i) and saved_stop = gstop.(i) in
            gstart.(i) <- pos;
            let ok =
              m inner pos (fun p ->
                  let prev = gstop.(i) in
                  gstop.(i) <- p;
                  k p
                  ||
                  (gstop.(i) <- prev;
                   false))
            in
            if not ok then begin
              gstart.(i) <- saved_start;
              gstop.(i) <- saved_stop
            end;
            ok)
    | Repeat { node; min; max; greedy } ->
        let within count = match max with None -> true | Some mx -> count < mx in
        let rec go count pos =
          let try_more () =
            within count
            && m node pos (fun p ->
                   (* An empty iteration can never make progress. *)
                   if p = pos then false else go (count + 1) p)
          in
          let try_stop () = count >= min && k pos in
          if greedy then try_more () || try_stop () else try_stop () || try_more ()
        in
        go 0 pos
    | Bol ->
        (pos = 0 || (t.multiline && pos > 0 && s.[pos - 1] = '\n')) && k pos
    | Eol -> (pos = n || (t.multiline && s.[pos] = '\n')) && k pos
    | Word_boundary positive ->
        let before = pos > 0 && is_word_char s.[pos - 1] in
        let after = pos < n && is_word_char s.[pos] in
        let boundary = before <> after in
        (if positive then boundary else not boundary) && k pos
  in
  let final = ref (-1) in
  if
    m t.root at (fun p ->
        final := p;
        true)
  then begin
    let groups = Array.make (t.n_groups + 1) None in
    groups.(0) <- Some (at, !final);
    for i = 1 to t.n_groups do
      if gstart.(i) >= 0 && gstop.(i) >= gstart.(i) then
        groups.(i) <- Some (gstart.(i), gstop.(i))
    done;
    Some { start = at; stop = !final; groups }
  end
  else None

let exec t s ~start =
  let n = String.length s in
  let rec scan at = if at > n then None else
    match try_match t s at with Some r -> Some r | None -> scan (at + 1)
  in
  scan (max 0 start)

let test t s = exec t s ~start:0 <> None

let match_all t s =
  let n = String.length s in
  let rec loop at acc =
    if at > n then List.rev acc
    else
      match exec t s ~start:at with
      | None -> List.rev acc
      | Some r ->
          let next = if r.stop = r.start then r.stop + 1 else r.stop in
          loop next (r :: acc)
  in
  loop 0 []

let expand_template t s (r : match_result) by =
  let buf = Buffer.create (String.length by) in
  let group_text i =
    if i <= t.n_groups then
      match r.groups.(i) with
      | Some (a, b) -> String.sub s a (b - a)
      | None -> ""
    else ""
  in
  let n = String.length by in
  let rec go i =
    if i < n then
      if by.[i] = '$' && i + 1 < n then begin
        match by.[i + 1] with
        | '$' ->
            Buffer.add_char buf '$';
            go (i + 2)
        | '&' ->
            Buffer.add_string buf (String.sub s r.start (r.stop - r.start));
            go (i + 2)
        | c when c >= '1' && c <= '9' ->
            Buffer.add_string buf (group_text (Char.code c - Char.code '0'));
            go (i + 2)
        | _ ->
            Buffer.add_char buf '$';
            go (i + 1)
      end
      else begin
        Buffer.add_char buf by.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let replace t s ~by =
  let matches = if t.is_global then match_all t s else
    match exec t s ~start:0 with Some r -> [ r ] | None -> []
  in
  let buf = Buffer.create (String.length s) in
  let cursor = ref 0 in
  List.iter
    (fun r ->
      if r.start >= !cursor then begin
        Buffer.add_string buf (String.sub s !cursor (r.start - !cursor));
        Buffer.add_string buf (expand_template t s r by);
        cursor := r.stop
      end)
    matches;
  Buffer.add_string buf (String.sub s !cursor (String.length s - !cursor));
  Buffer.contents buf

let split t s =
  let matches = match_all t s in
  let parts = ref [] in
  let cursor = ref 0 in
  List.iter
    (fun r ->
      if r.start >= !cursor && r.stop > r.start then begin
        parts := String.sub s !cursor (r.start - !cursor) :: !parts;
        cursor := r.stop
      end)
    matches;
  parts := String.sub s !cursor (String.length s - !cursor) :: !parts;
  List.rev !parts
