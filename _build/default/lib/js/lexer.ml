type token =
  | T_number of float
  | T_string of string
  | T_ident of string
  | T_keyword of string
  | T_punct of string
  | T_regex of string * string
  | T_eof

type lexed = { tok : token; line : int; col : int; preceded_by_newline : bool }

exception Lex_error of string * int * int

let keywords =
  [
    "function"; "var"; "let"; "const"; "return"; "if"; "else"; "while"; "do"; "for";
    "break"; "continue"; "new"; "typeof"; "instanceof"; "in"; "null"; "true"; "false";
    "this"; "throw"; "try"; "catch"; "finally"; "switch"; "case"; "default"; "void";
    "delete";
  ]

let is_keyword =
  let tbl = Hashtbl.create 37 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keywords;
  fun s -> Hashtbl.mem tbl s

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Multi-character punctuators, longest first so greedy matching works. *)
let puncts =
  [
    ">>>="; "==="; "!=="; ">>>"; "<<="; ">>="; "=="; "!="; "<="; ">="; "&&"; "||";
    "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<"; ">>";
    "{"; "}"; "("; ")"; "["; "]"; ";"; ","; "<"; ">"; "+"; "-"; "*"; "/"; "%";
    "="; "!"; "?"; ":"; "."; "&"; "|"; "^"; "~";
  ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
  mutable newline_pending : bool;
}

let error st msg = raise (Lex_error (msg, st.line, st.pos - st.bol + 1))

let peek st i = if st.pos + i < String.length st.src then Some st.src.[st.pos + i] else None

let advance st n =
  for i = 0 to n - 1 do
    (match peek st i with
    | Some '\n' ->
        st.line <- st.line + 1;
        st.bol <- st.pos + i + 1;
        st.newline_pending <- true
    | Some _ | None -> ());
    ()
  done;
  st.pos <- st.pos + n

let rec skip_trivia st =
  match peek st 0 with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st 1;
      skip_trivia st
  | Some '/' -> (
      match peek st 1 with
      | Some '/' ->
          let rec eat () =
            match peek st 0 with
            | Some '\n' | None -> ()
            | Some _ ->
                advance st 1;
                eat ()
          in
          advance st 2;
          eat ();
          skip_trivia st
      | Some '*' ->
          let rec eat () =
            match peek st 0, peek st 1 with
            | Some '*', Some '/' -> advance st 2
            | None, _ -> error st "unterminated block comment"
            | Some _, _ ->
                advance st 1;
                eat ()
          in
          advance st 2;
          eat ();
          skip_trivia st
      | Some _ | None -> ())
  | Some _ | None -> ()

let lex_string st quote =
  let buf = Buffer.create 16 in
  advance st 1;
  let rec loop () =
    match peek st 0 with
    | None -> error st "unterminated string literal"
    | Some c when c = quote -> advance st 1
    | Some '\n' -> error st "newline in string literal"
    | Some '\\' -> (
        match peek st 1 with
        | None -> error st "unterminated escape"
        | Some 'n' -> Buffer.add_char buf '\n'; advance st 2; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st 2; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance st 2; loop ()
        | Some '0' -> Buffer.add_char buf '\000'; advance st 2; loop ()
        | Some 'x' ->
            (match peek st 2, peek st 3 with
            | Some h1, Some h2 when is_hex_digit h1 && is_hex_digit h2 ->
                let v = int_of_string (Printf.sprintf "0x%c%c" h1 h2) in
                Buffer.add_char buf (Char.chr v);
                advance st 4
            | _ -> error st "bad \\x escape");
            loop ()
        | Some 'u' ->
            (* \uXXXX: encode the code point as UTF-8. *)
            let hex i = match peek st i with
              | Some c when is_hex_digit c -> c
              | _ -> error st "bad \\u escape"
            in
            let v =
              int_of_string (Printf.sprintf "0x%c%c%c%c" (hex 2) (hex 3) (hex 4) (hex 5))
            in
            if v < 0x80 then Buffer.add_char buf (Char.chr v)
            else if v < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
            end;
            advance st 6;
            loop ()
        | Some c ->
            Buffer.add_char buf c;
            advance st 2;
            loop ())
    | Some c ->
        Buffer.add_char buf c;
        advance st 1;
        loop ()
  in
  loop ();
  T_string (Buffer.contents buf)

let lex_number st =
  let start = st.pos in
  (match peek st 0, peek st 1 with
  | Some '0', Some ('x' | 'X') ->
      advance st 2;
      let rec eat () =
        match peek st 0 with
        | Some c when is_hex_digit c -> advance st 1; eat ()
        | Some _ | None -> ()
      in
      eat ()
  | _ ->
      let rec digits () =
        match peek st 0 with
        | Some c when is_digit c -> advance st 1; digits ()
        | Some _ | None -> ()
      in
      digits ();
      (match peek st 0 with
      | Some '.' ->
          advance st 1;
          digits ()
      | Some _ | None -> ());
      (match peek st 0 with
      | Some ('e' | 'E') ->
          advance st 1;
          (match peek st 0 with
          | Some ('+' | '-') -> advance st 1
          | Some _ | None -> ());
          digits ()
      | Some _ | None -> ()));
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> T_number f
  | None -> error st (Printf.sprintf "malformed number %S" text)

let lex_ident st =
  let start = st.pos in
  let rec eat () =
    match peek st 0 with
    | Some c when is_ident_char c -> advance st 1; eat ()
    | Some _ | None -> ()
  in
  eat ();
  let text = String.sub st.src start (st.pos - start) in
  if is_keyword text then T_keyword text else T_ident text

let lex_punct st =
  let matches p =
    let n = String.length p in
    st.pos + n <= String.length st.src && String.sub st.src st.pos n = p
  in
  match List.find_opt matches puncts with
  | Some p ->
      advance st (String.length p);
      T_punct p
  | None -> error st (Printf.sprintf "unexpected character %C" st.src.[st.pos])

(* A '/' starts a regex literal only where an expression may start; after a
   value-ending token it is division. *)
let regex_allowed = function
  | None -> true
  | Some (T_punct (")" | "]")) -> false
  | Some (T_punct _) -> true
  (* Keywords that end a value: a following '/' divides. *)
  | Some (T_keyword ("this" | "null" | "true" | "false")) -> false
  | Some (T_keyword _) -> true
  | Some (T_number _ | T_string _ | T_ident _ | T_regex _ | T_eof) -> false

let lex_regex st =
  (* Past the opening '/'. *)
  advance st 1;
  let buf = Buffer.create 16 in
  let rec body in_class =
    match peek st 0 with
    | None | Some '\n' -> error st "unterminated regex literal"
    | Some '\\' -> (
        match peek st 1 with
        | None -> error st "unterminated regex escape"
        | Some c ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c;
            advance st 2;
            body in_class)
    | Some '[' ->
        Buffer.add_char buf '[';
        advance st 1;
        body true
    | Some ']' when in_class ->
        Buffer.add_char buf ']';
        advance st 1;
        body false
    | Some '/' when not in_class -> advance st 1
    | Some c ->
        Buffer.add_char buf c;
        advance st 1;
        body in_class
  in
  body false;
  let fstart = st.pos in
  let rec fl () =
    match peek st 0 with
    | Some c when is_ident_char c ->
        advance st 1;
        fl ()
    | Some _ | None -> ()
  in
  fl ();
  T_regex (Buffer.contents buf, String.sub st.src fstart (st.pos - fstart))

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0; newline_pending = false } in
  let out = ref [] in
  let last_tok = ref None in
  let rec loop () =
    skip_trivia st;
    let preceded_by_newline = st.newline_pending in
    st.newline_pending <- false;
    let line = st.line and col = st.pos - st.bol + 1 in
    let tok =
      match peek st 0 with
      | None -> T_eof
      | Some ('"' | '\'') -> lex_string st st.src.[st.pos]
      | Some c when is_digit c -> lex_number st
      | Some '.' when (match peek st 1 with Some d -> is_digit d | None -> false) ->
          lex_number st
      | Some c when is_ident_start c -> lex_ident st
      | Some '/' when regex_allowed !last_tok -> lex_regex st
      | Some _ -> lex_punct st
    in
    last_tok := Some tok;
    out := { tok; line; col; preceded_by_newline } :: !out;
    match tok with T_eof -> () | _ -> loop ()
  in
  loop ();
  Array.of_list (List.rev !out)
