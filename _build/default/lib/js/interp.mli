(** The MiniJS tree-walking interpreter, instrumented for race detection.

    Every variable and property access is routed through the VM's sink as a
    logical access on a [Wr_mem.Location.Js_var] cell (paper §4.1):

    - variable reads/writes resolve through the scope chain and report the
      cell of the binding's owner scope, so closure-shared locals get one
      stable identity across operations;
    - property reads report the cell of the prototype-chain owner; misses
      report the base object's cell with [Observed_miss], so a read of a
      not-yet-created property races with its later creation;
    - hoisted function declarations are writes at scope entry carrying
      [Function_decl] (the paper's function-race write, §4.1 "Functions");
    - reads in call position carry [Call_position].

    Host objects (DOM nodes, document, window, timers, XHR) intercept
    property access via [Value.host]; the browser's bindings emit
    HTML-element and event-handler accesses there.

    Uncaught JavaScript exceptions surface as [Value.Js_throw]; runaway
    scripts raise [Value.Fuel_exhausted]. The browser catches both at
    operation boundaries — crashes are logged and the page carries on,
    mirroring how browsers hide script failures (§2.3). *)

(** [create ?seed ?fuel ~sink ()] builds a VM with builtins installed and
    the call hook tied. [fuel] bounds evaluation steps per {!refuel}. *)
val create : ?seed:int -> ?fuel:int -> sink:(Wr_mem.Access.t -> unit) -> unit -> Value.vm

(** [refuel vm] resets the step budget; the browser calls it at the start
    of every operation. *)
val refuel : Value.vm -> unit

(** [run_in_global vm program] hoists [program]'s declarations into the
    global scope and executes it (the execution of a script element's
    source). May raise [Value.Js_throw] / [Value.Fuel_exhausted]. *)
val run_in_global : Value.vm -> Ast.program -> unit

(** [call vm f ~this args] invokes a function value, raising a [TypeError]
    ([Value.Js_throw]) if [f] is not callable. *)
val call : Value.vm -> Value.t -> this:Value.t -> Value.t list -> Value.t

(** [construct vm f args] is the [new] operator. *)
val construct : Value.vm -> Value.t -> Value.t list -> Value.t

(** [get_prop vm obj name] / [set_prop vm obj name v] are the instrumented
    property paths, exposed for host bindings that fall back to ordinary
    object behaviour. *)
val get_prop : Value.vm -> ?flags:Wr_mem.Access.flag list -> Value.obj -> string -> Value.t

val set_prop :
  Value.vm -> ?flags:Wr_mem.Access.flag list -> Value.obj -> string -> Value.t -> unit

(** [member vm base name] is the full member-read semantics including
    primitive methods (["abc".length], number formatting); raises
    [TypeError] on [undefined]/[null] bases. *)
val member : Value.vm -> ?flags:Wr_mem.Access.flag list -> Value.t -> string -> Value.t

(** [read_global vm name] reads a global binding with instrumentation,
    [None] when unbound (a miss read is still emitted). Used by the
    browser's window object to unify [window.x] with the global scope. *)
val read_global : Value.vm -> string -> Value.t option

(** [write_global vm name v] writes (creating if needed) a global binding
    with instrumentation. *)
val write_global : Value.vm -> string -> Value.t -> unit
