type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq
  | Strict_eq | Strict_neq
  | Lt | Le | Gt | Ge
  | And | Or
  | Bit_and | Bit_or | Bit_xor | Shl | Shr | Ushr
  | Instanceof | In

type unop = Neg | Plus | Not | Bit_not | Typeof | Void | Delete

type update_op = Incr | Decr

type update_pos = Prefix | Postfix

type expr =
  | Number of float
  | String of string
  | Regex_lit of string * string
  | Bool of bool
  | Null
  | Ident of string
  | This
  | Func of func
  | Object_lit of (string * expr) list
  | Array_lit of expr list
  | Member of expr * string
  | Index of expr * expr
  | Call of expr * expr list
  | New of expr * expr list
  | Assign of lvalue * expr
  | Op_assign of lvalue * binop * expr
  | Update of lvalue * update_op * update_pos
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cond of expr * expr * expr
  | Comma of expr * expr

and lvalue = L_var of string | L_member of expr * string | L_index of expr * expr

and func = { fname : string option; params : string list; body : stmt list }

and stmt =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | Func_decl of func
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of for_init option * expr option * expr option * stmt list
  | For_in of string * expr * stmt list
  | Return of expr option
  | Break
  | Continue
  | Throw of expr
  | Try of stmt list * (string * stmt list) option * stmt list option
  | Switch of expr * (expr option * stmt list) list
  | Block of stmt list
  | Empty

and for_init = Init_expr of expr | Init_decl of (string * expr option) list

type program = stmt list

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Neq -> "!="
  | Strict_eq -> "===" | Strict_neq -> "!=="
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Bit_and -> "&" | Bit_or -> "|" | Bit_xor -> "^"
  | Shl -> "<<" | Shr -> ">>" | Ushr -> ">>>"
  | Instanceof -> "instanceof" | In -> "in"

let unop_name = function
  | Neg -> "-" | Plus -> "+" | Not -> "!" | Bit_not -> "~"
  | Typeof -> "typeof " | Void -> "void " | Delete -> "delete "
