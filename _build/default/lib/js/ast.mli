(** Abstract syntax of MiniJS.

    MiniJS is the JavaScript subset the simulated browser executes: enough
    of ES5 to express every pattern the paper's evaluation encountered —
    closures, objects with prototypes, arrays, exceptions, timers, DOM
    calls, handler registration — while staying small enough to interpret
    with full instrumentation. Notable omissions (documented in DESIGN.md):
    regular-expression literals, [with], getters/setters, generators.
    [let]/[const] parse as [var]. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq  (** loose [==] / [!=] *)
  | Strict_eq | Strict_neq
  | Lt | Le | Gt | Ge
  | And | Or  (** short-circuiting *)
  | Bit_and | Bit_or | Bit_xor | Shl | Shr | Ushr
  | Instanceof | In

type unop = Neg | Plus | Not | Bit_not | Typeof | Void | Delete

type update_op = Incr | Decr

type update_pos = Prefix | Postfix

type expr =
  | Number of float
  | String of string
  | Regex_lit of string * string  (** regex literal: body, flags *)
  | Bool of bool
  | Null
  | Ident of string  (** variable reference (includes [undefined]) *)
  | This
  | Func of func
  | Object_lit of (string * expr) list
  | Array_lit of expr list
  | Member of expr * string  (** [e.name] *)
  | Index of expr * expr  (** [e\[k\]] *)
  | Call of expr * expr list
  | New of expr * expr list
  | Assign of lvalue * expr
  | Op_assign of lvalue * binop * expr  (** [+=], [-=], ... *)
  | Update of lvalue * update_op * update_pos  (** [++x], [x--], ... *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cond of expr * expr * expr
  | Comma of expr * expr

and lvalue = L_var of string | L_member of expr * string | L_index of expr * expr

and func = {
  fname : string option;  (** None for anonymous function expressions *)
  params : string list;
  body : stmt list;
}

and stmt =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | Func_decl of func  (** [fname] is always [Some _] here *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of for_init option * expr option * expr option * stmt list
  | For_in of string * expr * stmt list  (** [for (var k in e)] *)
  | Return of expr option
  | Break
  | Continue
  | Throw of expr
  | Try of stmt list * (string * stmt list) option * stmt list option
  | Switch of expr * (expr option * stmt list) list
      (** cases in order; [None] is [default] *)
  | Block of stmt list
  | Empty

and for_init = Init_expr of expr | Init_decl of (string * expr option) list

type program = stmt list

(** [binop_name op] is the operator's surface syntax ("+", "===", ...). *)
val binop_name : binop -> string

(** [unop_name op] is the operator's surface syntax ("!", "typeof ", ...). *)
val unop_name : unop -> string
