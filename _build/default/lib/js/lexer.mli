(** Hand-written lexer for MiniJS.

    Produces a token stream with line/column positions for parse-error
    reporting. Comments ([//] and [/* */]) and whitespace are skipped.
    Semicolon insertion is not performed here; the parser implements a
    pragmatic subset of ASI (statements may end at a newline, [}] or EOF
    where a semicolon is grammatically required). *)

type token =
  | T_number of float
  | T_string of string
  | T_ident of string  (** identifiers and contextual words *)
  | T_keyword of string  (** reserved words: function, var, if, ... *)
  | T_punct of string  (** operators and delimiters, longest-match *)
  | T_regex of string * string
      (** regex literal: body and flags. Disambiguated from division by the
          preceding token (a regex may start where an expression may). *)
  | T_eof

type lexed = {
  tok : token;
  line : int;  (** 1-based line of the token's first character *)
  col : int;  (** 1-based column *)
  preceded_by_newline : bool;  (** for automatic semicolon insertion *)
}

exception Lex_error of string * int * int  (** message, line, col *)

(** [tokenize src] lexes the whole input eagerly. The final element is
    always [T_eof]. Raises {!Lex_error} on malformed input (unterminated
    string or comment, bad number, stray character). *)
val tokenize : string -> lexed array

(** [keywords] is the reserved-word set (informational; used by tests). *)
val keywords : string list
