(** A compact regular-expression engine for MiniJS.

    Implements the JavaScript regex subset production pages of the paper's
    era lean on: literals, [.], character classes (ranges, negation),
    escape classes ([\d \w \s] and negations), anchors ([^ $]),
    alternation, grouping with capture, greedy and lazy [* + ?], and
    bounded repetition [{m}] / [{m,}] / [{m,n}]. Matching is
    backtracking, with the [i] (ignore-case) and [g] (global) flags.

    Not supported (rejected at compile time or treated literally, as
    noted): backreferences, lookaround, named groups, unicode classes. *)

type t

(** [compile ~pattern ~flags] parses the pattern. [Error msg] on malformed
    patterns or unsupported constructs. Recognized flags: [i], [g], [m]
    (accepted; [m] only affects [^]/[$], which then match at newlines). *)
val compile : pattern:string -> flags:string -> (t, string) result

val pattern : t -> string

val flags : t -> string

(** [global t] — the [g] flag. *)
val global : t -> bool

type match_result = {
  start : int;  (** byte offset of the match *)
  stop : int;  (** byte offset one past the match *)
  groups : (int * int) option array;  (** capture spans; index 0 = whole match *)
}

(** [exec t s ~start] finds the leftmost match at or after [start]. *)
val exec : t -> string -> start:int -> match_result option

(** [test t s] — does [s] contain a match? *)
val test : t -> string -> bool

(** [replace t s ~by] replaces the first match (all matches under [g]).
    [$1]..[$9] in [by] substitute capture groups; [$&] the whole match;
    [$$] a literal dollar. *)
val replace : t -> string -> by:string -> string

(** [split t s] splits [s] on matches. *)
val split : t -> string -> string list

(** [match_all t s] lists all non-overlapping matches (empty matches
    advance by one to guarantee progress). *)
val match_all : t -> string -> match_result list
