module Graph = Wr_hb.Graph
module Access = Wr_mem.Access
module Location = Wr_mem.Location

type pattern = R_w_r | W_w_r | R_w_w | W_r_w

let pattern_name = function
  | R_w_r -> "read-write-read"
  | W_w_r -> "write-write-read"
  | R_w_w -> "read-write-write"
  | W_r_w -> "write-read-write"

type violation = {
  loc : Location.t;
  pattern : pattern;
  first : Access.t;
  interleaved : Access.t;
  second : Access.t;
}

let classify k1 kc k2 =
  match k1, kc, k2 with
  | `Read, `Write, `Read -> Some R_w_r
  | `Write, `Write, `Read -> Some W_w_r
  | `Read, `Write, `Write -> Some R_w_w
  | `Write, `Read, `Write -> Some W_r_w
  | _ -> None

(* Locations designed for concurrent writes never form transactions. *)
let relevant = function
  | Location.Html_elem (Location.Collection _) -> false
  | Location.Event_handler { slot = Location.Container; _ } -> false
  | Location.Js_var _ | Location.Html_elem (Location.Node _ | Location.Id _)
  | Location.Event_handler _ ->
      true

(* Bound per-location work: pages hammer few distinct (op, kind) pairs per
   location, but a pathological trace should degrade by omission, not by
   blow-up. *)
let max_entries_per_location = 128

let check graph accesses =
  let by_loc : Access.t list Location.Tbl.t = Location.Tbl.create 256 in
  List.iter
    (fun (a : Access.t) ->
      if relevant a.Access.loc then
        let prev =
          match Location.Tbl.find_opt by_loc a.Access.loc with Some l -> l | None -> []
        in
        (* Keep one access per (op, kind): later duplicates add nothing. *)
        if
          not
            (List.exists
               (fun (p : Access.t) -> p.Access.op = a.Access.op && p.Access.kind = a.Access.kind)
               prev)
        then Location.Tbl.replace by_loc a.Access.loc (a :: prev))
    accesses;
  let reported = Hashtbl.create 32 in
  let out = ref [] in
  Location.Tbl.iter
    (fun loc entries_rev ->
      let entries = Array.of_list (List.rev entries_rev) in
      let m = Array.length entries in
      if m >= 3 && m <= max_entries_per_location then
        for i = 0 to m - 1 do
          for j = 0 to m - 1 do
            let a1 = entries.(i) and a2 = entries.(j) in
            if a1.Access.op <> a2.Access.op && Graph.happens_before graph a1.Access.op a2.Access.op
            then
              for k = 0 to m - 1 do
                let c = entries.(k) in
                if
                  c.Access.op <> a1.Access.op && c.Access.op <> a2.Access.op
                  && Graph.chc graph c.Access.op a1.Access.op
                  && Graph.chc graph c.Access.op a2.Access.op
                then
                  match classify a1.Access.kind c.Access.kind a2.Access.kind with
                  | Some pattern ->
                      let key = (Location.report_key loc, pattern) in
                      if not (Hashtbl.mem reported key) then begin
                        Hashtbl.add reported key ();
                        out := { loc; pattern; first = a1; interleaved = c; second = a2 } :: !out
                      end
                  | None -> ()
              done
          done
        done)
    by_loc;
  List.rev !out

let check_trace trace =
  let graph = Trace.rebuild_graph trace in
  check graph trace.Trace.accesses

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>%s atomicity violation on %a:@,%a@,%a   <-- interleaved@,%a@]"
    (pattern_name v.pattern) Location.pp v.loc Access.pp v.first Access.pp v.interleaved
    Access.pp v.second
