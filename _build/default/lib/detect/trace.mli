(** Execution traces: record once, analyze offline, any number of times.

    The paper's instrumentation "communicates events directly to the race
    detector, rather than generating a separate event trace" (§5.2.1).
    This module provides the alternative it implies: a serializable record
    of one execution — operations, happens-before edges, and the full
    logical-access stream — that offline analyses replay without re-running
    the browser. Detector ablations, filter experiments, and the atomicity
    checker all consume traces.

    Operation kinds are preserved as their display names; a replayed graph
    answers the same reachability queries as the original (ids, edges and
    access order are exact). *)

type op_record = { op_id : Wr_hb.Op.id; kind : string; label : string }

type t = {
  ops : op_record list;  (** in id order *)
  edges : (Wr_hb.Op.id * Wr_hb.Op.id) list;
  accesses : Wr_mem.Access.t list;  (** in observation order *)
}

(** [capture graph ~accesses] snapshots a finished run. *)
val capture : Wr_hb.Graph.t -> accesses:Wr_mem.Access.t list -> t

(** [recorder inner] wraps a detector so every access is both recorded and
    forwarded; [read ()] returns the accesses seen so far in order. *)
val recorder : Detector.t -> Detector.t * (unit -> Wr_mem.Access.t list)

(** [rebuild_graph ?strategy trace] reconstructs the happens-before graph
    (ids match the trace's). *)
val rebuild_graph : ?strategy:Wr_hb.Graph.strategy -> t -> Wr_hb.Graph.t

(** [replay ?strategy trace ~detector] rebuilds the graph, feeds the access
    stream to a fresh detector made by [detector], and returns its
    reports. *)
val replay :
  ?strategy:Wr_hb.Graph.strategy ->
  t ->
  detector:(Wr_hb.Graph.t -> Detector.t) ->
  Race.t list

(** JSON round trip ({!of_json} raises [Wr_support.Json.Parse_error] on
    malformed documents). *)
val to_json : t -> Wr_support.Json.t

val of_json : Wr_support.Json.t -> t

(** [save t path] / [load path] — file convenience wrappers. *)
val save : t -> string -> unit

val load : string -> t
