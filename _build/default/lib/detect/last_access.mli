(** The paper's race detector (§5.1).

    For every logical location it keeps exactly two slots — the last read
    and the last write — so auxiliary state is constant per location:

    - on a read [A]: report if [CHC(LastWrite[e], op(A))], then
      [LastRead[e] := A];
    - on a write [A]: report if [CHC(LastWrite[e], op(A))] or
      [CHC(LastRead[e], op(A))], then [LastWrite[e] := A].

    [CHC] is {!Wr_hb.Graph.chc} lifted over the bottom value (empty slot →
    no race). The single-slot design trades completeness for space: the
    §5.1 limitation example (schedule [3·1·2] with [1 -> 2]) is missed;
    {!Full_track} closes that gap at higher cost.

    Two refinements shared with {!Full_track}:
    - write-write pairs are only considered when
      {!Wr_mem.Location.conflict_relevant} allows (handler containers and
      collections admit concurrent writes by design);
    - a write by an operation that itself produced the current [LastRead]
      is annotated [Checked_read_first] for the §5.3 form-filter
      refinement. *)

(** [create graph] returns a fresh detector wired to [graph]'s
    happens-before relation. *)
val create : Wr_hb.Graph.t -> Detector.t
