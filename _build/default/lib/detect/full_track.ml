open Wr_mem

type history = {
  mutable reads : Access.t list;
  mutable writes : Access.t list;
  mutable read_ops : int list;  (* ops that read, for Checked_read_first *)
}

type state = {
  graph : Wr_hb.Graph.t;
  table : history Location.Tbl.t;
  reported : unit Location.Tbl.t;
  mutable races : Race.t list;
  mutable seen : int;
}

let history_for st loc =
  match Location.Tbl.find_opt st.table loc with
  | Some h -> h
  | None ->
      let h = { reads = []; writes = []; read_ops = [] } in
      Location.Tbl.add st.table loc h;
      h

let find_conflict st (prevs : Access.t list) (cur : Access.t) =
  List.find_opt (fun (p : Access.t) -> Wr_hb.Graph.chc st.graph p.Access.op cur.Access.op) prevs

let report st ~first ~second =
  Location.Tbl.add st.reported (Location.report_key second.Access.loc) ();
  (* History for a reported location is dead weight from here on. *)
  Location.Tbl.remove st.table second.Access.loc;
  st.races <- Race.make ~first ~second :: st.races

let record st (a : Access.t) =
  st.seen <- st.seen + 1;
  if not (Location.Tbl.mem st.reported (Location.report_key a.loc)) then begin
    let h = history_for st a.loc in
    match a.kind with
    | `Read -> (
        match find_conflict st h.writes a with
        | Some w -> report st ~first:w ~second:a
        | None ->
            h.reads <- a :: h.reads;
            h.read_ops <- a.op :: h.read_ops)
    | `Write -> (
        let a =
          if List.mem a.op h.read_ops then Access.add_flag a Checked_read_first else a
        in
        let ww_relevant = Location.conflict_relevant a.loc ~kind:`Write ~kind':`Write in
        match (if ww_relevant then find_conflict st h.writes a else None) with
        | Some w -> report st ~first:w ~second:a
        | None -> (
            match find_conflict st h.reads a with
            | Some r -> report st ~first:r ~second:a
            | None -> h.writes <- a :: h.writes))
  end

let create graph =
  let st =
    {
      graph;
      table = Location.Tbl.create 1024;
      reported = Location.Tbl.create 64;
      races = [];
      seen = 0;
    }
  in
  {
    Detector.name = "full-track";
    record = record st;
    races = (fun () -> List.rev st.races);
    accesses_seen = (fun () -> st.seen);
  }
