open Wr_mem

type run_info = { dispatch_count : target:int -> event:string -> int }

let involves_form_field (r : Race.t) =
  Access.has_flag r.first Form_field || Access.has_flag r.second Form_field

let writer_checked_first (r : Race.t) =
  let checked (a : Access.t) = a.kind = `Write && Access.has_flag a Checked_read_first in
  checked r.first || checked r.second

let form_field races =
  let keep (r : Race.t) =
    match r.race_type with
    | Variable -> involves_form_field r && not (writer_checked_first r)
    | Html | Function_race | Event_dispatch -> true
  in
  List.filter keep races

let single_dispatch info races =
  let keep (r : Race.t) =
    match r.race_type, r.loc with
    | Event_dispatch, Location.Event_handler { target; event; _ } ->
        info.dispatch_count ~target ~event <= 1
    | Event_dispatch, (Location.Js_var _ | Location.Html_elem _) ->
        (* Unreachable by classification, but keep such reports visible. *)
        true
    | (Variable | Html | Function_race), _ -> true
  in
  List.filter keep races

let paper_filters info races = single_dispatch info (form_field races)
