module Graph = Wr_hb.Graph
module Op = Wr_hb.Op
module Access = Wr_mem.Access
module Location = Wr_mem.Location
module Json = Wr_support.Json

type op_record = { op_id : Op.id; kind : string; label : string }

type t = {
  ops : op_record list;
  edges : (Op.id * Op.id) list;
  accesses : Access.t list;
}

let capture graph ~accesses =
  let ops = ref [] in
  Graph.iter_ops
    (fun info ->
      ops :=
        { op_id = info.Op.id; kind = Op.kind_name info.Op.kind; label = info.Op.label }
        :: !ops)
    graph;
  let edges = ref [] in
  Graph.iter_ops
    (fun info ->
      List.iter (fun s -> edges := (info.Op.id, s) :: !edges) (Graph.succs graph info.Op.id))
    graph;
  { ops = List.rev !ops; edges = List.sort compare !edges; accesses }

let recorder (inner : Detector.t) =
  let log = ref [] in
  let d =
    {
      Detector.name = inner.Detector.name ^ "+recorder";
      record =
        (fun a ->
          log := a :: !log;
          inner.Detector.record a);
      races = inner.Detector.races;
      accesses_seen = inner.Detector.accesses_seen;
    }
  in
  (d, fun () -> List.rev !log)

let rebuild_graph ?(strategy = Graph.Closure) t =
  let g = Graph.create ~strategy () in
  List.iter
    (fun { op_id; kind; label } ->
      let id = Graph.fresh g Op.Script ~label:(Printf.sprintf "%s: %s" kind label) in
      if id <> op_id then invalid_arg "Trace.rebuild_graph: non-dense op ids")
    t.ops;
  List.iter (fun (a, b) -> Graph.add_edge g a b) t.edges;
  g

let replay ?strategy t ~detector =
  let g = rebuild_graph ?strategy t in
  let d = detector g in
  List.iter d.Detector.record t.accesses;
  d.Detector.races ()

(* --- serialization ------------------------------------------------- *)

let slot_to_json = function
  | Location.Attr -> Json.String "attr"
  | Location.Container -> Json.String "container"
  | Location.Listener uid -> Json.Int uid

let slot_of_json = function
  | Json.String "attr" -> Location.Attr
  | Json.String "container" -> Location.Container
  | Json.Int uid -> Location.Listener uid
  | _ -> raise (Json.Parse_error "bad handler slot")

let loc_to_json = function
  | Location.Js_var { cell; name } ->
      Json.Obj [ ("t", Json.String "var"); ("cell", Json.Int cell); ("name", Json.String name) ]
  | Location.Html_elem (Location.Node uid) ->
      Json.Obj [ ("t", Json.String "node"); ("uid", Json.Int uid) ]
  | Location.Html_elem (Location.Id { doc; id }) ->
      Json.Obj [ ("t", Json.String "id"); ("doc", Json.Int doc); ("id", Json.String id) ]
  | Location.Html_elem (Location.Collection { doc; name }) ->
      Json.Obj
        [ ("t", Json.String "collection"); ("doc", Json.Int doc); ("name", Json.String name) ]
  | Location.Event_handler { target; event; slot } ->
      Json.Obj
        [
          ("t", Json.String "handler");
          ("target", Json.Int target);
          ("event", Json.String event);
          ("slot", slot_to_json slot);
        ]

let loc_of_json j =
  match Json.to_str (Json.member "t" j) with
  | "var" ->
      Location.Js_var
        { cell = Json.to_int (Json.member "cell" j); name = Json.to_str (Json.member "name" j) }
  | "node" -> Location.Html_elem (Location.Node (Json.to_int (Json.member "uid" j)))
  | "id" ->
      Location.Html_elem
        (Location.Id
           { doc = Json.to_int (Json.member "doc" j); id = Json.to_str (Json.member "id" j) })
  | "collection" ->
      Location.Html_elem
        (Location.Collection
           { doc = Json.to_int (Json.member "doc" j); name = Json.to_str (Json.member "name" j) })
  | "handler" ->
      Location.Event_handler
        {
          target = Json.to_int (Json.member "target" j);
          event = Json.to_str (Json.member "event" j);
          slot = slot_of_json (Json.member "slot" j);
        }
  | other -> raise (Json.Parse_error ("unknown location tag " ^ other))

let flag_names =
  [
    (Access.Function_decl, "function-decl");
    (Access.Call_position, "call");
    (Access.Form_field, "form-field");
    (Access.Observed_miss, "miss");
    (Access.User_input, "user-input");
    (Access.Checked_read_first, "checked-read-first");
  ]

let flag_to_json f = Json.String (List.assoc f flag_names)

let flag_of_json j =
  let name = Json.to_str j in
  match List.find_opt (fun (_, n) -> n = name) flag_names with
  | Some (f, _) -> f
  | None -> raise (Json.Parse_error ("unknown access flag " ^ name))

let access_to_json (a : Access.t) =
  Json.Obj
    [
      ("loc", loc_to_json a.Access.loc);
      ("kind", Json.String (match a.Access.kind with `Read -> "r" | `Write -> "w"));
      ("op", Json.Int a.Access.op);
      ("flags", Json.List (List.map flag_to_json a.Access.flags));
      ("ctx", Json.String a.Access.context);
    ]

let access_of_json j =
  let kind =
    match Json.to_str (Json.member "kind" j) with
    | "r" -> `Read
    | "w" -> `Write
    | _ -> raise (Json.Parse_error "bad access kind")
  in
  Access.make
    ~flags:(List.map flag_of_json (Json.to_list (Json.member "flags" j)))
    ~context:(Json.to_str (Json.member "ctx" j))
    (loc_of_json (Json.member "loc" j))
    kind
    (Json.to_int (Json.member "op" j))

let to_json t =
  Json.Obj
    [
      ( "ops",
        Json.List
          (List.map
             (fun { op_id; kind; label } ->
               Json.Obj
                 [
                   ("id", Json.Int op_id); ("kind", Json.String kind);
                   ("label", Json.String label);
                 ])
             t.ops) );
      ( "edges",
        Json.List (List.map (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ]) t.edges) );
      ("accesses", Json.List (List.map access_to_json t.accesses));
    ]

let of_json j =
  let ops =
    List.map
      (fun o ->
        {
          op_id = Json.to_int (Json.member "id" o);
          kind = Json.to_str (Json.member "kind" o);
          label = Json.to_str (Json.member "label" o);
        })
      (Json.to_list (Json.member "ops" j))
  in
  let edges =
    List.map
      (fun e ->
        match Json.to_list e with
        | [ a; b ] -> (Json.to_int a, Json.to_int b)
        | _ -> raise (Json.Parse_error "bad edge"))
      (Json.to_list (Json.member "edges" j))
  in
  let accesses = List.map access_of_json (Json.to_list (Json.member "accesses" j)) in
  { ops; edges; accesses }

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string (to_json t)))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_json (Json.of_string (really_input_string ic (in_channel_length ic))))
