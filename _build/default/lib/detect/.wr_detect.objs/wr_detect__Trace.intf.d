lib/detect/trace.mli: Detector Race Wr_hb Wr_mem Wr_support
