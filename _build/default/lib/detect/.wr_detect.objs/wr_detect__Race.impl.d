lib/detect/race.ml: Access Format Location Wr_mem Wr_support
