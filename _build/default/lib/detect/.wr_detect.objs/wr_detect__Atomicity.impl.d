lib/detect/atomicity.ml: Array Format Hashtbl List Trace Wr_hb Wr_mem
