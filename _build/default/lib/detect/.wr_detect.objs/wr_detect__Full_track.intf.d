lib/detect/full_track.mli: Detector Wr_hb
