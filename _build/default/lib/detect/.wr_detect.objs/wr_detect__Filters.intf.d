lib/detect/filters.mli: Race
