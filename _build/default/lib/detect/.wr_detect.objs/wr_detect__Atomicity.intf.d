lib/detect/atomicity.mli: Format Trace Wr_hb Wr_mem
