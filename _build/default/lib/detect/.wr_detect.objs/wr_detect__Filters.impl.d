lib/detect/filters.ml: Access List Location Race Wr_mem
