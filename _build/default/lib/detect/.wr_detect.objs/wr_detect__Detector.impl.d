lib/detect/detector.ml: Race Wr_mem
