lib/detect/race.mli: Format Wr_mem Wr_support
