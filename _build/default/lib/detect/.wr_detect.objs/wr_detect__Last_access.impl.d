lib/detect/last_access.ml: Access Detector List Location Race Wr_hb Wr_mem
