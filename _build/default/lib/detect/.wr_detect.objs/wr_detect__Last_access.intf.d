lib/detect/last_access.mli: Detector Wr_hb
