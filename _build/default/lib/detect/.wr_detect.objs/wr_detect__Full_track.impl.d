lib/detect/full_track.ml: Access Detector List Location Race Wr_hb Wr_mem
