lib/detect/detector.mli: Race Wr_mem
