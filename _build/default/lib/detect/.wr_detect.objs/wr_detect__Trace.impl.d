lib/detect/trace.ml: Detector Fun List Printf Wr_hb Wr_mem Wr_support
