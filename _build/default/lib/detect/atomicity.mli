(** Atomicity-violation checking — the "other concurrency analysis" the
    paper says its models support (footnote 2).

    Scripts are atomic operations, but web code routinely spreads one
    logical transaction over several operations — check a value in one
    timer callback, act on it in the next. The happens-before relation and
    the logical-access stream are exactly what is needed to find
    {e unserializable interleavings}: a pair of accesses [a1], [a2] to one
    location by operations [A -> B], with a third operation [C] accessing
    the location concurrently with both ([CHC(C,A)] and [CHC(C,B)]), such
    that no serial order of C against the A-B transaction explains what
    the accesses could observe. The classic four patterns (kinds of
    a1-c-a2):

    - [R-W-R] — B may see a different value than A checked;
    - [W-W-R] — B may read C's overwrite instead of A's write;
    - [R-W-W] — C's concurrent write can be silently lost;
    - [W-R-W] — C can observe A's intermediate state.

    The checker runs offline over a {!Trace.t}'s access stream, so every
    access (not just each location's last) participates. Reports are
    deduplicated per (location, pattern). *)

type pattern = R_w_r | W_w_r | R_w_w | W_r_w

val pattern_name : pattern -> string

type violation = {
  loc : Wr_mem.Location.t;
  pattern : pattern;
  first : Wr_mem.Access.t;  (** a1, by the transaction's first operation *)
  interleaved : Wr_mem.Access.t;  (** c, the concurrent access *)
  second : Wr_mem.Access.t;  (** a2, by the transaction's second operation *)
}

(** [check graph accesses] finds unserializable interleavings. Quadratic
    in each location's access count (fine for per-page traces); locations
    whose writes never conflict (collections, handler containers) are
    skipped, as are same-operation triples. *)
val check : Wr_hb.Graph.t -> Wr_mem.Access.t list -> violation list

(** [check_trace trace] is {!check} over a replayed trace. *)
val check_trace : Trace.t -> violation list

val pp_violation : Format.formatter -> violation -> unit
