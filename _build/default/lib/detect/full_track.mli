(** Full-history race detector — the ablation closing the §5.1 gap.

    The paper's single-slot detector can miss races: with accesses
    [1: read e], [2: write e], [3: read e], [1 -> 2] and schedule
    [3 · 1 · 2], the write at [2] only sees the most recent read [1] and
    never compares against [3]. This detector keeps {e all} prior accesses
    per location (until the location's one allowed report fires, after
    which its history is dropped), so every unordered conflicting pair is
    found regardless of schedule. The benchmark suite measures what the
    extra recall costs in time and space (experiment Abl-2). *)

val create : Wr_hb.Graph.t -> Detector.t
