type t = {
  name : string;
  record : Wr_mem.Access.t -> unit;
  races : unit -> Race.t list;
  accesses_seen : unit -> int;
}

let null = { name = "null"; record = ignore; races = (fun () -> []); accesses_seen = (fun () -> 0) }
