type id = int

type kind =
  | Initial
  | Parse
  | Script
  | Timeout_callback
  | Interval_callback of int
  | Dispatch_anchor of { event : string; index : int }
  | Handler of { event : string; index : int; phase : string }
  | User
  | Segment of { parent : id; part : int }

type info = { id : id; kind : kind; label : string }

let kind_name = function
  | Initial -> "initial"
  | Parse -> "parse"
  | Script -> "script"
  | Timeout_callback -> "timeout-cb"
  | Interval_callback _ -> "interval-cb"
  | Dispatch_anchor _ -> "dispatch"
  | Handler _ -> "handler"
  | User -> "user"
  | Segment _ -> "segment"

let pp ppf { id; kind; label } =
  Format.fprintf ppf "#%d[%s] %s" id (kind_name kind) label
