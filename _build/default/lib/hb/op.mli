(** Operations — the units of atomic execution (paper §3.2).

    Web-page loading consists of two primitive activities, HTML parsing and
    script execution; the paper refines script execution into several kinds
    (inline/external script bodies, timer callbacks, event-handler runs).
    Each operation gets a unique identifier; the happens-before relation of
    {!Graph} is a binary relation over these identifiers.

    Identifiers are dense integers assigned in creation order. The browser
    creates an operation the moment it is scheduled, so every happens-before
    edge points from a lower identifier to a higher one — the graph is a DAG
    built in topological order. *)

type id = int

type kind =
  | Initial  (** the root operation a page load begins with *)
  | Parse  (** [parse(E)]: parsing one static HTML element *)
  | Script  (** [exe(E)]: executing a script element's source *)
  | Timeout_callback  (** [cb(E)]: a [setTimeout] callback *)
  | Interval_callback of int
      (** [cbi(E)]: the [i]th firing of a [setInterval] callback *)
  | Dispatch_anchor of { event : string; index : int }
      (** the browser-side act of dispatching the [index]th occurrence of
          [event] on some target: it reads the handler containers and then
          runs the handler operations. Not a paper operation kind per se,
          but it carries the "browser reads the onload attribute" access the
          paper attributes to event dispatch (§2.5). *)
  | Handler of { event : string; index : int; phase : string }
      (** one event-handler execution belonging to [disp_index(event, T)] *)
  | User  (** a simulated user action (automatic exploration, §5.2.2) *)
  | Segment of { parent : id; part : int }
      (** [A\[i:j)]: a slice of an operation interrupted by an inline event
          dispatch (Appendix A, "splitting happens-before") *)

type info = {
  id : id;
  kind : kind;
  label : string;  (** human-readable description for race reports *)
}

(** [kind_name k] is a short tag ("parse", "script", ...) for rendering. *)
val kind_name : kind -> string

val pp : Format.formatter -> info -> unit
