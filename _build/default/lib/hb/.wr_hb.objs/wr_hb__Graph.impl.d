lib/hb/graph.ml: Array Buffer List Op Printf String Wr_support
