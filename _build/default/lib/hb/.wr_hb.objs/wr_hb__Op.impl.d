lib/hb/op.ml: Format
