lib/hb/op.mli: Format
