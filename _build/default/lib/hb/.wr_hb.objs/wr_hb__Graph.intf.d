lib/hb/graph.mli: Op
