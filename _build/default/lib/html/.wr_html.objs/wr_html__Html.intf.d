lib/html/html.mli: Format
