lib/html/html.ml: Buffer Char Format List String
