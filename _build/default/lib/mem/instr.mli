(** Shared instrumentation context.

    WebKit's instrumentation reports every access against the operation
    currently executing; here that ambient state is explicit. The browser
    owns one [t], keeps [op]/[context] current as the event loop switches
    operations, and hands the same [t] to the DOM, the event system and the
    JS VM so all accesses land in one stream with one id space.

    [cell_id] and [fresh_id] are wired to the JS VM's interning table, so a
    DOM node's [parentNode] property and a JS read of the same property
    resolve to the same logical cell. *)

type t = {
  mutable op : Wr_hb.Op.id;  (** the operation currently executing *)
  mutable context : string;  (** its human-readable label *)
  sink : Access.t -> unit;
  cell_id : owner:int -> string -> int;
  fresh_id : unit -> int;
}

(** [emit t ?flags loc kind] reports an access by the current operation. *)
val emit : t -> ?flags:Access.flag list -> Location.t -> Access.kind -> unit

(** [null ()] swallows accesses and mints ids from a private counter; for
    tests that exercise DOM structure without a detector. *)
val null : unit -> t
