type elem_key =
  | Node of int
  | Id of { doc : int; id : string }
  | Collection of { doc : int; name : string }

type handler_slot = Attr | Listener of int | Container

type t =
  | Js_var of { cell : int; name : string }
  | Html_elem of elem_key
  | Event_handler of { target : int; event : string; slot : handler_slot }

let conflict_relevant loc ~kind ~kind' =
  let both_writes = kind = `Write && kind' = `Write in
  match loc with
  | Html_elem (Collection _) | Event_handler { slot = Container; _ } -> not both_writes
  | Js_var _ | Html_elem (Node _ | Id _) | Event_handler { slot = Attr | Listener _; _ } ->
      true

let report_key = function
  | Event_handler { target; event; _ } -> Event_handler { target; event; slot = Container }
  | (Js_var _ | Html_elem _) as loc -> loc

(* Structural equality is correct here ([t] contains only ints and
   strings); the explicit definitions exist so [Js_var] name changes for
   reporting purposes never silently change identity semantics. *)
let equal (a : t) (b : t) =
  match a, b with
  | Js_var { cell = c; _ }, Js_var { cell = c'; _ } -> c = c'
  | Html_elem k, Html_elem k' -> k = k'
  | Event_handler h, Event_handler h' ->
      h.target = h'.target && String.equal h.event h'.event && h.slot = h'.slot
  | (Js_var _ | Html_elem _ | Event_handler _), _ -> false

let hash = function
  | Js_var { cell; _ } -> Hashtbl.hash (0, cell)
  | Html_elem k -> Hashtbl.hash (1, k)
  | Event_handler { target; event; slot } -> Hashtbl.hash (2, target, event, slot)

let pp_elem_key ppf = function
  | Node uid -> Format.fprintf ppf "node#%d" uid
  | Id { doc; id } -> Format.fprintf ppf "doc%d#%s" doc id
  | Collection { doc; name } -> Format.fprintf ppf "doc%d[%s]" doc name

let pp_slot ppf = function
  | Attr -> Format.pp_print_string ppf "attr"
  | Listener uid -> Format.fprintf ppf "listener#%d" uid
  | Container -> Format.pp_print_string ppf "handlers"

let pp ppf = function
  | Js_var { cell; name } -> Format.fprintf ppf "var %s@%d" name cell
  | Html_elem k -> Format.fprintf ppf "elem %a" pp_elem_key k
  | Event_handler { target; event; slot } ->
      Format.fprintf ppf "handler (node#%d, %s, %a)" target event pp_slot slot

let to_string t = Format.asprintf "%a" pp t

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
