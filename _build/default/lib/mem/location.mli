(** Logical memory locations (paper §4).

    The web platform has no natural machine-level notion of a memory access:
    operations touch JavaScript heap cells, browser-internal DOM structures,
    or both. The paper therefore defines three classes of logical locations,
    independent of browser implementation:

    - JavaScript variables ([Js_var]) — local variables captured by
      closures, object properties, globals (§4.1);
    - HTML elements ([Html_elem]) — written by insertion/removal, read by
      accessors like [getElementById] (§4.2);
    - event handlers ([Event_handler]) — a triple (element, event, handler)
      so that accesses manipulating disjoint handlers for the same event do
      not interfere (§4.3).

    Two refinements make the model implementable without WebKit's concrete
    addresses (both documented in DESIGN.md):

    - element lookups are keyed: [Node] for a concrete element's existence,
      [Id] for the per-document id cell that a [getElementById] reads
      whether or not it hits (Fig. 3's race needs the miss to conflict with
      the later insertion), [Collection] for tag/name-keyed accessors;
    - each (element, event) pair has one extra [Container] slot that event
      dispatch reads and every handler registration writes. Write-write
      conflicts on containers and collections are suppressed by
      {!conflict_relevant} to preserve the §4.3 non-interference of disjoint
      handlers. *)

type elem_key =
  | Node of int  (** a concrete element, by node uid *)
  | Id of { doc : int; id : string }  (** the per-document id-lookup cell *)
  | Collection of { doc : int; name : string }
      (** a document-level collection accessor cell, e.g. "tag:div",
          "images", "forms" *)

type handler_slot =
  | Attr  (** the element's [on<event>] attribute/property slot *)
  | Listener of int  (** an [addEventListener] handler, keyed by function uid *)
  | Container  (** the per-(element, event) handler container *)

type t =
  | Js_var of { cell : int; name : string }
      (** a runtime binding cell or object property slot; [cell] uniquely
          identifies the heap cell, [name] is for reports *)
  | Html_elem of elem_key
  | Event_handler of { target : int; event : string; slot : handler_slot }

(** [conflict_relevant loc ~kind ~kind'] decides whether two accesses of the
    given kinds on [loc] may constitute a race. Write-write pairs on
    [Container] and [Collection] locations are exempt (disjoint handler
    registrations / unrelated insertions must not interfere); everything
    else follows the usual "at least one write" rule, which the detector
    has already established before asking. *)
val conflict_relevant : t -> kind:[ `Read | `Write ] -> kind':[ `Read | `Write ] -> bool

(** [report_key loc] canonicalizes a location for the "at most one race
    report per location per run" rule (paper footnote 13). Event-handler
    locations collapse to their (target, event) pair: a single registration
    races with a single dispatch through both the handler slot and the
    container, and reporting that twice would double-count what the paper
    counts as one event dispatch race. Other locations are their own
    key. *)
val report_key : t -> t

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Hash tables keyed by location, used by the detectors. *)
module Tbl : Hashtbl.S with type key = t
