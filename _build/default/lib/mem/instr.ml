type t = {
  mutable op : Wr_hb.Op.id;
  mutable context : string;
  sink : Access.t -> unit;
  cell_id : owner:int -> string -> int;
  fresh_id : unit -> int;
}

let emit t ?(flags = []) loc kind =
  t.sink (Access.make ~flags ~context:t.context loc kind t.op)

let null () =
  let counter = ref 0 in
  let cells = Hashtbl.create 64 in
  {
    op = 0;
    context = "";
    sink = ignore;
    cell_id =
      (fun ~owner name ->
        match Hashtbl.find_opt cells (owner, name) with
        | Some c -> c
        | None ->
            incr counter;
            Hashtbl.add cells (owner, name) !counter;
            !counter);
    fresh_id =
      (fun () ->
        incr counter;
        !counter);
  }
