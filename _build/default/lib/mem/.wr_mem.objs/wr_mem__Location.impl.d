lib/mem/location.ml: Format Hashtbl String
