lib/mem/access.mli: Format Location Wr_hb
