lib/mem/access.ml: Format List Location String Wr_hb
