lib/mem/location.mli: Format Hashtbl
