lib/mem/instr.mli: Access Location Wr_hb
