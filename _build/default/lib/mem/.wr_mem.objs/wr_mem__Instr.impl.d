lib/mem/instr.ml: Access Hashtbl Wr_hb
