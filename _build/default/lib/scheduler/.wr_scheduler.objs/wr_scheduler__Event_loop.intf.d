lib/scheduler/event_loop.mli:
