lib/scheduler/network.ml: Event_loop Hashtbl Wr_support
