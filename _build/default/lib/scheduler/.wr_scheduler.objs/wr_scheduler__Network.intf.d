lib/scheduler/network.mli: Event_loop Wr_support
