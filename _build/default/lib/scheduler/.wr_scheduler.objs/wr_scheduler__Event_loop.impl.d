lib/scheduler/event_loop.ml: Array Float Hashtbl
