type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

exception Parse_error of string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c = if peek () = Some c then advance () else fail (Printf.sprintf "expected %C" c) in
  let literal word v =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad unicode escape";
              (match int_of_string_opt ("0x" ^ String.sub text !pos 4) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad unicode escape");
              pos := !pos + 4;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some c when c >= '0' && c <= '9' ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    let fractional = peek () = Some '.' in
    if fractional then begin
      advance ();
      digits ()
    end;
    let exponent = match peek () with Some ('e' | 'E') -> true | _ -> false in
    if exponent then begin
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    end;
    let body = String.sub text start (!pos - start) in
    if fractional || exponent then
      match float_of_string_opt body with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt body with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt body with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          loop ();
          List (List.rev !items)
        end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | Some _ | None -> fail "unexpected input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> raise (Parse_error ("missing field " ^ key)))
  | _ -> raise (Parse_error ("not an object while looking for " ^ key))

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> raise (Parse_error "expected an integer")

let to_str = function
  | String s -> s
  | _ -> raise (Parse_error "expected a string")

let to_list = function
  | List l -> l
  | _ -> raise (Parse_error "expected a list")

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_string ppf (float_repr f)
  | String s ->
      let buf = Buffer.create (String.length s + 2) in
      escape_string buf s;
      Format.pp_print_string ppf (Buffer.contents buf)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
      Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") pp)
        items
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      let pp_field ppf (k, v) =
        let buf = Buffer.create (String.length k + 2) in
        escape_string buf k;
        Format.fprintf ppf "@[<hov 2>%s:@ %a@]" (Buffer.contents buf) pp v
      in
      Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") pp_field)
        fields
