(** Plain-text table rendering for benchmark and evaluation output.

    The bench harness prints the same rows the paper's tables report; this
    module handles column sizing and alignment. *)

type align = Left | Right

(** [render ~header ?align rows] lays out [rows] under [header] with columns
    padded to the widest cell. [align] defaults to left for the first column
    and right for the rest (the shape of the paper's tables). Rows shorter
    than the header are padded with empty cells. *)
val render : header:string list -> ?align:align list -> string list list -> string

(** [print ~header ?align rows] renders to stdout. *)
val print : header:string list -> ?align:align list -> string list list -> unit
