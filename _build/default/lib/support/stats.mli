(** Summary statistics over integer samples (Table 1 reports mean, median
    and max per race type across sites). *)

(** [mean xs] is the arithmetic mean; [0.] on an empty list. *)
val mean : int list -> float

(** [median xs] follows the paper's convention of averaging the two middle
    elements for even-length samples (Table 1 reports 5.5); [0.] on empty. *)
val median : int list -> float

(** [max xs] is the largest sample; [0] on empty. *)
val max : int list -> int

(** [sum xs] totals the samples. *)
val sum : int list -> int
