(** Deterministic pseudo-random number generator (splitmix64).

    Every source of simulated nondeterminism in the system — network
    latencies, scheduler jitter, corpus generation — draws from an explicit
    [Rng.t] seeded by the user, so whole runs are reproducible bit-for-bit
    from a seed. The global [Random] state is never used. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int64 -> t

(** [of_int seed] is [create] on a widened seed, for convenience. *)
val of_int : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new generator from [t], advancing [t]. Streams of
    the parent and child are statistically independent. *)
val split : t -> t

(** [bits64 t] returns 64 uniformly distributed bits. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)
val chance : t -> float -> bool

(** [choose t arr] picks a uniform element. Raises [Invalid_argument] on an
    empty array. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [exponential t ~mean] samples an exponential distribution; used for
    simulated network latencies. *)
val exponential : t -> mean:float -> float
