type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let rstrip s =
  let rec last i = if i > 0 && s.[i - 1] = ' ' then last (i - 1) else i in
  String.sub s 0 (last (String.length s))

let render ~header ?align rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let normalize row =
    Array.init ncols (fun i -> match List.nth_opt row i with Some c -> c | None -> "")
  in
  let header = normalize header in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let measure row = Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row in
  measure header;
  List.iter measure rows;
  let aligns =
    match align with
    | Some l -> Array.init ncols (fun i -> match List.nth_opt l i with Some a -> a | None -> Right)
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let row_to_string row =
    let cells = Array.mapi (fun i c -> pad aligns.(i) widths.(i) c) row in
    rstrip (String.concat "  " (Array.to_list cells))
  in
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  let lines = row_to_string header :: rule :: List.map row_to_string rows in
  String.concat "\n" lines ^ "\n"

let print ~header ?align rows = print_string (render ~header ?align rows)
