let mean = function
  | [] -> 0.
  | xs -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let median = function
  | [] -> 0.
  | xs ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      if n mod 2 = 1 then float_of_int arr.(n / 2)
      else float_of_int (arr.((n / 2) - 1) + arr.(n / 2)) /. 2.

let max = function [] -> 0 | x :: xs -> List.fold_left Stdlib.max x xs

let sum = List.fold_left ( + ) 0
