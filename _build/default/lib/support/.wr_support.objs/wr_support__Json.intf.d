lib/support/json.mli: Format
