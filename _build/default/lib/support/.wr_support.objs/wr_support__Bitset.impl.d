lib/support/bitset.ml: Array Bytes Char
