lib/support/rng.mli:
