lib/support/table.mli:
