lib/support/stats.mli:
