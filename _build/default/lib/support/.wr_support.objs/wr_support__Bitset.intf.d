lib/support/bitset.mli:
