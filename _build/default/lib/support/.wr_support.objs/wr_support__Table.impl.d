lib/support/table.ml: Array List String
