lib/support/json.ml: Buffer Char Float Format List Printf String
