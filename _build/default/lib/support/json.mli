(** Minimal JSON values and serializer for tool output.

    Only emission is needed (the CLI's [--format json]); no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string t] renders compact JSON with correct string escaping. *)
val to_string : t -> string

exception Parse_error of string

(** [of_string s] parses JSON text (strict; numbers parse as [Int] when
    integral, else [Float]). Raises {!Parse_error}. Round-trips with
    {!to_string} — a qcheck property. *)
val of_string : string -> t

(** {2 Accessors} — raise {!Parse_error} on shape mismatch, for concise
    decoding of trusted documents (trace files). *)

val member : string -> t -> t

val to_int : t -> int

val to_str : t -> string

val to_list : t -> t list

(** [pp] pretty-prints with two-space indentation, for human consumption. *)
val pp : Format.formatter -> t -> unit
