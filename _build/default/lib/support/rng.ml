type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state }

(* splitmix64 finalizer: xor-shift-multiply mix of the advancing counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  create (mix seed)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62,
     so the bias is far below anything observable in simulation. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0; u is in [0,1). *)
  -.mean *. log (1.0 -. u)
