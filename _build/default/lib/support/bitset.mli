(** Growable dense bitsets over non-negative integers.

    Backing store for the incremental transitive-closure reachability engine
    in [Wr_hb]: each operation's ancestor set is a bitset indexed by
    operation id. *)

type t

(** [create n] is an empty set able to hold members [< n] without growing. *)
val create : int -> t

(** [mem t i] tests membership; [i] beyond the current capacity is absent. *)
val mem : t -> int -> bool

(** [add t i] inserts [i], growing as needed. Raises [Invalid_argument] on a
    negative index. *)
val add : t -> int -> unit

(** [remove t i] deletes [i] if present. *)
val remove : t -> int -> unit

(** [union_into ~into src] adds every member of [src] to [into]. *)
val union_into : into:t -> t -> unit

(** [cardinal t] counts members. *)
val cardinal : t -> int

(** [iter f t] applies [f] to each member in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [copy t] is an independent copy. *)
val copy : t -> t

(** [clear t] removes all members, keeping capacity. *)
val clear : t -> unit
